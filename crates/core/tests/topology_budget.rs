//! Time/allocation budget of the streaming topology generators.
//!
//! The CSR builders are the entry gate of the million-queue graph engine:
//! a `10^5`-node random `d`-regular draw must stay linear in `M·d` (the
//! configuration-model repair is incremental, never from-scratch) and
//! allocate only a fixed number of exact-size arrays. A counting global
//! allocator turns the allocation budget into a hard invariant, and a
//! coarse wall-clock ceiling catches an accidental return to quadratic
//! repair (which would be minutes, not seconds, at this size).
//!
//! This file deliberately contains a single test: the counter is global,
//! and a sibling test running concurrently would pollute the count.

use mflb_core::Topology;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Counts allocations (and reallocations) while `COUNTING` is on.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn random_regular_100k_build_stays_within_budget() {
    let m = 100_000;
    let top = Topology::RandomRegular { degree: 4, seed: 42 };

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let start = Instant::now();
    let csr = top.csr(m).expect("draw must succeed");
    let elapsed = start.elapsed();
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(csr.num_nodes(), m);
    assert_eq!(csr.num_entries(), m * 5);
    // Seed-pinned: the same spec always draws the same graph.
    let again = top.csr(m).expect("second draw");
    assert_eq!(csr, again, "same seed, same graph");
    // Spot-check simplicity and symmetry without an O(M²) sweep.
    for j in [0usize, 1, 499, 99_999] {
        let row = csr.row(j);
        assert_eq!(row[0] as usize, j);
        assert!(row[1..].windows(2).all(|w| w[0] < w[1]), "simple + sorted: {row:?}");
        for &n in &row[1..] {
            assert!(csr.row(n as usize)[1..].contains(&(j as u32)), "edge {j}-{n} symmetric");
        }
    }

    // Allocation budget: stubs + flat adjacency + degree fills + bad-pair
    // queue + offsets + indices and incidental one-offs — a fixed count,
    // independent of M (growth reallocations of `indices` would blow past
    // this immediately).
    assert!(allocs <= 32, "10^5-node build allocated {allocs} times (want ≤ 32)");
    // Time budget: linear builds take tens of milliseconds even unoptimized;
    // the ceiling is generous for shared CI runners yet far below any
    // quadratic-repair regression at this size.
    assert!(elapsed.as_secs_f64() < 10.0, "10^5-node build took {elapsed:?} (want < 10s)");
}

//! Property-based invariants of the partial-observability estimators.

use mflb_core::partial::sampled_estimate;
use mflb_core::StateDist;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dist_strategy() -> impl Strategy<Value = StateDist> {
    prop::collection::vec(0.0f64..1.0, 6).prop_filter_map("positive mass", |w| {
        let total: f64 = w.iter().sum();
        if total < 1e-3 {
            return None;
        }
        let mut probs: Vec<f64> = w.iter().map(|x| x / total).collect();
        let drift: f64 = 1.0 - probs.iter().sum::<f64>();
        probs[0] += drift;
        if probs[0] < 0.0 {
            return None;
        }
        Some(StateDist::new(probs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimates_are_distributions_on_the_support(
        nu in dist_strategy(),
        k in 1usize..200,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let est = sampled_estimate(&nu, k, &mut rng);
        let mass: f64 = est.as_slice().iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        // The estimator can only see states that have positive mass.
        for (z, &p) in est.as_slice().iter().enumerate() {
            if nu.prob(z) == 0.0 {
                prop_assert_eq!(p, 0.0, "phantom mass at state {}", z);
            }
        }
        // Entries are multiples of 1/k.
        for &p in est.as_slice() {
            let scaled = p * k as f64;
            prop_assert!((scaled - scaled.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn estimator_is_unbiased(nu in dist_strategy(), seed in 0u64..1_000) {
        // Average of many k = 16 estimates converges to ν (law of large
        // numbers over estimates; tolerance from the binomial CLT).
        let mut rng = StdRng::seed_from_u64(seed);
        let reps = 600usize;
        let mut acc = [0.0f64; 6];
        for _ in 0..reps {
            let est = sampled_estimate(&nu, 16, &mut rng);
            for (a, &p) in acc.iter_mut().zip(est.as_slice()) {
                *a += p;
            }
        }
        for (z, a) in acc.iter_mut().enumerate() {
            *a /= reps as f64;
            // std err of the averaged estimate ≈ sqrt(p(1−p)/(16·reps)).
            let se = (nu.prob(z) * (1.0 - nu.prob(z)) / (16.0 * reps as f64)).sqrt();
            prop_assert!(
                (*a - nu.prob(z)).abs() < 6.0 * se + 1e-9,
                "state {z}: mean estimate {a} vs true {} (se {se})",
                nu.prob(z)
            );
        }
    }
}

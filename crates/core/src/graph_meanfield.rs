//! Degree-indexed mean-field approximation of the **locality-constrained**
//! system (graph topologies, [`crate::topology::Topology`]).
//!
//! In the graph model every dispatcher samples its `d` queues from a
//! closed neighborhood of fixed size `k` instead of from all `M` queues
//! (cf. Tahir, Cui & Koeppl, arXiv:2312.12973). As `M → ∞` with `k`
//! fixed, queue states stay exchangeable on vertex-transitive families,
//! but a tagged queue's arrival rate now depends on the *composition of
//! its neighborhood*, not only on the global measure `ν_t` — the limit is
//! no longer the closed Eq. 20–28 recursion.
//!
//! This module implements the standard first-order ("annealed") closure,
//! indexed by the single parameter `k`:
//!
//! * a tagged queue in state `z` belongs to the accessible sets of `k`
//!   dispatchers (itself and its neighbors);
//! * each such dispatcher's neighborhood contains the tagged queue plus
//!   `k − 1` other queues, approximated as i.i.d. draws from `ν_t`
//!   (exact on locally tree-like graphs at independence order 1, a
//!   heuristic on lattices where neighbor states correlate);
//! * the dispatcher's sampling measure is therefore the **self-weighted**
//!   mixture `H̄_z = (1/k)·δ_z + ((k−1)/k)·ν_t`, and the tagged queue's
//!   arrival rate is `λ_t(ν, z) = λ_t · ρ(H̄_z)[z]` with `ρ` the Eq. 22
//!   integrand ([`per_state_arrival_rates_into`]) — each of the `k`
//!   covering dispatchers routes a specific-queue share `ρ(H̄_z)[z]/k` of
//!   its `λ_t` traffic to the tagged queue.
//!
//! Because `H̄_z` varies with the tagged state, the raw rates conserve
//! arrival mass only approximately; they are renormalized so
//! `Σ_z ν(z)·λ_t(ν, z) = λ_t` holds exactly (Poisson-thinning
//! consistency — every packet lands somewhere). As `k → ∞`, `H̄_z → ν`
//! and both the raw rates and the normalization converge to the paper's
//! full-mesh Eq. 22, so the approximation nests the original model
//! (tested below).

use crate::dist::StateDist;
use crate::meanfield::{mean_field_step_with_rates, per_state_arrival_rates_into, MeanFieldStep};
use crate::rule::DecisionRule;

/// Computes the degree-indexed per-state arrival rates `λ_t(ν, z)` for a
/// closed-neighborhood size `k` (see the module docs for the derivation).
pub fn graph_arrival_rates(nu: &StateDist, rule: &DecisionRule, lambda: f64, k: usize) -> Vec<f64> {
    assert!(k >= 1, "neighborhood size must be at least 1");
    assert!(lambda >= 0.0, "negative arrival rate");
    let zs = nu.num_states();
    let mut rates = vec![0.0f64; zs];
    let mut hbar = vec![0.0f64; zs];
    let mut local = vec![0.0f64; zs];
    let self_w = 1.0 / k as f64;
    let other_w = (k - 1) as f64 / k as f64;
    for z in 0..zs {
        for (s, h) in hbar.iter_mut().enumerate() {
            *h = other_w * nu.prob(s);
        }
        hbar[z] += self_w;
        per_state_arrival_rates_into(&hbar, rule, lambda, &mut local);
        rates[z] = local[z];
    }
    // Renormalize for exact thinning consistency (see module docs). The
    // factor tends to 1 as k grows; with all mass in zero-rate states the
    // rates are already all ~0 and nothing needs scaling.
    let mass: f64 = (0..zs).map(|z| nu.prob(z) * rates[z]).sum();
    if mass > 0.0 && lambda > 0.0 {
        let scale = lambda / mass;
        for r in &mut rates {
            *r *= scale;
        }
    }
    rates
}

/// Advances the degree-indexed graph mean field by one decision epoch of
/// length `dt`: locality-constrained arrival rates, then the exact
/// per-state CTMC aggregation of Eq. 24–28.
pub fn graph_mean_field_step(
    nu: &StateDist,
    rule: &DecisionRule,
    lambda: f64,
    service_rate: f64,
    dt: f64,
    k: usize,
) -> MeanFieldStep {
    let rates = graph_arrival_rates(nu, rule, lambda, k);
    mean_field_step_with_rates(nu, rates, service_rate, dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meanfield::{mean_field_step, per_state_arrival_rates};

    fn jsq_rule(zs: usize) -> DecisionRule {
        DecisionRule::from_fn(zs, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    fn mixed_nu() -> StateDist {
        StateDist::new(vec![0.3, 0.25, 0.2, 0.15, 0.07, 0.03])
    }

    #[test]
    fn rates_conserve_total_mass_for_every_degree() {
        let nu = mixed_nu();
        for rule in [DecisionRule::uniform(6, 2), jsq_rule(6)] {
            for k in [1, 2, 3, 5, 9, 50] {
                let rates = graph_arrival_rates(&nu, &rule, 0.9, k);
                let total: f64 = rates.iter().enumerate().map(|(z, r)| nu.prob(z) * r).sum();
                assert!((total - 0.9).abs() < 1e-12, "k={k}: total {total}");
                assert!(rates.iter().all(|r| r.is_finite() && *r >= 0.0));
            }
        }
    }

    #[test]
    fn uniform_rule_gives_lambda_everywhere_for_any_degree() {
        // Under RND every accessible queue receives exactly λ regardless of
        // its state — locality cannot change a state-blind rule.
        let nu = mixed_nu();
        let rule = DecisionRule::uniform(6, 2);
        for k in [1, 3, 7] {
            let rates = graph_arrival_rates(&nu, &rule, 0.7, k);
            for (z, &r) in rates.iter().enumerate() {
                assert!((r - 0.7).abs() < 1e-12, "k={k}, state {z}: rate {r}");
            }
        }
    }

    #[test]
    fn k1_is_an_isolated_queue() {
        // A size-1 neighborhood means every dispatcher routes all its
        // traffic to its own queue: rate λ in every state, for any rule.
        let nu = mixed_nu();
        for rule in [DecisionRule::uniform(6, 2), jsq_rule(6)] {
            let rates = graph_arrival_rates(&nu, &rule, 0.9, 1);
            for &r in &rates {
                assert!((r - 0.9).abs() < 1e-12, "isolated queues get exactly λ, got {r}");
            }
        }
    }

    #[test]
    fn large_k_converges_to_the_full_mesh_rates() {
        let nu = mixed_nu();
        let rule = jsq_rule(6);
        let full = per_state_arrival_rates(&nu, &rule, 0.9);
        let mut prev_err = f64::INFINITY;
        for k in [5, 20, 100, 1000] {
            let graph = graph_arrival_rates(&nu, &rule, 0.9, k);
            let err: f64 = graph.iter().zip(&full).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            assert!(err < prev_err + 1e-12, "error must shrink with k (k={k}: {err})");
            prev_err = err;
        }
        assert!(prev_err < 1e-2, "k=1000 must be close to the mesh rates ({prev_err})");
    }

    #[test]
    fn small_neighborhoods_damp_jsq_discrimination() {
        // With a small k, a short queue competes against itself inside its
        // dispatchers' samples, so JSQ concentrates less traffic on it than
        // in the full mesh (the locality analogue of delayed herding).
        let nu = mixed_nu();
        let rule = jsq_rule(6);
        let full = per_state_arrival_rates(&nu, &rule, 0.9);
        let local = graph_arrival_rates(&nu, &rule, 0.9, 3);
        assert!(
            local[0] < full[0],
            "short-queue rate must be damped: local {} vs mesh {}",
            local[0],
            full[0]
        );
    }

    #[test]
    fn step_outputs_valid_distribution_and_bounded_drops() {
        let nu = mixed_nu();
        let rule = jsq_rule(6);
        for k in [1, 3, 5] {
            for &dt in &[0.5, 5.0] {
                let step = graph_mean_field_step(&nu, &rule, 0.9, 1.0, dt, k);
                let mass: f64 = step.next_dist.as_slice().iter().sum();
                assert!((mass - 1.0).abs() < 1e-12, "k={k} dt={dt}");
                assert!(step.expected_drops >= 0.0);
                assert!(step.expected_drops <= 0.9 * dt + 1e-9, "cannot drop more than arrives");
            }
        }
    }

    #[test]
    fn rnd_dynamics_match_full_mesh_for_any_degree() {
        // State-blind routing makes locality invisible: the whole step must
        // coincide with the Eq. 20–28 model.
        let nu = mixed_nu();
        let rule = DecisionRule::uniform(6, 2);
        let mesh = mean_field_step(&nu, &rule, 0.9, 1.0, 5.0);
        let graph = graph_mean_field_step(&nu, &rule, 0.9, 1.0, 5.0, 3);
        for (a, b) in graph.next_dist.as_slice().iter().zip(mesh.next_dist.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((graph.expected_drops - mesh.expected_drops).abs() < 1e-12);
    }
}

//! Lower-level decision rules `h : Z^d → P(U)`.
//!
//! A decision rule tells an agent that sampled `d` queues and observed
//! their (stale) states `z̄ = (z̄_1, …, z̄_d)` with which probability to send
//! its jobs to each of the `d` sampled queues. The rule is the *action* of
//! the upper-level mean-field MDP (Eq. 30) and simultaneously the common
//! policy applied by every client of the finite system (Fig. 2).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense decision-rule table over observation tuples.
///
/// Rows are indexed by the mixed-radix encoding of `z̄` (base `|Z|`, first
/// coordinate most significant); each row is a distribution over the `d`
/// queue choices `U = {0, …, d−1}` (the paper's `{1, …, d}`, 0-based here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRule {
    num_states: usize,
    d: usize,
    /// `table[row * d + u] = h(u | z̄(row))`.
    table: Vec<f64>,
}

impl DecisionRule {
    /// Creates a rule from a flat row-stochastic table of shape
    /// `|Z|^d × d`.
    ///
    /// # Panics
    /// Panics on shape mismatch or rows that are not distributions.
    pub fn new(num_states: usize, d: usize, table: Vec<f64>) -> Self {
        assert!(num_states >= 1 && d >= 1);
        let rows = num_states.pow(d as u32);
        assert_eq!(table.len(), rows * d, "table shape mismatch");
        for r in 0..rows {
            let row = &table[r * d..(r + 1) * d];
            let mass: f64 = row.iter().sum();
            assert!((mass - 1.0).abs() < 1e-8, "row {r} sums to {mass}, expected 1");
            assert!(row.iter().all(|&p| p >= -1e-12), "row {r} has negative mass");
        }
        Self { num_states, d, table }
    }

    /// The uniform rule: choose each sampled queue with probability `1/d`
    /// (the paper's MF-RND, Eq. 35).
    pub fn uniform(num_states: usize, d: usize) -> Self {
        let rows = num_states.pow(d as u32);
        Self { num_states, d, table: vec![1.0 / d as f64; rows * d] }
    }

    /// Builds a rule by evaluating `f` on every observation tuple; `f` must
    /// return a length-`d` distribution.
    pub fn from_fn<F>(num_states: usize, d: usize, mut f: F) -> Self
    where
        F: FnMut(&[usize]) -> Vec<f64>,
    {
        let rows = num_states.pow(d as u32);
        let mut table = Vec::with_capacity(rows * d);
        let mut tuple = vec![0usize; d];
        for row in 0..rows {
            Self::decode_into(row, num_states, &mut tuple);
            let probs = f(&tuple);
            assert_eq!(probs.len(), d, "rule function must return d probabilities");
            table.extend_from_slice(&probs);
        }
        Self::new(num_states, d, table)
    }

    /// Builds a rule from unconstrained logits by row-wise softmax — the
    /// "manual normalization" used to map the PPO policy network's
    /// continuous action vector into a valid decision rule (§4).
    pub fn from_logits(num_states: usize, d: usize, logits: &[f64]) -> Self {
        let rows = num_states.pow(d as u32);
        assert_eq!(logits.len(), rows * d, "logit shape mismatch");
        let mut table = vec![0.0; rows * d];
        for r in 0..rows {
            let row = &logits[r * d..(r + 1) * d];
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for (o, &l) in table[r * d..(r + 1) * d].iter_mut().zip(row.iter()) {
                let e = (l - max).exp();
                *o = e;
                sum += e;
            }
            for o in &mut table[r * d..(r + 1) * d] {
                *o /= sum;
            }
        }
        Self { num_states, d, table }
    }

    /// Number of queue states `|Z|`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of sampled queues `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of observation tuples `|Z|^d`.
    pub fn num_rows(&self) -> usize {
        self.num_states.pow(self.d as u32)
    }

    /// Mixed-radix row index of an observation tuple.
    #[inline]
    pub fn tuple_index(&self, tuple: &[usize]) -> usize {
        debug_assert_eq!(tuple.len(), self.d);
        let mut idx = 0usize;
        for &z in tuple {
            debug_assert!(z < self.num_states);
            idx = idx * self.num_states + z;
        }
        idx
    }

    /// Decodes a row index into an observation tuple.
    pub fn decode_index(&self, mut idx: usize) -> Vec<usize> {
        let mut tuple = vec![0usize; self.d];
        for k in (0..self.d).rev() {
            tuple[k] = idx % self.num_states;
            idx /= self.num_states;
        }
        tuple
    }

    fn decode_into(mut idx: usize, num_states: usize, tuple: &mut [usize]) {
        for k in (0..tuple.len()).rev() {
            tuple[k] = idx % num_states;
            idx /= num_states;
        }
    }

    /// `h(u | z̄)` by row index.
    #[inline]
    pub fn prob_by_row(&self, row: usize, u: usize) -> f64 {
        self.table[row * self.d + u]
    }

    /// `h(u | z̄)` by observation tuple.
    #[inline]
    pub fn prob(&self, tuple: &[usize], u: usize) -> f64 {
        self.prob_by_row(self.tuple_index(tuple), u)
    }

    /// The action distribution row for an observation tuple.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.table[row * self.d..(row + 1) * self.d]
    }

    /// Samples `u ∼ h(· | z̄)`.
    pub fn sample<R: Rng + ?Sized>(&self, tuple: &[usize], rng: &mut R) -> usize {
        let row = self.row(self.tuple_index(tuple));
        let mut u = rng.gen::<f64>();
        for (k, &p) in row.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return k;
            }
        }
        self.d - 1
    }

    /// The flat table (row-major over tuples).
    pub fn as_slice(&self) -> &[f64] {
        &self.table
    }

    /// Maximum absolute difference to another rule of the same shape.
    pub fn max_abs_diff(&self, other: &DecisionRule) -> f64 {
        assert_eq!(self.num_states, other.num_states);
        assert_eq!(self.d, other.d);
        self.table.iter().zip(other.table.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
    }

    /// Convex combination `(1−w)·self + w·other` — used by ablations that
    /// morph between JSQ and RND.
    pub fn blend(&self, other: &DecisionRule, w: f64) -> DecisionRule {
        assert!((0.0..=1.0).contains(&w));
        assert_eq!(self.num_states, other.num_states);
        assert_eq!(self.d, other.d);
        let table =
            self.table.iter().zip(other.table.iter()).map(|(a, b)| (1.0 - w) * a + w * b).collect();
        DecisionRule::new(self.num_states, self.d, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_rule_rows_are_uniform() {
        let r = DecisionRule::uniform(6, 2);
        assert_eq!(r.num_rows(), 36);
        for row in 0..36 {
            assert!((r.prob_by_row(row, 0) - 0.5).abs() < 1e-15);
            assert!((r.prob_by_row(row, 1) - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn tuple_index_roundtrip() {
        let r = DecisionRule::uniform(6, 3);
        for idx in 0..r.num_rows() {
            let tuple = r.decode_index(idx);
            assert_eq!(r.tuple_index(&tuple), idx);
        }
    }

    #[test]
    fn from_fn_sees_correct_tuples() {
        // Rule that always routes to the arg-min coordinate; check a few
        // known tuples.
        let r =
            DecisionRule::from_fn(
                3,
                2,
                |t| {
                    if t[0] <= t[1] {
                        vec![1.0, 0.0]
                    } else {
                        vec![0.0, 1.0]
                    }
                },
            );
        assert_eq!(r.prob(&[0, 2], 0), 1.0);
        assert_eq!(r.prob(&[2, 0], 1), 1.0);
        assert_eq!(r.prob(&[1, 1], 0), 1.0); // ties at first coordinate
    }

    #[test]
    fn from_logits_is_row_softmax() {
        // One row: logits (ln 1, ln 3) -> probs (0.25, 0.75).
        let r = DecisionRule::from_logits(1, 2, &[0.0, 3.0f64.ln()]);
        assert!((r.prob_by_row(0, 0) - 0.25).abs() < 1e-12);
        assert!((r.prob_by_row(0, 1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_logits_handles_extreme_values() {
        let r = DecisionRule::from_logits(1, 2, &[1000.0, -1000.0]);
        assert!((r.prob_by_row(0, 0) - 1.0).abs() < 1e-12);
        let mass: f64 = r.row(0).iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let r = DecisionRule::from_logits(1, 2, &[0.0, (3.0f64).ln()]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = 0usize;
        let n = 100_000;
        for _ in 0..n {
            ones += r.sample(&[0, 0], &mut rng);
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn blend_interpolates() {
        let a = DecisionRule::from_fn(2, 2, |_| vec![1.0, 0.0]);
        let b = DecisionRule::from_fn(2, 2, |_| vec![0.0, 1.0]);
        let mid = a.blend(&b, 0.25);
        for row in 0..mid.num_rows() {
            assert!((mid.prob_by_row(row, 0) - 0.75).abs() < 1e-15);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let r =
            DecisionRule::from_logits(3, 2, &(0..18).map(|i| i as f64 * 0.1).collect::<Vec<_>>());
        let json = serde_json::to_string(&r).unwrap();
        let back: DecisionRule = serde_json::from_str(&json).unwrap();
        assert!(r.max_abs_diff(&back) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "row 0 sums")]
    fn rejects_non_stochastic_rows() {
        DecisionRule::new(2, 2, vec![0.9, 0.9, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5]);
    }
}

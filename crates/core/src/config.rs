//! System configuration (Table 1 of the paper).

use mflb_queue::mmpp::ArrivalProcess;
use serde::{Deserialize, Serialize};

/// Full description of a delayed-information load-balancing system.
///
/// `SystemConfig::paper()` reproduces Table 1; builder-style setters derive
/// variants for sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Synchronization delay Δt — the decision-epoch length (Table 1: 1–10).
    pub dt: f64,
    /// Service rate α of every queue (Table 1: 1).
    pub service_rate: f64,
    /// Markov-modulated arrival process for λ_t (Table 1: (0.9, 0.6) with
    /// the Eq. 32–33 kernel).
    pub arrivals: ArrivalProcess,
    /// Number of clients N (finite system only).
    pub num_clients: u64,
    /// Number of queues M (finite system only).
    pub num_queues: usize,
    /// Number of sampled accessible queues d (Table 1: 2).
    pub d: usize,
    /// Queue buffer size B (Table 1: 5).
    pub buffer: usize,
    /// Initial queue-state distribution ν₀ (Table 1: all queues empty).
    pub initial_dist: Vec<f64>,
    /// Discount factor γ for the control objective (Table 2: 0.99).
    pub gamma: f64,
    /// Training episode length T in decision epochs (Table 1: 500).
    pub train_episode_len: usize,
    /// Evaluation horizon in *time units*; the evaluation episode length is
    /// `round(eval_time / dt)` epochs (Table 1: ≈500 time units, so
    /// T_e ∈ 50–500).
    pub eval_time: f64,
    /// Holding cost per job per time unit added to the objective
    /// (`reward = −drops − holding_cost·E[queue length]·Δt`). The paper's
    /// objective is pure drops (`0`); a positive value activates the §5
    /// infinite-buffer-style extension where queueing delay itself is
    /// penalized (essential when `B` is large and drops vanish).
    #[serde(default)]
    pub holding_cost: f64,
}

impl SystemConfig {
    /// The paper's Table-1 configuration at a given synchronization delay
    /// and system size (N, M).
    pub fn paper() -> Self {
        Self {
            dt: 5.0,
            service_rate: 1.0,
            arrivals: ArrivalProcess::paper_default(),
            num_clients: 1_000_000,
            num_queues: 1_000,
            d: 2,
            buffer: 5,
            initial_dist: {
                let mut v = vec![0.0; 6];
                v[0] = 1.0;
                v
            },
            gamma: 0.99,
            train_episode_len: 500,
            eval_time: 500.0,
            holding_cost: 0.0,
        }
    }

    /// Activates the holding-cost objective extension.
    pub fn with_holding_cost(mut self, cost_per_job_time: f64) -> Self {
        assert!(cost_per_job_time >= 0.0 && cost_per_job_time.is_finite());
        self.holding_cost = cost_per_job_time;
        self
    }

    /// Sets the synchronization delay Δt.
    pub fn with_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite());
        self.dt = dt;
        self
    }

    /// Sets the system size; the paper's sweeps use `N = M²`.
    pub fn with_size(mut self, num_clients: u64, num_queues: usize) -> Self {
        assert!(num_clients >= 1 && num_queues >= 1);
        self.num_clients = num_clients;
        self.num_queues = num_queues;
        self
    }

    /// Sets `M` and derives `N = M²` (the paper's Fig. 4–5 scaling).
    pub fn with_m_squared(self, m: usize) -> Self {
        let n = (m as u64) * (m as u64);
        self.with_size(n, m)
    }

    /// Sets the buffer size B (resizes ν₀ to "all empty" accordingly).
    pub fn with_buffer(mut self, buffer: usize) -> Self {
        assert!(buffer >= 1);
        self.buffer = buffer;
        let mut v = vec![0.0; buffer + 1];
        v[0] = 1.0;
        self.initial_dist = v;
        self
    }

    /// Sets the number of sampled queues d.
    pub fn with_d(mut self, d: usize) -> Self {
        assert!(d >= 1);
        self.d = d;
        self
    }

    /// Sets the arrival process.
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Number of queue states `|Z| = B + 1`.
    pub fn num_states(&self) -> usize {
        self.buffer + 1
    }

    /// Number of agent observation tuples `|Z|^d`.
    pub fn num_obs_tuples(&self) -> usize {
        self.num_states().pow(self.d as u32)
    }

    /// Evaluation episode length in epochs: the integer nearest to
    /// `eval_time / Δt` (the paper's `T_e ≈ 500/Δt`).
    pub fn eval_episode_len(&self) -> usize {
        ((self.eval_time / self.dt).round() as usize).max(1)
    }

    /// Validates internal consistency; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_dist.len() != self.num_states() {
            return Err(format!(
                "initial_dist has {} entries, expected {}",
                self.initial_dist.len(),
                self.num_states()
            ));
        }
        let mass: f64 = self.initial_dist.iter().sum();
        if (mass - 1.0).abs() > 1e-9 || self.initial_dist.iter().any(|&p| p < 0.0) {
            return Err("initial_dist is not a probability distribution".into());
        }
        if !(self.gamma > 0.0 && self.gamma < 1.0) {
            return Err("gamma must lie in (0,1)".into());
        }
        // Queues are sampled WITH replacement (the paper allows repeated
        // selections), so d may exceed M; only d = 0 is meaningless.
        if self.d == 0 {
            return Err("d must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_table1() {
        let c = SystemConfig::paper();
        c.validate().unwrap();
        assert_eq!(c.service_rate, 1.0);
        assert_eq!(c.d, 2);
        assert_eq!(c.buffer, 5);
        assert_eq!(c.num_states(), 6);
        assert_eq!(c.num_obs_tuples(), 36);
        assert_eq!(c.train_episode_len, 500);
        assert_eq!(c.arrivals.level_rate(0), 0.9);
    }

    #[test]
    fn eval_len_rounds_to_nearest() {
        let c = SystemConfig::paper();
        assert_eq!(c.clone().with_dt(5.0).eval_episode_len(), 100);
        assert_eq!(c.clone().with_dt(1.0).eval_episode_len(), 500);
        assert_eq!(c.clone().with_dt(10.0).eval_episode_len(), 50);
        assert_eq!(c.clone().with_dt(3.0).eval_episode_len(), 167);
    }

    #[test]
    fn m_squared_scaling() {
        let c = SystemConfig::paper().with_m_squared(400);
        assert_eq!(c.num_queues, 400);
        assert_eq!(c.num_clients, 160_000);
    }

    #[test]
    fn with_buffer_resizes_initial_dist() {
        let c = SystemConfig::paper().with_buffer(9);
        assert_eq!(c.num_states(), 10);
        assert_eq!(c.initial_dist.len(), 10);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_initial_dist() {
        let mut c = SystemConfig::paper();
        c.initial_dist = vec![0.5; 6];
        assert!(c.validate().is_err());
    }
}

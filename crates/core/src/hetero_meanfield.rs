//! Heterogeneous-server mean-field model — the §2.5 extension the paper
//! "omits for space reasons", carried through the exact discretization.
//!
//! Servers come in `C` rate classes with fixed population fractions
//! `w_c` and service rates `α_c`. Because a queue never changes class,
//! the mean-field state is a *per-class* family of length distributions
//! `ν_c ∈ P(Z)`; clients observe **composite** states `(z, c)` encoded
//! as `c·(B+1) + z` (the same convention as `mflb_policy::composite_index`
//! and the finite `HeteroEngine` in `mflb-sim` — SED(d) rules plug
//! in directly). The derivation of §2.3 goes through verbatim on the
//! composite space:
//!
//! * the composite observation distribution is `ν̄(z, c) = w_c·ν_c(z)`;
//! * Eq. 22's per-state arrival rate integral is evaluated on `ν̄`
//!   ([`crate::meanfield::per_state_arrival_rates`] is generic in the
//!   state-space size, so it is reused unchanged);
//! * queues of class `c` observed at length `z` advance through
//!   `exp(Q̄(λ(ν̄, (z,c)), α_c)·Δt)` — the same extended generator with
//!   the class service rate (Eq. 27–28).
//!
//! With one class the model collapses *exactly* to
//! [`crate::meanfield::mean_field_step`] (tested), and the finite
//! heterogeneous engine tracks it statistically (integration tests).

use crate::dist::StateDist;
use crate::meanfield::{extended_generator, per_state_arrival_rates};
use crate::rule::DecisionRule;
use mflb_linalg::expm;
use serde::{Deserialize, Serialize};

/// Composite-state index of `(length z, class c)` — matches
/// `mflb_policy::composite_index`.
#[inline]
pub fn composite_state(z: usize, class: usize, num_lengths: usize) -> usize {
    class * num_lengths + z
}

/// The heterogeneous mean-field system: class fractions, class rates and
/// the per-class length distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroMeanField {
    /// Population fraction of each class (sums to 1).
    class_weights: Vec<f64>,
    /// Service rate of each class.
    class_rates: Vec<f64>,
    /// Per-class queue-length distributions `ν_c`.
    dists: Vec<StateDist>,
}

/// Output of one exact heterogeneous mean-field epoch.
#[derive(Debug, Clone)]
pub struct HeteroMeanFieldStep {
    /// The advanced system.
    pub next: HeteroMeanField,
    /// Expected packets dropped per queue (across all classes).
    pub expected_drops: f64,
    /// Arrival rate seen by a queue in each composite state (diagnostics).
    pub arrival_rates: Vec<f64>,
}

impl HeteroMeanField {
    /// Creates the system with all queues of every class empty.
    ///
    /// # Panics
    /// Panics on empty/mismatched classes, non-positive rates or weights
    /// not summing to 1.
    pub fn all_empty(class_weights: Vec<f64>, class_rates: Vec<f64>, buffer: usize) -> Self {
        let dists = vec![StateDist::all_empty(buffer); class_weights.len()];
        Self::new(class_weights, class_rates, dists)
    }

    /// Creates the system from explicit per-class distributions.
    ///
    /// # Panics
    /// See [`HeteroMeanField::all_empty`].
    pub fn new(class_weights: Vec<f64>, class_rates: Vec<f64>, dists: Vec<StateDist>) -> Self {
        assert!(!class_weights.is_empty(), "need at least one class");
        assert_eq!(class_weights.len(), class_rates.len(), "class shape");
        assert_eq!(class_weights.len(), dists.len(), "class shape");
        let mass: f64 = class_weights.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "class weights sum to {mass}");
        assert!(class_weights.iter().all(|&w| w > 0.0), "empty class");
        assert!(class_rates.iter().all(|&r| r > 0.0 && r.is_finite()));
        let zs = dists[0].num_states();
        assert!(dists.iter().all(|d| d.num_states() == zs), "buffer mismatch");
        Self { class_weights, class_rates, dists }
    }

    /// Number of rate classes `C`.
    pub fn num_classes(&self) -> usize {
        self.class_weights.len()
    }

    /// Number of length states `B + 1`.
    pub fn num_lengths(&self) -> usize {
        self.dists[0].num_states()
    }

    /// Number of composite states `C·(B+1)` — the rule's state space.
    pub fn num_composite_states(&self) -> usize {
        self.num_classes() * self.num_lengths()
    }

    /// The length distribution of one class.
    pub fn class_dist(&self, c: usize) -> &StateDist {
        &self.dists[c]
    }

    /// Class population fractions.
    pub fn class_weights(&self) -> &[f64] {
        &self.class_weights
    }

    /// Class service rates.
    pub fn class_rates(&self) -> &[f64] {
        &self.class_rates
    }

    /// The composite observation distribution `ν̄(z, c) = w_c·ν_c(z)`
    /// clients sample from.
    pub fn composite_dist(&self) -> StateDist {
        let zs = self.num_lengths();
        let mut probs = vec![0.0; self.num_composite_states()];
        for (c, (w, d)) in self.class_weights.iter().zip(&self.dists).enumerate() {
            for z in 0..zs {
                probs[composite_state(z, c, zs)] = w * d.prob(z);
            }
        }
        StateDist::new(probs)
    }

    /// Mean queue length across classes.
    pub fn mean_queue_length(&self) -> f64 {
        self.class_weights.iter().zip(&self.dists).map(|(w, d)| w * d.mean_queue_length()).sum()
    }

    /// Advances the system by one decision epoch of length `dt` under a
    /// composite-state decision rule (e.g. `mflb_policy::sed_rule`) and
    /// total arrival rate `lambda` per queue.
    ///
    /// # Panics
    /// Panics if the rule's state space does not match
    /// [`HeteroMeanField::num_composite_states`].
    pub fn step(&self, rule: &DecisionRule, lambda: f64, dt: f64) -> HeteroMeanFieldStep {
        assert!(lambda >= 0.0 && dt > 0.0);
        assert_eq!(
            rule.num_states(),
            self.num_composite_states(),
            "rule must cover composite states"
        );
        let zs = self.num_lengths();
        let buffer = zs - 1;
        let composite = self.composite_dist();
        // Eq. 22 on the composite space: the integral is the same, only
        // the state alphabet grew.
        let rates = per_state_arrival_rates(&composite, rule, lambda);

        let mut next_dists = Vec::with_capacity(self.num_classes());
        let mut drops = 0.0f64;
        let mut e_z = vec![0.0f64; zs + 1];
        for (c, dist) in self.dists.iter().enumerate() {
            let alpha = self.class_rates[c];
            let w = self.class_weights[c];
            let mut next = vec![0.0f64; zs];
            for z in 0..zs {
                let mass = dist.prob(z);
                if mass == 0.0 {
                    continue;
                }
                let arrival = rates[composite_state(z, c, zs)].max(0.0);
                let qbar = extended_generator(arrival, alpha, buffer).scaled(dt);
                let etq = expm(&qbar);
                e_z.iter_mut().for_each(|v| *v = 0.0);
                e_z[z] = 1.0;
                let advanced = etq.matvec(&e_z);
                for (nx, a) in next.iter_mut().zip(advanced.iter()) {
                    *nx += mass * a;
                }
                // Per-queue drops weight by the class fraction.
                drops += w * mass * advanced[zs];
            }
            // Class mass is conserved (queues never change class);
            // renormalize the within-class distribution defensively.
            let total: f64 = next.iter().sum();
            debug_assert!((total - 1.0).abs() < 1e-8, "class {c} mass drift {total}");
            for v in &mut next {
                *v = v.max(0.0) / total;
            }
            next_dists.push(StateDist::new(next));
        }

        HeteroMeanFieldStep {
            next: HeteroMeanField {
                class_weights: self.class_weights.clone(),
                class_rates: self.class_rates.clone(),
                dists: next_dists,
            },
            expected_drops: drops,
            arrival_rates: rates,
        }
    }

    /// Rolls the system out for `horizon` epochs under a fixed rule and a
    /// conditioned arrival-rate sequence; returns cumulative expected
    /// drops per queue.
    pub fn rollout_conditioned(
        &self,
        rule: &DecisionRule,
        rates: &[f64],
        dt: f64,
    ) -> (HeteroMeanField, f64) {
        let mut state = self.clone();
        let mut drops = 0.0;
        for &lambda in rates {
            let step = state.step(rule, lambda, dt);
            drops += step.expected_drops;
            state = step.next;
        }
        (state, drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meanfield::mean_field_step;

    /// JSQ over composite states comparing only lengths (rate-blind).
    fn composite_jsq(zs: usize, classes: usize) -> DecisionRule {
        DecisionRule::from_fn(zs * classes, 2, |t| {
            let (a, b) = (t[0] % zs, t[1] % zs);
            use std::cmp::Ordering::*;
            match a.cmp(&b) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    /// SED over composite states (delay = (z+1)/α_class).
    fn composite_sed(zs: usize, class_rates: &[f64]) -> DecisionRule {
        let rates = class_rates.to_vec();
        DecisionRule::from_fn(zs * rates.len(), 2, move |t| {
            let delay = |idx: usize| (idx % zs) as f64 / rates[idx / zs] + 1.0 / rates[idx / zs];
            let (da, db) = (delay(t[0]), delay(t[1]));
            if (da - db).abs() < 1e-12 {
                vec![0.5, 0.5]
            } else if da < db {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            }
        })
    }

    #[test]
    fn single_class_collapses_to_homogeneous_model() {
        let hetero = HeteroMeanField::new(
            vec![1.0],
            vec![1.0],
            vec![StateDist::new(vec![0.3, 0.25, 0.2, 0.15, 0.07, 0.03])],
        );
        let rule = composite_jsq(6, 1);
        let step = hetero.step(&rule, 0.9, 5.0);
        let reference = mean_field_step(
            &StateDist::new(vec![0.3, 0.25, 0.2, 0.15, 0.07, 0.03]),
            &rule,
            0.9,
            1.0,
            5.0,
        );
        assert!((step.expected_drops - reference.expected_drops).abs() < 1e-12);
        for (a, b) in step.next.class_dist(0).as_slice().iter().zip(reference.next_dist.as_slice())
        {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn step_conserves_class_masses_and_bounds_drops() {
        let hetero = HeteroMeanField::all_empty(vec![0.5, 0.5], vec![1.6, 0.4], 5);
        let rule = composite_sed(6, &[1.6, 0.4]);
        let (end, drops) = hetero.rollout_conditioned(&rule, &[0.9; 20], 5.0);
        for c in 0..2 {
            let mass: f64 = end.class_dist(c).as_slice().iter().sum();
            assert!((mass - 1.0).abs() < 1e-9, "class {c} mass {mass}");
        }
        assert!((0.0..=0.9 * 5.0 * 20.0).contains(&drops));
    }

    #[test]
    fn slow_class_fills_faster_under_rate_blind_routing() {
        // Under composite-blind JSQ, slow servers receive the same traffic
        // as fast ones and their queues must sit higher in steady state.
        let hetero = HeteroMeanField::all_empty(vec![0.5, 0.5], vec![1.6, 0.4], 5);
        let rule = composite_jsq(6, 2);
        let (end, _) = hetero.rollout_conditioned(&rule, &[0.9; 40], 5.0);
        assert!(
            end.class_dist(1).mean_queue_length() > end.class_dist(0).mean_queue_length() + 0.5,
            "slow {} vs fast {}",
            end.class_dist(1).mean_queue_length(),
            end.class_dist(0).mean_queue_length()
        );
    }

    #[test]
    fn sed_beats_rate_blind_jsq_in_hetero_mean_field() {
        let hetero = HeteroMeanField::all_empty(vec![0.5, 0.5], vec![1.6, 0.4], 5);
        let seq = vec![0.9; 40];
        let (_, drops_sed) = hetero.rollout_conditioned(&composite_sed(6, &[1.6, 0.4]), &seq, 5.0);
        let (_, drops_jsq) = hetero.rollout_conditioned(&composite_jsq(6, 2), &seq, 5.0);
        assert!(
            drops_sed < drops_jsq,
            "SED {drops_sed:.3} must beat rate-blind JSQ {drops_jsq:.3}"
        );
    }

    #[test]
    fn composite_distribution_is_consistent() {
        let hetero = HeteroMeanField::new(
            vec![0.25, 0.75],
            vec![2.0, 0.5],
            vec![StateDist::uniform(5), StateDist::all_empty(5)],
        );
        let comp = hetero.composite_dist();
        let mass: f64 = comp.as_slice().iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
        // ν̄(z=0, c=1) = 0.75 · 1.0 (class 1 is empty).
        assert!((comp.prob(composite_state(0, 1, 6)) - 0.75).abs() < 1e-12);
        assert!((comp.prob(composite_state(3, 0, 6)) - 0.25 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "composite states")]
    fn rejects_rules_over_wrong_state_space() {
        let hetero = HeteroMeanField::all_empty(vec![0.5, 0.5], vec![1.0, 2.0], 5);
        let rule = DecisionRule::uniform(6, 2); // plain, not composite
        hetero.step(&rule, 0.9, 1.0);
    }
}

//! Deterministic fault injection: serde-described chaos for the serving
//! path and the finite-system engines.
//!
//! The paper's premise is dispatching under *degraded information*
//! (sampled, delayed observations); a [`FaultPlan`] extends that to
//! degraded *infrastructure*: servers that crash and recover, stragglers
//! that run slow, observation syncs that silently miss, and arrival
//! bursts that exceed capacity. Plans are plain data (validated like
//! `Scenario`), and every random ingredient is drawn from the same
//! SplitMix64 counter-stream scheme the sharded graph engine and the
//! event engine use — keyed `(epoch_base, salt, index)` — so a faulted
//! run is **bit-identical at a fixed seed** regardless of heap
//! internals, shard partitions or worker counts, and regardless of the
//! order fault windows were inserted into the plan.
//!
//! # Fault-plan JSON schema
//!
//! Every field of the top-level object is optional; an absent field
//! injects nothing. `{}` is the empty plan and is contractually a
//! behavioural no-op: engines consult no fault stream when the plan is
//! empty, so every pinned RNG regression constant is preserved.
//!
//! | JSON | fault | constraints |
//! |---|---|---|
//! | `"crashes": {"mttf": f, "mttr": r}` | per-queue crash/recovery: each queue alternates Up/Down sojourns, exponential with means `f` (time to failure) and `r` (time to repair) | `f, r` > 0, finite |
//! | `"stragglers": [{"start": a, "end": b, "factor": c, "queues": [..]}]` | service-rate multiplier `c` on `[a, b)`; `queues` restricts the window to listed queue indices (absent = all queues) | `0 ≤ a < b` finite, `c ≥ 0` finite, windows must not overlap in time |
//! | `"observation": {"drop_prob": p}` | each sync-snapshot refresh is independently *dropped* with probability `p`, so routing keeps using the previous (extra-stale) snapshot | `p ∈ [0, 1]` |
//! | `"overloads": [{"start": a, "end": b, "factor": c}]` | arrival-rate multiplier `c` on `[a, b)` (synthetic streams only — a replayed trace already fixes its arrivals) | `0 ≤ a < b` finite, `c ≥ 0` finite, windows must not overlap |
//!
//! # Semantics
//!
//! Faults are applied at **decision-epoch granularity**. At the start of
//! each sync interval `[t, t + Δt)` an engine asks the plan for
//!
//! * one *effective service-rate multiplier per queue*
//!   ([`FaultPlan::service_multiplier`]): the fraction of the interval
//!   the queue's server is Up under the crash renewal process, times the
//!   overlap-weighted straggler factor. Jobs whose service *starts*
//!   during the interval are served at `α · multiplier`; a multiplier of
//!   zero pauses new service starts entirely until the server recovers.
//! * one *arrival-rate multiplier* ([`FaultPlan::arrival_factor`]),
//!   overlap-weighted over the overload windows;
//! * whether this interval's observation refresh is dropped
//!   ([`FaultPlan::refresh_dropped`]).
//!
//! The crash process carries its Up/Down phase across epochs in a
//! [`FaultState`]; because sojourns are exponential (memoryless), the
//! within-epoch renewal is re-keyed per epoch from
//! `(epoch_base, SALT, queue)` without changing the law.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Derives the RNG for one logical entity of one epoch.
///
/// SplitMix64 scramble of `(epoch_base ^ salt) + idx · φ64` — the same
/// construction (and the same bits) as the sharded graph engine's and
/// event engine's per-entity streams, shared here so fault streams, job
/// streams and service streams stay on disjoint salts of one scheme.
pub fn stream_rng(epoch_base: u64, salt: u64, idx: u64) -> StdRng {
    let mut z = (epoch_base ^ salt).wrapping_add(idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Stream salt of the per-queue crash/recovery renewal draws.
const SALT_CRASH: u64 = 0xA76B_9E45_3D0C_8F21;
/// Stream salt of the per-epoch observation-refresh drop draw.
const SALT_OBS: u64 = 0x1F83_D9AB_FB41_BD6B;

/// Per-queue crash/recovery as an alternating renewal process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashFaults {
    /// Mean time to failure: mean of the exponential Up sojourn.
    pub mttf: f64,
    /// Mean time to repair: mean of the exponential Down sojourn.
    pub mttr: f64,
}

impl CrashFaults {
    /// Stationary availability `mttf / (mttf + mttr)`.
    pub fn availability(&self) -> f64 {
        self.mttf / (self.mttf + self.mttr)
    }
}

/// A service-rate multiplier window (slow — or overclocked — servers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StragglerWindow {
    /// Window start time (inclusive).
    pub start: f64,
    /// Window end time (exclusive).
    pub end: f64,
    /// Service-rate multiplier inside the window (`0` = fully stalled).
    pub factor: f64,
    /// Queue indices the window applies to; `None` = every queue.
    #[serde(default)]
    pub queues: Option<Vec<usize>>,
}

/// Observation-channel faults: dropped (hence extra-stale) sync snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationFaults {
    /// Probability that one interval's snapshot refresh is dropped.
    pub drop_prob: f64,
}

/// An arrival-rate multiplier window (overload burst).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadWindow {
    /// Window start time (inclusive).
    pub start: f64,
    /// Window end time (exclusive).
    pub end: f64,
    /// Arrival-rate multiplier inside the window.
    pub factor: f64,
}

/// A deterministic chaos schedule for one run. See the
/// [module docs](self) for the JSON schema and epoch semantics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-queue crash/recovery renewal process (`None` = servers never
    /// fail).
    #[serde(default)]
    pub crashes: Option<CrashFaults>,
    /// Straggler windows; validated pairwise non-overlapping in time.
    #[serde(default)]
    pub stragglers: Vec<StragglerWindow>,
    /// Observation-channel faults (`None` = every sync refresh lands).
    #[serde(default)]
    pub observation: Option<ObservationFaults>,
    /// Overload bursts; validated pairwise non-overlapping in time.
    #[serde(default)]
    pub overloads: Vec<OverloadWindow>,
}

/// Cross-epoch dynamic state of a [`FaultPlan`]: each queue's current
/// Up/Down phase in the crash renewal process.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    up: Vec<bool>,
}

impl FaultState {
    /// All `m` servers start Up.
    pub fn new(m: usize) -> Self {
        Self { up: vec![true; m] }
    }

    /// Whether queue `j`'s server is currently Up.
    pub fn is_up(&self, j: usize) -> bool {
        self.up[j]
    }

    /// Mutable Up flags (one per queue), for shard-chunked engines.
    pub fn up_flags_mut(&mut self) -> &mut [bool] {
        &mut self.up
    }
}

/// Checks a time window's endpoints; `what` names it in complaints.
fn check_window(start: f64, end: f64, factor: f64, what: &str) -> Result<(), String> {
    if !(start.is_finite() && start >= 0.0) {
        return Err(format!("{what} start must be finite and ≥ 0, got {start}"));
    }
    if !(end.is_finite() && end > start) {
        return Err(format!("{what} needs start < end < ∞, got [{start}, {end})"));
    }
    if !(factor.is_finite() && factor >= 0.0) {
        return Err(format!("{what} factor must be finite and ≥ 0, got {factor}"));
    }
    Ok(())
}

/// Rejects pairwise time-overlap among `windows` (given as `[start, end)`
/// pairs); overlap would make the combined multiplier depend on plan
/// insertion order.
fn check_disjoint(windows: &[(f64, f64)], what: &str) -> Result<(), String> {
    let mut sorted: Vec<(f64, f64)> = windows.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    for pair in sorted.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b.0 < a.1 {
            return Err(format!(
                "{what} windows overlap: [{}, {}) and [{}, {})",
                a.0, a.1, b.0, b.1
            ));
        }
    }
    Ok(())
}

/// Overlap length of `[t0, t0 + dt)` with `[start, end)`.
fn overlap(t0: f64, dt: f64, start: f64, end: f64) -> f64 {
    (end.min(t0 + dt) - start.max(t0)).max(0.0)
}

/// Overlap-weighted multiplier of non-overlapping windows over
/// `[t0, t0 + dt)`: `1 + Σ_w (overlap_w / dt) · (factor_w − 1)`.
///
/// Windows are folded in ascending `start` order (a total order, since
/// validation rejects overlap), so the result is **bit-identical under
/// any insertion order** of the windows into the plan.
fn window_factor(windows: &[(f64, f64, f64)], t0: f64, dt: f64) -> f64 {
    match windows.len() {
        0 => 1.0,
        1 => {
            let (s, e, f) = windows[0];
            1.0 + overlap(t0, dt, s, e) / dt * (f - 1.0)
        }
        _ => {
            let mut hit: Vec<(f64, f64, f64)> =
                windows.iter().copied().filter(|&(s, e, _)| overlap(t0, dt, s, e) > 0.0).collect();
            hit.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut factor = 1.0;
            for (s, e, f) in hit {
                factor += overlap(t0, dt, s, e) / dt * (f - 1.0);
            }
            factor
        }
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing, consumes no randomness.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_none()
            && self.stragglers.is_empty()
            && self.observation.is_none()
            && self.overloads.is_empty()
    }

    /// Whether any fault can change per-queue service (crashes or
    /// straggler windows).
    pub fn has_service_faults(&self) -> bool {
        self.crashes.is_some() || !self.stragglers.is_empty()
    }

    /// Checks every parameter; returns a human-readable complaint, like
    /// `Scenario::validate`.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(c) = &self.crashes {
            for (v, what) in [(c.mttf, "crash mttf"), (c.mttr, "crash mttr")] {
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("{what} must be positive and finite, got {v}"));
                }
            }
        }
        for w in &self.stragglers {
            check_window(w.start, w.end, w.factor, "straggler window")?;
            if let Some(queues) = &w.queues {
                if queues.is_empty() {
                    return Err(
                        "straggler window lists no queues; omit `queues` to hit all".to_string()
                    );
                }
            }
        }
        check_disjoint(
            &self.stragglers.iter().map(|w| (w.start, w.end)).collect::<Vec<_>>(),
            "straggler",
        )?;
        if let Some(o) = &self.observation {
            if !(o.drop_prob.is_finite() && (0.0..=1.0).contains(&o.drop_prob)) {
                return Err(format!(
                    "observation drop_prob must lie in [0, 1], got {}",
                    o.drop_prob
                ));
            }
        }
        for w in &self.overloads {
            check_window(w.start, w.end, w.factor, "overload window")?;
        }
        check_disjoint(
            &self.overloads.iter().map(|w| (w.start, w.end)).collect::<Vec<_>>(),
            "overload",
        )
    }

    /// [`FaultPlan::validate`] plus bounds checks against a concrete
    /// system of `num_queues` queues.
    pub fn validate_for(&self, num_queues: usize) -> Result<(), String> {
        self.validate()?;
        for w in &self.stragglers {
            if let Some(queues) = &w.queues {
                if let Some(&j) = queues.iter().find(|&&j| j >= num_queues) {
                    return Err(format!(
                        "straggler window names queue {j}, but the system has {num_queues} queues"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Arrival-rate multiplier for the interval `[t0, t0 + dt)`:
    /// overlap-weighted over the overload windows. `1.0` when no window
    /// intersects the interval.
    pub fn arrival_factor(&self, t0: f64, dt: f64) -> f64 {
        if self.overloads.is_empty() {
            return 1.0;
        }
        let windows: Vec<(f64, f64, f64)> =
            self.overloads.iter().map(|w| (w.start, w.end, w.factor)).collect();
        window_factor(&windows, t0, dt)
    }

    /// Straggler multiplier for queue `j` over `[t0, t0 + dt)` —
    /// overlap-weighted over the straggler windows covering `j`.
    pub fn straggler_factor(&self, j: usize, t0: f64, dt: f64) -> f64 {
        if self.stragglers.is_empty() {
            return 1.0;
        }
        let windows: Vec<(f64, f64, f64)> = self
            .stragglers
            .iter()
            .filter(|w| w.queues.as_ref().is_none_or(|qs| qs.contains(&j)))
            .map(|w| (w.start, w.end, w.factor))
            .collect();
        window_factor(&windows, t0, dt)
    }

    /// Whether this interval's snapshot refresh is dropped. Draws one
    /// uniform from the `(epoch_base, SALT_OBS, 0)` stream — and nothing
    /// at all when no observation fault is configured.
    pub fn refresh_dropped(&self, epoch_base: u64) -> bool {
        match &self.observation {
            None => false,
            Some(o) if o.drop_prob <= 0.0 => false,
            Some(o) => stream_rng(epoch_base, SALT_OBS, 0).gen::<f64>() < o.drop_prob,
        }
    }

    /// Effective service-rate multiplier of queue `j` for the interval
    /// `[t0, t0 + dt)`: the fraction of the interval the server is Up
    /// under the crash renewal (advancing `*up` across the interval from
    /// the `(epoch_base, SALT_CRASH, j)` stream), times the straggler
    /// factor. Consumes no randomness when crashes are not configured.
    pub fn service_multiplier(
        &self,
        up: &mut bool,
        epoch_base: u64,
        j: usize,
        t0: f64,
        dt: f64,
    ) -> f64 {
        let mut frac = 1.0;
        if let Some(c) = &self.crashes {
            let mut rng = stream_rng(epoch_base, SALT_CRASH, j as u64);
            let mut t = 0.0;
            let mut up_time = 0.0;
            loop {
                let mean = if *up { c.mttf } else { c.mttr };
                let sojourn = -mean * (1.0 - rng.gen::<f64>()).ln();
                if t + sojourn >= dt {
                    if *up {
                        up_time += dt - t;
                    }
                    break;
                }
                if *up {
                    up_time += sojourn;
                }
                t += sojourn;
                *up = !*up;
            }
            frac = up_time / dt;
        }
        frac * self.straggler_factor(j, t0, dt)
    }

    /// Deterministic mean-field counterpart of the crash renewal: given
    /// the Up fraction `u0` of an infinite server population, returns
    /// `(mean Up fraction over [0, dt], Up fraction at dt)` under the
    /// two-state ODE `du/dt = (1 − u)/mttr − u/mttf`. `(1, 1)` when no
    /// crashes are configured.
    pub fn crash_availability_step(&self, u0: f64, dt: f64) -> (f64, f64) {
        match &self.crashes {
            None => (1.0, 1.0),
            Some(c) => {
                let a = c.availability();
                let tau = 1.0 / (1.0 / c.mttf + 1.0 / c.mttr);
                let decay = (-dt / tau).exp();
                let u_end = a + (u0 - a) * decay;
                let mean = a + (u0 - a) * tau * (1.0 - decay) / dt;
                (mean, u_end)
            }
        }
    }

    /// Serializes the plan as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault plan serialization cannot fail")
    }

    /// Parses and validates a plan from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let plan: FaultPlan =
            serde_json::from_str(json).map_err(|e| format!("fault plan parse error: {e}"))?;
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashy() -> FaultPlan {
        FaultPlan {
            crashes: Some(CrashFaults { mttf: 20.0, mttr: 5.0 }),
            stragglers: vec![StragglerWindow { start: 10.0, end: 20.0, factor: 0.5, queues: None }],
            observation: Some(ObservationFaults { drop_prob: 0.3 }),
            overloads: vec![OverloadWindow { start: 30.0, end: 40.0, factor: 2.0 }],
        }
    }

    #[test]
    fn empty_plan_is_empty_and_neutral() {
        let p = FaultPlan::empty();
        assert!(p.is_empty() && !p.has_service_faults());
        assert!(p.validate().is_ok());
        assert_eq!(p.arrival_factor(0.0, 5.0), 1.0);
        assert_eq!(p.straggler_factor(3, 0.0, 5.0), 1.0);
        assert!(!p.refresh_dropped(42));
        let mut up = true;
        assert_eq!(p.service_multiplier(&mut up, 42, 0, 0.0, 5.0), 1.0);
        assert!(up);
        assert_eq!(p.crash_availability_step(1.0, 5.0), (1.0, 1.0));
    }

    #[test]
    fn validation_accepts_good_and_rejects_bad_plans() {
        assert!(crashy().validate().is_ok());
        let reject = |mutate: fn(&mut FaultPlan), needle: &str| {
            let mut p = crashy();
            mutate(&mut p);
            let err = p.validate().expect_err(needle);
            assert!(err.contains(needle), "{err:?} should mention {needle}");
        };
        reject(|p| p.crashes = Some(CrashFaults { mttf: 20.0, mttr: -1.0 }), "mttr");
        reject(|p| p.crashes = Some(CrashFaults { mttf: f64::NAN, mttr: 1.0 }), "mttf");
        reject(
            |p| {
                p.stragglers.push(StragglerWindow {
                    start: 15.0,
                    end: 25.0,
                    factor: 0.1,
                    queues: None,
                })
            },
            "overlap",
        );
        reject(
            |p| p.overloads.push(OverloadWindow { start: 35.0, end: 45.0, factor: 3.0 }),
            "overlap",
        );
        reject(
            |p| {
                p.stragglers[0] =
                    StragglerWindow { start: 5.0, end: 5.0, factor: 1.0, queues: None }
            },
            "start < end",
        );
        reject(
            |p| {
                p.stragglers[0] =
                    StragglerWindow { start: 0.0, end: f64::INFINITY, factor: 1.0, queues: None }
            },
            "start < end",
        );
        reject(|p| p.observation = Some(ObservationFaults { drop_prob: 1.5 }), "drop_prob");
        reject(|p| p.overloads[0].factor = f64::NAN, "factor");
        reject(|p| p.stragglers[0].queues = Some(vec![]), "no queues");
        // Bounds against a concrete system.
        let mut p = crashy();
        p.stragglers[0].queues = Some(vec![0, 99]);
        assert!(p.validate_for(100).is_ok());
        let err = p.validate_for(50).unwrap_err();
        assert!(err.contains("queue 99"), "{err}");
    }

    #[test]
    fn window_factors_are_overlap_weighted() {
        let p = crashy();
        // Interval fully inside the straggler window.
        assert!((p.straggler_factor(0, 12.0, 4.0) - 0.5).abs() < 1e-12);
        // Half the interval overlaps: multiplier (1 + 0.5)/2 = 0.75.
        assert!((p.straggler_factor(0, 5.0, 10.0) - 0.75).abs() < 1e-12);
        // Disjoint interval.
        assert_eq!(p.straggler_factor(0, 50.0, 5.0), 1.0);
        // Overload burst doubles arrivals inside its window.
        assert!((p.arrival_factor(30.0, 10.0) - 2.0).abs() < 1e-12);
        assert!((p.arrival_factor(25.0, 10.0) - 1.5).abs() < 1e-12);
        // Per-queue restriction.
        let mut q = crashy();
        q.stragglers[0].queues = Some(vec![7]);
        assert!((q.straggler_factor(7, 12.0, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(q.straggler_factor(8, 12.0, 4.0), 1.0);
    }

    #[test]
    fn window_factor_is_insertion_order_independent() {
        let a = StragglerWindow { start: 0.0, end: 10.0, factor: 0.25, queues: None };
        let b = StragglerWindow { start: 15.0, end: 30.0, factor: 0.5, queues: None };
        let c = StragglerWindow { start: 40.0, end: 55.0, factor: 0.75, queues: None };
        let orders: Vec<Vec<StragglerWindow>> = vec![
            vec![a.clone(), b.clone(), c.clone()],
            vec![c.clone(), a.clone(), b.clone()],
            vec![b, c, a],
        ];
        let factors: Vec<u64> = orders
            .into_iter()
            .map(|stragglers| {
                let p = FaultPlan { stragglers, ..FaultPlan::empty() };
                assert!(p.validate().is_ok());
                // One long interval spanning all three windows.
                p.straggler_factor(0, 0.0, 60.0).to_bits()
            })
            .collect();
        assert_eq!(factors[0], factors[1]);
        assert_eq!(factors[0], factors[2]);
    }

    #[test]
    fn service_multiplier_is_a_pure_function_of_its_stream() {
        // Severe crash process: failures inside every interval are near
        // certain, so the up fraction is a continuous random variable.
        let p =
            FaultPlan { crashes: Some(CrashFaults { mttf: 1.0, mttr: 1.0 }), ..FaultPlan::empty() };
        let (mut up_a, mut up_b) = (true, true);
        let a = p.service_multiplier(&mut up_a, 0xDEAD, 3, 0.0, 5.0);
        let b = p.service_multiplier(&mut up_b, 0xDEAD, 3, 0.0, 5.0);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(up_a, up_b);
        assert!((0.0..=1.0).contains(&a));
        // Different queues get independent streams.
        let mut up_c = true;
        let c = p.service_multiplier(&mut up_c, 0xDEAD, 4, 0.0, 5.0);
        assert_ne!(a.to_bits(), c.to_bits());
        // The straggler factor multiplies on top of the crash fraction.
        let capped = FaultPlan {
            stragglers: vec![StragglerWindow { start: 0.0, end: 5.0, factor: 0.5, queues: None }],
            ..p.clone()
        };
        let mut up_d = true;
        let d = capped.service_multiplier(&mut up_d, 0xDEAD, 3, 0.0, 5.0);
        assert_eq!(d.to_bits(), (a * 0.5).to_bits());
    }

    #[test]
    fn crash_renewal_tracks_stationary_availability() {
        let p =
            FaultPlan { crashes: Some(CrashFaults { mttf: 8.0, mttr: 2.0 }), ..FaultPlan::empty() };
        let mut up = true;
        let mut total = 0.0;
        let epochs = 4000;
        for e in 0..epochs {
            total += p.service_multiplier(&mut up, e, 0, 0.0, 5.0);
        }
        let avail = total / epochs as f64;
        assert!((avail - 0.8).abs() < 0.02, "empirical availability {avail} vs 0.8");
    }

    #[test]
    fn mean_field_availability_matches_the_ode() {
        let p =
            FaultPlan { crashes: Some(CrashFaults { mttf: 8.0, mttr: 2.0 }), ..FaultPlan::empty() };
        // From all-up, availability decays toward the stationary 0.8.
        let (mean, u_end) = p.crash_availability_step(1.0, 5.0);
        assert!(u_end > 0.8 && u_end < 1.0, "{u_end}");
        assert!(mean > u_end && mean < 1.0, "{mean}");
        // From the fixed point it stays put.
        let (mean, u_end) = p.crash_availability_step(0.8, 5.0);
        assert!((mean - 0.8).abs() < 1e-12 && (u_end - 0.8).abs() < 1e-12);
        // Long horizons forget the start state.
        let (_, u_long) = p.crash_availability_step(0.1, 1e4);
        assert!((u_long - 0.8).abs() < 1e-9);
    }

    #[test]
    fn refresh_drops_match_the_configured_probability() {
        let p = crashy();
        let drops = (0..10_000u64).filter(|&e| p.refresh_dropped(e)).count();
        let frac = drops as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "drop fraction {frac} vs 0.3");
        // Deterministic per epoch base.
        assert_eq!(p.refresh_dropped(77), p.refresh_dropped(77));
    }

    #[test]
    fn plans_round_trip_through_serde_and_reject_malformed_json() {
        let p = crashy();
        let back = FaultPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
        // `{}` is the empty plan.
        assert!(FaultPlan::from_json("{}").unwrap().is_empty());
        // from_json validates: negative MTTR parses but is rejected.
        let err = FaultPlan::from_json(r#"{"crashes": {"mttf": 5.0, "mttr": -1.0}}"#).unwrap_err();
        assert!(err.contains("mttr"), "{err}");
        let err = FaultPlan::from_json("not json").unwrap_err();
        assert!(err.contains("parse error"), "{err}");
    }
}

//! The exact mean-field transition (Eq. 16–28).
//!
//! Given the queue-state distribution `ν_t`, the arrival-rate level `λ_t`
//! and a decision rule `h_t`, one decision epoch of length `Δt` maps to:
//!
//! 1. per-state arrival rates `λ_t(ν, z)` (Eq. 22) — the rate at which
//!    packets arrive at any *specific* queue currently observed in state
//!    `z`,
//! 2. for each `z`, the extended generator `Q̄(ν, z)` of Eq. 27 whose last
//!    row accumulates expected drops,
//! 3. the exact one-epoch advance `exp(Q̄·Δt)·[e_z; 0]` (Eq. 28),
//! 4. the aggregate update `ν_{t+1}(z') = Σ_z ν_t(z)·P^z_{z'}(Δt)` (Eq. 24)
//!    and expected per-queue drops `D_t = Σ_z ν_t(z)·D^z_t(Δt)` (Eq. 26).
//!
//! ### Numerical note on Eq. 22
//! The paper writes `λ_t(ν,z) = λ_t/ν(z) · ∫ 1{z̄_u = z} (ν^⊗d ⊗ h)`; the
//! integrand contains the factor `ν(z̄_u) = ν(z)`, so the division cancels
//! analytically. We implement the cancelled form
//! `λ_t(ν,z) = λ_t · Σ_u Σ_{z̄ : z̄_u = z} h(u|z̄) · Π_{k≠u} ν(z̄_k)`,
//! which is well-defined even when `ν(z) = 0` (no 0/0).

use crate::dist::StateDist;
use crate::rule::DecisionRule;
use mflb_linalg::{expm, Mat};

/// Output of one exact mean-field epoch.
#[derive(Debug, Clone)]
pub struct MeanFieldStep {
    /// Queue-state distribution at the end of the epoch (`ν_{t+1}`).
    pub next_dist: StateDist,
    /// Expected packets dropped per queue during the epoch (`D_t`).
    pub expected_drops: f64,
    /// Per-state arrival rates `λ_t(ν, z)` actually used (diagnostics /
    /// tests).
    pub arrival_rates: Vec<f64>,
}

/// Computes the per-state arrival rates `λ_t(ν, z)` for all `z ∈ Z`
/// (Eq. 22, in the analytically cancelled form described in the module
/// docs).
pub fn per_state_arrival_rates(nu: &StateDist, rule: &DecisionRule, lambda: f64) -> Vec<f64> {
    let mut rates = vec![0.0f64; nu.num_states()];
    per_state_arrival_rates_into(nu.as_slice(), rule, lambda, &mut rates);
    rates
}

/// Buffer-reusing, slice-level core of [`per_state_arrival_rates`]: the
/// state measure arrives as a raw probability slice and the rates are
/// written into `rates` (one slot per state). This is what the
/// graph-constrained engine calls once per *dispatcher neighborhood* per
/// epoch, so it must not allocate per call beyond the `d`-length tuple
/// scratch.
pub fn per_state_arrival_rates_into(
    nu: &[f64],
    rule: &DecisionRule,
    lambda: f64,
    rates: &mut [f64],
) {
    let zs = nu.len();
    let d = rule.d();
    assert_eq!(rule.num_states(), zs, "rule/state-space mismatch");
    assert_eq!(rates.len(), zs, "rate buffer/state-space mismatch");
    rates.iter_mut().for_each(|r| *r = 0.0);
    let mut tuple = [0usize; 8];
    let mut tuple_vec;
    let tuple: &mut [usize] = if d <= 8 {
        &mut tuple[..d]
    } else {
        tuple_vec = vec![0usize; d];
        &mut tuple_vec
    };
    for row in 0..rule.num_rows() {
        // Decode the observation tuple for this row.
        let mut idx = row;
        for k in (0..d).rev() {
            tuple[k] = idx % zs;
            idx /= zs;
        }
        for u in 0..d {
            let h = rule.prob_by_row(row, u);
            if h == 0.0 {
                continue;
            }
            // Π_{k≠u} ν(z̄_k)
            let mut others = 1.0;
            for (k, &z) in tuple.iter().enumerate() {
                if k != u {
                    others *= nu[z];
                }
            }
            if others == 0.0 {
                continue;
            }
            rates[tuple[u]] += lambda * h * others;
        }
    }
}

/// Sparse-support variant of [`per_state_arrival_rates_into`] for
/// measures concentrated on few states — the locality-constrained
/// engine's case, where `ν` is a `k`-queue neighborhood histogram with at
/// most `min(k, |Z|)` occupied states.
///
/// `support` must list the states with `ν(z) > 0` in **ascending** order.
/// Only observation tuples drawn entirely from the support are
/// enumerated — `|support|^d` of them instead of the dense `|Z|^d` rows —
/// because every excluded row has some coordinate with zero measure and
/// therefore contributes nothing to any *occupied* state's rate.
///
/// The enumeration visits the surviving rows in the same (row-index)
/// order as the dense sweep and accumulates the identical products, so
/// `rates[z]` is **bit-identical** to the dense result for every
/// `z ∈ support` (enforced by a `to_bits` test). Entries outside the
/// support are left at `0.0`; the dense sweep can assign them positive
/// rates (the analytically-cancelled Eq. 22 is defined for zero-mass
/// states too), so callers must read support states only.
pub fn per_state_arrival_rates_sparse_into(
    nu: &[f64],
    support: &[usize],
    rule: &DecisionRule,
    lambda: f64,
    rates: &mut [f64],
) {
    let zs = nu.len();
    let d = rule.d();
    let s = support.len();
    assert_eq!(rule.num_states(), zs, "rule/state-space mismatch");
    assert_eq!(rates.len(), zs, "rate buffer/state-space mismatch");
    debug_assert!(support.windows(2).all(|w| w[0] < w[1]), "support must be ascending");
    debug_assert!(support.iter().all(|&z| z < zs && nu[z] > 0.0), "support must carry mass");
    rates.iter_mut().for_each(|r| *r = 0.0);
    if s == 0 {
        return;
    }
    // Odometer over support positions; lexicographic tuple order is
    // ascending row order restricted to the support sub-grid.
    let mut pos = [0usize; 8];
    let mut pos_vec;
    let pos: &mut [usize] = if d <= 8 {
        &mut pos[..d]
    } else {
        pos_vec = vec![0usize; d];
        &mut pos_vec
    };
    let mut tuple = [0usize; 8];
    let mut tuple_vec;
    let tuple: &mut [usize] = if d <= 8 {
        &mut tuple[..d]
    } else {
        tuple_vec = vec![0usize; d];
        &mut tuple_vec
    };
    loop {
        let mut row = 0usize;
        for k in 0..d {
            tuple[k] = support[pos[k]];
            row = row * zs + tuple[k];
        }
        for u in 0..d {
            let h = rule.prob_by_row(row, u);
            if h == 0.0 {
                continue;
            }
            // Π_{k≠u} ν(z̄_k), multiplied in the dense sweep's index order.
            let mut others = 1.0;
            for (k, &z) in tuple.iter().enumerate() {
                if k != u {
                    others *= nu[z];
                }
            }
            if others == 0.0 {
                continue;
            }
            rates[tuple[u]] += lambda * h * others;
        }
        // Advance the odometer (most significant digit first ⇒ row order).
        let mut k = d;
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            pos[k] += 1;
            if pos[k] < s {
                break;
            }
            pos[k] = 0;
        }
    }
}

/// Builds the paper's extended rate matrix `Q̄(ν, z)` (Eq. 27) in column
/// convention for a queue with per-epoch arrival rate `arrival` and service
/// rate `service` over states `{0,…,B}`; size `(B+2)×(B+2)`.
pub fn extended_generator(arrival: f64, service: f64, buffer: usize) -> Mat {
    let n = buffer + 1;
    let mut q = Mat::zeros(n + 1, n + 1);
    for z in 0..n {
        if z < buffer {
            q[(z + 1, z)] += arrival; // arrival z -> z+1
            q[(z, z)] -= arrival;
        }
        if z > 0 {
            q[(z - 1, z)] += service; // departure z -> z-1
            q[(z, z)] -= service;
        }
    }
    // Drop accumulator row: Ḋ = arrival · P_B.
    q[(n, n - 1)] = arrival;
    q
}

/// Advances the mean field by one decision epoch of length `dt`.
///
/// Returns the next distribution, the expected per-queue drops and the
/// per-state arrival rates.
pub fn mean_field_step(
    nu: &StateDist,
    rule: &DecisionRule,
    lambda: f64,
    service_rate: f64,
    dt: f64,
) -> MeanFieldStep {
    assert!(lambda >= 0.0, "negative arrival rate");
    let rates = per_state_arrival_rates(nu, rule, lambda);
    mean_field_step_with_rates(nu, rates, service_rate, dt)
}

/// Advances the mean field by one epoch under **explicit** per-state
/// arrival rates (the Eq. 24–28 aggregation with `λ_t(ν, z)` supplied by
/// the caller). [`mean_field_step`] uses the full-mesh Eq. 22 rates;
/// [`crate::graph_meanfield::graph_mean_field_step`] the degree-indexed
/// locality-constrained ones. Consumes `rates` and returns it inside the
/// step's diagnostics.
pub fn mean_field_step_with_rates(
    nu: &StateDist,
    rates: Vec<f64>,
    service_rate: f64,
    dt: f64,
) -> MeanFieldStep {
    assert!(service_rate >= 0.0 && dt > 0.0);
    let zs = nu.num_states();
    assert_eq!(rates.len(), zs, "rate vector/state-space mismatch");
    let buffer = zs - 1;

    let mut next = vec![0.0f64; zs];
    let mut drops = 0.0f64;
    let mut e_z = vec![0.0f64; zs + 1];
    for z in 0..zs {
        let mass = nu.prob(z);
        if mass == 0.0 {
            continue; // queues in state z have zero measure this epoch
        }
        let qbar = extended_generator(rates[z].max(0.0), service_rate, buffer).scaled(dt);
        let etq = expm(&qbar);
        e_z.iter_mut().for_each(|v| *v = 0.0);
        e_z[z] = 1.0;
        let advanced = etq.matvec(&e_z);
        for (zp, nx) in next.iter_mut().enumerate() {
            *nx += mass * advanced[zp];
        }
        drops += mass * advanced[zs];
    }

    // The distribution block of exp(Q̄Δt) is exactly stochastic up to
    // floating-point round-off; renormalize defensively so long roll-outs
    // cannot drift.
    let total: f64 = next.iter().sum();
    debug_assert!((total - 1.0).abs() < 1e-8, "mass drift {total}");
    for v in &mut next {
        *v = v.max(0.0) / total;
    }

    MeanFieldStep { next_dist: StateDist::new(next), expected_drops: drops, arrival_rates: rates }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jsq_rule(zs: usize) -> DecisionRule {
        DecisionRule::from_fn(zs, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    #[test]
    fn arrival_rates_conserve_total_mass() {
        // Σ_z ν(z)·λ(ν,z) = λ for any rule and ν (Poisson-thinning
        // consistency): every arriving packet lands in exactly one queue.
        let nu = StateDist::new(vec![0.3, 0.25, 0.2, 0.15, 0.07, 0.03]);
        for rule in [DecisionRule::uniform(6, 2), jsq_rule(6)] {
            let rates = per_state_arrival_rates(&nu, &rule, 0.9);
            let total: f64 = rates.iter().enumerate().map(|(z, r)| nu.prob(z) * r).sum();
            assert!((total - 0.9).abs() < 1e-12, "total {total}");
        }
    }

    #[test]
    fn uniform_rule_gives_uniform_rates() {
        // Under MF-RND every queue receives rate λ regardless of its state
        // (for states with positive mass the thinned rate is λ·ν(z)·M /
        // (M·ν(z)) = λ).
        let nu = StateDist::new(vec![0.5, 0.3, 0.2]);
        let rule = DecisionRule::uniform(3, 2);
        let rates = per_state_arrival_rates(&nu, &rule, 0.7);
        for (z, &r) in rates.iter().enumerate() {
            assert!((r - 0.7).abs() < 1e-12, "state {z}: rate {r}");
        }
    }

    #[test]
    fn jsq_rule_prefers_short_queues() {
        let nu = StateDist::new(vec![0.5, 0.5, 0.0]);
        let rule = jsq_rule(3);
        let rates = per_state_arrival_rates(&nu, &rule, 1.0);
        // Queues in state 0 must receive strictly more than queues in
        // state 1; empty-measure state 2 must receive the residual formula
        // value but carries no mass.
        assert!(rates[0] > rates[1]);
        // State 0 is chosen when paired with state 1 (prob 2·0.5·0.5·1) and
        // when paired with itself (prob 0.25, split 0.5) -> rate
        // = (0.25·0.5·2 + 0.5)·2λ ... cross-check with direct enumeration:
        let manual_rate0: f64 = {
            // tuples (0,0): h=1/2 each side -> contribution for z=0 is
            // ν(0)·(1/2) + ν(0)·(1/2) = 0.5; tuple (0,1): u=0 h=1 others=ν(1);
            // tuple (1,0): u=1 h=1 others=ν(1).
            0.5 * 0.5 + 0.5 * 0.5 + 0.5 * 1.0 + 0.5 * 1.0
        };
        assert!((rates[0] - manual_rate0 * 1.0).abs() < 1e-12, "{}", rates[0]);
    }

    #[test]
    fn sparse_rates_are_bit_identical_to_dense_on_the_support() {
        // The sparse sweep is the graph engine's hot path; it must agree
        // with the dense Eq. 22 sweep to the last bit on occupied states,
        // for any support pattern — that is what lets the engine cut over
        // between the two without perturbing pinned RNG streams.
        let patterns: Vec<Vec<f64>> = vec![
            vec![0.4, 0.0, 0.6, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            vec![0.2, 0.2, 0.2, 0.2, 0.1, 0.1],
            vec![0.0, 0.5, 0.0, 0.3, 0.0, 0.2],
        ];
        for rule in [DecisionRule::uniform(6, 2), jsq_rule(6)] {
            for nu in &patterns {
                let support: Vec<usize> =
                    nu.iter().enumerate().filter(|(_, &p)| p > 0.0).map(|(z, _)| z).collect();
                let mut dense = vec![0.0; 6];
                let mut sparse = vec![0.0; 6];
                per_state_arrival_rates_into(nu, &rule, 0.9, &mut dense);
                per_state_arrival_rates_sparse_into(nu, &support, &rule, 0.9, &mut sparse);
                for &z in &support {
                    assert_eq!(
                        dense[z].to_bits(),
                        sparse[z].to_bits(),
                        "state {z}: dense {} vs sparse {}",
                        dense[z],
                        sparse[z]
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_rates_handle_degenerate_supports() {
        let rule = jsq_rule(6);
        let mut rates = vec![1.0; 6];
        per_state_arrival_rates_sparse_into(&[0.0; 6], &[], &rule, 0.9, &mut rates);
        assert!(rates.iter().all(|&r| r == 0.0), "empty support zeroes the buffer");
        let mut nu = vec![0.0; 6];
        nu[3] = 1.0;
        per_state_arrival_rates_sparse_into(&nu, &[3], &rule, 0.9, &mut rates);
        // All mass in one state: that state receives exactly λ.
        assert!((rates[3] - 0.9).abs() < 1e-12, "{}", rates[3]);
    }

    #[test]
    fn zero_mass_states_do_not_produce_nan() {
        let nu = StateDist::delta(5, 0);
        let rule = jsq_rule(6);
        let rates = per_state_arrival_rates(&nu, &rule, 0.9);
        assert!(rates.iter().all(|r| r.is_finite()));
        // All mass in state 0 -> a queue in state 0 receives exactly λ.
        assert!((rates[0] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn step_outputs_valid_distribution_and_bounded_drops() {
        let nu = StateDist::new(vec![0.1, 0.2, 0.3, 0.2, 0.1, 0.1]);
        let rule = jsq_rule(6);
        for &dt in &[0.5, 1.0, 5.0, 10.0] {
            let step = mean_field_step(&nu, &rule, 0.9, 1.0, dt);
            let mass: f64 = step.next_dist.as_slice().iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
            assert!(step.expected_drops >= 0.0);
            // D_t ≤ λ·Δt: cannot drop more than arrives.
            assert!(step.expected_drops <= 0.9 * dt + 1e-9, "dt={dt}");
        }
    }

    #[test]
    fn empty_system_no_arrivals_stays_empty() {
        let nu = StateDist::all_empty(5);
        let rule = DecisionRule::uniform(6, 2);
        let step = mean_field_step(&nu, &rule, 0.0, 1.0, 5.0);
        assert!((step.next_dist.prob(0) - 1.0).abs() < 1e-12);
        assert_eq!(step.expected_drops, 0.0);
    }

    #[test]
    fn jsq_beats_rnd_with_instant_information() {
        // Single epoch from a mixed state: choosing shorter queues must
        // yield fewer expected drops than random assignment (no delay
        // within one epoch from the same ν, so JSQ's information is fresh).
        let nu = StateDist::new(vec![0.2, 0.1, 0.1, 0.1, 0.1, 0.4]);
        let drops_jsq = mean_field_step(&nu, &jsq_rule(6), 0.9, 1.0, 1.0).expected_drops;
        let drops_rnd =
            mean_field_step(&nu, &DecisionRule::uniform(6, 2), 0.9, 1.0, 1.0).expected_drops;
        assert!(
            drops_jsq < drops_rnd,
            "jsq {drops_jsq} should beat rnd {drops_rnd} for one fresh epoch"
        );
    }

    #[test]
    fn matches_single_queue_expectation_when_rates_are_uniform() {
        // Under MF-RND the per-state rate is λ everywhere, so the mean
        // field must equal the transient of ONE M/M/1/B queue with rate λ
        // started from ν.
        let nu = StateDist::delta(5, 2);
        let rule = DecisionRule::uniform(6, 2);
        let (lam, alpha, dt) = (0.8, 1.0, 4.0);
        let step = mean_field_step(&nu, &rule, lam, alpha, dt);
        let q = mflb_queue::BirthDeathQueue::new(lam, alpha, 5);
        let (dist, drops) = q.epoch_expectation(2, dt);
        for (a, b) in step.next_dist.as_slice().iter().zip(dist.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!((step.expected_drops - drops).abs() < 1e-10);
    }

    #[test]
    fn extended_generator_matches_queue_crate() {
        let ours = extended_generator(1.3, 0.7, 5);
        let theirs = mflb_queue::BirthDeathQueue::new(1.3, 0.7, 5).extended_generator_column();
        assert!(ours.max_abs_diff(&theirs) < 1e-15);
    }
}

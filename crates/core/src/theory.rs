//! Numerical machinery for Theorem 1.
//!
//! Theorem 1 states that under any stationary deterministic policy `π̂`,
//! `|J(π̂) − J^{N,M}(π̂)| → 0` as `N, M → ∞` (with `N` growing faster). The
//! proof conditions on the arrival-rate sequence; this module provides the
//! mean-field side of the comparison under that conditioning, plus helpers
//! to organise the gap measurements produced by the finite simulator
//! (`mflb-sim`, which cannot be a dependency of this crate — the comparison
//! itself is assembled in the integration tests and in
//! `fig4_convergence`).

use crate::config::SystemConfig;
use crate::mdp::{MeanFieldMdp, UpperPolicy};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The discounted mean-field value `J(π̂)` conditioned on an explicit
/// arrival-level sequence (deterministic, no Monte-Carlo error).
pub fn conditioned_value(
    config: &SystemConfig,
    policy: &dyn UpperPolicy,
    lambda_seq: &[usize],
) -> f64 {
    MeanFieldMdp::new(config.clone()).rollout_conditioned(policy, lambda_seq).discounted_return
}

/// The undiscounted conditioned episode return (the quantity compared in
/// Fig. 4: cumulative expected per-queue drops, negated).
pub fn conditioned_return(
    config: &SystemConfig,
    policy: &dyn UpperPolicy,
    lambda_seq: &[usize],
) -> f64 {
    MeanFieldMdp::new(config.clone()).rollout_conditioned(policy, lambda_seq).total_return
}

/// Samples an arrival-level trajectory of the configured process (shared
/// between the mean-field and the finite system when conditioning).
pub fn sample_lambda_sequence<R: Rng + ?Sized>(
    config: &SystemConfig,
    horizon: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut seq = Vec::with_capacity(horizon);
    let mut level = config.arrivals.sample_initial(rng);
    for _ in 0..horizon {
        seq.push(level);
        level = config.arrivals.step(level, rng);
    }
    seq
}

/// One row of a Theorem-1 convergence measurement: the mean-field value
/// versus the finite-system estimate at size `(N, M)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceRow {
    /// Number of clients.
    pub num_clients: u64,
    /// Number of queues.
    pub num_queues: usize,
    /// Mean-field episode return `J(π̂)` (negative drops).
    pub mean_field: f64,
    /// Finite-system estimate `J^{N,M}(π̂)` (mean over Monte-Carlo runs).
    pub finite_mean: f64,
    /// 95% confidence half-width of the finite estimate.
    pub finite_ci95: f64,
}

impl ConvergenceRow {
    /// Absolute performance gap `|J − J^{N,M}|`.
    pub fn gap(&self) -> f64 {
        (self.mean_field - self.finite_mean).abs()
    }

    /// `true` iff the mean-field value lies within the widened confidence
    /// band `mean ± (ci + slack)`.
    pub fn consistent_within(&self, slack: f64) -> bool {
        self.gap() <= self.finite_ci95 + slack
    }
}

/// Checks that gaps shrink (weakly) along increasing system sizes, allowing
/// `tolerance` of Monte-Carlo jitter — the empirical shape of Theorem 1
/// visible in Fig. 4.
pub fn gaps_shrink(rows: &[ConvergenceRow], tolerance: f64) -> bool {
    rows.windows(2).all(|w| w[1].gap() <= w[0].gap() + tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::FixedRulePolicy;
    use crate::rule::DecisionRule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conditioned_value_is_deterministic() {
        let cfg = SystemConfig::paper().with_dt(2.0);
        let pol = FixedRulePolicy::new(DecisionRule::uniform(6, 2), "MF-RND");
        let seq = vec![0, 1, 0, 0, 1, 1, 0, 1, 0, 0];
        let a = conditioned_value(&cfg, &pol, &seq);
        let b = conditioned_value(&cfg, &pol, &seq);
        assert_eq!(a, b);
        assert!(a < 0.0);
    }

    #[test]
    fn lambda_sequence_uses_configured_levels() {
        let cfg = SystemConfig::paper();
        let mut rng = StdRng::seed_from_u64(1);
        let seq = sample_lambda_sequence(&cfg, 1000, &mut rng);
        assert_eq!(seq.len(), 1000);
        assert!(seq.iter().all(|&l| l < 2));
        // Both levels must occur in a long sample.
        assert!(seq.contains(&0) && seq.contains(&1));
    }

    #[test]
    fn convergence_row_gap_logic() {
        let row = ConvergenceRow {
            num_clients: 100,
            num_queues: 10,
            mean_field: -30.0,
            finite_mean: -31.0,
            finite_ci95: 0.8,
        };
        assert!((row.gap() - 1.0).abs() < 1e-12);
        assert!(row.consistent_within(0.3));
        assert!(!row.consistent_within(0.1));
    }

    #[test]
    fn gaps_shrink_detects_monotone_and_violations() {
        let mk = |gap: f64| ConvergenceRow {
            num_clients: 0,
            num_queues: 0,
            mean_field: 0.0,
            finite_mean: gap,
            finite_ci95: 0.0,
        };
        assert!(gaps_shrink(&[mk(3.0), mk(2.0), mk(1.0)], 0.0));
        assert!(gaps_shrink(&[mk(3.0), mk(3.2), mk(1.0)], 0.25));
        assert!(!gaps_shrink(&[mk(1.0), mk(2.0)], 0.5));
    }
}

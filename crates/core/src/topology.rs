//! Locality topologies: which queues each dispatcher can observe and
//! route to.
//!
//! The paper's model is a **full mesh** — every client may sample any of
//! the `M` queues. The sparse/localized follow-up work (Tahir, Cui &
//! Koeppl, *Sparse Mean Field Load Balancing in Large Localized Queueing
//! Systems*, arXiv:2312.12973) constrains dispatchers to a graph
//! neighborhood instead, which changes both the finite-system dynamics
//! and the mean-field limit. A [`Topology`] describes that constraint as
//! data:
//!
//! * every queue `j ∈ {0,…,M−1}` hosts a dispatcher;
//! * the dispatcher's **accessible set** `A(j)` is its *closed*
//!   neighborhood — the queue itself plus its graph neighbors;
//! * clients connected to dispatcher `j` sample their `d` queues
//!   uniformly **with replacement from `A(j)`** (instead of from all `M`
//!   queues) and observe the same synchronously-broadcast, hence stale,
//!   epoch-start states as in the full-mesh model.
//!
//! All supported families are **vertex-transitive or regular**, so every
//! accessible set has the same size `k` — the quantity the degree-indexed
//! mean-field approximation ([`crate::graph_meanfield`]) is indexed by.
//! The full mesh is the degenerate case `k = M`, recovering the paper's
//! model exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A locality constraint on dispatcher routing, as data.
///
/// Serializes with externally tagged variants, e.g.
/// `"FullMesh"`, `{"Ring": {"radius": 2}}`,
/// `{"Torus": {"radius": 1}}`, `{"RandomRegular": {"degree": 4, "seed": 1}}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every dispatcher reaches every queue (the paper's model; the
    /// degenerate `k = M` case).
    FullMesh,
    /// Queues on a cycle; dispatcher `j` reaches `j ± 1, …, j ± radius`
    /// (mod `M`). Accessible-set size `k = 2·radius + 1`.
    Ring {
        /// Reach on each side of the cycle (≥ 1).
        radius: usize,
    },
    /// Queues on a `√M × √M` 2-D torus; dispatcher `(x, y)` reaches every
    /// cell within L1 distance `radius` (wrapped). Accessible-set size
    /// `k = 2·radius² + 2·radius + 1` (5 for the von-Neumann `radius = 1`).
    Torus {
        /// L1 reach on the lattice (≥ 1).
        radius: usize,
    },
    /// A uniformly random simple `degree`-regular graph, drawn once from
    /// the configuration model with a pinned seed (so the same spec always
    /// builds the same graph). Accessible-set size `k = degree + 1`.
    RandomRegular {
        /// Number of neighbors per queue (≥ 1, < M, `degree·M` even).
        degree: usize,
        /// Seed of the graph draw (part of the spec: same seed, same graph).
        seed: u64,
    },
}

impl Topology {
    /// Size `k` of every accessible set for an `m`-queue system.
    pub fn neighborhood_size(&self, m: usize) -> usize {
        match self {
            Topology::FullMesh => m,
            Topology::Ring { radius } => 2 * radius + 1,
            Topology::Torus { radius } => 2 * radius * radius + 2 * radius + 1,
            Topology::RandomRegular { degree, .. } => degree + 1,
        }
    }

    /// Accessible-set size in the `M → ∞` limit: `None` means it grows
    /// with `M` (full mesh — the limit is the paper's Eq. 20–28 mean
    /// field), `Some(k)` is the fixed size the degree-indexed mean-field
    /// approximation ([`crate::graph_meanfield`]) is evaluated at.
    pub fn limit_neighborhood_size(&self) -> Option<usize> {
        match self {
            Topology::FullMesh => None,
            other => Some(other.neighborhood_size(usize::MAX)),
        }
    }

    /// Whether the accessible sets cover all `m` queues — the degenerate
    /// case in which a graph-constrained system *is* the paper's full-mesh
    /// system (e.g. a ring with `2·radius + 1 = M`, or `degree = M − 1`).
    pub fn is_full_mesh(&self, m: usize) -> bool {
        self.neighborhood_size(m) >= m
    }

    /// Checks the topology against a system size; returns a
    /// human-readable complaint.
    pub fn validate(&self, m: usize) -> Result<(), String> {
        if m == 0 {
            return Err("topology needs at least one queue".into());
        }
        match self {
            Topology::FullMesh => Ok(()),
            Topology::Ring { radius } => {
                if *radius == 0 {
                    return Err("ring radius must be at least 1".into());
                }
                if 2 * radius + 1 > m {
                    return Err(format!(
                        "ring radius {radius} needs 2·{radius}+1 = {} queues, got {m}",
                        2 * radius + 1
                    ));
                }
                Ok(())
            }
            Topology::Torus { radius } => {
                if *radius == 0 {
                    return Err("torus radius must be at least 1".into());
                }
                let side = (m as f64).sqrt().round() as usize;
                if side * side != m {
                    return Err(format!("torus topology needs a square number of queues, got {m}"));
                }
                // Distinct wrapped neighbors need the ball diameter to fit.
                if 2 * radius + 1 > side {
                    return Err(format!(
                        "torus radius {radius} needs a side of at least {}, got {side}",
                        2 * radius + 1
                    ));
                }
                Ok(())
            }
            Topology::RandomRegular { degree, .. } => {
                if *degree == 0 {
                    return Err("random-regular degree must be at least 1".into());
                }
                if *degree >= m {
                    return Err(format!(
                        "random-regular degree {degree} needs more than {degree} queues, got {m}"
                    ));
                }
                if !(*degree * m).is_multiple_of(2) {
                    return Err(format!(
                        "random-regular graph needs degree·M even, got {degree}·{m}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Materializes the closed neighborhoods for an `m`-queue system,
    /// flattened with stride [`Topology::neighborhood_size`]: entry
    /// `j·k + 0` is `j` itself (the dispatcher's own queue), followed by
    /// its neighbors in ascending index order. Deterministic for a fixed
    /// spec — the random-regular draw is pinned by its embedded seed.
    pub fn neighborhoods(&self, m: usize) -> Result<Vec<usize>, String> {
        self.validate(m)?;
        let k = self.neighborhood_size(m);
        let mut flat = Vec::with_capacity(m * k);
        match self {
            Topology::FullMesh => {
                for j in 0..m {
                    flat.push(j);
                    flat.extend((0..m).filter(|&i| i != j));
                }
            }
            Topology::Ring { radius } => {
                for j in 0..m {
                    flat.push(j);
                    let mut nbrs: Vec<usize> =
                        (1..=*radius).flat_map(|r| [(j + r) % m, (j + m - r % m) % m]).collect();
                    nbrs.sort_unstable();
                    flat.extend(nbrs);
                }
            }
            Topology::Torus { radius } => {
                let side = (m as f64).sqrt().round() as usize;
                let r = *radius as isize;
                let s = side as isize;
                for j in 0..m {
                    let (x, y) = ((j % side) as isize, (j / side) as isize);
                    flat.push(j);
                    let mut nbrs = Vec::new();
                    for dx in -r..=r {
                        let budget = r - dx.abs();
                        for dy in -budget..=budget {
                            if dx == 0 && dy == 0 {
                                continue;
                            }
                            let nx = (x + dx).rem_euclid(s) as usize;
                            let ny = (y + dy).rem_euclid(s) as usize;
                            nbrs.push(ny * side + nx);
                        }
                    }
                    nbrs.sort_unstable();
                    flat.extend(nbrs);
                }
            }
            Topology::RandomRegular { degree, seed } => {
                let adj = random_regular_graph(m, *degree, *seed)?;
                for (j, mut nbrs) in adj.into_iter().enumerate() {
                    flat.push(j);
                    nbrs.sort_unstable();
                    flat.extend(nbrs);
                }
            }
        }
        debug_assert_eq!(flat.len(), m * k);
        Ok(flat)
    }
}

/// Draws a random simple `degree`-regular graph on `m` vertices via the
/// configuration model with pair-swap repair (uniform stub matching;
/// offending pairs — self-loops or parallel edges — are re-matched
/// against random partners instead of rejecting the whole matching, the
/// standard fix that keeps moderate degrees feasible), deterministically
/// from `seed`.
fn random_regular_graph(m: usize, degree: usize, seed: u64) -> Result<Vec<Vec<usize>>, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_62A9);
    const MAX_ATTEMPTS: usize = 40;
    let mut stubs: Vec<usize> = (0..m).flat_map(|v| std::iter::repeat_n(v, degree)).collect();
    let half = stubs.len() / 2;
    for _ in 0..MAX_ATTEMPTS {
        // Fisher–Yates shuffle; pair `t` is (stubs[2t], stubs[2t+1]).
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            stubs.swap(i, j);
        }
        // Repair pass: re-validate from scratch, swapping the first bad
        // pair's second stub with a random pair's until clean (bounded so
        // a pathological spec reshuffles instead of spinning).
        let mut repairs_left = 200 * half.max(1);
        'repair: loop {
            let mut adj: Vec<Vec<usize>> = vec![Vec::with_capacity(degree); m];
            for t in 0..half {
                let (a, b) = (stubs[2 * t], stubs[2 * t + 1]);
                if a == b || adj[a].contains(&b) {
                    if repairs_left == 0 {
                        break 'repair; // give up on this shuffle
                    }
                    repairs_left -= 1;
                    let other = rng.gen_range(0..half);
                    stubs.swap(2 * t + 1, 2 * other + 1);
                    continue 'repair;
                }
                adj[a].push(b);
                adj[b].push(a);
            }
            return Ok(adj);
        }
    }
    Err(format!(
        "could not draw a simple {degree}-regular graph on {m} vertices (seed {seed}); \
         lower the degree or change the seed"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_regular(top: &Topology, m: usize) {
        let k = top.neighborhood_size(m);
        let flat = top.neighborhoods(m).expect("valid topology");
        assert_eq!(flat.len(), m * k);
        for j in 0..m {
            let nbrs = &flat[j * k..(j + 1) * k];
            assert_eq!(nbrs[0], j, "own queue first");
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "accessible set of {j} must be distinct: {nbrs:?}");
            assert!(sorted.iter().all(|&i| i < m));
        }
    }

    #[test]
    fn ring_neighborhoods_are_symmetric_windows() {
        let top = Topology::Ring { radius: 2 };
        check_regular(&top, 10);
        let flat = top.neighborhoods(10).unwrap();
        // Node 0 reaches {0, 1, 2, 8, 9}.
        assert_eq!(&flat[0..5], &[0, 1, 2, 8, 9]);
    }

    #[test]
    fn torus_radius1_is_von_neumann() {
        let top = Topology::Torus { radius: 1 };
        assert_eq!(top.neighborhood_size(25), 5);
        check_regular(&top, 25);
        let flat = top.neighborhoods(25).unwrap();
        // Node 6 = (1,1) on the 5×5 torus reaches (0,1),(2,1),(1,0),(1,2).
        assert_eq!(&flat[6 * 5..7 * 5], &[6, 1, 5, 7, 11]);
    }

    #[test]
    fn random_regular_is_regular_and_seed_pinned() {
        let top = Topology::RandomRegular { degree: 4, seed: 7 };
        check_regular(&top, 30);
        let a = top.neighborhoods(30).unwrap();
        let b = top.neighborhoods(30).unwrap();
        assert_eq!(a, b, "same seed, same graph");
        let other = Topology::RandomRegular { degree: 4, seed: 8 }.neighborhoods(30).unwrap();
        assert_ne!(a, other, "different seed, different graph (w.h.p.)");
        // Undirected: j ∈ A(i) ⇔ i ∈ A(j).
        let k = 5;
        for i in 0..30 {
            for &j in &a[i * k + 1..(i + 1) * k] {
                assert!(a[j * k..(j + 1) * k].contains(&i), "edge {i}-{j} must be symmetric");
            }
        }
    }

    #[test]
    fn full_mesh_covers_everything() {
        let top = Topology::FullMesh;
        assert!(top.is_full_mesh(17));
        assert_eq!(top.neighborhood_size(17), 17);
        assert_eq!(top.limit_neighborhood_size(), None);
        check_regular(&top, 8);
    }

    #[test]
    fn degenerate_covers_are_detected() {
        // Ring whose window wraps the whole cycle, and a complete
        // random-regular graph, are full meshes in disguise.
        assert!(Topology::Ring { radius: 3 }.is_full_mesh(7));
        assert!(!Topology::Ring { radius: 3 }.is_full_mesh(8));
        assert!(Topology::RandomRegular { degree: 9, seed: 1 }.is_full_mesh(10));
    }

    #[test]
    fn invalid_specs_are_rejected_with_reasons() {
        let cases: Vec<(&str, Topology, usize)> = vec![
            ("zero ring radius", Topology::Ring { radius: 0 }, 10),
            ("ring wider than the cycle", Topology::Ring { radius: 5 }, 10),
            ("zero torus radius", Topology::Torus { radius: 0 }, 25),
            ("non-square torus", Topology::Torus { radius: 1 }, 24),
            ("torus ball wider than the side", Topology::Torus { radius: 3 }, 25),
            ("zero degree", Topology::RandomRegular { degree: 0, seed: 1 }, 10),
            ("degree >= M", Topology::RandomRegular { degree: 10, seed: 1 }, 10),
            ("odd stub count", Topology::RandomRegular { degree: 3, seed: 1 }, 9),
        ];
        for (what, top, m) in cases {
            assert!(top.validate(m).is_err(), "{what} must be rejected");
            assert!(top.neighborhoods(m).is_err(), "{what} must not materialize");
        }
    }

    #[test]
    fn limit_sizes_are_m_independent_for_sparse_families() {
        assert_eq!(Topology::Ring { radius: 2 }.limit_neighborhood_size(), Some(5));
        assert_eq!(Topology::Torus { radius: 1 }.limit_neighborhood_size(), Some(5));
        assert_eq!(
            Topology::RandomRegular { degree: 4, seed: 1 }.limit_neighborhood_size(),
            Some(5)
        );
    }

    #[test]
    fn topology_serde_round_trips() {
        for top in [
            Topology::FullMesh,
            Topology::Ring { radius: 2 },
            Topology::Torus { radius: 1 },
            Topology::RandomRegular { degree: 4, seed: 9 },
        ] {
            let json = serde_json::to_string(&top).unwrap();
            let back: Topology = serde_json::from_str(&json).unwrap();
            assert_eq!(top, back, "{json}");
        }
    }
}

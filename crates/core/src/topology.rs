//! Locality topologies: which queues each dispatcher can observe and
//! route to.
//!
//! The paper's model is a **full mesh** — every client may sample any of
//! the `M` queues. The sparse/localized follow-up work (Tahir, Cui &
//! Koeppl, *Sparse Mean Field Load Balancing in Large Localized Queueing
//! Systems*, arXiv:2312.12973) constrains dispatchers to a graph
//! neighborhood instead, which changes both the finite-system dynamics
//! and the mean-field limit. A [`Topology`] describes that constraint as
//! data:
//!
//! * every queue `j ∈ {0,…,M−1}` hosts a dispatcher;
//! * the dispatcher's **accessible set** `A(j)` is its *closed*
//!   neighborhood — the queue itself plus its graph neighbors;
//! * clients connected to dispatcher `j` sample their `d` queues
//!   uniformly **with replacement from `A(j)`** (instead of from all `M`
//!   queues) and observe the same synchronously-broadcast, hence stale,
//!   epoch-start states as in the full-mesh model.
//!
//! All supported families are **vertex-transitive or regular**, so every
//! accessible set has the same size `k` — the quantity the degree-indexed
//! mean-field approximation ([`crate::graph_meanfield`]) is indexed by.
//! The full mesh is the degenerate case `k = M`, recovering the paper's
//! model exactly.
//!
//! ### Storage and build cost
//! Neighborhoods materialize as a [`CsrNeighborhoods`] — compressed
//! sparse rows (`offsets` + `u32` `indices`), 4 bytes per entry — built
//! by **streaming** generators that cost `O(M·k)` time and one exact-size
//! allocation per array: a `10^6`-node torus or random `d`-regular
//! topology builds in well under a second. The random-regular draw uses
//! the configuration model with *incremental* pair-swap repair (no
//! from-scratch revalidation), keeping it linear in `M·d` too.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Closed neighborhoods in compressed-sparse-row form: row `j` is the
/// accessible set `A(j)`, stored as `u32` queue indices with `j` itself
/// first and its neighbors in ascending order (the same per-row contract
/// as the legacy flat layout, so engine RNG streams are unchanged).
///
/// All current [`Topology`] families are `k`-regular, so every row has
/// the same length and `offsets[j] = j·k`; the offsets array is kept
/// explicit so irregular families can join without an engine change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrNeighborhoods {
    /// Row length (accessible-set size `k`; uniform for all rows).
    k: usize,
    /// Row start offsets, length `num_nodes + 1`.
    offsets: Vec<u32>,
    /// Concatenated rows: own queue first, then neighbors ascending.
    indices: Vec<u32>,
}

impl CsrNeighborhoods {
    /// Number of nodes (rows).
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Uniform row length `k` (the accessible-set size).
    pub fn neighborhood_size(&self) -> usize {
        self.k
    }

    /// Total number of stored entries (`M·k`).
    pub fn num_entries(&self) -> usize {
        self.indices.len()
    }

    /// The closed neighborhood `A(j)`: own queue first, neighbors
    /// ascending.
    #[inline]
    pub fn row(&self, j: usize) -> &[u32] {
        &self.indices[self.offsets[j] as usize..self.offsets[j + 1] as usize]
    }

    /// Uniform-stride offsets for `m` rows of length `k`.
    fn regular_offsets(m: usize, k: usize) -> Vec<u32> {
        (0..=m).map(|j| (j * k) as u32).collect()
    }
}

/// A locality constraint on dispatcher routing, as data.
///
/// Serializes with externally tagged variants, e.g.
/// `"FullMesh"`, `{"Ring": {"radius": 2}}`,
/// `{"Torus": {"radius": 1}}`, `{"RandomRegular": {"degree": 4, "seed": 1}}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every dispatcher reaches every queue (the paper's model; the
    /// degenerate `k = M` case).
    FullMesh,
    /// Queues on a cycle; dispatcher `j` reaches `j ± 1, …, j ± radius`
    /// (mod `M`). Accessible-set size `k = 2·radius + 1`.
    Ring {
        /// Reach on each side of the cycle (≥ 1).
        radius: usize,
    },
    /// Queues on a `√M × √M` 2-D torus; dispatcher `(x, y)` reaches every
    /// cell within L1 distance `radius` (wrapped). Accessible-set size
    /// `k = 2·radius² + 2·radius + 1` (5 for the von-Neumann `radius = 1`).
    Torus {
        /// L1 reach on the lattice (≥ 1).
        radius: usize,
    },
    /// A uniformly random simple `degree`-regular graph, drawn once from
    /// the configuration model with a pinned seed (so the same spec always
    /// builds the same graph). Accessible-set size `k = degree + 1`.
    RandomRegular {
        /// Number of neighbors per queue (≥ 1, < M, `degree·M` even).
        degree: usize,
        /// Seed of the graph draw (part of the spec: same seed, same graph).
        seed: u64,
    },
}

impl Topology {
    /// Size `k` of every accessible set for an `m`-queue system.
    pub fn neighborhood_size(&self, m: usize) -> usize {
        match self {
            Topology::FullMesh => m,
            Topology::Ring { radius } => 2 * radius + 1,
            Topology::Torus { radius } => 2 * radius * radius + 2 * radius + 1,
            Topology::RandomRegular { degree, .. } => degree + 1,
        }
    }

    /// Accessible-set size in the `M → ∞` limit: `None` means it grows
    /// with `M` (full mesh — the limit is the paper's Eq. 20–28 mean
    /// field), `Some(k)` is the fixed size the degree-indexed mean-field
    /// approximation ([`crate::graph_meanfield`]) is evaluated at.
    pub fn limit_neighborhood_size(&self) -> Option<usize> {
        match self {
            Topology::FullMesh => None,
            other => Some(other.neighborhood_size(usize::MAX)),
        }
    }

    /// Whether the accessible sets cover all `m` queues — the degenerate
    /// case in which a graph-constrained system *is* the paper's full-mesh
    /// system (e.g. a ring with `2·radius + 1 = M`, or `degree = M − 1`).
    pub fn is_full_mesh(&self, m: usize) -> bool {
        self.neighborhood_size(m) >= m
    }

    /// Checks the topology against a system size; returns a
    /// human-readable complaint.
    pub fn validate(&self, m: usize) -> Result<(), String> {
        if m == 0 {
            return Err("topology needs at least one queue".into());
        }
        match self {
            Topology::FullMesh => Ok(()),
            Topology::Ring { radius } => {
                if *radius == 0 {
                    return Err("ring radius must be at least 1".into());
                }
                if 2 * radius + 1 > m {
                    return Err(format!(
                        "ring radius {radius} needs 2·{radius}+1 = {} queues, got {m}",
                        2 * radius + 1
                    ));
                }
                Ok(())
            }
            Topology::Torus { radius } => {
                if *radius == 0 {
                    return Err("torus radius must be at least 1".into());
                }
                let side = (m as f64).sqrt().round() as usize;
                if side * side != m {
                    return Err(format!("torus topology needs a square number of queues, got {m}"));
                }
                // Distinct wrapped neighbors need the ball diameter to fit.
                if 2 * radius + 1 > side {
                    return Err(format!(
                        "torus radius {radius} needs a side of at least {}, got {side}",
                        2 * radius + 1
                    ));
                }
                Ok(())
            }
            Topology::RandomRegular { degree, .. } => {
                if *degree == 0 {
                    return Err("random-regular degree must be at least 1".into());
                }
                if *degree >= m {
                    return Err(format!(
                        "random-regular degree {degree} needs more than {degree} queues, got {m}"
                    ));
                }
                if !(*degree * m).is_multiple_of(2) {
                    return Err(format!(
                        "random-regular graph needs degree·M even, got {degree}·{m}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Materializes the closed neighborhoods for an `m`-queue system,
    /// flattened with stride [`Topology::neighborhood_size`]: entry
    /// `j·k + 0` is `j` itself (the dispatcher's own queue), followed by
    /// its neighbors in ascending index order. Deterministic for a fixed
    /// spec — the random-regular draw is pinned by its embedded seed.
    ///
    /// Compatibility wrapper over [`Topology::csr`] (same per-row
    /// contract, widened to `usize`); engines should prefer the CSR form,
    /// which is 2× smaller and avoids this extra `O(M·k)` copy.
    pub fn neighborhoods(&self, m: usize) -> Result<Vec<usize>, String> {
        let csr = self.csr(m)?;
        Ok(csr.indices.iter().map(|&i| i as usize).collect())
    }

    /// Materializes the closed neighborhoods in compressed-sparse-row
    /// form (`O(M·k)` time, two exact-size allocations). Per-row layout
    /// is identical to [`Topology::neighborhoods`]: own queue first, then
    /// neighbors in ascending index order.
    pub fn csr(&self, m: usize) -> Result<CsrNeighborhoods, String> {
        self.validate(m)?;
        let k = self.neighborhood_size(m);
        if (m as u64) * (k as u64) > u32::MAX as u64 {
            return Err(format!("topology too large for u32 CSR indices: {m}·{k} entries"));
        }
        let offsets = CsrNeighborhoods::regular_offsets(m, k);
        let mut indices: Vec<u32> = Vec::with_capacity(m * k);
        match self {
            Topology::FullMesh => {
                for j in 0..m {
                    indices.push(j as u32);
                    indices.extend((0..m as u32).filter(|&i| i != j as u32));
                }
            }
            Topology::Ring { radius } => {
                // Reused scratch keeps the per-node sort allocation-free;
                // k is O(radius), so the total cost stays O(M·k·log k).
                let mut nbrs: Vec<u32> = Vec::with_capacity(k - 1);
                for j in 0..m {
                    indices.push(j as u32);
                    nbrs.clear();
                    for r in 1..=*radius {
                        nbrs.push(((j + r) % m) as u32);
                        nbrs.push(((j + m - r) % m) as u32);
                    }
                    nbrs.sort_unstable();
                    indices.extend_from_slice(&nbrs);
                }
            }
            Topology::Torus { radius } => {
                let side = (m as f64).sqrt().round() as usize;
                let r = *radius as isize;
                let s = side as isize;
                let mut nbrs: Vec<u32> = Vec::with_capacity(k - 1);
                for j in 0..m {
                    let (x, y) = ((j % side) as isize, (j / side) as isize);
                    indices.push(j as u32);
                    nbrs.clear();
                    for dx in -r..=r {
                        let budget = r - dx.abs();
                        for dy in -budget..=budget {
                            if dx == 0 && dy == 0 {
                                continue;
                            }
                            let nx = (x + dx).rem_euclid(s) as usize;
                            let ny = (y + dy).rem_euclid(s) as usize;
                            nbrs.push((ny * side + nx) as u32);
                        }
                    }
                    nbrs.sort_unstable();
                    indices.extend_from_slice(&nbrs);
                }
            }
            Topology::RandomRegular { degree, seed } => {
                random_regular_into(m, *degree, *seed, &mut indices)?;
            }
        }
        debug_assert_eq!(indices.len(), m * k);
        Ok(CsrNeighborhoods { k, offsets, indices })
    }
}

/// Draws a random simple `degree`-regular graph on `m` vertices via the
/// configuration model with **incremental** pair-swap repair,
/// deterministically from `seed`, writing closed-neighborhood CSR rows
/// (own vertex first, neighbors ascending) into `out`.
///
/// One uniform stub matching is drawn (Fisher–Yates), the edge list is
/// built in a single pass, and every offending pair — a self-loop or a
/// parallel edge — is queued and later re-matched against a random *good*
/// pair by an edge swap that is validated against the current adjacency
/// in `O(degree)`. No from-scratch revalidation ever happens, so the
/// whole draw is `O(M·degree)` expected time (the expected number of bad
/// pairs is `O(degree²)`, independent of `M`). A bounded number of failed
/// swap proposals abandons the matching and reshuffles, which keeps
/// pathological specs (near-complete graphs) terminating.
fn random_regular_into(
    m: usize,
    degree: usize,
    seed: u64,
    out: &mut Vec<u32>,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_62A9);
    const MAX_ATTEMPTS: usize = 40;
    let mut stubs: Vec<u32> = (0..m as u32).flat_map(|v| std::iter::repeat_n(v, degree)).collect();
    let half = stubs.len() / 2;
    // Flat adjacency under construction: vertex v's neighbors so far are
    // nbrs[v·degree..v·degree + deg[v]] (unsorted until the final pass).
    let mut nbrs: Vec<u32> = vec![0; m * degree];
    let mut deg: Vec<u32> = vec![0; m];
    let mut bad: Vec<usize> = Vec::new();
    let mut is_bad: Vec<bool> = vec![false; half];

    let has_edge = |nbrs: &[u32], deg: &[u32], u: u32, v: u32| -> bool {
        let base = u as usize * degree;
        nbrs[base..base + deg[u as usize] as usize].contains(&v)
    };
    let add_edge = |nbrs: &mut [u32], deg: &mut [u32], u: u32, v: u32| {
        nbrs[u as usize * degree + deg[u as usize] as usize] = v;
        deg[u as usize] += 1;
        nbrs[v as usize * degree + deg[v as usize] as usize] = u;
        deg[v as usize] += 1;
    };
    let remove_edge = |nbrs: &mut [u32], deg: &mut [u32], u: u32, v: u32| {
        for (a, b) in [(u, v), (v, u)] {
            let base = a as usize * degree;
            let len = deg[a as usize] as usize;
            let pos = nbrs[base..base + len].iter().position(|&x| x == b).expect("edge present");
            nbrs.swap(base + pos, base + len - 1);
            deg[a as usize] -= 1;
        }
    };

    'attempt: for _ in 0..MAX_ATTEMPTS {
        // Fisher–Yates shuffle; pair `t` is (stubs[2t], stubs[2t+1]).
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            stubs.swap(i, j);
        }
        deg.iter_mut().for_each(|d| *d = 0);
        bad.clear();
        is_bad.iter_mut().for_each(|b| *b = false);
        // Single build pass: good pairs become edges, offenders queue up.
        for t in 0..half {
            let (a, b) = (stubs[2 * t], stubs[2 * t + 1]);
            if a == b || has_edge(&nbrs, &deg, a, b) {
                bad.push(t);
                is_bad[t] = true;
            } else {
                add_edge(&mut nbrs, &mut deg, a, b);
            }
        }
        // Incremental repair: swap each bad pair's endpoints with a random
        // good pair's, accepting only swaps that keep the graph simple.
        // Each acceptance retires one bad pair for good.
        let mut proposals_left = 200 * (bad.len() + 1);
        while let Some(t) = bad.pop() {
            let (a, b) = (stubs[2 * t], stubs[2 * t + 1]);
            loop {
                if proposals_left == 0 {
                    continue 'attempt; // hopeless matching: reshuffle
                }
                proposals_left -= 1;
                let o = rng.gen_range(0..half);
                if o == t || is_bad[o] {
                    continue;
                }
                let (c, d) = (stubs[2 * o], stubs[2 * o + 1]);
                // Proposed swap: (a,b),(c,d) → (a,d),(c,b). Both new edges
                // must be simple and distinct; (a,d) ≠ (c,d) etc. are
                // implied by the has_edge checks since (c,d) is still in
                // the adjacency here.
                let distinct = !((a == c && d == b) || (a == b && d == c));
                if a == d
                    || c == b
                    || !distinct
                    || has_edge(&nbrs, &deg, a, d)
                    || has_edge(&nbrs, &deg, c, b)
                {
                    continue;
                }
                remove_edge(&mut nbrs, &mut deg, c, d);
                add_edge(&mut nbrs, &mut deg, a, d);
                add_edge(&mut nbrs, &mut deg, c, b);
                stubs[2 * t + 1] = d;
                stubs[2 * o + 1] = b;
                is_bad[t] = false;
                break;
            }
        }
        // Assemble closed-neighborhood CSR rows.
        debug_assert!(deg.iter().all(|&d| d as usize == degree));
        for v in 0..m {
            out.push(v as u32);
            let start = out.len();
            out.extend_from_slice(&nbrs[v * degree..(v + 1) * degree]);
            out[start..].sort_unstable();
        }
        return Ok(());
    }
    Err(format!(
        "could not draw a simple {degree}-regular graph on {m} vertices (seed {seed}); \
         lower the degree or change the seed"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_regular(top: &Topology, m: usize) {
        let k = top.neighborhood_size(m);
        let flat = top.neighborhoods(m).expect("valid topology");
        assert_eq!(flat.len(), m * k);
        for j in 0..m {
            let nbrs = &flat[j * k..(j + 1) * k];
            assert_eq!(nbrs[0], j, "own queue first");
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "accessible set of {j} must be distinct: {nbrs:?}");
            assert!(sorted.iter().all(|&i| i < m));
        }
    }

    #[test]
    fn ring_neighborhoods_are_symmetric_windows() {
        let top = Topology::Ring { radius: 2 };
        check_regular(&top, 10);
        let flat = top.neighborhoods(10).unwrap();
        // Node 0 reaches {0, 1, 2, 8, 9}.
        assert_eq!(&flat[0..5], &[0, 1, 2, 8, 9]);
    }

    #[test]
    fn torus_radius1_is_von_neumann() {
        let top = Topology::Torus { radius: 1 };
        assert_eq!(top.neighborhood_size(25), 5);
        check_regular(&top, 25);
        let flat = top.neighborhoods(25).unwrap();
        // Node 6 = (1,1) on the 5×5 torus reaches (0,1),(2,1),(1,0),(1,2).
        assert_eq!(&flat[6 * 5..7 * 5], &[6, 1, 5, 7, 11]);
    }

    #[test]
    fn random_regular_is_regular_and_seed_pinned() {
        let top = Topology::RandomRegular { degree: 4, seed: 7 };
        check_regular(&top, 30);
        let a = top.neighborhoods(30).unwrap();
        let b = top.neighborhoods(30).unwrap();
        assert_eq!(a, b, "same seed, same graph");
        let other = Topology::RandomRegular { degree: 4, seed: 8 }.neighborhoods(30).unwrap();
        assert_ne!(a, other, "different seed, different graph (w.h.p.)");
        // Undirected: j ∈ A(i) ⇔ i ∈ A(j).
        let k = 5;
        for i in 0..30 {
            for &j in &a[i * k + 1..(i + 1) * k] {
                assert!(a[j * k..(j + 1) * k].contains(&i), "edge {i}-{j} must be symmetric");
            }
        }
    }

    #[test]
    fn full_mesh_covers_everything() {
        let top = Topology::FullMesh;
        assert!(top.is_full_mesh(17));
        assert_eq!(top.neighborhood_size(17), 17);
        assert_eq!(top.limit_neighborhood_size(), None);
        check_regular(&top, 8);
    }

    #[test]
    fn degenerate_covers_are_detected() {
        // Ring whose window wraps the whole cycle, and a complete
        // random-regular graph, are full meshes in disguise.
        assert!(Topology::Ring { radius: 3 }.is_full_mesh(7));
        assert!(!Topology::Ring { radius: 3 }.is_full_mesh(8));
        assert!(Topology::RandomRegular { degree: 9, seed: 1 }.is_full_mesh(10));
    }

    #[test]
    fn invalid_specs_are_rejected_with_reasons() {
        let cases: Vec<(&str, Topology, usize)> = vec![
            ("zero ring radius", Topology::Ring { radius: 0 }, 10),
            ("ring wider than the cycle", Topology::Ring { radius: 5 }, 10),
            ("zero torus radius", Topology::Torus { radius: 0 }, 25),
            ("non-square torus", Topology::Torus { radius: 1 }, 24),
            ("torus ball wider than the side", Topology::Torus { radius: 3 }, 25),
            ("zero degree", Topology::RandomRegular { degree: 0, seed: 1 }, 10),
            ("degree >= M", Topology::RandomRegular { degree: 10, seed: 1 }, 10),
            ("odd stub count", Topology::RandomRegular { degree: 3, seed: 1 }, 9),
        ];
        for (what, top, m) in cases {
            assert!(top.validate(m).is_err(), "{what} must be rejected");
            assert!(top.neighborhoods(m).is_err(), "{what} must not materialize");
        }
    }

    #[test]
    fn limit_sizes_are_m_independent_for_sparse_families() {
        assert_eq!(Topology::Ring { radius: 2 }.limit_neighborhood_size(), Some(5));
        assert_eq!(Topology::Torus { radius: 1 }.limit_neighborhood_size(), Some(5));
        assert_eq!(
            Topology::RandomRegular { degree: 4, seed: 1 }.limit_neighborhood_size(),
            Some(5)
        );
    }

    #[test]
    fn csr_matches_the_flat_layout_on_every_family() {
        // The CSR form is the storage of record; the legacy flat layout is
        // a widening copy of it. Check the row contract (own queue first,
        // neighbors ascending) and the byte-level agreement family by
        // family so engine RNG streams cannot shift.
        for (top, m) in [
            (Topology::FullMesh, 8),
            (Topology::Ring { radius: 2 }, 10),
            (Topology::Torus { radius: 1 }, 25),
            (Topology::RandomRegular { degree: 4, seed: 7 }, 30),
        ] {
            let k = top.neighborhood_size(m);
            let csr = top.csr(m).expect("valid topology");
            let flat = top.neighborhoods(m).expect("valid topology");
            assert_eq!(csr.num_nodes(), m);
            assert_eq!(csr.neighborhood_size(), k);
            assert_eq!(csr.num_entries(), m * k);
            for j in 0..m {
                let row = csr.row(j);
                assert_eq!(row.len(), k);
                assert_eq!(row[0] as usize, j, "own queue first");
                assert!(row[1..].windows(2).all(|w| w[0] < w[1]), "neighbors ascending");
                let widened: Vec<usize> = row.iter().map(|&i| i as usize).collect();
                assert_eq!(widened, flat[j * k..(j + 1) * k], "{top:?} row {j}");
            }
        }
    }

    #[test]
    fn csr_rejects_what_validate_rejects() {
        assert!(Topology::Ring { radius: 0 }.csr(10).is_err());
        assert!(Topology::Torus { radius: 1 }.csr(24).is_err());
    }

    #[test]
    fn topology_serde_round_trips() {
        for top in [
            Topology::FullMesh,
            Topology::Ring { radius: 2 },
            Topology::Torus { radius: 1 },
            Topology::RandomRegular { degree: 4, seed: 9 },
        ] {
            let json = serde_json::to_string(&top).unwrap();
            let back: Topology = serde_json::from_str(&json).unwrap();
            assert_eq!(top, back, "{json}");
        }
    }
}

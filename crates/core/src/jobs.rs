//! Job-size laws for the event-driven, job-level serving path.
//!
//! The paper's model is memoryless end to end: Poisson arrivals into
//! exponential servers, so only queue *lengths* matter and the epoch
//! simulators never materialize individual jobs. The event engine
//! ([`crate::config::SystemConfig`] + `mflb-sim`'s `EventEngine`) does
//! materialize them, which opens the first workload-diversity axis of the
//! roadmap: heavy-tailed job sizes. A [`JobSizeLaw`] is the serde-facing
//! description of the size distribution; each job draws one size (in
//! units of *work*), and a server with rate `α` completes `size / α` time
//! units after the job reaches its head of line.
//!
//! All three laws sample by inverse CDF from a single uniform draw, so
//! the event engine's counter-keyed per-job streams stay one-draw-cheap
//! and bit-stable.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A job-size distribution as data.
///
/// # Scenario JSON schema
///
/// Externally tagged, like every other law in the scenario layer:
///
/// | JSON | law | constraints |
/// |---|---|---|
/// | `{"Exponential": {"rate": r}}` | `Exp(r)`, mean `1/r` | `r` > 0, finite |
/// | `{"Pareto": {"shape": a, "scale": s}}` | Pareto with survival `(s/x)^a` on `[s, ∞)` | `a, s` > 0, finite; mean is infinite for `a ≤ 1` |
/// | `{"BoundedPareto": {"shape": a, "lo": l, "hi": h}}` | Pareto truncated to `[l, h]` | `a, l` > 0, finite; `l < h < ∞` |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobSizeLaw {
    /// Exponential sizes (the paper's model: with unit-rate sizes and
    /// exponential servers the length process is the classic M/M/1/B).
    Exponential {
        /// Rate parameter; the mean size is `1/rate`.
        rate: f64,
    },
    /// Unbounded Pareto sizes on `[scale, ∞)` with survival function
    /// `(scale/x)^shape` — the canonical heavy-tailed workload.
    Pareto {
        /// Tail index `a`; the mean is finite only for `a > 1`.
        shape: f64,
        /// Minimum job size (the left endpoint of the support).
        scale: f64,
    },
    /// Pareto truncated to `[lo, hi]` — the Park/`LoadBalanceEnv`-style
    /// workload with a controlled worst case.
    BoundedPareto {
        /// Tail index `a` of the underlying Pareto.
        shape: f64,
        /// Smallest job size.
        lo: f64,
        /// Largest job size.
        hi: f64,
    },
}

impl JobSizeLaw {
    /// Checks the law's parameters; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        let pos = |v: f64, what: &str| {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(format!("{what} must be positive and finite, got {v}"))
            }
        };
        match self {
            JobSizeLaw::Exponential { rate } => pos(*rate, "exponential job-size rate"),
            JobSizeLaw::Pareto { shape, scale } => {
                pos(*shape, "pareto shape")?;
                pos(*scale, "pareto scale")
            }
            JobSizeLaw::BoundedPareto { shape, lo, hi } => {
                pos(*shape, "bounded-pareto shape")?;
                pos(*lo, "bounded-pareto lo")?;
                pos(*hi, "bounded-pareto hi")?;
                if lo >= hi {
                    return Err(format!("bounded-pareto needs lo < hi, got lo = {lo}, hi = {hi}"));
                }
                Ok(())
            }
        }
    }

    /// Mean job size; `f64::INFINITY` for a Pareto with `shape ≤ 1`.
    pub fn mean(&self) -> f64 {
        match self {
            JobSizeLaw::Exponential { rate } => 1.0 / rate,
            JobSizeLaw::Pareto { shape, scale } => {
                if *shape > 1.0 {
                    shape * scale / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            JobSizeLaw::BoundedPareto { shape, lo, hi } => {
                // E[X] of a Pareto(a) truncated to [lo, hi]; the a = 1
                // case is the log limit of the general formula.
                let a = *shape;
                if (a - 1.0).abs() < 1e-12 {
                    lo * (hi / lo).ln() / (1.0 - lo / hi)
                } else {
                    let norm = 1.0 - (lo / hi).powf(a);
                    a * lo.powf(a) * (lo.powf(1.0 - a) - hi.powf(1.0 - a)) / ((a - 1.0) * norm)
                }
            }
        }
    }

    /// Inverse CDF: the size at quantile `u ∈ [0, 1)`.
    ///
    /// One uniform draw fully determines a sample, which is what keeps
    /// the event engine's per-job counter streams bit-stable: a job's
    /// size depends only on its own stream, never on heap order.
    pub fn quantile(&self, u: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&u));
        match self {
            JobSizeLaw::Exponential { rate } => -(1.0 - u).ln() / rate,
            JobSizeLaw::Pareto { shape, scale } => scale * (1.0 - u).powf(-1.0 / shape),
            JobSizeLaw::BoundedPareto { shape, lo, hi } => {
                let a = *shape;
                let norm = 1.0 - (lo / hi).powf(a);
                lo * (1.0 - u * norm).powf(-1.0 / a)
            }
        }
    }

    /// Draws one job size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(law: &JobSizeLaw, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| law.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn validation_accepts_good_and_rejects_bad_parameters() {
        assert!(JobSizeLaw::Exponential { rate: 2.0 }.validate().is_ok());
        assert!(JobSizeLaw::Pareto { shape: 1.5, scale: 0.5 }.validate().is_ok());
        assert!(JobSizeLaw::BoundedPareto { shape: 1.0, lo: 1.0, hi: 100.0 }.validate().is_ok());
        for bad in [
            JobSizeLaw::Exponential { rate: 0.0 },
            JobSizeLaw::Exponential { rate: f64::NAN },
            JobSizeLaw::Pareto { shape: -1.0, scale: 1.0 },
            JobSizeLaw::Pareto { shape: 2.0, scale: f64::INFINITY },
            JobSizeLaw::BoundedPareto { shape: 2.0, lo: 3.0, hi: 3.0 },
            JobSizeLaw::BoundedPareto { shape: 2.0, lo: 5.0, hi: 1.0 },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn means_match_closed_forms_and_samples() {
        let exp = JobSizeLaw::Exponential { rate: 4.0 };
        assert!((exp.mean() - 0.25).abs() < 1e-12);

        let par = JobSizeLaw::Pareto { shape: 3.0, scale: 2.0 };
        assert!((par.mean() - 3.0).abs() < 1e-12);
        assert_eq!(JobSizeLaw::Pareto { shape: 1.0, scale: 2.0 }.mean(), f64::INFINITY);
        assert_eq!(JobSizeLaw::Pareto { shape: 0.5, scale: 2.0 }.mean(), f64::INFINITY);

        for (law, tol) in [
            (exp, 0.01),
            (JobSizeLaw::Pareto { shape: 3.0, scale: 2.0 }, 0.05),
            (JobSizeLaw::BoundedPareto { shape: 1.5, lo: 1.0, hi: 50.0 }, 0.05),
            (JobSizeLaw::BoundedPareto { shape: 1.0, lo: 1.0, hi: 20.0 }, 0.05),
        ] {
            let mean = law.mean();
            let emp = empirical_mean(&law, 200_000, 9);
            assert!((emp - mean).abs() < tol * mean, "{law:?}: empirical {emp} vs analytic {mean}");
        }
    }

    #[test]
    fn quantile_respects_support_bounds() {
        let bp = JobSizeLaw::BoundedPareto { shape: 2.0, lo: 1.0, hi: 10.0 };
        assert!((bp.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!(bp.quantile(0.999_999) <= 10.0 + 1e-9);
        let par = JobSizeLaw::Pareto { shape: 2.0, scale: 3.0 };
        assert!((par.quantile(0.0) - 3.0).abs() < 1e-12);
        // Quantiles are nondecreasing.
        let mut last = 0.0;
        for i in 0..100 {
            let q = bp.quantile(i as f64 / 100.0);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn bounded_pareto_mean_is_continuous_at_shape_one() {
        let at = JobSizeLaw::BoundedPareto { shape: 1.0, lo: 1.0, hi: 30.0 }.mean();
        let near = JobSizeLaw::BoundedPareto { shape: 1.0 + 1e-7, lo: 1.0, hi: 30.0 }.mean();
        assert!((at - near).abs() < 1e-4, "{at} vs {near}");
    }

    #[test]
    fn laws_round_trip_through_serde() {
        for law in [
            JobSizeLaw::Exponential { rate: 1.0 },
            JobSizeLaw::Pareto { shape: 2.0, scale: 0.5 },
            JobSizeLaw::BoundedPareto { shape: 1.5, lo: 1.0, hi: 100.0 },
        ] {
            let json = serde_json::to_string(&law).unwrap();
            let back: JobSizeLaw = serde_json::from_str(&json).unwrap();
            assert_eq!(law, back, "json: {json}");
        }
    }
}

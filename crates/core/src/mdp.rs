//! The upper-level mean-field control MDP (Eq. 29–31).
//!
//! State: `(ν_t, λ_t)` — the queue-state distribution plus the current
//! arrival-rate level. Action: a lower-level decision rule `h_t`. The
//! `ν`-transition is *deterministic* (exact discretization); all
//! stochasticity comes from the Markov-modulated arrival rate. Reward:
//! `−D_t`, the negative expected per-queue drops of the epoch.

use crate::config::SystemConfig;
use crate::dist::StateDist;
use crate::meanfield::{mean_field_step, MeanFieldStep};
use crate::rule::DecisionRule;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Encodes the MFC-MDP observation fed to learned policies:
/// `[ν(0..B), onehot(λ_idx)]`. Canonical encoder shared by the RL
/// environment adapter and the deployed neural policy so the two can never
/// drift apart.
pub fn encode_observation(dist: &StateDist, lambda_idx: usize, num_levels: usize) -> Vec<f64> {
    let mut obs = Vec::with_capacity(dist.num_states() + num_levels);
    encode_observation_into(dist, lambda_idx, num_levels, &mut obs);
    obs
}

/// Allocation-free twin of [`encode_observation`]: clears `out` and fills
/// it in place, reusing its capacity (the deployed policy's per-epoch
/// decision path calls this with a pooled scratch vector).
pub fn encode_observation_into(
    dist: &StateDist,
    lambda_idx: usize,
    num_levels: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend_from_slice(dist.as_slice());
    for l in 0..num_levels {
        out.push(if l == lambda_idx { 1.0 } else { 0.0 });
    }
}

/// Observation dimensionality of [`encode_observation`].
pub fn observation_dim(num_states: usize, num_levels: usize) -> usize {
    num_states + num_levels
}

/// Action (decision-rule logit) dimensionality: `|Z|^d · d`.
pub fn action_dim(num_states: usize, d: usize) -> usize {
    num_states.pow(d as u32) * d
}

/// A state of the MFC MDP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfState {
    /// Queue-state distribution `ν_t`.
    pub dist: StateDist,
    /// Index into the arrival process' level set.
    pub lambda_idx: usize,
}

/// A batch of stacked policy observations collected for one decision
/// epoch (or one lockstep sweep over several episodes).
///
/// Each pushed observation is encoded immediately into a contiguous
/// row-major buffer with the exact [`encode_observation_into`] layout —
/// `[ν(0..B), onehot(λ_idx)]` — so a neural policy can run **one** batched
/// matrix product over [`ObservationBatch::as_slice`] instead of one gemv
/// per observation. The original `(dist, λ_idx, λ)` triples are retained
/// so non-neural policies (and the default [`UpperPolicy::decide_batch`])
/// can fall back to per-observation [`UpperPolicy::decide`] calls.
///
/// The batch reuses its row buffer across [`ObservationBatch::clear`]
/// calls, so steady-state encoding costs one `memcpy` per observation.
#[derive(Debug, Clone)]
pub struct ObservationBatch {
    num_states: usize,
    num_levels: usize,
    /// Row-major `len × (num_states + num_levels)` observation matrix.
    rows: Vec<f64>,
    dists: Vec<StateDist>,
    lambda_idxs: Vec<usize>,
    lambdas: Vec<f64>,
}

impl ObservationBatch {
    /// An empty batch for observations over `num_states` queue states and
    /// `num_levels` arrival levels.
    pub fn new(num_states: usize, num_levels: usize) -> Self {
        Self {
            num_states,
            num_levels,
            rows: Vec::new(),
            dists: Vec::new(),
            lambda_idxs: Vec::new(),
            lambdas: Vec::new(),
        }
    }

    /// Empties the batch, keeping every allocation for reuse.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.dists.clear();
        self.lambda_idxs.clear();
        self.lambdas.clear();
    }

    /// Appends one observation, encoding it into the stacked row buffer.
    ///
    /// # Panics
    /// Panics if `dist` does not have the batch's `num_states` states.
    pub fn push(&mut self, dist: StateDist, lambda_idx: usize, lambda: f64) {
        assert_eq!(dist.num_states(), self.num_states, "observation batch state count");
        self.rows.extend_from_slice(dist.as_slice());
        for l in 0..self.num_levels {
            self.rows.push(if l == lambda_idx { 1.0 } else { 0.0 });
        }
        self.dists.push(dist);
        self.lambda_idxs.push(lambda_idx);
        self.lambdas.push(lambda);
    }

    /// Number of stacked observations.
    pub fn len(&self) -> usize {
        self.dists.len()
    }

    /// Whether the batch holds no observations.
    pub fn is_empty(&self) -> bool {
        self.dists.is_empty()
    }

    /// Width of one encoded observation row
    /// ([`observation_dim`]`(num_states, num_levels)`).
    pub fn obs_dim(&self) -> usize {
        observation_dim(self.num_states, self.num_levels)
    }

    /// The stacked row-major `len × obs_dim` observation matrix.
    pub fn as_slice(&self) -> &[f64] {
        &self.rows
    }

    /// The `i`-th observation's queue-state distribution.
    pub fn dist(&self, i: usize) -> &StateDist {
        &self.dists[i]
    }

    /// The `i`-th observation's arrival-level index.
    pub fn lambda_idx(&self, i: usize) -> usize {
        self.lambda_idxs[i]
    }

    /// The `i`-th observation's arrival rate `λ`.
    pub fn lambda(&self, i: usize) -> f64 {
        self.lambdas[i]
    }
}

/// An upper-level policy `π̃ : P(Z) × Λ → H` (Eq. 30): maps the observed
/// queue-state distribution and arrival level to a decision rule.
///
/// Implementations may be deterministic (the optimal stationary policy of
/// Proposition 1) or stochastic (PPO exploration); stochastic ones carry
/// their own RNG state internally or sample outside this trait.
pub trait UpperPolicy {
    /// Produces the decision rule for the epoch.
    fn decide(&self, dist: &StateDist, lambda_idx: usize, lambda: f64) -> DecisionRule;

    /// Produces one decision rule per stacked observation, writing
    /// `out[i]` for observation `i` (`out` must have exactly
    /// [`ObservationBatch::len`] slots; every slot is overwritten).
    ///
    /// The default implementation loops [`UpperPolicy::decide`], so
    /// table-driven policies (JSQ, RND, softmin, distilled) and external
    /// implementors keep working unchanged. Policies with a batched fast
    /// path (one gemm over the whole batch instead of one gemv per
    /// observation) override this; overrides must stay **bit-identical**
    /// to the sequential path so seed-pinned runs are unperturbed.
    fn decide_batch(&self, batch: &ObservationBatch, out: &mut [DecisionRule]) {
        assert_eq!(out.len(), batch.len(), "decide_batch output slots");
        for i in 0..batch.len() {
            out[i] = self.decide(batch.dist(i), batch.lambda_idx(i), batch.lambda(i));
        }
    }

    /// Human-readable identifier used by the experiment harness.
    fn name(&self) -> &str {
        "policy"
    }
}

/// A constant upper-level policy applying a fixed decision rule regardless
/// of the state — the paper's MF-JSQ(2) and MF-RND baselines.
#[derive(Debug, Clone)]
pub struct FixedRulePolicy {
    rule: DecisionRule,
    name: String,
}

impl FixedRulePolicy {
    /// Wraps a fixed rule.
    pub fn new(rule: DecisionRule, name: impl Into<String>) -> Self {
        Self { rule, name: name.into() }
    }

    /// The wrapped rule.
    pub fn rule(&self) -> &DecisionRule {
        &self.rule
    }
}

impl UpperPolicy for FixedRulePolicy {
    fn decide(&self, _dist: &StateDist, _lambda_idx: usize, _lambda: f64) -> DecisionRule {
        self.rule.clone()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Record of one rolled-out episode.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpisodeRecord {
    /// Per-epoch expected per-queue drops `D_t`.
    pub drops_per_epoch: Vec<f64>,
    /// Undiscounted episode return `−Σ_t D_t` (the quantity plotted in
    /// Fig. 3–6).
    pub total_return: f64,
    /// Discounted return `−Σ_t γ^t D_t` (the training objective, Eq. 31).
    pub discounted_return: f64,
}

/// The mean-field control MDP.
#[derive(Debug, Clone)]
pub struct MeanFieldMdp {
    config: SystemConfig,
}

impl MeanFieldMdp {
    /// Creates the MDP from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent.
    pub fn new(config: SystemConfig) -> Self {
        config.validate().expect("invalid system configuration");
        Self { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Samples the initial state: `ν₀` from the config, `λ₀` from the
    /// arrival process' initial distribution.
    pub fn initial_state<R: Rng + ?Sized>(&self, rng: &mut R) -> MfState {
        MfState {
            dist: StateDist::new(self.config.initial_dist.clone()),
            lambda_idx: self.config.arrivals.sample_initial(rng),
        }
    }

    /// The initial state with a *fixed* arrival level (used when
    /// conditioning on the arrival sequence, as in Theorem 1).
    pub fn initial_state_with_lambda(&self, lambda_idx: usize) -> MfState {
        MfState { dist: StateDist::new(self.config.initial_dist.clone()), lambda_idx }
    }

    /// One MDP step: applies `rule` for one epoch, then advances the
    /// arrival level stochastically.
    ///
    /// Returns `(next_state, reward, detail)` with `reward = −D_t`.
    pub fn step<R: Rng + ?Sized>(
        &self,
        state: &MfState,
        rule: &DecisionRule,
        rng: &mut R,
    ) -> (MfState, f64, MeanFieldStep) {
        let next_lambda = self.config.arrivals.step(state.lambda_idx, rng);
        self.step_with_next_lambda(state, rule, next_lambda)
    }

    /// One MDP step with an externally prescribed next arrival level —
    /// fully deterministic, used by the Theorem-1 check which conditions on
    /// the arrival-rate sequence.
    pub fn step_with_next_lambda(
        &self,
        state: &MfState,
        rule: &DecisionRule,
        next_lambda_idx: usize,
    ) -> (MfState, f64, MeanFieldStep) {
        let lambda = self.config.arrivals.level_rate(state.lambda_idx);
        let detail =
            mean_field_step(&state.dist, rule, lambda, self.config.service_rate, self.config.dt);
        let next = MfState { dist: detail.next_dist.clone(), lambda_idx: next_lambda_idx };
        // Objective: drops, plus the optional holding-cost extension
        // (queueing penalized per job-time-unit; end-of-epoch length is the
        // exactly available statistic).
        let mut cost = detail.expected_drops;
        if self.config.holding_cost > 0.0 {
            cost +=
                self.config.holding_cost * detail.next_dist.mean_queue_length() * self.config.dt;
        }
        (next, -cost, detail)
    }

    /// Rolls out `horizon` epochs under an upper-level policy.
    pub fn rollout<R: Rng + ?Sized>(
        &self,
        policy: &dyn UpperPolicy,
        horizon: usize,
        rng: &mut R,
    ) -> EpisodeRecord {
        let mut state = self.initial_state(rng);
        self.rollout_from(&mut state, policy, horizon, rng)
    }

    /// Rolls out from a given (mutable) state, advancing it in place.
    pub fn rollout_from<R: Rng + ?Sized>(
        &self,
        state: &mut MfState,
        policy: &dyn UpperPolicy,
        horizon: usize,
        rng: &mut R,
    ) -> EpisodeRecord {
        let mut rec = EpisodeRecord::default();
        let mut discount = 1.0;
        for _ in 0..horizon {
            let lambda = self.config.arrivals.level_rate(state.lambda_idx);
            let rule = policy.decide(&state.dist, state.lambda_idx, lambda);
            let (next, reward, _) = self.step(state, &rule, rng);
            rec.drops_per_epoch.push(-reward);
            rec.total_return += reward;
            rec.discounted_return += discount * reward;
            discount *= self.config.gamma;
            *state = next;
        }
        rec
    }

    /// Deterministic rollout conditioned on an explicit arrival-level
    /// sequence `lambda_seq[0..horizon]` (`lambda_seq[t]` is the level in
    /// force during epoch `t`).
    pub fn rollout_conditioned(
        &self,
        policy: &dyn UpperPolicy,
        lambda_seq: &[usize],
    ) -> EpisodeRecord {
        let mut rec = EpisodeRecord::default();
        let mut discount = 1.0;
        let mut state = self.initial_state_with_lambda(lambda_seq[0]);
        for t in 0..lambda_seq.len() {
            let lambda = self.config.arrivals.level_rate(state.lambda_idx);
            let rule = policy.decide(&state.dist, state.lambda_idx, lambda);
            let next_lambda = *lambda_seq.get(t + 1).unwrap_or(&state.lambda_idx);
            let (next, reward, _) = self.step_with_next_lambda(&state, &rule, next_lambda);
            rec.drops_per_epoch.push(-reward);
            rec.total_return += reward;
            rec.discounted_return += discount * reward;
            discount *= self.config.gamma;
            state = next;
        }
        rec
    }

    /// Monte-Carlo estimate of the expected undiscounted episode return
    /// over `episodes` independent arrival sequences.
    pub fn evaluate<R: Rng + ?Sized>(
        &self,
        policy: &dyn UpperPolicy,
        horizon: usize,
        episodes: usize,
        rng: &mut R,
    ) -> mflb_linalg::stats::Summary {
        let mut s = mflb_linalg::stats::Summary::new();
        for _ in 0..episodes {
            s.push(self.rollout(policy, horizon, rng).total_return);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> SystemConfig {
        SystemConfig::paper().with_dt(5.0)
    }

    fn jsq_rule() -> DecisionRule {
        DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    #[test]
    fn rollout_accumulates_consistent_returns() {
        let mdp = MeanFieldMdp::new(small_config());
        let policy = FixedRulePolicy::new(DecisionRule::uniform(6, 2), "MF-RND");
        let mut rng = StdRng::seed_from_u64(1);
        let rec = mdp.rollout(&policy, 50, &mut rng);
        assert_eq!(rec.drops_per_epoch.len(), 50);
        let sum: f64 = rec.drops_per_epoch.iter().sum();
        assert!((rec.total_return + sum).abs() < 1e-10);
        assert!(rec.discounted_return <= 0.0);
        assert!(rec.total_return <= rec.discounted_return); // discount shrinks losses
    }

    #[test]
    fn conditioned_rollout_is_deterministic() {
        let mdp = MeanFieldMdp::new(small_config());
        let policy = FixedRulePolicy::new(jsq_rule(), "MF-JSQ(2)");
        let seq = vec![0usize; 30];
        let a = mdp.rollout_conditioned(&policy, &seq);
        let b = mdp.rollout_conditioned(&policy, &seq);
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
    }

    #[test]
    fn high_arrival_sequence_drops_more_than_low() {
        let mdp = MeanFieldMdp::new(small_config());
        let policy = FixedRulePolicy::new(DecisionRule::uniform(6, 2), "MF-RND");
        let high = mdp.rollout_conditioned(&policy, &vec![0usize; 40]); // λ_h = 0.9
        let low = mdp.rollout_conditioned(&policy, &vec![1usize; 40]); // λ_l = 0.6
        assert!(
            high.total_return < low.total_return,
            "high load must drop more: {} vs {}",
            high.total_return,
            low.total_return
        );
    }

    #[test]
    fn seeded_rollouts_reproduce() {
        let mdp = MeanFieldMdp::new(small_config());
        let policy = FixedRulePolicy::new(jsq_rule(), "MF-JSQ(2)");
        let a = mdp.rollout(&policy, 25, &mut StdRng::seed_from_u64(7));
        let b = mdp.rollout(&policy, 25, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
    }

    #[test]
    fn evaluate_returns_reasonable_summary() {
        let mdp = MeanFieldMdp::new(small_config());
        let policy = FixedRulePolicy::new(DecisionRule::uniform(6, 2), "MF-RND");
        let mut rng = StdRng::seed_from_u64(3);
        let s = mdp.evaluate(&policy, 20, 10, &mut rng);
        assert_eq!(s.count(), 10);
        assert!(s.mean() < 0.0, "a loaded system must drop packets");
        // Bound: per epoch at most λ_max·Δt drops.
        assert!(s.mean() > -(0.9 * 5.0 * 20.0));
    }

    #[test]
    fn holding_cost_extension_changes_objective_and_ranks_policies() {
        // Large buffer, light load: pure-drop objective is ~0 everywhere,
        // but with a holding cost JSQ (which balances load, reducing total
        // backlog only weakly) and RND differ through their queue-length
        // distributions; the reward must become strictly negative and
        // JSQ must not be worse than RND.
        let cfg = SystemConfig::paper().with_buffer(20).with_dt(2.0).with_holding_cost(0.1);
        let mdp = MeanFieldMdp::new(cfg);
        let jsq = FixedRulePolicy::new(
            DecisionRule::from_fn(21, 2, |t| {
                use std::cmp::Ordering::*;
                match t[0].cmp(&t[1]) {
                    Less => vec![1.0, 0.0],
                    Greater => vec![0.0, 1.0],
                    Equal => vec![0.5, 0.5],
                }
            }),
            "MF-JSQ(2)",
        );
        let rnd = FixedRulePolicy::new(DecisionRule::uniform(21, 2), "MF-RND");
        let seq = vec![0usize; 40];
        let j = mdp.rollout_conditioned(&jsq, &seq).total_return;
        let r = mdp.rollout_conditioned(&rnd, &seq).total_return;
        assert!(j < 0.0 && r < 0.0, "holding cost must make rewards negative");
        assert!(j >= r, "JSQ must not hold more jobs than RND: {j} vs {r}");
    }

    #[test]
    fn drops_vanish_for_huge_buffer_light_load() {
        let cfg = SystemConfig::paper().with_buffer(30).with_dt(1.0);
        let mdp = MeanFieldMdp::new(cfg);
        let policy = FixedRulePolicy::new(DecisionRule::uniform(31, 2), "MF-RND");
        let mut rng = StdRng::seed_from_u64(4);
        let rec = mdp.rollout(&policy, 10, &mut rng);
        assert!(rec.total_return.abs() < 1e-6, "return {}", rec.total_return);
    }
}

//! The paper's primary contribution: the **mean-field control (MFC) model**
//! of delayed-information load balancing, exactly discretized into a
//! Markov decision process.
//!
//! Pipeline (paper §2):
//!
//! 1. `N` clients, `M` queues, power-of-`d` sampling, synchronization delay
//!    `Δt` ([`config::SystemConfig`]);
//! 2. infinite-agent limit `N → ∞`: agent choices enter only through the
//!    state–action distribution `G_t^M` (§2.2);
//! 3. infinite-queue limit `M → ∞`: queues enter only through the
//!    queue-state distribution `ν_t ∈ P(Z)` ([`dist::StateDist`], §2.3);
//! 4. exact discretization of the within-epoch CTMC through the matrix
//!    exponential of the extended generator `Q̄(ν, z)` accumulating drops
//!    ([`meanfield`], Eq. 20–28);
//! 5. the resulting upper-level MDP with state `(ν_t, λ_t)` and action a
//!    lower-level decision rule `h_t : Z^d → P(U)` ([`mdp::MeanFieldMdp`],
//!    Eq. 29–31).
//!
//! [`theory`] provides the numerical counterpart of Theorem 1 (performance
//! of the finite system converges to the mean-field performance).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod dist;
pub mod faults;
pub mod graph_meanfield;
pub mod hetero_meanfield;
pub mod jobs;
pub mod mdp;
pub mod meanfield;
pub mod partial;
pub mod ph_meanfield;
pub mod rule;
pub mod theory;
pub mod topology;

pub use config::SystemConfig;
pub use dist::StateDist;
pub use faults::{
    stream_rng, CrashFaults, FaultPlan, FaultState, ObservationFaults, OverloadWindow,
    StragglerWindow,
};
pub use graph_meanfield::{
    graph_arrival_rates, graph_mean_field_step, independent_pair, pair_arrival_rates,
    pair_marginal, pair_mean_field_step,
};
pub use hetero_meanfield::{HeteroMeanField, HeteroMeanFieldStep};
pub use jobs::JobSizeLaw;
pub use mdp::{MeanFieldMdp, MfState, UpperPolicy};
pub use meanfield::{
    mean_field_step, mean_field_step_with_rates, per_state_arrival_rates,
    per_state_arrival_rates_into, per_state_arrival_rates_sparse_into, MeanFieldStep,
};
pub use partial::{sampled_estimate, ObservationModel, PartialObservationPolicy};
pub use ph_meanfield::{ph_mean_field_step, PhDist, PhMeanFieldMdp, PhMfState};
pub use rule::DecisionRule;
pub use topology::{CsrNeighborhoods, Topology};

//! The queue-state distribution `ν ∈ P(Z)` — the mean-field state.

use serde::{Deserialize, Serialize};

/// A probability distribution over the queue states `Z = {0, …, B}`.
///
/// This is both the limiting mean-field state `ν_t` and the container used
/// for empirical distributions `H_t^M` of finite systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDist {
    probs: Vec<f64>,
}

impl StateDist {
    /// Creates a distribution from raw probabilities.
    ///
    /// # Panics
    /// Panics if the vector is empty, has negative entries, or does not sum
    /// to 1 within `1e-8`.
    pub fn new(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "distribution needs at least one state");
        let mass: f64 = probs.iter().sum();
        assert!((mass - 1.0).abs() < 1e-8, "probabilities must sum to 1 (got {mass})");
        assert!(probs.iter().all(|&p| p >= -1e-12), "negative probability");
        let mut probs = probs;
        // Clean tiny negative round-off so downstream code can rely on >= 0.
        for p in &mut probs {
            if *p < 0.0 {
                *p = 0.0;
            }
        }
        Self { probs }
    }

    /// All queues empty: `ν = δ_0` over `{0,…,B}` (the paper's ν₀).
    pub fn all_empty(buffer: usize) -> Self {
        let mut v = vec![0.0; buffer + 1];
        v[0] = 1.0;
        Self { probs: v }
    }

    /// Point mass at state `z`.
    pub fn delta(buffer: usize, z: usize) -> Self {
        assert!(z <= buffer);
        let mut v = vec![0.0; buffer + 1];
        v[z] = 1.0;
        Self { probs: v }
    }

    /// Uniform distribution over `{0,…,B}`.
    pub fn uniform(buffer: usize) -> Self {
        let n = buffer + 1;
        Self { probs: vec![1.0 / n as f64; n] }
    }

    /// Empirical distribution of explicit queue states (`H_t^M`, Eq. 2).
    pub fn empirical(states: &[usize], buffer: usize) -> Self {
        let mut v = vec![0.0; buffer + 1];
        for &z in states {
            assert!(z <= buffer, "state {z} exceeds buffer {buffer}");
            v[z] += 1.0;
        }
        let m = states.len().max(1) as f64;
        for p in &mut v {
            *p /= m;
        }
        Self { probs: v }
    }

    /// Empirical distribution from per-state counts.
    pub fn from_counts(counts: &[u64]) -> Self {
        let total: u64 = counts.iter().sum();
        assert!(total > 0, "empty count vector");
        Self { probs: counts.iter().map(|&c| c as f64 / total as f64).collect() }
    }

    /// Number of states `|Z| = B + 1`.
    pub fn num_states(&self) -> usize {
        self.probs.len()
    }

    /// Buffer size `B`.
    pub fn buffer(&self) -> usize {
        self.probs.len() - 1
    }

    /// Probability of state `z`.
    #[inline]
    pub fn prob(&self, z: usize) -> f64 {
        self.probs[z]
    }

    /// The raw probability slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Mean queue length `Σ_z z·ν(z)`.
    pub fn mean_queue_length(&self) -> f64 {
        self.probs.iter().enumerate().map(|(z, p)| z as f64 * p).sum()
    }

    /// Probability that a queue is full (`ν(B)`), the instantaneous
    /// drop-pressure indicator.
    pub fn full_fraction(&self) -> f64 {
        *self.probs.last().unwrap()
    }

    /// ℓ₁ distance `‖ν − ω‖₁` (the metric of Theorem 1's proof).
    pub fn l1_distance(&self, other: &StateDist) -> f64 {
        assert_eq!(self.num_states(), other.num_states());
        self.probs.iter().zip(other.probs.iter()).map(|(a, b)| (a - b).abs()).sum()
    }

    /// Product-measure probability `μ(z̄) = Π_k ν(z̄_k)` of an observation
    /// tuple (Eq. 16).
    pub fn product_prob(&self, tuple: &[usize]) -> f64 {
        tuple.iter().map(|&z| self.probs[z]).product()
    }

    /// Renormalizes in place (defensive cleanup after long roll-outs where
    /// 1e-16-scale drift can accumulate).
    pub fn renormalize(&mut self) {
        let mass: f64 = self.probs.iter().sum();
        if mass > 0.0 {
            for p in &mut self.probs {
                *p = p.max(0.0) / mass;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_valid_distributions() {
        for d in [
            StateDist::all_empty(5),
            StateDist::delta(5, 3),
            StateDist::uniform(5),
            StateDist::empirical(&[0, 0, 1, 5, 3], 5),
            StateDist::from_counts(&[2, 0, 0, 0, 0, 8]),
        ] {
            let mass: f64 = d.as_slice().iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
            assert_eq!(d.num_states(), 6);
        }
    }

    #[test]
    fn empirical_counts_correctly() {
        let d = StateDist::empirical(&[0, 0, 2, 2, 2, 5], 5);
        assert!((d.prob(0) - 2.0 / 6.0).abs() < 1e-15);
        assert!((d.prob(2) - 3.0 / 6.0).abs() < 1e-15);
        assert!((d.prob(5) - 1.0 / 6.0).abs() < 1e-15);
        assert_eq!(d.prob(1), 0.0);
    }

    #[test]
    fn mean_queue_length_and_full_fraction() {
        let d = StateDist::new(vec![0.5, 0.0, 0.0, 0.0, 0.0, 0.5]);
        assert!((d.mean_queue_length() - 2.5).abs() < 1e-15);
        assert!((d.full_fraction() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn l1_distance_properties() {
        let a = StateDist::delta(3, 0);
        let b = StateDist::delta(3, 3);
        assert_eq!(a.l1_distance(&a), 0.0);
        assert_eq!(a.l1_distance(&b), 2.0); // maximal for disjoint support
        assert_eq!(a.l1_distance(&b), b.l1_distance(&a));
    }

    #[test]
    fn product_prob_matches_manual() {
        let d = StateDist::new(vec![0.2, 0.3, 0.5]);
        assert!((d.product_prob(&[0, 2]) - 0.1).abs() < 1e-15);
        assert!((d.product_prob(&[1, 1]) - 0.09).abs() < 1e-15);
        assert!((d.product_prob(&[]) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized() {
        StateDist::new(vec![0.5, 0.4]);
    }

    #[test]
    fn renormalize_fixes_drift() {
        let mut d = StateDist::new(vec![0.5, 0.5]);
        d.probs[0] = 0.5 + 1e-12;
        d.renormalize();
        let mass: f64 = d.as_slice().iter().sum();
        assert!((mass - 1.0).abs() < 1e-15);
    }
}

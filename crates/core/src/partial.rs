//! Partial observability of the mean-field state — the paper's §2.1
//! remark ("we may also drop dependence on the current arrival rate and
//! empirical distribution, or estimate e.g. the empirical queue state
//! distribution by sampling a subset of random queues") and §5 future
//! work, made concrete.
//!
//! [`ObservationModel`] distorts what an upper-level policy sees;
//! [`PartialObservationPolicy`] wraps *any* [`UpperPolicy`] behind such a
//! model, so the ablation runs the same trained/analytic policies under
//! degraded information and measures the value of each information
//! channel:
//!
//! * [`ObservationModel::SampledQueues`] — the policy sees an empirical
//!   estimate `ν̂` built from `k` queues sampled i.i.d. from `ν` (the
//!   "sample a subset of random queues" estimator; `k → ∞` recovers the
//!   exact state),
//! * [`ObservationModel::Stale`] — the policy sees the distribution from
//!   `e` epochs ago (information delay *beyond* the synchronization delay
//!   Δt already in the model),
//! * [`ObservationModel::NoArrivalInfo`] — the arrival level is hidden
//!   (replaced by a fixed placeholder level), i.e. "drop dependence on
//!   the current arrival rate",
//! * [`ObservationModel::Exact`] — the fully observed baseline.

use crate::dist::StateDist;
use crate::mdp::UpperPolicy;
use crate::rule::DecisionRule;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the mean-field state is distorted before the policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObservationModel {
    /// Full state `(ν_t, λ_t)` — the paper's baseline information
    /// structure.
    Exact,
    /// `ν_t` replaced by the empirical distribution of `k` queues sampled
    /// i.i.d. from `ν_t`.
    SampledQueues {
        /// Number of sampled queues `k ≥ 1`.
        k: usize,
    },
    /// `ν_t` replaced by the distribution observed `epochs` decision
    /// epochs ago (`ν₀`-padded at the start of an episode).
    Stale {
        /// Additional information age in epochs.
        epochs: usize,
    },
    /// The arrival level is hidden: the policy always sees level index 0.
    NoArrivalInfo,
}

impl ObservationModel {
    /// Human-readable tag used by harness output.
    pub fn label(&self) -> String {
        match self {
            ObservationModel::Exact => "exact".to_string(),
            ObservationModel::SampledQueues { k } => format!("sampled(k={k})"),
            ObservationModel::Stale { epochs } => format!("stale(e={epochs})"),
            ObservationModel::NoArrivalInfo => "no-lambda".to_string(),
        }
    }
}

/// Draws the `k`-sample empirical estimate `ν̂` of a distribution
/// (sampling queues i.i.d. — the estimator a client could realize by
/// polling `k` random servers).
pub fn sampled_estimate<R: Rng + ?Sized>(dist: &StateDist, k: usize, rng: &mut R) -> StateDist {
    assert!(k >= 1, "need at least one sampled queue");
    let mut counts = vec![0u64; dist.num_states()];
    for _ in 0..k {
        let mut u: f64 = rng.gen();
        let mut z = dist.num_states() - 1;
        for (i, &p) in dist.as_slice().iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                z = i;
                break;
            }
        }
        counts[z] += 1;
    }
    StateDist::from_counts(&counts)
}

/// Wraps an upper-level policy behind an observation model.
///
/// The wrapper owns the RNG of the estimator and the staleness buffer
/// behind mutexes so it stays `Send + Sync` (the Monte-Carlo harness
/// shares policies across worker threads). Staleness history is
/// per-wrapper: create one wrapper per evaluated episode stream, or call
/// [`PartialObservationPolicy::reset`] between episodes.
pub struct PartialObservationPolicy<P> {
    inner: P,
    model: ObservationModel,
    rng: Mutex<StdRng>,
    history: Mutex<VecDeque<StateDist>>,
    name: String,
}

impl<P: UpperPolicy> PartialObservationPolicy<P> {
    /// Wraps `inner` behind `model`; `seed` drives the sampling estimator.
    pub fn new(inner: P, model: ObservationModel, seed: u64) -> Self {
        let name = format!("{}[{}]", inner.name(), model.label());
        Self {
            inner,
            model,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            history: Mutex::new(VecDeque::new()),
            name,
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The observation model in force.
    pub fn model(&self) -> ObservationModel {
        self.model
    }

    /// Clears the staleness buffer and reseeds the estimator (call
    /// between episodes for reproducible evaluation).
    pub fn reset(&self, seed: u64) {
        self.history.lock().clear();
        *self.rng.lock() = StdRng::seed_from_u64(seed);
    }
}

impl<P: UpperPolicy> UpperPolicy for PartialObservationPolicy<P> {
    fn decide(&self, dist: &StateDist, lambda_idx: usize, lambda: f64) -> DecisionRule {
        match self.model {
            ObservationModel::Exact => self.inner.decide(dist, lambda_idx, lambda),
            ObservationModel::SampledQueues { k } => {
                let estimate = sampled_estimate(dist, k, &mut *self.rng.lock());
                self.inner.decide(&estimate, lambda_idx, lambda)
            }
            ObservationModel::Stale { epochs } => {
                let mut hist = self.history.lock();
                hist.push_back(dist.clone());
                // The observation aged `epochs` epochs: front of the buffer
                // once it is full, else the oldest available (ν₀ stand-in).
                while hist.len() > epochs + 1 {
                    hist.pop_front();
                }
                let seen = hist.front().expect("just pushed").clone();
                drop(hist);
                self.inner.decide(&seen, lambda_idx, lambda)
            }
            ObservationModel::NoArrivalInfo => self.inner.decide(dist, 0, lambda),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::mdp::{FixedRulePolicy, MeanFieldMdp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A ν-feedback test policy: JSQ when congestion is visible, RND
    /// otherwise — deliberately sensitive to the observed distribution.
    struct ThresholdPolicy {
        threshold: f64,
    }

    impl UpperPolicy for ThresholdPolicy {
        fn decide(&self, dist: &StateDist, _l: usize, _lam: f64) -> DecisionRule {
            if dist.mean_queue_length() > self.threshold {
                DecisionRule::from_fn(dist.num_states(), 2, |t| {
                    use std::cmp::Ordering::*;
                    match t[0].cmp(&t[1]) {
                        Less => vec![1.0, 0.0],
                        Greater => vec![0.0, 1.0],
                        Equal => vec![0.5, 0.5],
                    }
                })
            } else {
                DecisionRule::uniform(dist.num_states(), 2)
            }
        }

        fn name(&self) -> &str {
            "threshold"
        }
    }

    /// A λ-feedback test policy: JSQ at the high level, RND at the low.
    struct LambdaSwitchPolicy;

    impl UpperPolicy for LambdaSwitchPolicy {
        fn decide(&self, dist: &StateDist, lambda_idx: usize, _lam: f64) -> DecisionRule {
            if lambda_idx == 0 {
                DecisionRule::from_fn(dist.num_states(), 2, |t| {
                    use std::cmp::Ordering::*;
                    match t[0].cmp(&t[1]) {
                        Less => vec![1.0, 0.0],
                        Greater => vec![0.0, 1.0],
                        Equal => vec![0.5, 0.5],
                    }
                })
            } else {
                DecisionRule::uniform(dist.num_states(), 2)
            }
        }

        fn name(&self) -> &str {
            "lambda-switch"
        }
    }

    #[test]
    fn exact_model_is_transparent() {
        let inner = ThresholdPolicy { threshold: 1.0 };
        let wrapped = PartialObservationPolicy::new(
            ThresholdPolicy { threshold: 1.0 },
            ObservationModel::Exact,
            7,
        );
        for nu in [StateDist::all_empty(5), StateDist::uniform(5), StateDist::delta(5, 5)] {
            let a = inner.decide(&nu, 0, 0.9);
            let b = wrapped.decide(&nu, 0, 0.9);
            assert!(a.max_abs_diff(&b) < 1e-15);
        }
    }

    #[test]
    fn sampled_estimate_concentrates_with_k() {
        let nu = StateDist::new(vec![0.3, 0.25, 0.2, 0.15, 0.07, 0.03]);
        let mut rng = StdRng::seed_from_u64(1);
        let mean_err = |k: usize, rng: &mut StdRng| {
            let reps = 200;
            let mut total = 0.0;
            for _ in 0..reps {
                total += nu.l1_distance(&sampled_estimate(&nu, k, rng));
            }
            total / reps as f64
        };
        let e10 = mean_err(10, &mut rng);
        let e100 = mean_err(100, &mut rng);
        let e1000 = mean_err(1000, &mut rng);
        assert!(e10 > e100 && e100 > e1000, "{e10} > {e100} > {e1000} expected");
        assert!(e1000 < 0.1);
    }

    #[test]
    fn sampled_estimate_is_a_distribution() {
        let nu = StateDist::uniform(5);
        let mut rng = StdRng::seed_from_u64(2);
        for k in [1usize, 7, 64] {
            let est = sampled_estimate(&nu, k, &mut rng);
            let mass: f64 = est.as_slice().iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
            // Entries are multiples of 1/k.
            for &p in est.as_slice() {
                let scaled = p * k as f64;
                assert!((scaled - scaled.round()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn stale_zero_is_exact_and_stale_sees_old_state() {
        let mk = |e: usize| {
            PartialObservationPolicy::new(
                ThresholdPolicy { threshold: 1.0 },
                ObservationModel::Stale { epochs: e },
                0,
            )
        };
        let empty = StateDist::all_empty(5);
        let full = StateDist::delta(5, 5);
        // Stale(0): always the current state.
        let p0 = mk(0);
        let r = p0.decide(&full, 0, 0.9);
        assert!(r.max_abs_diff(&ThresholdPolicy { threshold: 1.0 }.decide(&full, 0, 0.9)) < 1e-15);
        // Stale(2): after feeding empty, empty, full → still sees empty
        // (RND branch), then catches up.
        let p2 = mk(2);
        let rnd = DecisionRule::uniform(6, 2);
        assert!(p2.decide(&empty, 0, 0.9).max_abs_diff(&rnd) < 1e-15);
        assert!(p2.decide(&empty, 0, 0.9).max_abs_diff(&rnd) < 1e-15);
        assert!(p2.decide(&full, 0, 0.9).max_abs_diff(&rnd) < 1e-15, "must still see empty");
        assert!(p2.decide(&full, 0, 0.9).max_abs_diff(&rnd) < 1e-15, "one epoch closer");
        let caught_up = p2.decide(&full, 0, 0.9);
        assert!(caught_up.max_abs_diff(&rnd) > 0.4, "now sees the full state (JSQ branch)");
    }

    #[test]
    fn reset_clears_history_and_reseeds() {
        let p = PartialObservationPolicy::new(
            ThresholdPolicy { threshold: 1.0 },
            ObservationModel::Stale { epochs: 1 },
            0,
        );
        let full = StateDist::delta(5, 5);
        let _ = p.decide(&full, 0, 0.9);
        let after_warm = p.decide(&full, 0, 0.9);
        p.reset(0);
        let fresh = p.decide(&StateDist::all_empty(5), 0, 0.9);
        // After reset the buffer restarts: first decision sees the current
        // (empty) state, not the stale full one.
        assert!(fresh.max_abs_diff(&DecisionRule::uniform(6, 2)) < 1e-15);
        assert!(after_warm.max_abs_diff(&fresh) > 0.4);
    }

    #[test]
    fn no_arrival_info_masks_lambda() {
        let wrapped =
            PartialObservationPolicy::new(LambdaSwitchPolicy, ObservationModel::NoArrivalInfo, 0);
        let nu = StateDist::uniform(5);
        // Regardless of the true level, the wrapper routes level 0 inside.
        let at_high = wrapped.decide(&nu, 0, 0.9);
        let at_low = wrapped.decide(&nu, 1, 0.6);
        assert!(at_high.max_abs_diff(&at_low) < 1e-15);
        // And the inner policy *would* have differed.
        let raw = LambdaSwitchPolicy;
        assert!(raw.decide(&nu, 0, 0.9).max_abs_diff(&raw.decide(&nu, 1, 0.6)) > 0.4);
    }

    #[test]
    fn richer_observation_does_not_hurt_threshold_policy() {
        // In the MFC MDP, the threshold policy with exact observation must
        // perform at least as well as with a crude k=3 estimate (common
        // arrival sequences, same inner policy).
        let cfg = SystemConfig::paper().with_dt(5.0);
        let mdp = MeanFieldMdp::new(cfg);
        let seq = vec![0usize; 40];
        let exact = PartialObservationPolicy::new(
            ThresholdPolicy { threshold: 1.5 },
            ObservationModel::Exact,
            1,
        );
        let crude = PartialObservationPolicy::new(
            ThresholdPolicy { threshold: 1.5 },
            ObservationModel::SampledQueues { k: 3 },
            1,
        );
        let v_exact = mdp.rollout_conditioned(&exact, &seq).total_return;
        let mut v_crude = 0.0;
        for run in 0..16 {
            crude.reset(run);
            v_crude += mdp.rollout_conditioned(&crude, &seq).total_return;
        }
        v_crude /= 16.0;
        assert!(v_exact >= v_crude - 1e-9, "exact {v_exact} must be at least crude {v_crude}");
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(ObservationModel::Exact.label(), "exact");
        assert_eq!(ObservationModel::SampledQueues { k: 42 }.label(), "sampled(k=42)");
        assert_eq!(ObservationModel::Stale { epochs: 3 }.label(), "stale(e=3)");
        assert_eq!(ObservationModel::NoArrivalInfo.label(), "no-lambda");
        let p = PartialObservationPolicy::new(
            FixedRulePolicy::new(DecisionRule::uniform(6, 2), "MF-RND"),
            ObservationModel::SampledQueues { k: 10 },
            0,
        );
        assert_eq!(p.name(), "MF-RND[sampled(k=10)]");
    }
}

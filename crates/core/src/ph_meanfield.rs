//! Mean-field model with **phase-type service** — the paper's §5
//! "non-exponential service times" extension, carried through the exact
//! discretization machinery.
//!
//! With `PH(α, S)` service the per-queue CTMC lives on the joint states
//! `{0} ∪ {1..B}×{phases}` instead of `{0..B}`; everything else in §2.3–2.5
//! of the paper survives unchanged:
//!
//! * clients still observe only the (stale) queue **lengths**, so decision
//!   rules remain tables over `Z^d` and the per-state arrival rates of
//!   Eq. 22 are computed from the *length marginal* of the joint
//!   distribution;
//! * queues that start an epoch at length `z` share the frozen arrival
//!   rate `λ_t(ν, z)`, so the exact one-epoch advance is again a matrix
//!   exponential per epoch-start length — of the extended `M/PH/1/B`
//!   generator ([`mflb_queue::PhQueue::extended_generator_column`]);
//! * the upper-level MDP keeps state `(joint distribution, λ_t)` and the
//!   same decision-rule action space, so every [`UpperPolicy`] (JSQ, RND,
//!   softmin, trained networks) plugs in unmodified via the length
//!   marginal.
//!
//! With one phase (`PH = exponential`) the model collapses *exactly* to
//! [`crate::meanfield::mean_field_step`] (tested).

use crate::config::SystemConfig;
use crate::dist::StateDist;
use crate::mdp::{EpisodeRecord, UpperPolicy};
use crate::meanfield::per_state_arrival_rates;
use crate::rule::DecisionRule;
use mflb_queue::{PhQueue, PhaseType};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A probability distribution over the joint `(length, phase)` states of
/// an `M/PH/1/B` queue (flat layout of [`PhQueue`]: index `0` is empty,
/// index `1 + (z−1)·k + phase` is length `z` in `phase`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhDist {
    probs: Vec<f64>,
    buffer: usize,
    num_phases: usize,
}

impl PhDist {
    /// Creates a joint distribution from raw probabilities.
    ///
    /// # Panics
    /// Panics if the length is not `1 + B·k` or the entries are not a
    /// probability vector.
    pub fn new(probs: Vec<f64>, buffer: usize, num_phases: usize) -> Self {
        assert_eq!(probs.len(), 1 + buffer * num_phases, "joint layout mismatch");
        let mass: f64 = probs.iter().sum();
        assert!((mass - 1.0).abs() < 1e-8, "joint mass {mass}");
        assert!(probs.iter().all(|&p| p >= -1e-12));
        let mut probs = probs;
        for p in &mut probs {
            if *p < 0.0 {
                *p = 0.0;
            }
        }
        Self { probs, buffer, num_phases }
    }

    /// All queues empty.
    pub fn all_empty(buffer: usize, num_phases: usize) -> Self {
        let mut v = vec![0.0; 1 + buffer * num_phases];
        v[0] = 1.0;
        Self { probs: v, buffer, num_phases }
    }

    /// Lifts a length distribution to the joint space by giving every busy
    /// queue the service distribution's initial phase mix `α` (the natural
    /// embedding used for ν₀ and for comparisons against the exponential
    /// model).
    pub fn from_lengths(lengths: &StateDist, service: &PhaseType) -> Self {
        let buffer = lengths.buffer();
        let k = service.num_phases();
        let alpha = service.init();
        let mut v = vec![0.0; 1 + buffer * k];
        v[0] = lengths.prob(0);
        for z in 1..=buffer {
            for (i, &a) in alpha.iter().enumerate() {
                v[1 + (z - 1) * k + i] = lengths.prob(z) * a;
            }
        }
        Self { probs: v, buffer, num_phases: k }
    }

    /// Buffer size `B`.
    pub fn buffer(&self) -> usize {
        self.buffer
    }

    /// Number of service phases `k`.
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// Raw joint probabilities.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Joint probability of `(length z, phase i)`; `phase` is ignored for
    /// `z = 0`.
    pub fn prob(&self, z: usize, phase: usize) -> f64 {
        if z == 0 {
            self.probs[0]
        } else {
            self.probs[1 + (z - 1) * self.num_phases + phase]
        }
    }

    /// The queue-**length** marginal `ν(z) = Σ_i joint(z, i)` — what the
    /// clients observe and what decision rules act on.
    pub fn length_marginal(&self) -> StateDist {
        let mut v = vec![0.0; self.buffer + 1];
        v[0] = self.probs[0];
        for z in 1..=self.buffer {
            for i in 0..self.num_phases {
                v[z] += self.probs[1 + (z - 1) * self.num_phases + i];
            }
        }
        // Guard against 1e-16 drift before the StateDist constructor.
        let mass: f64 = v.iter().sum();
        if mass > 0.0 {
            for p in &mut v {
                *p /= mass;
            }
        }
        StateDist::new(v)
    }

    /// Mean queue length under the length marginal.
    pub fn mean_queue_length(&self) -> f64 {
        self.length_marginal().mean_queue_length()
    }

    /// ℓ₁ distance to another joint distribution of the same shape.
    pub fn l1_distance(&self, other: &PhDist) -> f64 {
        assert_eq!(self.probs.len(), other.probs.len());
        self.probs.iter().zip(other.probs.iter()).map(|(a, b)| (a - b).abs()).sum()
    }
}

/// Output of one exact PH mean-field epoch.
#[derive(Debug, Clone)]
pub struct PhMeanFieldStep {
    /// Joint distribution at the end of the epoch.
    pub next_dist: PhDist,
    /// Expected packets dropped per queue during the epoch.
    pub expected_drops: f64,
    /// Per-length arrival rates `λ_t(ν, z)` used (diagnostics / tests).
    pub arrival_rates: Vec<f64>,
}

/// Advances the PH mean field by one decision epoch of length `dt`.
///
/// Exactly mirrors [`crate::meanfield::mean_field_step`]: queues are
/// grouped by their epoch-start **length** (which fixes their frozen
/// arrival rate), each group advances through the matrix exponential of
/// the extended `M/PH/1/B` generator, and the results are mixed back.
pub fn ph_mean_field_step(
    joint: &PhDist,
    rule: &DecisionRule,
    lambda: f64,
    service: &PhaseType,
    dt: f64,
) -> PhMeanFieldStep {
    assert!(lambda >= 0.0 && dt > 0.0);
    assert_eq!(service.num_phases(), joint.num_phases(), "service/joint phase mismatch");
    let buffer = joint.buffer();
    let k = joint.num_phases();
    let nu = joint.length_marginal();
    let rates = per_state_arrival_rates(&nu, rule, lambda);

    let n = 1 + buffer * k;
    let mut next = vec![0.0f64; n];
    let mut drops = 0.0f64;
    let mut start = vec![0.0f64; n];
    for z in 0..=buffer {
        // Restrict the joint distribution to epoch-start length z.
        start.iter_mut().for_each(|v| *v = 0.0);
        let mut group_mass = 0.0;
        if z == 0 {
            start[0] = joint.as_slice()[0];
            group_mass = start[0];
        } else {
            for i in 0..k {
                let idx = 1 + (z - 1) * k + i;
                start[idx] = joint.as_slice()[idx];
                group_mass += start[idx];
            }
        }
        if group_mass == 0.0 {
            continue;
        }
        let queue = PhQueue::new(rates[z].max(0.0), service.clone(), buffer);
        let (advanced, d) = queue.epoch_expectation(&start, dt);
        for (nx, a) in next.iter_mut().zip(advanced.iter()) {
            *nx += a;
        }
        drops += d;
    }

    let total: f64 = next.iter().sum();
    debug_assert!((total - 1.0).abs() < 1e-8, "mass drift {total}");
    for v in &mut next {
        *v = v.max(0.0) / total;
    }

    PhMeanFieldStep {
        next_dist: PhDist::new(next, buffer, k),
        expected_drops: drops,
        arrival_rates: rates,
    }
}

/// A state of the PH mean-field control MDP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhMfState {
    /// Joint `(length, phase)` distribution.
    pub dist: PhDist,
    /// Index into the arrival process' level set.
    pub lambda_idx: usize,
}

/// The mean-field control MDP with phase-type service.
///
/// The `service_rate` field of the wrapped [`SystemConfig`] is **ignored**;
/// the service-time law is the supplied [`PhaseType`]. Upper-level policies
/// observe the length marginal, so any [`UpperPolicy`] works unchanged.
#[derive(Debug, Clone)]
pub struct PhMeanFieldMdp {
    config: SystemConfig,
    service: PhaseType,
}

impl PhMeanFieldMdp {
    /// Creates the MDP.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent.
    pub fn new(config: SystemConfig, service: PhaseType) -> Self {
        config.validate().expect("invalid system configuration");
        Self { config, service }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The service-time distribution.
    pub fn service(&self) -> &PhaseType {
        &self.service
    }

    /// Samples the initial state: ν₀ lifted to the joint space, λ₀ from
    /// the arrival process.
    pub fn initial_state<R: Rng + ?Sized>(&self, rng: &mut R) -> PhMfState {
        PhMfState {
            dist: PhDist::from_lengths(
                &StateDist::new(self.config.initial_dist.clone()),
                &self.service,
            ),
            lambda_idx: self.config.arrivals.sample_initial(rng),
        }
    }

    /// One MDP step with an externally prescribed next arrival level
    /// (deterministic; the Theorem-1 conditioning convention).
    pub fn step_with_next_lambda(
        &self,
        state: &PhMfState,
        rule: &DecisionRule,
        next_lambda_idx: usize,
    ) -> (PhMfState, f64, PhMeanFieldStep) {
        let lambda = self.config.arrivals.level_rate(state.lambda_idx);
        let detail = ph_mean_field_step(&state.dist, rule, lambda, &self.service, self.config.dt);
        let next = PhMfState { dist: detail.next_dist.clone(), lambda_idx: next_lambda_idx };
        let mut cost = detail.expected_drops;
        if self.config.holding_cost > 0.0 {
            cost +=
                self.config.holding_cost * detail.next_dist.mean_queue_length() * self.config.dt;
        }
        (next, -cost, detail)
    }

    /// One MDP step with the arrival level advancing stochastically.
    pub fn step<R: Rng + ?Sized>(
        &self,
        state: &PhMfState,
        rule: &DecisionRule,
        rng: &mut R,
    ) -> (PhMfState, f64, PhMeanFieldStep) {
        let next_lambda = self.config.arrivals.step(state.lambda_idx, rng);
        self.step_with_next_lambda(state, rule, next_lambda)
    }

    /// Rolls out `horizon` epochs under an upper-level policy (which sees
    /// the length marginal).
    pub fn rollout<R: Rng + ?Sized>(
        &self,
        policy: &dyn UpperPolicy,
        horizon: usize,
        rng: &mut R,
    ) -> EpisodeRecord {
        let mut state = self.initial_state(rng);
        let mut rec = EpisodeRecord::default();
        let mut discount = 1.0;
        for _ in 0..horizon {
            let lambda = self.config.arrivals.level_rate(state.lambda_idx);
            let rule = policy.decide(&state.dist.length_marginal(), state.lambda_idx, lambda);
            let (next, reward, _) = self.step(&state, &rule, rng);
            rec.drops_per_epoch.push(-reward);
            rec.total_return += reward;
            rec.discounted_return += discount * reward;
            discount *= self.config.gamma;
            state = next;
        }
        rec
    }

    /// Deterministic rollout conditioned on an explicit arrival-level
    /// sequence.
    pub fn rollout_conditioned(
        &self,
        policy: &dyn UpperPolicy,
        lambda_seq: &[usize],
    ) -> EpisodeRecord {
        let mut rec = EpisodeRecord::default();
        let mut discount = 1.0;
        let mut state = PhMfState {
            dist: PhDist::from_lengths(
                &StateDist::new(self.config.initial_dist.clone()),
                &self.service,
            ),
            lambda_idx: lambda_seq[0],
        };
        for t in 0..lambda_seq.len() {
            let lambda = self.config.arrivals.level_rate(state.lambda_idx);
            let rule = policy.decide(&state.dist.length_marginal(), state.lambda_idx, lambda);
            let next_lambda = *lambda_seq.get(t + 1).unwrap_or(&state.lambda_idx);
            let (next, reward, _) = self.step_with_next_lambda(&state, &rule, next_lambda);
            rec.drops_per_epoch.push(-reward);
            rec.total_return += reward;
            rec.discounted_return += discount * reward;
            discount *= self.config.gamma;
            state = next;
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::{FixedRulePolicy, MeanFieldMdp};

    fn jsq() -> DecisionRule {
        DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    #[test]
    fn joint_layout_roundtrip_and_marginal() {
        let nu = StateDist::new(vec![0.4, 0.3, 0.2, 0.1]);
        let service = PhaseType::erlang(2, 2.0);
        let joint = PhDist::from_lengths(&nu, &service);
        assert_eq!(joint.as_slice().len(), 1 + 3 * 2);
        let back = joint.length_marginal();
        assert!(nu.l1_distance(&back) < 1e-12);
        // Busy states carry the α split (Erlang starts in phase 0).
        assert!((joint.prob(1, 0) - 0.3).abs() < 1e-12);
        assert_eq!(joint.prob(1, 1), 0.0);
    }

    #[test]
    fn one_phase_reduces_to_plain_mean_field() {
        // PH = exponential(α): the PH step must agree with the Eq. 20–28
        // implementation to machine precision on a whole trajectory.
        let cfg = SystemConfig::paper().with_dt(4.0);
        let plain = MeanFieldMdp::new(cfg.clone());
        let ph = PhMeanFieldMdp::new(cfg, PhaseType::exponential(1.0));
        let policy = FixedRulePolicy::new(jsq(), "MF-JSQ(2)");
        let seq = vec![0usize, 1, 0, 0, 1, 1, 0, 1, 0, 0];
        let a = plain.rollout_conditioned(&policy, &seq);
        let b = ph.rollout_conditioned(&policy, &seq);
        for (x, y) in a.drops_per_epoch.iter().zip(b.drops_per_epoch.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn step_conserves_mass_and_bounds_drops() {
        let service = PhaseType::fit_mean_scv(1.0, 2.0);
        let joint = PhDist::from_lengths(&StateDist::uniform(5), &service);
        let step = ph_mean_field_step(&joint, &jsq(), 0.9, &service, 5.0);
        let mass: f64 = step.next_dist.as_slice().iter().sum();
        assert!((mass - 1.0).abs() < 1e-10);
        assert!(step.expected_drops >= 0.0 && step.expected_drops <= 0.9 * 5.0);
    }

    #[test]
    fn higher_service_variability_drops_more() {
        // Long conditioned rollout at fixed mean service time: SCV 4
        // service must lose more packets than SCV 0.25 under JSQ.
        let cfg = SystemConfig::paper().with_dt(5.0);
        let policy = FixedRulePolicy::new(jsq(), "MF-JSQ(2)");
        let seq = vec![0usize; 30];
        let drops_of = |scv: f64| {
            let mdp = PhMeanFieldMdp::new(cfg.clone(), PhaseType::fit_mean_scv(1.0, scv));
            -mdp.rollout_conditioned(&policy, &seq).total_return
        };
        let low = drops_of(0.25);
        let high = drops_of(4.0);
        assert!(low < high, "SCV 0.25 drops {low} must be below SCV 4 drops {high}");
    }

    #[test]
    fn phase_mix_drifts_away_from_alpha_under_load() {
        // After an epoch under load, the in-service phase distribution is
        // no longer the fresh-start α (phases age) — the whole reason the
        // joint state is necessary.
        let service = PhaseType::erlang(2, 2.0);
        let joint = PhDist::from_lengths(&StateDist::all_empty(5), &service);
        let step = ph_mean_field_step(&joint, &jsq(), 0.9, &service, 5.0);
        let d = &step.next_dist;
        // Some queues at length 1 must be in the second Erlang stage.
        assert!(d.prob(1, 1) > 1e-4, "aged phase mass {}", d.prob(1, 1));
    }

    #[test]
    fn seeded_rollouts_reproduce() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = SystemConfig::paper().with_dt(5.0);
        let mdp = PhMeanFieldMdp::new(cfg, PhaseType::fit_mean_scv(1.0, 0.5));
        let policy = FixedRulePolicy::new(jsq(), "MF-JSQ(2)");
        let a = mdp.rollout(&policy, 12, &mut StdRng::seed_from_u64(9));
        let b = mdp.rollout(&policy, 12, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
    }
}

//! Crate-level property tests for the neural-network substrate.

use mflb_nn::{clip_grad_norm, Activation, Adam, DiagGaussian, Mlp, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full-network gradient check on random shapes, inputs and seeds:
    /// backprop must match central finite differences everywhere.
    #[test]
    fn random_network_gradient_check(
        seed in 0u64..200,
        hidden in 2usize..10,
        batch in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[3, hidden, 2], Activation::Tanh, &mut rng);
        let x = Tensor::from_vec(
            batch,
            3,
            (0..batch * 3).map(|i| ((i as f64) * 1.37 + seed as f64).sin()).collect(),
        );
        let cache = mlp.forward_cached(&x);
        let grad_out = cache.output().clone();
        let analytic = mlp.backward(&cache, &grad_out);
        let loss = |m: &Mlp| -> f64 {
            m.forward(&x).as_slice().iter().map(|v| v * v).sum::<f64>() / 2.0
        };
        let mut params = mlp.params_vec();
        let eps = 1e-6;
        // Check a handful of random-ish indices.
        for idx in (0..params.len()).step_by((params.len() / 7).max(1)) {
            let orig = params[idx];
            params[idx] = orig + eps;
            mlp.read_params(&params);
            let up = loss(&mlp);
            params[idx] = orig - eps;
            mlp.read_params(&params);
            let down = loss(&mlp);
            params[idx] = orig;
            mlp.read_params(&params);
            let numeric = (up - down) / (2.0 * eps);
            prop_assert!((numeric - analytic[idx]).abs() < 1e-5,
                "param {idx}: numeric {numeric} vs analytic {}", analytic[idx]);
        }
    }

    /// Gaussian log-probabilities integrate sensibly: the density at the
    /// mean dominates, and log_prob is symmetric around the mean.
    #[test]
    fn gaussian_symmetry(
        mean in -3.0f64..3.0,
        log_std in -1.5f64..1.0,
        offset in 0.01f64..2.0,
    ) {
        let m = [mean];
        let ls = [log_std];
        let g = DiagGaussian::new(&m, &ls);
        let up = g.log_prob(&[mean + offset]);
        let down = g.log_prob(&[mean - offset]);
        prop_assert!((up - down).abs() < 1e-10);
        prop_assert!(g.log_prob(&[mean]) >= up);
    }

    /// Adam converges on random strongly convex quadratics.
    #[test]
    fn adam_minimizes_random_quadratic(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let target: Vec<f64> = (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let curv: Vec<f64> = (0..4).map(|_| rng.gen_range(0.5..3.0)).collect();
        let mut x = vec![0.0; 4];
        let mut opt = Adam::new(4, 0.05);
        for step in 0..4_000 {
            // Constant-rate Adam limit-cycles with amplitude ~lr around the
            // optimum; decay the rate over the last quarter so the iterate
            // settles well inside the 1e-2 tolerance for every curvature draw.
            if step >= 3_000 {
                opt.lr = 0.05 * (4_000 - step) as f64 / 1_000.0;
            }
            let grads: Vec<f64> = x
                .iter()
                .zip(&target)
                .zip(&curv)
                .map(|((xi, t), c)| 2.0 * c * (xi - t))
                .collect();
            opt.step(&mut x, &grads);
        }
        for (xi, t) in x.iter().zip(&target) {
            prop_assert!((xi - t).abs() < 1e-2, "{xi} vs {t}");
        }
    }

    /// Gradient clipping never increases the norm and preserves direction.
    #[test]
    fn clip_preserves_direction(
        g in proptest::collection::vec(-5.0f64..5.0, 2..12),
        max_norm in 0.1f64..10.0,
    ) {
        let mut clipped = g.clone();
        clip_grad_norm(&mut clipped, max_norm);
        let norm: f64 = clipped.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(norm <= max_norm + 1e-9);
        // Direction preserved: all components share sign and ratio.
        let orig_norm: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        if orig_norm > max_norm {
            let scale = max_norm / orig_norm;
            for (c, o) in clipped.iter().zip(&g) {
                prop_assert!((c - o * scale).abs() < 1e-9);
            }
        } else {
            prop_assert_eq!(&clipped, &g);
        }
    }

    /// Tensor matmul identities: (A·B)·C == A·(B·C) for random chains.
    #[test]
    fn matmul_associativity(
        a_vals in proptest::collection::vec(-1.0f64..1.0, 6),
        b_vals in proptest::collection::vec(-1.0f64..1.0, 6),
        c_vals in proptest::collection::vec(-1.0f64..1.0, 4),
    ) {
        let a = Tensor::from_vec(2, 3, a_vals);
        let b = Tensor::from_vec(3, 2, b_vals);
        let c = Tensor::from_vec(2, 2, c_vals);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-10);
        }
    }
}

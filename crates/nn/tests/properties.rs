//! Crate-level property tests for the neural-network substrate.

use mflb_nn::{clip_grad_norm, Activation, Adam, DiagGaussian, Mlp, Tensor, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trims a generated entry pool to `n` values, injecting exact ±0.0
/// entries so the blocked kernels' zero-skip branches face the same
/// inputs the naive kernels special-case.
fn entries(pool: &[f64], n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| match i % 7 {
            3 => 0.0,
            5 => -0.0,
            _ => pool[i % pool.len()],
        })
        .collect()
}

/// Bitwise slice equality (stricter than `==`: distinguishes ±0.0).
fn assert_bits(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "entry {i}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full-network gradient check on random shapes, inputs and seeds:
    /// backprop must match central finite differences everywhere. The
    /// analytic gradient deliberately runs through the workspace path
    /// (`forward_into`/`backward_into`) — the one PPO trains with — so the
    /// finite-difference certificate covers the production kernels.
    #[test]
    fn random_network_gradient_check(
        seed in 0u64..200,
        hidden in 2usize..10,
        batch in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[3, hidden, 2], Activation::Tanh, &mut rng);
        let x = Tensor::from_vec(
            batch,
            3,
            (0..batch * 3).map(|i| ((i as f64) * 1.37 + seed as f64).sin()).collect(),
        );
        let mut ws = Workspace::new();
        mlp.forward_into(&x, &mut ws);
        let grad_out = ws.output().clone();
        let analytic = mlp.backward_into(&mut ws, &grad_out).to_vec();
        let loss = |m: &Mlp| -> f64 {
            m.forward(&x).as_slice().iter().map(|v| v * v).sum::<f64>() / 2.0
        };
        let mut params = mlp.params_vec();
        let eps = 1e-6;
        // Check a handful of random-ish indices.
        for idx in (0..params.len()).step_by((params.len() / 7).max(1)) {
            let orig = params[idx];
            params[idx] = orig + eps;
            mlp.read_params(&params);
            let up = loss(&mlp);
            params[idx] = orig - eps;
            mlp.read_params(&params);
            let down = loss(&mlp);
            params[idx] = orig;
            mlp.read_params(&params);
            let numeric = (up - down) / (2.0 * eps);
            prop_assert!((numeric - analytic[idx]).abs() < 1e-5,
                "param {idx}: numeric {numeric} vs analytic {}", analytic[idx]);
        }
    }

    /// Gaussian log-probabilities integrate sensibly: the density at the
    /// mean dominates, and log_prob is symmetric around the mean.
    #[test]
    fn gaussian_symmetry(
        mean in -3.0f64..3.0,
        log_std in -1.5f64..1.0,
        offset in 0.01f64..2.0,
    ) {
        let m = [mean];
        let ls = [log_std];
        let g = DiagGaussian::new(&m, &ls);
        let up = g.log_prob(&[mean + offset]);
        let down = g.log_prob(&[mean - offset]);
        prop_assert!((up - down).abs() < 1e-10);
        prop_assert!(g.log_prob(&[mean]) >= up);
    }

    /// Adam converges on random strongly convex quadratics.
    #[test]
    fn adam_minimizes_random_quadratic(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let target: Vec<f64> = (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let curv: Vec<f64> = (0..4).map(|_| rng.gen_range(0.5..3.0)).collect();
        let mut x = vec![0.0; 4];
        let mut opt = Adam::new(4, 0.05);
        for step in 0..4_000 {
            // Constant-rate Adam limit-cycles with amplitude ~lr around the
            // optimum; decay the rate over the last quarter so the iterate
            // settles well inside the 1e-2 tolerance for every curvature draw.
            if step >= 3_000 {
                opt.lr = 0.05 * (4_000 - step) as f64 / 1_000.0;
            }
            let grads: Vec<f64> = x
                .iter()
                .zip(&target)
                .zip(&curv)
                .map(|((xi, t), c)| 2.0 * c * (xi - t))
                .collect();
            opt.step(&mut x, &grads);
        }
        for (xi, t) in x.iter().zip(&target) {
            prop_assert!((xi - t).abs() < 1e-2, "{xi} vs {t}");
        }
    }

    /// Gradient clipping never increases the norm and preserves direction.
    #[test]
    fn clip_preserves_direction(
        g in proptest::collection::vec(-5.0f64..5.0, 2..12),
        max_norm in 0.1f64..10.0,
    ) {
        let mut clipped = g.clone();
        clip_grad_norm(&mut clipped, max_norm);
        let norm: f64 = clipped.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(norm <= max_norm + 1e-9);
        // Direction preserved: all components share sign and ratio.
        let orig_norm: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        if orig_norm > max_norm {
            let scale = max_norm / orig_norm;
            for (c, o) in clipped.iter().zip(&g) {
                prop_assert!((c - o * scale).abs() < 1e-9);
            }
        } else {
            prop_assert_eq!(&clipped, &g);
        }
    }

    /// The register-blocked `*_into` kernels are **bit-identical** to the
    /// naive allocating matmuls on random shapes straddling every panel
    /// boundary (32/8/4/1 lanes), with exact ±0.0 entries mixed in so the
    /// zero-skip branches face the inputs the naive kernels special-case.
    #[test]
    fn blocked_kernels_bit_identical_to_naive(
        r in 1usize..6,
        k in 1usize..9,
        c in 1usize..48,
        pool in proptest::collection::vec(-2.0f64..2.0, 64..=64),
    ) {
        let a_vals = entries(&pool, r * k);
        let b_vals = entries(&pool[7..], k * c);
        let a = Tensor::from_vec(r, k, a_vals.clone());
        let b = Tensor::from_vec(k, c, b_vals.clone());
        let mut out = Tensor::zeros(0, 0);

        a.matmul_into(&b, &mut out);
        assert_bits(out.as_slice(), a.matmul(&b).as_slice());

        // Aᵀ·B with the same entries reinterpreted (k×r)ᵀ·(k×c) → (r×c).
        let at = Tensor::from_vec(k, r, a_vals);
        at.matmul_tn_into(&b, &mut out);
        assert_bits(out.as_slice(), at.matmul_tn(&b).as_slice());

        // A·Bᵀ with b's entries reinterpreted (c×k) → (r×c).
        let bt = Tensor::from_vec(c, k, b_vals);
        a.matmul_nt_into(&bt, &mut out);
        assert_bits(out.as_slice(), a.matmul_nt(&bt).as_slice());

        // Batch-1 gemv fast path vs a 1-row naive matmul.
        let x = a.row(0);
        let mut gout = vec![0.0; c];
        Tensor::gemv_into(x, &b, &mut gout);
        let xt = Tensor::from_vec(1, k, x.to_vec());
        assert_bits(&gout, xt.matmul(&b).as_slice());
    }

    /// `forward_into`/`backward_into` through one **reused** workspace are
    /// bit-identical to `forward_cached`/`backward`, across alternating
    /// batch sizes (the PPO final-minibatch pattern) and the batch-1
    /// inference path.
    #[test]
    fn workspace_paths_bit_identical_to_allocating(
        seed in 0u64..200,
        h1 in 1usize..9,
        h2 in 1usize..9,
        b1 in 1usize..5,
        b2 in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[3, h1, h2, 2], Activation::Tanh, &mut rng);
        let mut ws = Workspace::new();
        for (round, batch) in [b1, b2, b1].into_iter().enumerate() {
            let x = Tensor::from_vec(
                batch,
                3,
                (0..batch * 3)
                    .map(|i| ((i as f64) * 0.91 + seed as f64 + round as f64).sin())
                    .collect(),
            );
            let cache = mlp.forward_cached(&x);
            {
                let out = mlp.forward_into(&x, &mut ws);
                assert_bits(out.as_slice(), cache.output().as_slice());
            }
            let grad_out = cache.output().clone();
            let flat_ref = mlp.backward(&cache, &grad_out);
            let flat = mlp.backward_into(&mut ws, &grad_out);
            assert_bits(&flat_ref, flat);
        }
        // Batch-1 fast path through the same (already warm) workspace.
        let x1 = [0.3, -0.6, 0.2];
        let one = mlp.forward_one_into(&x1, &mut ws).to_vec();
        assert_bits(&one, &mlp.forward_one(&x1));
    }

    /// Tensor matmul identities: (A·B)·C == A·(B·C) for random chains.
    #[test]
    fn matmul_associativity(
        a_vals in proptest::collection::vec(-1.0f64..1.0, 6),
        b_vals in proptest::collection::vec(-1.0f64..1.0, 6),
        c_vals in proptest::collection::vec(-1.0f64..1.0, 4),
    ) {
        let a = Tensor::from_vec(2, 3, a_vals);
        let b = Tensor::from_vec(3, 2, b_vals);
        let c = Tensor::from_vec(2, 2, c_vals);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-10);
        }
    }
}

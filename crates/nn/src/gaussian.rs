//! Diagonal Gaussian action distributions for continuous-control PPO.
//!
//! The upper-level policy emits a mean vector (the decision-rule logits)
//! from the MLP plus a state-independent learnable `log_std` vector; actions
//! are sampled as `a = μ + σ·ξ`, `ξ ∼ N(0, I)`. This module provides
//! sampling, log-densities, entropy and their gradients — everything the
//! PPO loss needs, in closed form.

use rand::Rng;

/// Natural log of √(2π).
const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_7;

/// A diagonal Gaussian `N(mean, diag(exp(log_std))²)` over `ℝ^k`.
///
/// The struct borrows its parameters; PPO owns `log_std` as trainable
/// parameters next to the network weights.
#[derive(Debug, Clone, Copy)]
pub struct DiagGaussian<'a> {
    /// Mean vector μ.
    pub mean: &'a [f64],
    /// Per-dimension log standard deviations.
    pub log_std: &'a [f64],
}

impl<'a> DiagGaussian<'a> {
    /// Creates the distribution (dimensions must agree).
    pub fn new(mean: &'a [f64], log_std: &'a [f64]) -> Self {
        assert_eq!(mean.len(), log_std.len(), "mean/log_std dim mismatch");
        Self { mean, log_std }
    }

    /// Dimensionality `k`.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Samples an action with the Box–Muller transform (no external
    /// distribution crates).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.mean
            .iter()
            .zip(self.log_std.iter())
            .map(|(&m, &ls)| m + ls.exp() * standard_normal(rng))
            .collect()
    }

    /// Log-density `ln p(a)`.
    pub fn log_prob(&self, action: &[f64]) -> f64 {
        assert_eq!(action.len(), self.dim());
        let mut lp = 0.0;
        for ((&a, &m), &ls) in action.iter().zip(self.mean).zip(self.log_std) {
            let inv_std = (-ls).exp();
            let z = (a - m) * inv_std;
            lp += -0.5 * z * z - ls - LN_SQRT_2PI;
        }
        lp
    }

    /// Differential entropy `Σ_i (log_std_i + ½·ln(2πe))`.
    pub fn entropy(&self) -> f64 {
        Self::entropy_from_log_std(self.log_std)
    }

    /// Differential entropy computed straight from a `log_std` vector.
    ///
    /// The entropy of a diagonal Gaussian is **mean-independent**, so
    /// callers that only track the exploration head (PPO's per-minibatch
    /// entropy stat) need no throwaway distribution to evaluate it.
    pub fn entropy_from_log_std(log_std: &[f64]) -> f64 {
        let half_ln_2pie = 0.5 * (1.0 + LN_SQRT_2PI * 2.0);
        log_std.iter().map(|&ls| ls + half_ln_2pie).sum()
    }

    /// Gradient of `ln p(a)` with respect to the mean:
    /// `∂lnp/∂μ_i = (a_i − μ_i)/σ_i²`.
    pub fn log_prob_grad_mean(&self, action: &[f64]) -> Vec<f64> {
        action
            .iter()
            .zip(self.mean)
            .zip(self.log_std)
            .map(|((&a, &m), &ls)| {
                let inv_var = (-2.0 * ls).exp();
                (a - m) * inv_var
            })
            .collect()
    }

    /// Gradient of `ln p(a)` with respect to `log_std`:
    /// `∂lnp/∂ls_i = ((a_i − μ_i)/σ_i)² − 1`.
    pub fn log_prob_grad_log_std(&self, action: &[f64]) -> Vec<f64> {
        action
            .iter()
            .zip(self.mean)
            .zip(self.log_std)
            .map(|((&a, &m), &ls)| {
                let z = (a - m) * (-ls).exp();
                z * z - 1.0
            })
            .collect()
    }

    /// Allocation-free twin of [`DiagGaussian::log_prob_grad_mean`]
    /// writing into a caller-owned scratch slice (bit-identical values).
    pub fn log_prob_grad_mean_into(&self, action: &[f64], out: &mut [f64]) {
        assert_eq!(action.len(), self.dim());
        assert_eq!(out.len(), self.dim());
        for (o, ((&a, &m), &ls)) in
            out.iter_mut().zip(action.iter().zip(self.mean).zip(self.log_std))
        {
            let inv_var = (-2.0 * ls).exp();
            *o = (a - m) * inv_var;
        }
    }

    /// Allocation-free twin of [`DiagGaussian::log_prob_grad_log_std`]
    /// writing into a caller-owned scratch slice (bit-identical values).
    pub fn log_prob_grad_log_std_into(&self, action: &[f64], out: &mut [f64]) {
        assert_eq!(action.len(), self.dim());
        assert_eq!(out.len(), self.dim());
        for (o, ((&a, &m), &ls)) in
            out.iter_mut().zip(action.iter().zip(self.mean).zip(self.log_std))
        {
            let z = (a - m) * (-ls).exp();
            *o = z * z - 1.0;
        }
    }
}

/// One standard-normal variate via Box–Muller (two uniforms per pair; we
/// draw fresh pairs for simplicity — the simulator dominates runtime).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_prob_matches_scalar_formula() {
        let mean = [1.0];
        let log_std = [0.5f64];
        let g = DiagGaussian::new(&mean, &log_std);
        let a = 1.7;
        let sigma = 0.5f64.exp();
        let expect = -0.5 * ((a - 1.0) / sigma).powi(2)
            - sigma.ln()
            - 0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((g.log_prob(&[a]) - expect).abs() < 1e-12);
    }

    #[test]
    fn entropy_matches_formula() {
        let mean = [0.0, 0.0];
        let log_std = [0.0, 1.0];
        let g = DiagGaussian::new(&mean, &log_std);
        let per_dim = 0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E).ln();
        assert!((g.entropy() - (2.0 * per_dim + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mean = [0.3, -0.7, 1.2];
        let log_std = [0.1, -0.4, 0.0];
        let action = [0.5, -0.5, 1.0];
        let g = DiagGaussian::new(&mean, &log_std);
        let gm = g.log_prob_grad_mean(&action);
        let gs = g.log_prob_grad_log_std(&action);
        let eps = 1e-6;
        for i in 0..3 {
            let mut m2 = mean;
            m2[i] += eps;
            let up = DiagGaussian::new(&m2, &log_std).log_prob(&action);
            m2[i] -= 2.0 * eps;
            let down = DiagGaussian::new(&m2, &log_std).log_prob(&action);
            assert!(((up - down) / (2.0 * eps) - gm[i]).abs() < 1e-6, "mean[{i}]");

            let mut s2 = log_std;
            s2[i] += eps;
            let up = DiagGaussian::new(&mean, &s2).log_prob(&action);
            s2[i] -= 2.0 * eps;
            let down = DiagGaussian::new(&mean, &s2).log_prob(&action);
            assert!(((up - down) / (2.0 * eps) - gs[i]).abs() < 1e-6, "log_std[{i}]");
        }
    }

    #[test]
    fn sample_statistics() {
        let mean = [2.0];
        let log_std = [0.0]; // σ = 1
        let g = DiagGaussian::new(&mean, &log_std);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = mflb_linalg_stats_shim::Summary::new();
        for _ in 0..100_000 {
            s.push(g.sample(&mut rng)[0]);
        }
        assert!((s.mean() - 2.0).abs() < 0.02, "mean {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.03, "var {}", s.variance());
    }

    /// Tiny local Welford summary so the nn crate stays free of the linalg
    /// dependency (kept private to the tests).
    mod mflb_linalg_stats_shim {
        pub struct Summary {
            n: u64,
            mean: f64,
            m2: f64,
        }
        impl Summary {
            pub fn new() -> Self {
                Self { n: 0, mean: 0.0, m2: 0.0 }
            }
            pub fn push(&mut self, x: f64) {
                self.n += 1;
                let d = x - self.mean;
                self.mean += d / self.n as f64;
                self.m2 += d * (x - self.mean);
            }
            pub fn mean(&self) -> f64 {
                self.mean
            }
            pub fn variance(&self) -> f64 {
                self.m2 / (self.n - 1) as f64
            }
        }
    }

    #[test]
    fn log_prob_is_maximized_at_mean() {
        let mean = [0.5, -0.5];
        let log_std = [0.2, 0.2];
        let g = DiagGaussian::new(&mean, &log_std);
        let at_mean = g.log_prob(&mean);
        let off = g.log_prob(&[0.6, -0.4]);
        assert!(at_mean > off);
    }
}

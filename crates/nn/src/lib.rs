//! Minimal neural-network substrate for the hand-rolled PPO stack.
//!
//! The `repro` assessment of this paper flags Rust RL crates as immature,
//! so the whole learning stack is built from scratch. This crate provides
//! the differentiable pieces:
//!
//! * [`tensor::Tensor`] — batched row-major 2-D math,
//! * [`linear::Linear`] — dense layers with audit-friendly explicit
//!   backprop,
//! * [`mlp::Mlp`] — tanh MLPs (the paper's 2×256 policy/value networks,
//!   Fig. 2) with flat-parameter I/O and finite-difference-checked
//!   gradients,
//! * [`adam::Adam`] — flat-vector Adam plus global-norm gradient clipping,
//! * [`gaussian::DiagGaussian`] — diagonal Gaussian heads with closed-form
//!   log-probability/entropy gradients.
//!
//! Everything serializes with `serde` so trained policies can be
//! checkpointed to JSON and reloaded by the evaluation binaries.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod adam;
pub mod gaussian;
pub mod linear;
pub mod mlp;
pub mod tensor;

pub use adam::{clip_grad_norm, Adam};
pub use gaussian::{standard_normal, DiagGaussian};
pub use linear::Linear;
pub use mlp::{Activation, ForwardCache, Mlp};
pub use tensor::Tensor;

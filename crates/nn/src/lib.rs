//! Minimal neural-network substrate for the hand-rolled PPO stack.
//!
//! The `repro` assessment of this paper flags Rust RL crates as immature,
//! so the whole learning stack is built from scratch. This crate provides
//! the differentiable pieces:
//!
//! * [`tensor::Tensor`] — batched row-major 2-D math,
//! * [`linear::Linear`] — dense layers with audit-friendly explicit
//!   backprop,
//! * [`mlp::Mlp`] — tanh MLPs (the paper's 2×256 policy/value networks,
//!   Fig. 2) with flat-parameter I/O and finite-difference-checked
//!   gradients,
//! * [`adam::Adam`] — flat-vector Adam plus global-norm gradient clipping,
//! * [`gaussian::DiagGaussian`] — diagonal Gaussian heads with closed-form
//!   log-probability/entropy gradients.
//!
//! # Performance
//!
//! The training/inference hot path is allocation-free: every matmul has a
//! register-blocked `*_into` twin writing into caller-owned buffers
//! ([`tensor::Tensor::matmul_into`] and friends, plus the batch-1
//! [`tensor::Tensor::gemv_into`] fast path), [`mlp::Workspace`] keeps
//! activations/gradients/flat-gradient buffers alive across calls
//! ([`mlp::Mlp::forward_into`]/[`mlp::Mlp::backward_into`]), and
//! [`adam::Adam::step_segments`] updates the network parameters in place
//! over split slices ([`mlp::Mlp::params_mut`]) without the flat-vector
//! round-trip. All fast paths are **bit-identical** to their naive,
//! allocating counterparts (same per-element accumulation order), which
//! the crate's property tests enforce — so enabling them never perturbs a
//! seed-pinned training run.
//!
//! Component ↔ paper map (Tahir, Cui & Koeppl, ICPP '22):
//!
//! * [`mlp::Mlp`] with [`mlp::Activation::Tanh`] realizes the 2×256 tanh
//!   policy and value networks of Fig. 2 / Table 2 (`fcnet_hiddens`),
//! * [`gaussian::DiagGaussian`] is the continuous action head whose means
//!   are the decision-rule logits of the §4 "manual normalization"
//!   parameterization; its exploration σ is the state-independent
//!   `log_std` PPO adapts,
//! * [`adam::Adam`] implements the optimizer behind Table 2's learning
//!   rate `5·10⁻⁵`, with [`adam::clip_grad_norm`] as RLlib's `grad_clip`,
//! * GAE(λ) itself lives in `mflb_rl::buffer` (Table 2: `λ_RL = 1`), and
//!   the clipped surrogate + adaptive-KL loss in `mflb_rl::ppo`.
//!
//! Everything serializes with `serde` so trained policies can be
//! checkpointed to JSON (`mflb_rl`'s versioned `TrainingCheckpoint`) and
//! reloaded by the evaluation binaries.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod adam;
pub mod fast;
pub mod gaussian;
pub mod linear;
pub mod mlp;
pub mod tensor;

pub use adam::{clip_grad_norm, Adam};
pub use fast::{fast_tanh, fast_tanh_f32, F32Mlp, F32Workspace, TanhMode};
pub use gaussian::{standard_normal, DiagGaussian};
pub use linear::Linear;
pub use mlp::{Activation, ForwardCache, Mlp, Workspace};
pub use tensor::Tensor;

//! Fast inference kernels: a vectorizable rational `tanh` and a narrowed
//! `f32` forward-only network.
//!
//! The batch-1 serving path is dominated by libm `tanh` (~10 ns/element)
//! and by streaming 512 KB of `f64` weights per decision on the paper's
//! 2×256 nets. This module provides the two ROADMAP remedies:
//!
//! * [`fast_tanh`] / [`fast_tanh_f32`] — a clamped odd rational
//!   approximation (the Eigen/XLA `ptanh` polynomial) that the compiler
//!   autovectorizes under the pinned `target-cpu`, selected via
//!   [`TanhMode::Fast`];
//! * [`F32Mlp`] + [`F32Workspace`] — a forward-only single-precision copy
//!   of a trained [`Mlp`] (half the weight traffic),
//!   built with [`Mlp::to_f32`](crate::mlp::Mlp::to_f32).
//!
//! Both are opt-in: the default [`TanhMode::BitCompat`] keeps every
//! pinned checkpoint and regression stream byte-identical, and `f32`
//! serving is gated behind an explicit `--precision f32` flag plus an
//! eval certification gate upstream.

use crate::linear::Linear;
use crate::mlp::{Activation, Mlp};

/// How `tanh` activations are evaluated during a forward pass.
///
/// Training always uses [`TanhMode::BitCompat`] semantics (the backward
/// pass is derived from post-activation values and is unaffected by the
/// mode); `Fast` is an inference-only switch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TanhMode {
    /// libm `tanh` — bit-identical to every pinned checkpoint,
    /// regression stream, and training trajectory. The default.
    #[default]
    BitCompat,
    /// Clamped rational approximation ([`fast_tanh`]): ~1e-7 max
    /// absolute error, branchless, autovectorizes. Opt-in via
    /// `--fast-math` on the serving/eval CLIs.
    Fast,
}

/// Saturation clamp for the rational approximation: beyond this |x| the
/// polynomial ratio is within f32 ulp of ±1.
const TANH_CLAMP: f64 = 7.905_311_107_635_498;

const ALPHA_1: f64 = 4.893_524_558_917_86e-3;
const ALPHA_3: f64 = 6.372_619_288_754_36e-4;
const ALPHA_5: f64 = 1.485_722_357_179_79e-5;
const ALPHA_7: f64 = 5.122_297_090_371_14e-8;
const ALPHA_9: f64 = -8.604_671_522_137_35e-11;
const ALPHA_11: f64 = 2.000_187_904_824_77e-13;
const ALPHA_13: f64 = -2.760_768_477_423_55e-16;
const BETA_0: f64 = 4.893_525_185_543_85e-3;
const BETA_2: f64 = 2.268_434_632_439e-3;
const BETA_4: f64 = 1.185_347_056_866_54e-4;
const BETA_6: f64 = 1.198_258_394_667_02e-6;

/// Branchless rational `tanh` approximation (numerator degree 13,
/// denominator degree 6, inputs clamped to ±7.905…).
///
/// Max absolute error vs libm `tanh` is ~1e-7 over ℝ — far below the
/// softmax temperature scale of the decision-rule logits — and the
/// straight-line clamp/Horner body autovectorizes where a libm call
/// cannot. Selected by [`TanhMode::Fast`].
#[inline]
pub fn fast_tanh(x: f64) -> f64 {
    let x = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let x2 = x * x;
    let mut p = ALPHA_13;
    p = x2 * p + ALPHA_11;
    p = x2 * p + ALPHA_9;
    p = x2 * p + ALPHA_7;
    p = x2 * p + ALPHA_5;
    p = x2 * p + ALPHA_3;
    p = x2 * p + ALPHA_1;
    p *= x;
    let mut q = BETA_6;
    q = x2 * q + BETA_4;
    q = x2 * q + BETA_2;
    q = x2 * q + BETA_0;
    p / q
}

/// Single-precision twin of [`fast_tanh`] for the [`F32Mlp`] tier.
#[inline]
pub fn fast_tanh_f32(x: f32) -> f32 {
    let x = x.clamp(-(TANH_CLAMP as f32), TANH_CLAMP as f32);
    let x2 = x * x;
    let mut p = ALPHA_13 as f32;
    p = x2 * p + ALPHA_11 as f32;
    p = x2 * p + ALPHA_9 as f32;
    p = x2 * p + ALPHA_7 as f32;
    p = x2 * p + ALPHA_5 as f32;
    p = x2 * p + ALPHA_3 as f32;
    p = x2 * p + ALPHA_1 as f32;
    p *= x;
    let mut q = BETA_6 as f32;
    q = x2 * q + BETA_4 as f32;
    q = x2 * q + BETA_2 as f32;
    q = x2 * q + BETA_0 as f32;
    p / q
}

/// One dense layer of an [`F32Mlp`]: weights row-major `fan_in × fan_out`
/// plus a bias, all narrowed to `f32`.
#[derive(Debug, Clone)]
struct F32Layer {
    w: Vec<f32>,
    b: Vec<f32>,
    fan_in: usize,
    fan_out: usize,
}

impl F32Layer {
    fn from_linear(l: &Linear) -> Self {
        Self {
            w: l.w.as_slice().iter().map(|&v| v as f32).collect(),
            b: l.b.iter().map(|&v| v as f32).collect(),
            fan_in: l.fan_in(),
            fan_out: l.fan_out(),
        }
    }

    /// `y[r] = x[r]·W + b` for each of `rows` stacked rows — an
    /// axpy-ordered loop (unit-stride inner dimension) the compiler turns
    /// into packed FMA under the pinned `target-cpu`.
    fn forward_rows(&self, rows: usize, x: &[f32], y: &mut [f32]) {
        for r in 0..rows {
            let xr = &x[r * self.fan_in..(r + 1) * self.fan_in];
            let yr = &mut y[r * self.fan_out..(r + 1) * self.fan_out];
            yr.copy_from_slice(&self.b);
            for (k, &xv) in xr.iter().enumerate() {
                let wrow = &self.w[k * self.fan_out..(k + 1) * self.fan_out];
                for (o, &wv) in yr.iter_mut().zip(wrow) {
                    *o += xv * wv;
                }
            }
        }
    }
}

/// Forward-only single-precision copy of a trained [`Mlp`], produced by
/// [`Mlp::to_f32`].
///
/// Halves the weight-streaming traffic that dominates batch-1 inference
/// on the paper's 2×256 networks. Outputs are **not** bit-identical to
/// the `f64` source (narrowing is lossy), so the serving CLI only enables
/// this tier behind `--precision f32`, certified by an eval gate that
/// compares drops/queue statistics against the `f64` checkpoint.
#[derive(Debug, Clone)]
pub struct F32Mlp {
    layers: Vec<F32Layer>,
    activation: Activation,
    tanh_mode: TanhMode,
}

impl F32Mlp {
    /// Narrows every layer of `mlp` to `f32`, inheriting its activation
    /// and [`TanhMode`].
    pub fn from_mlp(mlp: &Mlp) -> Self {
        Self {
            layers: mlp.layers().iter().map(F32Layer::from_linear).collect(),
            activation: mlp.activation(),
            tanh_mode: mlp.tanh_mode(),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().unwrap().fan_in
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().unwrap().fan_out
    }

    /// The `tanh` evaluation mode used by forward passes.
    pub fn tanh_mode(&self) -> TanhMode {
        self.tanh_mode
    }

    /// Sets the `tanh` evaluation mode (builder form).
    pub fn with_tanh_mode(mut self, mode: TanhMode) -> Self {
        self.tanh_mode = mode;
        self
    }

    /// Runs `rows` stacked input rows (`rows × input_dim`, row-major
    /// `f64` — narrowed on the fly) through the network; returns the
    /// `rows × output_dim` row-major `f32` output living in `ws`.
    ///
    /// Allocation-free once `ws` is warm.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * input_dim`.
    pub fn forward_rows_into<'w>(
        &self,
        rows: usize,
        data: &[f64],
        ws: &'w mut F32Workspace,
    ) -> &'w [f32] {
        assert_eq!(data.len(), rows * self.input_dim(), "input dims");
        ws.ensure(self, rows);
        for (dst, &src) in ws.acts[0].iter_mut().zip(data) {
            *dst = src as f32;
        }
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = ws.acts.split_at_mut(i + 1);
            layer.forward_rows(rows, &prev[i], &mut rest[0]);
            if i < last {
                let y = &mut rest[0];
                match (self.activation, self.tanh_mode) {
                    (Activation::Tanh, TanhMode::BitCompat) => {
                        for v in y.iter_mut() {
                            *v = v.tanh();
                        }
                    }
                    (Activation::Tanh, TanhMode::Fast) => {
                        for v in y.iter_mut() {
                            *v = fast_tanh_f32(*v);
                        }
                    }
                    (Activation::Relu, _) => {
                        for v in y.iter_mut() {
                            *v = v.max(0.0);
                        }
                    }
                    (Activation::Identity, _) => {}
                }
            }
        }
        ws.acts.last().unwrap()
    }

    /// Batch-1 convenience over [`F32Mlp::forward_rows_into`].
    pub fn forward_one_into<'w>(&self, x: &[f64], ws: &'w mut F32Workspace) -> &'w [f32] {
        self.forward_rows_into(1, x, ws)
    }
}

/// Reusable caller-owned scratch for [`F32Mlp`] forward passes —
/// the single-precision analogue of [`Workspace`](crate::mlp::Workspace),
/// forward-only (the `f32` tier never trains).
#[derive(Debug, Clone, Default)]
pub struct F32Workspace {
    /// `acts[0]` is the narrowed input copy; `acts[i+1]` the
    /// (post-activation, except for the last) output of layer `i`.
    acts: Vec<Vec<f32>>,
}

impl F32Workspace {
    /// An empty workspace; buffers materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes all buffers for `mlp` at `rows` rows, reusing capacity.
    fn ensure(&mut self, mlp: &F32Mlp, rows: usize) {
        let n = mlp.layers.len();
        if self.acts.len() != n + 1 {
            self.acts = vec![Vec::new(); n + 1];
        }
        self.acts[0].resize(rows * mlp.input_dim(), 0.0);
        for (i, layer) in mlp.layers.iter().enumerate() {
            let want = rows * layer.fan_out;
            if self.acts[i + 1].len() != want {
                self.acts[i + 1].resize(want, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Workspace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fast_tanh_tracks_libm() {
        let mut worst = 0.0f64;
        let mut x = -12.0;
        while x <= 12.0 {
            let err = (fast_tanh(x) - x.tanh()).abs();
            if err > worst {
                worst = err;
            }
            x += 1.0 / 1024.0;
        }
        assert!(worst < 5e-7, "max |fast_tanh - tanh| = {worst}");
        // Saturation and odd symmetry.
        assert!((fast_tanh(40.0) - 1.0).abs() < 1e-6);
        assert!((fast_tanh(-40.0) + 1.0).abs() < 1e-6);
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_tanh(0.7), -fast_tanh(-0.7));
    }

    #[test]
    fn fast_tanh_f32_tracks_libm() {
        let mut x = -10.0f32;
        while x <= 10.0 {
            let err = (fast_tanh_f32(x) - x.tanh()).abs();
            assert!(err < 3e-6, "x={x}: err {err}");
            x += 1.0 / 256.0;
        }
    }

    #[test]
    fn f32_forward_close_to_f64() {
        let mut rng = StdRng::seed_from_u64(11);
        let mlp = Mlp::new(&[6, 32, 32, 4], Activation::Tanh, &mut rng);
        let f32net = mlp.to_f32();
        assert_eq!(f32net.input_dim(), 6);
        assert_eq!(f32net.output_dim(), 4);
        let mut ws64 = Workspace::new();
        let mut ws32 = F32Workspace::new();
        let rows: Vec<Vec<f64>> =
            (0..5).map(|r| (0..6).map(|c| ((r * 6 + c) as f64 * 0.37).sin()).collect()).collect();
        // Batched f32 pass vs per-sample f64 reference.
        let flat: Vec<f64> = rows.concat();
        let out32 = f32net.forward_rows_into(5, &flat, &mut ws32).to_vec();
        for (r, row) in rows.iter().enumerate() {
            let ref64 = mlp.forward_one_into(row, &mut ws64).to_vec();
            for (c, &v64) in ref64.iter().enumerate() {
                let v32 = out32[r * 4 + c] as f64;
                assert!((v32 - v64).abs() < 1e-4, "row {r} col {c}: f32 {v32} vs f64 {v64}");
            }
        }
        // Batch-1 path agrees with the batched path bitwise.
        let one = f32net.forward_one_into(&rows[0], &mut ws32).to_vec();
        for (a, b) in one.iter().zip(&out32[..4]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_fast_mode_close_to_bitcompat() {
        let mut rng = StdRng::seed_from_u64(12);
        let mlp = Mlp::new(&[4, 16, 3], Activation::Tanh, &mut rng);
        let mut ws_a = F32Workspace::new();
        let mut ws_b = F32Workspace::new();
        let a = mlp.to_f32();
        let b = mlp.to_f32().with_tanh_mode(TanhMode::Fast);
        let x = [0.3, -0.9, 0.05, 0.6];
        let ya = a.forward_one_into(&x, &mut ws_a).to_vec();
        let yb = b.forward_one_into(&x, &mut ws_b).to_vec();
        for (u, v) in ya.iter().zip(&yb) {
            assert!((u - v).abs() < 1e-4);
        }
    }
}

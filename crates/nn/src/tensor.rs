//! A minimal 2-D tensor for batched MLP math.
//!
//! Row-major `f64` storage, shape `(rows, cols)`; rows are batch samples.
//! Three matmul variants cover forward and backward passes without
//! materializing transposes:
//!
//! * [`Tensor::matmul`] — `A·B`,
//! * [`Tensor::matmul_tn`] — `Aᵀ·B` (weight gradients `xᵀ·∂y`),
//! * [`Tensor::matmul_nt`] — `A·Bᵀ` (input gradients `∂y·Wᵀ`).
//!
//! Each has an allocation-free `*_into` twin writing into a caller-owned
//! output ([`Tensor::matmul_into`], [`Tensor::matmul_tn_into`],
//! [`Tensor::matmul_nt_into`]) plus a dedicated batch-1 row kernel
//! ([`Tensor::gemv_into`]). The `*_into` kernels are register-blocked —
//! output-column panels of f64 quads held in register accumulators,
//! 2-row × 4-column tiles for the `A·Bᵀ` dot-product kernel — but keep
//! the naive kernels' per-element accumulation order
//! (ascending `k`, zero left-operand terms skipped), so their results are
//! **bit-identical** to the naive methods (enforced by the crate's
//! property tests).

use serde::{Deserialize, Serialize};

/// Computes `W` consecutive output columns of one output row entirely in
/// registers: `acc[t] = Σ_k x[k]·b[k·bc + j + t]`. The `W` accumulator
/// lanes are independent (SIMD across columns), while each lane sums over
/// ascending `k` with `x[k] == 0` terms skipped — exactly the naive
/// [`Tensor::matmul`] per-element order, so results are bit-identical.
/// The top-level panel is 32 lanes (8 f64-quads — four whole cache lines
/// of `b` per step, and enough independent accumulator chains to hide
/// FP-add latency), narrowing to 8/4/1-lane panels for the remainder.
#[inline(always)]
fn row_panel<const W: usize>(x: &[f64], b: &[f64], bc: usize, j: usize, out_row: &mut [f64]) {
    let mut acc = [0.0f64; W];
    for (k, &xk) in x.iter().enumerate() {
        if xk == 0.0 {
            continue;
        }
        let br = &b[k * bc + j..k * bc + j + W];
        for t in 0..W {
            acc[t] += xk * br[t];
        }
    }
    out_row[j..j + W].copy_from_slice(&acc);
}

/// [`row_panel`] over a strided left operand (column `col` of a row-major
/// `(kn × stride)` matrix), for the transposed-A product.
// A micro-kernel wants its operand geometry spelled out flat; bundling the
// scalars into a struct would just move the argument list.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn row_panel_strided<const W: usize>(
    a: &[f64],
    stride: usize,
    col: usize,
    kn: usize,
    b: &[f64],
    bc: usize,
    j: usize,
    out_row: &mut [f64],
) {
    let mut acc = [0.0f64; W];
    for k in 0..kn {
        let xk = a[k * stride + col];
        if xk == 0.0 {
            continue;
        }
        let br = &b[k * bc + j..k * bc + j + W];
        for t in 0..W {
            acc[t] += xk * br[t];
        }
    }
    out_row[j..j + W].copy_from_slice(&acc);
}

/// Batch-1 row kernel `out[j] = Σ_k x[k]·b[k·bc + j]`, register-blocked
/// over the output columns in register panels (32/8/4/1-lane
/// remainders). Bit-identical to the naive [`Tensor::matmul`] order.
#[inline]
pub(crate) fn gemv(x: &[f64], b: &[f64], bc: usize, out: &mut [f64]) {
    debug_assert_eq!(b.len(), x.len() * bc);
    debug_assert_eq!(out.len(), bc);
    let mut j = 0;
    while j + 32 <= bc {
        row_panel::<32>(x, b, bc, j, out);
        j += 32;
    }
    while j + 8 <= bc {
        row_panel::<8>(x, b, bc, j, out);
        j += 8;
    }
    while j + 4 <= bc {
        row_panel::<4>(x, b, bc, j, out);
        j += 4;
    }
    while j < bc {
        row_panel::<1>(x, b, bc, j, out);
        j += 1;
    }
}

/// Register-blocked `A·B` (`(ar×ac)·(ac×bc)`) into `out`: each output row
/// is built from register-held column panels ([`row_panel`]).
/// Bit-identical to [`Tensor::matmul`].
pub(crate) fn gemm_nn(a: &[f64], ar: usize, ac: usize, b: &[f64], bc: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), ar * ac);
    debug_assert_eq!(b.len(), ac * bc);
    debug_assert_eq!(out.len(), ar * bc);
    for i in 0..ar {
        gemv(&a[i * ac..(i + 1) * ac], b, bc, &mut out[i * bc..(i + 1) * bc]);
    }
}

/// Register-blocked `Aᵀ·B` (`(ar×ac)ᵀ·(ar×bc) → (ac×bc)`) into `out`
/// without materializing `Aᵀ` ([`row_panel_strided`] walks `A` columns in
/// place). Bit-identical to [`Tensor::matmul_tn`].
pub(crate) fn gemm_tn(a: &[f64], ar: usize, ac: usize, b: &[f64], bc: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), ar * ac);
    debug_assert_eq!(b.len(), ar * bc);
    debug_assert_eq!(out.len(), ac * bc);
    for i in 0..ac {
        let orow = &mut out[i * bc..(i + 1) * bc];
        let mut j = 0;
        while j + 32 <= bc {
            row_panel_strided::<32>(a, ac, i, ar, b, bc, j, orow);
            j += 32;
        }
        while j + 8 <= bc {
            row_panel_strided::<8>(a, ac, i, ar, b, bc, j, orow);
            j += 8;
        }
        while j + 4 <= bc {
            row_panel_strided::<4>(a, ac, i, ar, b, bc, j, orow);
            j += 4;
        }
        while j < bc {
            row_panel_strided::<1>(a, ac, i, ar, b, bc, j, orow);
            j += 1;
        }
    }
}

/// Register-blocked `A·Bᵀ` (`(ar×ac)·(bn×ac)ᵀ → (ar×bn)`) into `out`: each
/// 2×4 tile streams two `A` rows against four `B` rows, all contiguous.
/// Bit-identical to [`Tensor::matmul_nt`] (ascending `k`, no zero skip).
pub(crate) fn gemm_nt(a: &[f64], ar: usize, ac: usize, b: &[f64], bn: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), ar * ac);
    debug_assert_eq!(b.len(), bn * ac);
    debug_assert_eq!(out.len(), ar * bn);
    let blocks = bn - bn % 4;
    let mut i = 0;
    while i + 2 <= ar {
        let a0 = &a[i * ac..(i + 1) * ac];
        let a1 = &a[(i + 1) * ac..(i + 2) * ac];
        let (o0, o1) = out[i * bn..(i + 2) * bn].split_at_mut(bn);
        let mut j = 0;
        while j < blocks {
            let b0 = &b[j * ac..(j + 1) * ac];
            let b1 = &b[(j + 1) * ac..(j + 2) * ac];
            let b2 = &b[(j + 2) * ac..(j + 3) * ac];
            let b3 = &b[(j + 3) * ac..(j + 4) * ac];
            let (mut c00, mut c01, mut c02, mut c03) = (0.0, 0.0, 0.0, 0.0);
            let (mut c10, mut c11, mut c12, mut c13) = (0.0, 0.0, 0.0, 0.0);
            for k in 0..ac {
                let a0k = a0[k];
                let a1k = a1[k];
                c00 += a0k * b0[k];
                c01 += a0k * b1[k];
                c02 += a0k * b2[k];
                c03 += a0k * b3[k];
                c10 += a1k * b0[k];
                c11 += a1k * b1[k];
                c12 += a1k * b2[k];
                c13 += a1k * b3[k];
            }
            o0[j] = c00;
            o0[j + 1] = c01;
            o0[j + 2] = c02;
            o0[j + 3] = c03;
            o1[j] = c10;
            o1[j + 1] = c11;
            o1[j + 2] = c12;
            o1[j + 3] = c13;
            j += 4;
        }
        for j in blocks..bn {
            let bj = &b[j * ac..(j + 1) * ac];
            let (mut c0, mut c1) = (0.0, 0.0);
            for k in 0..ac {
                c0 += a0[k] * bj[k];
                c1 += a1[k] * bj[k];
            }
            o0[j] = c0;
            o1[j] = c1;
        }
        i += 2;
    }
    if i < ar {
        let ai = &a[i * ac..(i + 1) * ac];
        for j in 0..bn {
            let bj = &b[j * ac..(j + 1) * ac];
            let mut acc = 0.0;
            for k in 0..ac {
                acc += ai[k] * bj[k];
            }
            out[i * bn + j] = acc;
        }
    }
}

/// Dense row-major 2-D tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Tensor {
    /// An empty `0×0` tensor (a workspace placeholder; reshape with
    /// [`Tensor::reset`] before use).
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        Self { rows, cols, data }
    }

    /// A single-row tensor viewing one observation/action vector.
    pub fn from_row(v: &[f64]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows (batch dimension).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature dimension).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// `A·B`: `(r×k)·(k×c) → (r×c)`, ikj loop order (cache-friendly for
    /// row-major operands).
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul dims");
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// `Aᵀ·B`: `(k×r)ᵀ·(k×c) → (r×c)` without materializing `Aᵀ`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "matmul_tn dims");
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aki * b;
                }
            }
        }
        out
    }

    /// `A·Bᵀ`: `(r×k)·(c×k)ᵀ → (r×c)` without materializing `Bᵀ`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dims");
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Reshapes in place to `(rows, cols)`, reusing the existing
    /// allocation. Contents are preserved when the element count is
    /// unchanged and zeroed otherwise; capacity never shrinks, so
    /// steady-state reshaping performs no heap allocation.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        if self.data.len() != n {
            self.data.clear();
            self.data.resize(n, 0.0);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: f64) {
        for x in &mut self.data {
            *x = v;
        }
    }

    /// `A·B` into a caller-owned output (register-blocked, allocation-free
    /// once `out` is warmed up; bit-identical to [`Tensor::matmul`]).
    /// `out` is reshaped to `(self.rows, rhs.cols)`; batch-1 inputs take
    /// the dedicated [`Tensor::gemv_into`] fast path.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.cols, rhs.rows, "matmul dims");
        out.reset(self.rows, rhs.cols);
        if self.rows == 1 {
            gemv(&self.data, &rhs.data, rhs.cols, &mut out.data);
        } else {
            gemm_nn(&self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data);
        }
    }

    /// `Aᵀ·B` into a caller-owned output (register-blocked; bit-identical
    /// to [`Tensor::matmul_tn`]). `out` is reshaped to
    /// `(self.cols, rhs.cols)`.
    pub fn matmul_tn_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rows, rhs.rows, "matmul_tn dims");
        out.reset(self.cols, rhs.cols);
        gemm_tn(&self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data);
    }

    /// `A·Bᵀ` into a caller-owned output (register-blocked; bit-identical
    /// to [`Tensor::matmul_nt`]). `out` is reshaped to
    /// `(self.rows, rhs.rows)`.
    pub fn matmul_nt_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dims");
        out.reset(self.rows, rhs.rows);
        gemm_nt(&self.data, self.rows, self.cols, &rhs.data, rhs.rows, &mut out.data);
    }

    /// Batch-1 fast path `out = x·W` for a row vector (the inference hot
    /// path): 4-wide register blocking, zero allocation, bit-identical to
    /// a 1-row [`Tensor::matmul`].
    pub fn gemv_into(x: &[f64], w: &Tensor, out: &mut [f64]) {
        assert_eq!(x.len(), w.rows, "gemv dims");
        assert_eq!(out.len(), w.cols, "gemv output dims");
        gemv(x, &w.data, w.cols, out);
    }

    /// Adds a bias row-vector to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias dims");
        for i in 0..self.rows {
            for (v, &b) in self.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Applies `f` entry-wise, in place.
    pub fn map_inplace<F: FnMut(f64) -> f64>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Entry-wise product, in place (`self *= other`).
    pub fn hadamard_inplace(&mut self, other: &Tensor) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// Column sums (bias gradients).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_variants_agree_with_explicit_transposes() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(2, 3, vec![7., 8., 9., 10., 11., 12.]);
        // a^T (3x2) * b (2x3) = 3x3
        let tn = a.matmul_tn(&b);
        assert_eq!(tn.rows(), 3);
        assert_eq!(tn.get(0, 0), 1. * 7. + 4. * 10.);
        assert_eq!(tn.get(2, 1), 3. * 8. + 6. * 11.);
        // a (2x3) * b^T (3x2) = 2x2
        let nt = a.matmul_nt(&b);
        assert_eq!(nt.get(0, 0), 1. * 7. + 2. * 8. + 3. * 9.);
        assert_eq!(nt.get(1, 1), 4. * 10. + 5. * 11. + 6. * 12.);
    }

    #[test]
    fn broadcast_and_colsums() {
        let mut a = Tensor::zeros(3, 2);
        a.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(a.get(2, 0), 1.0);
        assert_eq!(a.get(0, 1), -2.0);
        let s = a.col_sums();
        assert_eq!(s, vec![3.0, -6.0]);
    }

    /// Deterministic pseudo-random matrix with exact zeros sprinkled in so
    /// the kernels' zero-skip branches are exercised.
    fn test_matrix(rows: usize, cols: usize, salt: u64) -> Tensor {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let v = ((i as f64 + salt as f64) * 0.789).sin();
                if i % 7 == 3 {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn assert_bits_equal(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "entry {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_into_kernels_bit_identical_to_naive() {
        // Shapes straddling the 2-row / 4-column tile boundaries.
        for (r, k, c) in [(1, 1, 1), (2, 3, 4), (3, 5, 7), (5, 8, 9), (8, 8, 8), (7, 13, 6)] {
            let a = test_matrix(r, k, 1);
            let b = test_matrix(k, c, 2);
            let mut out = Tensor::zeros(0, 0);
            a.matmul_into(&b, &mut out);
            assert_bits_equal(out.as_slice(), a.matmul(&b).as_slice());

            let at = test_matrix(k, r, 3);
            at.matmul_tn_into(&b, &mut out);
            assert_bits_equal(out.as_slice(), at.matmul_tn(&b).as_slice());

            let bt = test_matrix(c, k, 4);
            a.matmul_nt_into(&bt, &mut out);
            assert_bits_equal(out.as_slice(), a.matmul_nt(&bt).as_slice());

            let x = test_matrix(1, k, 5);
            let mut gout = vec![0.0; c];
            Tensor::gemv_into(x.as_slice(), &b, &mut gout);
            assert_bits_equal(&gout, x.matmul(&b).as_slice());
        }
    }

    #[test]
    fn reset_reuses_allocation_and_zeroes_on_size_change() {
        let mut t = Tensor::from_vec(2, 3, vec![1.0; 6]);
        t.reset(2, 3);
        assert_eq!(t.as_slice(), &[1.0; 6]); // unchanged size keeps data
        t.reset(3, 4);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        t.reset(1, 2); // shrink, then grow back within capacity
        t.fill(7.0);
        t.reset(3, 4);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn map_and_hadamard() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, -1.0, 2.0]);
        a.map_inplace(|v| v * v);
        assert_eq!(a.as_slice(), &[1.0, 1.0, 4.0]);
        let b = Tensor::from_vec(1, 3, vec![2.0, 3.0, 0.5]);
        a.hadamard_inplace(&b);
        assert_eq!(a.as_slice(), &[2.0, 3.0, 2.0]);
    }
}

//! A minimal 2-D tensor for batched MLP math.
//!
//! Row-major `f64` storage, shape `(rows, cols)`; rows are batch samples.
//! Three matmul variants cover forward and backward passes without
//! materializing transposes:
//!
//! * [`Tensor::matmul`] — `A·B`,
//! * [`Tensor::matmul_tn`] — `Aᵀ·B` (weight gradients `xᵀ·∂y`),
//! * [`Tensor::matmul_nt`] — `A·Bᵀ` (input gradients `∂y·Wᵀ`).

use serde::{Deserialize, Serialize};

/// Dense row-major 2-D tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        Self { rows, cols, data }
    }

    /// A single-row tensor viewing one observation/action vector.
    pub fn from_row(v: &[f64]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows (batch dimension).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature dimension).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// `A·B`: `(r×k)·(k×c) → (r×c)`, ikj loop order (cache-friendly for
    /// row-major operands).
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul dims");
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// `Aᵀ·B`: `(k×r)ᵀ·(k×c) → (r×c)` without materializing `Aᵀ`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "matmul_tn dims");
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aki * b;
                }
            }
        }
        out
    }

    /// `A·Bᵀ`: `(r×k)·(c×k)ᵀ → (r×c)` without materializing `Bᵀ`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dims");
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Adds a bias row-vector to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias dims");
        for i in 0..self.rows {
            for (v, &b) in self.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Applies `f` entry-wise, in place.
    pub fn map_inplace<F: FnMut(f64) -> f64>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Entry-wise product, in place (`self *= other`).
    pub fn hadamard_inplace(&mut self, other: &Tensor) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// Column sums (bias gradients).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_variants_agree_with_explicit_transposes() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(2, 3, vec![7., 8., 9., 10., 11., 12.]);
        // a^T (3x2) * b (2x3) = 3x3
        let tn = a.matmul_tn(&b);
        assert_eq!(tn.rows(), 3);
        assert_eq!(tn.get(0, 0), 1. * 7. + 4. * 10.);
        assert_eq!(tn.get(2, 1), 3. * 8. + 6. * 11.);
        // a (2x3) * b^T (3x2) = 2x2
        let nt = a.matmul_nt(&b);
        assert_eq!(nt.get(0, 0), 1. * 7. + 2. * 8. + 3. * 9.);
        assert_eq!(nt.get(1, 1), 4. * 10. + 5. * 11. + 6. * 12.);
    }

    #[test]
    fn broadcast_and_colsums() {
        let mut a = Tensor::zeros(3, 2);
        a.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(a.get(2, 0), 1.0);
        assert_eq!(a.get(0, 1), -2.0);
        let s = a.col_sums();
        assert_eq!(s, vec![3.0, -6.0]);
    }

    #[test]
    fn map_and_hadamard() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, -1.0, 2.0]);
        a.map_inplace(|v| v * v);
        assert_eq!(a.as_slice(), &[1.0, 1.0, 4.0]);
        let b = Tensor::from_vec(1, 3, vec![2.0, 3.0, 0.5]);
        a.hadamard_inplace(&b);
        assert_eq!(a.as_slice(), &[2.0, 3.0, 2.0]);
    }
}

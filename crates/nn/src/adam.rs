//! Adam optimizer on flat parameter vectors (Kingma & Ba, 2015).

use serde::{Deserialize, Serialize};

/// Adam state for one parameter vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability constant ε.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `num_params` parameters with default
    /// moments (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(num_params: usize, lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite());
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
            t: 0,
        }
    }

    /// Number of optimization steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update in place: `params ← params − lr·m̂/(√v̂+ε)`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.update_one(i, params, grads[i], b1t, b2t);
        }
    }

    /// One Adam update applied **in place over split parameter slices**:
    /// `params` yields consecutive mutable segments (e.g.
    /// [`crate::mlp::Mlp::params_mut`] chained with a `log_std` slice)
    /// whose concatenation is the flat parameter vector aligned with
    /// `grads`. Per-element arithmetic and ordering are identical to
    /// [`Adam::step`], so the two are bit-for-bit interchangeable — this
    /// variant just skips the gather/scatter round-trip through a
    /// temporary flat vector.
    ///
    /// # Panics
    /// Panics if `grads` or the concatenated segments mismatch the
    /// optimizer length.
    pub fn step_segments<'a, I>(&mut self, params: I, grads: &[f64])
    where
        I: IntoIterator<Item = &'a mut [f64]>,
    {
        assert_eq!(grads.len(), self.m.len(), "grad length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let mut off = 0;
        for seg in params {
            for (j, p) in seg.iter_mut().enumerate() {
                let i = off + j;
                let g = grads[i];
                self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
                self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = self.m[i] / b1t;
                let v_hat = self.v[i] / b2t;
                *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            off += seg.len();
        }
        assert_eq!(off, self.m.len(), "param segments must cover the flat vector");
    }

    #[inline]
    fn update_one(&mut self, i: usize, params: &mut [f64], g: f64, b1t: f64, b2t: f64) {
        self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
        self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
        let m_hat = self.m[i] / b1t;
        let v_hat = self.v[i] / b2t;
        params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
    }
}

/// Clips a gradient vector to a maximum global ℓ₂ norm, in place; returns
/// the pre-clip norm (PPO's standard stabilizer).
pub fn clip_grad_norm(grads: &mut [f64], max_norm: f64) -> f64 {
    let norm = grads.iter().map(|g| g * g).sum::<f64>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = Σ (x_i - target_i)^2; Adam should converge.
        let target = [3.0, -1.5, 0.25];
        let mut x = vec![0.0; 3];
        let mut opt = Adam::new(3, 0.05);
        for _ in 0..2_000 {
            let grads: Vec<f64> =
                x.iter().zip(target.iter()).map(|(xi, t)| 2.0 * (xi - t)).collect();
            opt.step(&mut x, &grads);
        }
        for (xi, t) in x.iter().zip(target.iter()) {
            assert!((xi - t).abs() < 1e-3, "{xi} vs {t}");
        }
    }

    #[test]
    fn bias_correction_first_step() {
        // After one step with gradient g, the update is exactly -lr·sign(g)
        // (up to eps), by construction of the bias correction.
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        opt.step(&mut x, &[0.5]);
        assert!((x[0] + 0.1).abs() < 1e-6, "x {}", x[0]);
    }

    #[test]
    fn clip_grad_norm_behaviour() {
        let mut g = vec![3.0, 4.0]; // norm 5
        let pre = clip_grad_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        let post = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((post - 1.0).abs() < 1e-12);
        // Below the cap: untouched.
        let mut h = vec![0.3, 0.4];
        clip_grad_norm(&mut h, 1.0);
        assert_eq!(h, vec![0.3, 0.4]);
    }

    #[test]
    fn step_segments_matches_flat_step_bitwise() {
        let mut flat_opt = Adam::new(5, 0.03);
        let mut seg_opt = Adam::new(5, 0.03);
        let mut flat = vec![0.4, -0.2, 1.0, 0.0, 2.5];
        let mut a = vec![0.4, -0.2];
        let mut b = vec![1.0, 0.0, 2.5];
        for step in 0..50 {
            let grads: Vec<f64> = (0..5).map(|i| ((i + step) as f64 * 0.31).sin()).collect();
            flat_opt.step(&mut flat, &grads);
            seg_opt.step_segments([a.as_mut_slice(), b.as_mut_slice()], &grads);
        }
        for (x, y) in flat.iter().zip(a.iter().chain(b.iter())) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "param segments must cover")]
    fn step_segments_rejects_short_segments() {
        let mut opt = Adam::new(3, 0.1);
        let mut a = vec![0.0, 0.0];
        opt.step_segments([a.as_mut_slice()], &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn step_counter_increments() {
        let mut opt = Adam::new(2, 0.01);
        let mut p = vec![0.0, 0.0];
        assert_eq!(opt.steps(), 0);
        opt.step(&mut p, &[1.0, 1.0]);
        opt.step(&mut p, &[1.0, 1.0]);
        assert_eq!(opt.steps(), 2);
    }
}

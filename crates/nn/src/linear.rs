//! A dense (fully connected) layer with explicit forward/backward.
//!
//! The layer is purely functional: `forward` consumes an input batch and
//! returns the output; `backward` consumes the stored input and the output
//! gradient and returns `(input gradient, weight gradient, bias gradient)`.
//! Keeping activations outside the layer makes the backprop code easy to
//! audit and to gradient-check.

use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = x·W + b` with `W : (fan_in × fan_out)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, shape `(fan_in, fan_out)`.
    pub w: Tensor,
    /// Bias, length `fan_out`.
    pub b: Vec<f64>,
}

impl Linear {
    /// Xavier/Glorot-uniform initialization: `U(±√(6/(fan_in+fan_out)))`,
    /// zero bias — the standard choice for tanh MLPs (the paper's network).
    pub fn xavier<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        let mut w = Tensor::zeros(fan_in, fan_out);
        for v in w.as_mut_slice() {
            *v = rng.gen_range(-limit..limit);
        }
        Self { w, b: vec![0.0; fan_out] }
    }

    /// Input feature count.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output feature count.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// Scales all weights (used to shrink the final policy layer so the
    /// initial policy is near-uniform, as in common PPO implementations).
    pub fn scale_weights(&mut self, factor: f64) {
        for v in self.w.as_mut_slice() {
            *v *= factor;
        }
    }

    /// Forward pass on a batch `(batch × fan_in) → (batch × fan_out)`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Backward pass. `x` is the input the forward pass saw; `grad_out` is
    /// `∂L/∂y`. Returns `(∂L/∂x, ∂L/∂W, ∂L/∂b)`.
    pub fn backward(&self, x: &Tensor, grad_out: &Tensor) -> (Tensor, Tensor, Vec<f64>) {
        let grad_x = grad_out.matmul_nt(&self.w); // (batch × fan_in)
        let grad_w = x.matmul_tn(grad_out); // (fan_in × fan_out)
        let grad_b = grad_out.col_sums();
        (grad_x, grad_w, grad_b)
    }

    /// Allocation-free forward pass into a caller-owned output
    /// (bit-identical to [`Linear::forward`]; batch-1 inputs dispatch to
    /// the `gemv` fast path inside [`Tensor::matmul_into`]).
    pub fn forward_into(&self, x: &Tensor, out: &mut Tensor) {
        x.matmul_into(&self.w, out);
        out.add_row_broadcast(&self.b);
    }

    /// Allocation-free backward pass (bit-identical to
    /// [`Linear::backward`]). The input gradient lands in the caller-owned
    /// `grad_x`; the weight gradient is written **directly into**
    /// `grad_w` — a `fan_in·fan_out` slice laid out row-major, i.e. exactly
    /// the [`Linear::write_params`] weight block of a flat gradient
    /// buffer — and the bias gradient into `grad_b` (the bias block).
    pub fn backward_into(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        grad_x: &mut Tensor,
        grad_w: &mut [f64],
        grad_b: &mut [f64],
    ) {
        assert_eq!(grad_w.len(), self.w.rows() * self.w.cols(), "grad_w dims");
        assert_eq!(grad_b.len(), self.b.len(), "grad_b dims");
        grad_out.matmul_nt_into(&self.w, grad_x);
        crate::tensor::gemm_tn(
            x.as_slice(),
            x.rows(),
            x.cols(),
            grad_out.as_slice(),
            grad_out.cols(),
            grad_w,
        );
        // Column sums in the same row-ascending order as
        // [`Tensor::col_sums`].
        grad_b.fill(0.0);
        for i in 0..grad_out.rows() {
            for (o, &v) in grad_b.iter_mut().zip(grad_out.row(i)) {
                *o += v;
            }
        }
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Copies parameters into `out` (weights row-major, then bias);
    /// returns the number written.
    pub fn write_params(&self, out: &mut [f64]) -> usize {
        let nw = self.w.as_slice().len();
        out[..nw].copy_from_slice(self.w.as_slice());
        out[nw..nw + self.b.len()].copy_from_slice(&self.b);
        nw + self.b.len()
    }

    /// Reads parameters from `src` in [`Linear::write_params`] order;
    /// returns the number consumed.
    pub fn read_params(&mut self, src: &[f64]) -> usize {
        let nw = self.w.as_slice().len();
        let nb = self.b.len();
        self.w.as_mut_slice().copy_from_slice(&src[..nw]);
        self.b.copy_from_slice(&src[nw..nw + nb]);
        nw + nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut l = Linear::xavier(2, 2, &mut StdRng::seed_from_u64(1));
        l.w = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        l.b = vec![0.5, -0.5];
        let x = Tensor::from_vec(1, 2, vec![1.0, -1.0]);
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[1.0 - 3.0 + 0.5, 2.0 - 4.0 - 0.5]);
    }

    #[test]
    fn backward_gradient_check() {
        // Finite-difference check of dL/dW, dL/db, dL/dx for L = sum(y^2)/2.
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::xavier(3, 2, &mut rng);
        let x = Tensor::from_vec(2, 3, vec![0.3, -0.7, 1.1, 0.0, 0.5, -0.2]);
        let y = l.forward(&x);
        let grad_out = y.clone(); // dL/dy = y
        let (gx, gw, gb) = l.backward(&x, &grad_out);

        let loss = |l: &Linear, x: &Tensor| -> f64 {
            l.forward(x).as_slice().iter().map(|v| v * v).sum::<f64>() / 2.0
        };
        let eps = 1e-6;
        // Weights.
        for idx in 0..6 {
            let orig = l.w.as_slice()[idx];
            l.w.as_mut_slice()[idx] = orig + eps;
            let up = loss(&l, &x);
            l.w.as_mut_slice()[idx] = orig - eps;
            let down = loss(&l, &x);
            l.w.as_mut_slice()[idx] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!((num - gw.as_slice()[idx]).abs() < 1e-6, "w[{idx}]");
        }
        // Bias.
        for idx in 0..2 {
            let orig = l.b[idx];
            l.b[idx] = orig + eps;
            let up = loss(&l, &x);
            l.b[idx] = orig - eps;
            let down = loss(&l, &x);
            l.b[idx] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!((num - gb[idx]).abs() < 1e-6, "b[{idx}]");
        }
        // Input.
        let mut x2 = x.clone();
        for idx in 0..6 {
            let orig = x2.as_slice()[idx];
            x2.as_mut_slice()[idx] = orig + eps;
            let up = loss(&l, &x2);
            x2.as_mut_slice()[idx] = orig - eps;
            let down = loss(&l, &x2);
            x2.as_mut_slice()[idx] = orig;
            let num = (up - down) / (2.0 * eps);
            assert!((num - gx.as_slice()[idx]).abs() < 1e-6, "x[{idx}]");
        }
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Linear::xavier(4, 3, &mut rng);
        let mut buf = vec![0.0; l.num_params()];
        assert_eq!(l.write_params(&mut buf), 15);
        let mut l2 = Linear::xavier(4, 3, &mut rng);
        l2.read_params(&buf);
        assert_eq!(l, l2);
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(4);
        let l = Linear::xavier(8, 8, &mut rng);
        let limit = (6.0 / 16.0f64).sqrt();
        assert!(l.w.as_slice().iter().all(|v| v.abs() <= limit));
        assert!(l.b.iter().all(|&v| v == 0.0));
    }
}

//! Multi-layer perceptron with explicit backprop and flat-parameter I/O.
//!
//! The paper's policy/value networks are tanh MLPs with two hidden layers
//! of 256 units (Fig. 2, Table 2); [`Mlp::policy_default`] builds exactly
//! that shape. Gradients come back as a flat `Vec<f64>` aligned with
//! [`Mlp::write_params`] order, so the optimizer ([`crate::adam::Adam`])
//! can stay a plain flat-vector method.

use crate::linear::Linear;
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Supported hidden activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent (the paper's choice).
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// No nonlinearity (degenerate, for tests).
    Identity,
}

impl Activation {
    #[inline]
    fn apply(self, v: f64) -> f64 {
        match self {
            Activation::Tanh => v.tanh(),
            Activation::Relu => v.max(0.0),
            Activation::Identity => v,
        }
    }

    /// Derivative expressed through the *post-activation* value (valid for
    /// all supported activations and cheaper than keeping pre-activations).
    #[inline]
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

/// Cache of intermediate activations from a forward pass, consumed by
/// [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[i]` the post-activation
    /// output of layer `i−1`; the last entry is the (linear) network output.
    activations: Vec<Tensor>,
}

impl ForwardCache {
    /// The network output.
    pub fn output(&self) -> &Tensor {
        self.activations.last().unwrap()
    }
}

/// A fully connected network with a linear output layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes (`sizes[0]` inputs …
    /// `sizes[last]` outputs) and hidden activation; Xavier init.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes.windows(2).map(|w| Linear::xavier(w[0], w[1], rng)).collect();
        Self { layers, activation }
    }

    /// The paper's policy/value network shape: two tanh hidden layers of
    /// 256 units (Fig. 2), with the final layer scaled by 0.01 so the
    /// initial policy is near-uniform after softmax normalization.
    pub fn policy_default<R: Rng + ?Sized>(obs_dim: usize, act_dim: usize, rng: &mut R) -> Self {
        let mut mlp = Self::new(&[obs_dim, 256, 256, act_dim], Activation::Tanh, rng);
        mlp.layers.last_mut().unwrap().scale_weights(0.01);
        mlp
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().unwrap().fan_in()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().unwrap().fan_out()
    }

    /// Forward pass keeping the activation cache for backprop.
    pub fn forward_cached(&self, x: &Tensor) -> ForwardCache {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(x.clone());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(activations.last().unwrap());
            if i < last {
                let act = self.activation;
                y.map_inplace(|v| act.apply(v));
            }
            activations.push(y);
        }
        ForwardCache { activations }
    }

    /// Forward pass without cache (inference).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_cached(x).output().clone()
    }

    /// Convenience single-sample forward.
    pub fn forward_one(&self, x: &[f64]) -> Vec<f64> {
        self.forward(&Tensor::from_row(x)).as_slice().to_vec()
    }

    /// Backward pass: given the cache and `∂L/∂output`, returns the flat
    /// parameter gradient (aligned with [`Mlp::write_params`]).
    pub fn backward(&self, cache: &ForwardCache, grad_out: &Tensor) -> Vec<f64> {
        let mut flat = vec![0.0; self.num_params()];
        // Per-layer parameter offsets in flat order.
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut off = 0;
        for layer in &self.layers {
            offsets.push(off);
            off += layer.num_params();
        }

        let mut grad = grad_out.clone();
        for i in (0..self.layers.len()).rev() {
            // Walking backwards: `grad` currently holds dL/d(post-activation
            // of layer i) for the last layer (linear output) or has already
            // been multiplied by the activation derivative below.
            let x = &cache.activations[i];
            let (gx, gw, gb) = self.layers[i].backward(x, &grad);
            let o = offsets[i];
            let nw = gw.as_slice().len();
            flat[o..o + nw].copy_from_slice(gw.as_slice());
            flat[o + nw..o + nw + gb.len()].copy_from_slice(&gb);
            grad = gx;
            if i > 0 {
                // Multiply by the activation derivative of the previous
                // layer's output (which is exactly cache.activations[i]).
                let act = self.activation;
                let y = &cache.activations[i];
                for (g, &yv) in grad.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *g *= act.derivative_from_output(yv);
                }
            }
        }
        flat
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Writes all parameters into a flat buffer; returns count written.
    pub fn write_params(&self, out: &mut [f64]) -> usize {
        let mut off = 0;
        for layer in &self.layers {
            off += layer.write_params(&mut out[off..]);
        }
        off
    }

    /// Reads all parameters from a flat buffer.
    pub fn read_params(&mut self, src: &[f64]) {
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.read_params(&src[off..]);
        }
        debug_assert_eq!(off, src.len());
    }

    /// Flat copy of the parameters.
    pub fn params_vec(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.num_params()];
        self.write_params(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_loss(mlp: &Mlp, x: &Tensor) -> f64 {
        mlp.forward(x).as_slice().iter().map(|v| v * v).sum::<f64>() / 2.0
    }

    #[test]
    fn full_network_gradient_check() {
        let mut rng = StdRng::seed_from_u64(1);
        for activation in [Activation::Tanh, Activation::Relu, Activation::Identity] {
            let mut mlp = Mlp::new(&[4, 8, 5, 3], activation, &mut rng);
            let x = Tensor::from_vec(3, 4, (0..12).map(|i| ((i as f64) * 0.7).sin()).collect());
            let cache = mlp.forward_cached(&x);
            let grad_out = cache.output().clone(); // dL/dy = y for L = Σy²/2
            let analytic = mlp.backward(&cache, &grad_out);

            let eps = 1e-6;
            let mut params = mlp.params_vec();
            // Spot-check a spread of parameters (every 17th) to keep the
            // test fast while covering all layers.
            for idx in (0..params.len()).step_by(17) {
                let orig = params[idx];
                params[idx] = orig + eps;
                mlp.read_params(&params);
                let up = quadratic_loss(&mlp, &x);
                params[idx] = orig - eps;
                mlp.read_params(&params);
                let down = quadratic_loss(&mlp, &x);
                params[idx] = orig;
                mlp.read_params(&params);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic[idx]).abs() < 1e-5,
                    "{activation:?} param {idx}: numeric {numeric} vs analytic {}",
                    analytic[idx]
                );
            }
        }
    }

    #[test]
    fn policy_default_shape_matches_paper() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::policy_default(8, 72, &mut rng);
        assert_eq!(mlp.input_dim(), 8);
        assert_eq!(mlp.output_dim(), 72);
        // 8·256 + 256 + 256·256 + 256 + 256·72 + 72
        assert_eq!(mlp.num_params(), 8 * 256 + 256 + 256 * 256 + 256 + 256 * 72 + 72);
        // Small final layer => near-zero initial outputs.
        let out = mlp.forward_one(&[0.3; 8]);
        assert!(out.iter().all(|v| v.abs() < 0.5));
    }

    #[test]
    fn params_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, &mut rng);
        let v = mlp.params_vec();
        let mut clone = Mlp::new(&[3, 6, 2], Activation::Tanh, &mut rng);
        clone.read_params(&v);
        let x = [0.1, -0.2, 0.9];
        assert_eq!(mlp.forward_one(&x), clone.forward_one(&x));
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, &mut rng);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(mlp, back);
    }

    #[test]
    fn batch_forward_matches_per_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&[3, 5, 2], Activation::Tanh, &mut rng);
        let rows = [vec![0.1, 0.2, 0.3], vec![-1.0, 0.5, 0.0]];
        let batch = Tensor::from_vec(2, 3, rows.concat());
        let y = mlp.forward(&batch);
        for (i, r) in rows.iter().enumerate() {
            let single = mlp.forward_one(r);
            for (a, b) in y.row(i).iter().zip(single.iter()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}

//! Multi-layer perceptron with explicit backprop and flat-parameter I/O.
//!
//! The paper's policy/value networks are tanh MLPs with two hidden layers
//! of 256 units (Fig. 2, Table 2); [`Mlp::policy_default`] builds exactly
//! that shape. Gradients come back as a flat `Vec<f64>` aligned with
//! [`Mlp::write_params`] order, so the optimizer ([`crate::adam::Adam`])
//! can stay a plain flat-vector method.

use crate::fast::{fast_tanh, F32Mlp, TanhMode};
use crate::linear::Linear;
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Supported hidden activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent (the paper's choice).
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// No nonlinearity (degenerate, for tests).
    Identity,
}

impl Activation {
    #[inline]
    fn apply(self, v: f64) -> f64 {
        match self {
            Activation::Tanh => v.tanh(),
            Activation::Relu => v.max(0.0),
            Activation::Identity => v,
        }
    }

    /// [`Activation::apply`] under a [`TanhMode`]: identical except that
    /// `(Tanh, Fast)` routes through the rational [`fast_tanh`].
    #[inline]
    fn apply_mode(self, mode: TanhMode, v: f64) -> f64 {
        match (self, mode) {
            (Activation::Tanh, TanhMode::Fast) => fast_tanh(v),
            _ => self.apply(v),
        }
    }

    /// Derivative expressed through the *post-activation* value (valid for
    /// all supported activations and cheaper than keeping pre-activations).
    #[inline]
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

/// Cache of intermediate activations from a forward pass, consumed by
/// [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[i]` the post-activation
    /// output of layer `i−1`; the last entry is the (linear) network output.
    activations: Vec<Tensor>,
}

impl ForwardCache {
    /// The network output.
    pub fn output(&self) -> &Tensor {
        self.activations.last().unwrap()
    }
}

/// Reusable caller-owned scratch for allocation-free forward/backward
/// passes ([`Mlp::forward_into`], [`Mlp::forward_one_into`],
/// [`Mlp::backward_into`]).
///
/// Owns the per-layer activation tensors, the backward gradient tensors
/// and a flat gradient buffer. Create one per long-lived consumer (a PPO
/// minibatch loop, a rollout worker, a deployed policy) and reuse it
/// across calls: buffers are reshaped in place ([`Tensor::reset`]) and
/// their capacity never shrinks, so a warmed-up workspace performs **no
/// heap allocation** — even when the batch size alternates (e.g. a final
/// short minibatch).
///
/// A `Workspace` is not tied to one network instance, only to a shape: it
/// lazily adapts to whatever [`Mlp`] uses it, re-allocating only when the
/// layer count or widths actually change.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// `acts[0]` is the input copy; `acts[i+1]` the (post-activation,
    /// except for the last) output of layer `i`. Mirrors
    /// [`ForwardCache::activations`].
    acts: Vec<Tensor>,
    /// `grads[i]` holds `∂L/∂acts[i]` during [`Mlp::backward_into`].
    grads: Vec<Tensor>,
    /// Flat parameter gradient in [`Mlp::write_params`] order, plus
    /// `grad_tail` extra trailing slots owned by the caller (e.g. PPO's
    /// `log_std` gradients, kept contiguous for joint norm clipping).
    flat: Vec<f64>,
    /// Extra trailing slots appended to `flat` beyond `num_params`.
    grad_tail: usize,
}

impl Workspace {
    /// An empty workspace; buffers materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `extra` trailing slots in the flat gradient buffer after
    /// the network parameters (see [`Workspace::flat_grad_mut`]).
    pub fn with_grad_tail(mut self, extra: usize) -> Self {
        self.grad_tail = extra;
        self
    }

    /// The network output of the most recent forward pass.
    ///
    /// # Panics
    /// Panics if no forward pass has been run yet.
    pub fn output(&self) -> &Tensor {
        self.acts.last().expect("workspace has not seen a forward pass")
    }

    /// The flat gradient buffer (`num_params + grad_tail` slots) filled by
    /// the most recent [`Mlp::backward_into`]; the tail is caller-owned.
    pub fn flat_grad(&self) -> &[f64] {
        &self.flat
    }

    /// Mutable access to the flat gradient buffer (for filling the tail
    /// and for in-place clipping).
    pub fn flat_grad_mut(&mut self) -> &mut [f64] {
        &mut self.flat
    }

    /// Reshapes all buffers for `mlp` at `batch` rows, reusing capacity.
    fn ensure(&mut self, mlp: &Mlp, batch: usize) {
        let n = mlp.layers.len();
        if self.acts.len() != n + 1 {
            self.acts = vec![Tensor::zeros(0, 0); n + 1];
            self.grads = vec![Tensor::zeros(0, 0); n];
        }
        self.acts[0].reset(batch, mlp.input_dim());
        for (i, layer) in mlp.layers.iter().enumerate() {
            self.acts[i + 1].reset(batch, layer.fan_out());
            self.grads[i].reset(batch, layer.fan_in());
        }
        // The flat-gradient buffer is sized lazily by `backward_into`:
        // forward-only consumers (rollout inference, pooled `decide`
        // scratches) never pay for a parameter-sized buffer.
    }

    /// Sizes the flat gradient buffer for `mlp` (reusing capacity).
    fn ensure_flat(&mut self, mlp: &Mlp) {
        let want = mlp.num_params() + self.grad_tail;
        if self.flat.len() != want {
            self.flat.clear();
            self.flat.resize(want, 0.0);
        }
    }
}

/// A fully connected network with a linear output layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    /// Inference-only `tanh` evaluation mode. Skipped by serde so every
    /// pinned checkpoint stays byte-identical; deserializes to the
    /// bit-compatible default.
    #[serde(skip)]
    tanh_mode: TanhMode,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes (`sizes[0]` inputs …
    /// `sizes[last]` outputs) and hidden activation; Xavier init.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes.windows(2).map(|w| Linear::xavier(w[0], w[1], rng)).collect();
        Self { layers, activation, tanh_mode: TanhMode::default() }
    }

    /// The paper's policy/value network shape: two tanh hidden layers of
    /// 256 units (Fig. 2), with the final layer scaled by 0.01 so the
    /// initial policy is near-uniform after softmax normalization.
    pub fn policy_default<R: Rng + ?Sized>(obs_dim: usize, act_dim: usize, rng: &mut R) -> Self {
        let mut mlp = Self::new(&[obs_dim, 256, 256, act_dim], Activation::Tanh, rng);
        mlp.layers.last_mut().unwrap().scale_weights(0.01);
        mlp
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().unwrap().fan_in()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().unwrap().fan_out()
    }

    /// The `tanh` evaluation mode used by all forward passes.
    pub fn tanh_mode(&self) -> TanhMode {
        self.tanh_mode
    }

    /// Sets the `tanh` evaluation mode (builder form). [`TanhMode::Fast`]
    /// only changes how forward passes evaluate `Tanh` activations; the
    /// backward pass (derived from post-activation values) and parameter
    /// serialization are unaffected, so training pipelines should leave
    /// the bit-compatible default in place.
    pub fn with_tanh_mode(mut self, mode: TanhMode) -> Self {
        self.tanh_mode = mode;
        self
    }

    /// Sets the `tanh` evaluation mode in place (see
    /// [`Mlp::with_tanh_mode`]).
    pub fn set_tanh_mode(&mut self, mode: TanhMode) {
        self.tanh_mode = mode;
    }

    /// Narrows the network to a forward-only [`F32Mlp`] inference copy
    /// (half the weight-streaming traffic; not bit-identical — see the
    /// [`crate::fast`] module docs for the certification story).
    pub fn to_f32(&self) -> F32Mlp {
        F32Mlp::from_mlp(self)
    }

    /// The dense layers, in forward order (for intra-crate conversions).
    pub(crate) fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The hidden activation (for intra-crate conversions).
    pub(crate) fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass keeping the activation cache for backprop.
    pub fn forward_cached(&self, x: &Tensor) -> ForwardCache {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(x.clone());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(activations.last().unwrap());
            if i < last {
                let (act, mode) = (self.activation, self.tanh_mode);
                y.map_inplace(|v| act.apply_mode(mode, v));
            }
            activations.push(y);
        }
        ForwardCache { activations }
    }

    /// Forward pass without cache (inference).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_cached(x).output().clone()
    }

    /// Convenience single-sample forward.
    pub fn forward_one(&self, x: &[f64]) -> Vec<f64> {
        self.forward(&Tensor::from_row(x)).as_slice().to_vec()
    }

    /// Allocation-free forward pass through a reusable [`Workspace`]
    /// (bit-identical to [`Mlp::forward_cached`]); returns the output
    /// activation. The workspace keeps every intermediate activation, so
    /// [`Mlp::backward_into`] can follow without a separate cache.
    pub fn forward_into<'w>(&self, x: &Tensor, ws: &'w mut Workspace) -> &'w Tensor {
        assert_eq!(x.cols(), self.input_dim(), "input dims");
        ws.ensure(self, x.rows());
        ws.acts[0].as_mut_slice().copy_from_slice(x.as_slice());
        self.forward_ws(ws);
        ws.output()
    }

    /// Batch-1 inference fast path: runs `x` through the network using the
    /// workspace's scratch and the `gemv` kernels — no heap allocation
    /// once `ws` is warm, bit-identical to [`Mlp::forward_one`].
    pub fn forward_one_into<'w>(&self, x: &[f64], ws: &'w mut Workspace) -> &'w [f64] {
        assert_eq!(x.len(), self.input_dim(), "input dims");
        ws.ensure(self, 1);
        ws.acts[0].as_mut_slice().copy_from_slice(x);
        self.forward_ws(ws);
        ws.output().as_slice()
    }

    /// Batched inference fast path: runs `rows` stacked input rows
    /// (`rows × input_dim`, row-major — e.g. an encoded observation
    /// batch) through the network in one gemm per layer, returning the
    /// `rows × output_dim` output tensor living in `ws`.
    ///
    /// Bit-identical to `rows` successive [`Mlp::forward_one_into`] calls:
    /// the gemm kernels accumulate each output row with exactly the
    /// per-row gemv ordering, so batching never perturbs a seed-pinned
    /// run. No heap allocation once `ws` is warm.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * input_dim`.
    pub fn forward_rows_into<'w>(
        &self,
        rows: usize,
        data: &[f64],
        ws: &'w mut Workspace,
    ) -> &'w Tensor {
        assert_eq!(data.len(), rows * self.input_dim(), "input dims");
        ws.ensure(self, rows);
        ws.acts[0].as_mut_slice().copy_from_slice(data);
        self.forward_ws(ws);
        ws.output()
    }

    /// Shared layer loop over a workspace whose `acts[0]` holds the input.
    fn forward_ws(&self, ws: &mut Workspace) {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let (prev, rest) = ws.acts.split_at_mut(i + 1);
            let y = &mut rest[0];
            layer.forward_into(&prev[i], y);
            if i < last {
                let (act, mode) = (self.activation, self.tanh_mode);
                y.map_inplace(|v| act.apply_mode(mode, v));
            }
        }
    }

    /// Allocation-free backward pass (bit-identical to [`Mlp::backward`])
    /// over the activations left in `ws` by the preceding
    /// [`Mlp::forward_into`]. The flat parameter gradient is written into
    /// the workspace's buffer and returned mutably; any `grad_tail` slots
    /// beyond `num_params` are left untouched for the caller.
    pub fn backward_into<'w>(&self, ws: &'w mut Workspace, grad_out: &Tensor) -> &'w mut [f64] {
        let n = self.layers.len();
        assert_eq!(ws.acts.len(), n + 1, "workspace has not seen a forward pass");
        assert_eq!(grad_out.rows(), ws.acts[0].rows(), "grad_out batch");
        assert_eq!(grad_out.cols(), self.output_dim(), "grad_out dims");
        ws.ensure_flat(self);
        let Workspace { acts, grads, flat, .. } = ws;
        // Walk layers backwards, peeling parameter offsets off the total.
        let mut off = self.num_params();
        for i in (0..n).rev() {
            let layer = &self.layers[i];
            let np = layer.num_params();
            off -= np;
            let nw = np - layer.fan_out();
            let (gw, gb) = flat[off..off + np].split_at_mut(nw);
            let (gl, gr) = grads.split_at_mut(i + 1);
            let g_out: &Tensor = if i == n - 1 { grad_out } else { &gr[0] };
            layer.backward_into(&acts[i], g_out, &mut gl[i], gw, gb);
            if i > 0 {
                // Multiply by the activation derivative of the previous
                // layer's output (exactly acts[i]), as in [`Mlp::backward`].
                let act = self.activation;
                for (g, &y) in gl[i].as_mut_slice().iter_mut().zip(acts[i].as_slice()) {
                    *g *= act.derivative_from_output(y);
                }
            }
        }
        flat
    }

    /// Mutable parameter segments in [`Mlp::write_params`] order (per
    /// layer: weights row-major, then bias) — the in-place counterpart of
    /// [`Mlp::params_vec`]/[`Mlp::read_params`], built for
    /// [`crate::adam::Adam::step_segments`].
    pub fn params_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.layers.iter_mut().flat_map(|l| [l.w.as_mut_slice(), l.b.as_mut_slice()])
    }

    /// Backward pass: given the cache and `∂L/∂output`, returns the flat
    /// parameter gradient (aligned with [`Mlp::write_params`]).
    pub fn backward(&self, cache: &ForwardCache, grad_out: &Tensor) -> Vec<f64> {
        let mut flat = vec![0.0; self.num_params()];
        // Per-layer parameter offsets in flat order.
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut off = 0;
        for layer in &self.layers {
            offsets.push(off);
            off += layer.num_params();
        }

        let mut grad = grad_out.clone();
        for i in (0..self.layers.len()).rev() {
            // Walking backwards: `grad` currently holds dL/d(post-activation
            // of layer i) for the last layer (linear output) or has already
            // been multiplied by the activation derivative below.
            let x = &cache.activations[i];
            let (gx, gw, gb) = self.layers[i].backward(x, &grad);
            let o = offsets[i];
            let nw = gw.as_slice().len();
            flat[o..o + nw].copy_from_slice(gw.as_slice());
            flat[o + nw..o + nw + gb.len()].copy_from_slice(&gb);
            grad = gx;
            if i > 0 {
                // Multiply by the activation derivative of the previous
                // layer's output (which is exactly cache.activations[i]).
                let act = self.activation;
                let y = &cache.activations[i];
                for (g, &yv) in grad.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *g *= act.derivative_from_output(yv);
                }
            }
        }
        flat
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Writes all parameters into a flat buffer; returns count written.
    pub fn write_params(&self, out: &mut [f64]) -> usize {
        let mut off = 0;
        for layer in &self.layers {
            off += layer.write_params(&mut out[off..]);
        }
        off
    }

    /// Reads all parameters from a flat buffer.
    pub fn read_params(&mut self, src: &[f64]) {
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.read_params(&src[off..]);
        }
        debug_assert_eq!(off, src.len());
    }

    /// Flat copy of the parameters.
    pub fn params_vec(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.num_params()];
        self.write_params(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_loss(mlp: &Mlp, x: &Tensor) -> f64 {
        mlp.forward(x).as_slice().iter().map(|v| v * v).sum::<f64>() / 2.0
    }

    #[test]
    fn full_network_gradient_check() {
        let mut rng = StdRng::seed_from_u64(1);
        for activation in [Activation::Tanh, Activation::Relu, Activation::Identity] {
            let mut mlp = Mlp::new(&[4, 8, 5, 3], activation, &mut rng);
            let x = Tensor::from_vec(3, 4, (0..12).map(|i| ((i as f64) * 0.7).sin()).collect());
            let cache = mlp.forward_cached(&x);
            let grad_out = cache.output().clone(); // dL/dy = y for L = Σy²/2
            let analytic = mlp.backward(&cache, &grad_out);

            let eps = 1e-6;
            let mut params = mlp.params_vec();
            // Spot-check a spread of parameters (every 17th) to keep the
            // test fast while covering all layers.
            for idx in (0..params.len()).step_by(17) {
                let orig = params[idx];
                params[idx] = orig + eps;
                mlp.read_params(&params);
                let up = quadratic_loss(&mlp, &x);
                params[idx] = orig - eps;
                mlp.read_params(&params);
                let down = quadratic_loss(&mlp, &x);
                params[idx] = orig;
                mlp.read_params(&params);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic[idx]).abs() < 1e-5,
                    "{activation:?} param {idx}: numeric {numeric} vs analytic {}",
                    analytic[idx]
                );
            }
        }
    }

    #[test]
    fn policy_default_shape_matches_paper() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::policy_default(8, 72, &mut rng);
        assert_eq!(mlp.input_dim(), 8);
        assert_eq!(mlp.output_dim(), 72);
        // 8·256 + 256 + 256·256 + 256 + 256·72 + 72
        assert_eq!(mlp.num_params(), 8 * 256 + 256 + 256 * 256 + 256 + 256 * 72 + 72);
        // Small final layer => near-zero initial outputs.
        let out = mlp.forward_one(&[0.3; 8]);
        assert!(out.iter().all(|v| v.abs() < 0.5));
    }

    #[test]
    fn params_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, &mut rng);
        let v = mlp.params_vec();
        let mut clone = Mlp::new(&[3, 6, 2], Activation::Tanh, &mut rng);
        clone.read_params(&v);
        let x = [0.1, -0.2, 0.9];
        assert_eq!(mlp.forward_one(&x), clone.forward_one(&x));
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, &mut rng);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(mlp, back);
    }

    #[test]
    fn workspace_paths_bit_identical_to_allocating_paths() {
        let mut rng = StdRng::seed_from_u64(6);
        let mlp = Mlp::new(&[4, 8, 5, 3], Activation::Tanh, &mut rng);
        let mut ws = Workspace::new().with_grad_tail(2);
        // Two different batch sizes through the SAME workspace (reuse and
        // reshape must not perturb results).
        for (batch, salt) in [(3usize, 0.3), (1usize, 0.9), (3usize, 0.1)] {
            let x = Tensor::from_vec(
                batch,
                4,
                (0..batch * 4).map(|i| ((i as f64) * 0.7 + salt).sin()).collect(),
            );
            let cache = mlp.forward_cached(&x);
            let out = mlp.forward_into(&x, &mut ws);
            assert_eq!(out, cache.output());
            let grad_out = cache.output().clone();
            let flat_ref = mlp.backward(&cache, &grad_out);
            let flat = mlp.backward_into(&mut ws, &grad_out);
            assert_eq!(flat.len(), mlp.num_params() + 2);
            for (i, (a, b)) in flat_ref.iter().zip(flat.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "flat grad {i}");
            }
        }
        // Batch-1 fast path against forward_one.
        let x1 = [0.2, -0.4, 0.8, 0.0];
        let one = mlp.forward_one_into(&x1, &mut ws).to_vec();
        assert_eq!(one, mlp.forward_one(&x1));
    }

    #[test]
    fn params_mut_covers_write_params_order() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, &mut rng);
        let flat = mlp.params_vec();
        let mut off = 0;
        for seg in mlp.params_mut() {
            for (a, b) in seg.iter().zip(&flat[off..]) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            off += seg.len();
        }
        assert_eq!(off, flat.len());
    }

    #[test]
    fn forward_rows_into_bit_identical_to_sequential_gemv() {
        let mut rng = StdRng::seed_from_u64(8);
        let mlp = Mlp::new(&[5, 16, 16, 3], Activation::Tanh, &mut rng);
        let rows = 7;
        let data: Vec<f64> = (0..rows * 5).map(|i| ((i as f64) * 0.41).cos()).collect();
        let mut ws_batch = Workspace::new();
        let mut ws_one = Workspace::new();
        let out = mlp.forward_rows_into(rows, &data, &mut ws_batch);
        assert_eq!(out.rows(), rows);
        assert_eq!(out.cols(), 3);
        for r in 0..rows {
            let one = mlp.forward_one_into(&data[r * 5..(r + 1) * 5], &mut ws_one);
            for (c, (a, b)) in out.row(r).iter().zip(one.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn fast_tanh_mode_close_but_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let bit = Mlp::new(&[4, 32, 2], Activation::Tanh, &mut rng);
        let fast = bit.clone().with_tanh_mode(TanhMode::Fast);
        assert_eq!(bit.tanh_mode(), TanhMode::BitCompat);
        assert_eq!(fast.tanh_mode(), TanhMode::Fast);
        let x = [0.4, -0.7, 0.1, 0.9];
        let a = bit.forward_one(&x);
        let b = fast.forward_one(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-6, "fast mode drifted: {u} vs {v}");
        }
        // Mode survives serde as the default (field is skipped).
        let back: Mlp = serde_json::from_str(&serde_json::to_string(&fast).unwrap()).unwrap();
        assert_eq!(back.tanh_mode(), TanhMode::BitCompat);
    }

    #[test]
    fn batch_forward_matches_per_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&[3, 5, 2], Activation::Tanh, &mut rng);
        let rows = [vec![0.1, 0.2, 0.3], vec![-1.0, 0.5, 0.0]];
        let batch = Tensor::from_vec(2, 3, rows.concat());
        let y = mlp.forward(&batch);
        for (i, r) in rows.iter().enumerate() {
            let single = mlp.forward_one(r);
            for (a, b) in y.row(i).iter().zip(single.iter()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}

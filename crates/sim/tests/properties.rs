//! Property-based invariants of the finite-system engines: the exact
//! aggregation must conserve clients and respect the assignment law for
//! *arbitrary* queue-length profiles and decision rules.

use mflb_core::meanfield::per_state_arrival_rates;
use mflb_core::{DecisionRule, StateDist};
use mflb_sim::aggregate::sample_client_assignments;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an arbitrary queue-length profile over `{0..5}` for M queues.
fn profile_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..6, 5..40)
}

/// Strategy: a random row-stochastic d = 2 decision rule over 6 states.
fn rule_strategy() -> impl Strategy<Value = DecisionRule> {
    prop::collection::vec(0.0f64..1.0, 36).prop_map(|ps| {
        DecisionRule::from_fn(6, 2, |tuple| {
            let p = ps[tuple[0] * 6 + tuple[1]].clamp(0.0, 1.0);
            vec![p, 1.0 - p]
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assignments_conserve_clients(
        queues in profile_strategy(),
        rule in rule_strategy(),
        n in 1u64..50_000,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = sample_client_assignments(n, 5, &queues, &rule, &mut rng);
        prop_assert_eq!(counts.len(), queues.len());
        prop_assert_eq!(counts.iter().sum::<u64>(), n, "every client lands somewhere");
    }

    #[test]
    fn equal_state_queues_are_exchangeable_in_expectation(
        rule in rule_strategy(),
        seed in 0u64..500,
    ) {
        // Two queues in the same state must receive statistically equal
        // client counts (the level-2 uniform split of the aggregation).
        let queues = vec![2usize, 2, 0, 4, 1, 1, 3, 2];
        let mut rng = StdRng::seed_from_u64(seed);
        let reps = 400;
        let (mut a, mut b) = (0u64, 0u64);
        for _ in 0..reps {
            let counts = sample_client_assignments(4_000, 5, &queues, &rule, &mut rng);
            a += counts[0];
            b += counts[1];
        }
        let (a, b) = (a as f64 / reps as f64, b as f64 / reps as f64);
        let scale = (a + b).max(1.0);
        prop_assert!(
            (a - b).abs() / scale < 0.10,
            "same-state queues got {a:.1} vs {b:.1} clients on average"
        );
    }

    #[test]
    fn group_totals_match_the_mean_field_integral(
        queues in profile_strategy(),
        rule in rule_strategy(),
        seed in 0u64..500,
    ) {
        // The expected per-state client share is m_z/M · M·q_z from
        // per_state_arrival_rates(H, h, 1) — check the empirical group
        // totals against it.
        let n = 20_000u64;
        let m = queues.len();
        let h = StateDist::empirical(&queues, 5);
        let m_qz = per_state_arrival_rates(&h, &rule, 1.0);
        let mut group_size = [0u64; 6];
        for &z in &queues {
            group_size[z] += 1;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let reps = 60;
        let mut group_totals = [0.0f64; 6];
        for _ in 0..reps {
            let counts = sample_client_assignments(n, 5, &queues, &rule, &mut rng);
            for (j, &z) in queues.iter().enumerate() {
                group_totals[z] += counts[j] as f64;
            }
        }
        for z in 0..6 {
            let expected = n as f64 * (group_size[z] as f64 / m as f64) * m_qz[z];
            let got = group_totals[z] / reps as f64;
            // Multinomial noise of the group total over reps averages.
            let se = (expected.max(1.0)).sqrt() / (reps as f64).sqrt() * 3.0 + 6.0;
            prop_assert!(
                (got - expected).abs() < 6.0 * se,
                "state {z}: mean group total {got:.1} vs expected {expected:.1}"
            );
        }
    }
}

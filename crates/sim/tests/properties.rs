//! Property-based invariants of the finite-system engines: the exact
//! aggregation must conserve clients and respect the assignment law for
//! *arbitrary* queue-length profiles and decision rules.

use mflb_core::mdp::{FixedRulePolicy, UpperPolicy};
use mflb_core::meanfield::per_state_arrival_rates;
use mflb_core::{DecisionRule, JobSizeLaw, StateDist, SystemConfig, Topology};
use mflb_sim::aggregate::sample_client_assignments;
use mflb_sim::{
    run_episode, run_rng, serve, AggregateEngine, Engine, EventEngine, GraphEngine, Job, JobSource,
    ServeOptions, StepMode, Timeline,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: an arbitrary queue-length profile over `{0..5}` for M queues.
fn profile_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..6, 5..40)
}

/// Strategy: a random row-stochastic d = 2 decision rule over 6 states.
fn rule_strategy() -> impl Strategy<Value = DecisionRule> {
    prop::collection::vec(0.0f64..1.0, 36).prop_map(|ps| {
        DecisionRule::from_fn(6, 2, |tuple| {
            let p = ps[tuple[0] * 6 + tuple[1]].clamp(0.0, 1.0);
            vec![p, 1.0 - p]
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assignments_conserve_clients(
        queues in profile_strategy(),
        rule in rule_strategy(),
        n in 1u64..50_000,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = sample_client_assignments(n, 5, &queues, &rule, &mut rng);
        prop_assert_eq!(counts.len(), queues.len());
        prop_assert_eq!(counts.iter().sum::<u64>(), n, "every client lands somewhere");
    }

    #[test]
    fn equal_state_queues_are_exchangeable_in_expectation(
        rule in rule_strategy(),
        seed in 0u64..500,
    ) {
        // Two queues in the same state must receive statistically equal
        // client counts (the level-2 uniform split of the aggregation).
        let queues = vec![2usize, 2, 0, 4, 1, 1, 3, 2];
        let mut rng = StdRng::seed_from_u64(seed);
        let reps = 400;
        let (mut a, mut b) = (0u64, 0u64);
        for _ in 0..reps {
            let counts = sample_client_assignments(4_000, 5, &queues, &rule, &mut rng);
            a += counts[0];
            b += counts[1];
        }
        let (a, b) = (a as f64 / reps as f64, b as f64 / reps as f64);
        let scale = (a + b).max(1.0);
        prop_assert!(
            (a - b).abs() / scale < 0.10,
            "same-state queues got {a:.1} vs {b:.1} clients on average"
        );
    }

    #[test]
    fn group_totals_match_the_mean_field_integral(
        queues in profile_strategy(),
        rule in rule_strategy(),
        seed in 0u64..500,
    ) {
        // The expected per-state client share is m_z/M · M·q_z from
        // per_state_arrival_rates(H, h, 1) — check the empirical group
        // totals against it.
        let n = 20_000u64;
        let m = queues.len();
        let h = StateDist::empirical(&queues, 5);
        let m_qz = per_state_arrival_rates(&h, &rule, 1.0);
        let mut group_size = [0u64; 6];
        for &z in &queues {
            group_size[z] += 1;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let reps = 60;
        let mut group_totals = [0.0f64; 6];
        for _ in 0..reps {
            let counts = sample_client_assignments(n, 5, &queues, &rule, &mut rng);
            for (j, &z) in queues.iter().enumerate() {
                group_totals[z] += counts[j] as f64;
            }
        }
        for z in 0..6 {
            let expected = n as f64 * (group_size[z] as f64 / m as f64) * m_qz[z];
            let got = group_totals[z] / reps as f64;
            // Multinomial noise of the group total over reps averages.
            let se = (expected.max(1.0)).sqrt() / (reps as f64).sqrt() * 3.0 + 6.0;
            prop_assert!(
                (got - expected).abs() < 6.0 * se,
                "state {z}: mean group total {got:.1} vs expected {expected:.1}"
            );
        }
    }
}

/// Strategy: an arbitrary sparse topology valid for `m` queues.
fn topology_strategy(m: usize) -> impl Strategy<Value = Topology> {
    (0usize..3, 1usize..4, 0u64..1_000).prop_map(move |(kind, size, seed)| match kind {
        0 => Topology::Ring { radius: size.min((m - 1) / 2) },
        // Degree 2·size is even (valid for odd M); the m−1 cap is even
        // exactly when M is odd, and an odd cap only binds for even M,
        // where odd degrees are legal too.
        1 => Topology::RandomRegular { degree: (2 * size).min(m - 1), seed },
        _ => Topology::Ring { radius: 1 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graph_assignments_conserve_job_mass(
        queues in profile_strategy(),
        rule in rule_strategy(),
        n in 1u64..50_000,
        seed in 0u64..10_000,
    ) {
        // Job-mass conservation: every client lands on exactly one queue,
        // for arbitrary profiles, rules and sparse topologies.
        let m = queues.len();
        let mut top_rng = StdRng::seed_from_u64(seed ^ 0xA11C);
        let top = topology_strategy(m).generate(&mut top_rng);
        let cfg = SystemConfig::paper().with_size(n.max(1), m);
        let engine = GraphEngine::new(cfg, top);
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = engine.sample_assignments(&queues, &rule, &mut rng);
        prop_assert_eq!(counts.len(), m);
        prop_assert_eq!(counts.iter().sum::<u64>(), n, "every client lands somewhere");
    }

    #[test]
    fn graph_routing_never_leaves_the_neighborhood(
        queues in profile_strategy(),
        rule in rule_strategy(),
        node_pick in 0usize..1_000,
        clients in 1u64..20_000,
        seed in 0u64..10_000,
    ) {
        let m = queues.len();
        let mut top_rng = StdRng::seed_from_u64(seed ^ 0xB22D);
        let top = topology_strategy(m).generate(&mut top_rng);
        // Degenerate covers take the aggregate fast path, which has no
        // per-node stage to test — the locality invariant is vacuous there.
        if !top.is_full_mesh(m) {
            let cfg = SystemConfig::paper().with_size(clients, m);
            let engine = GraphEngine::new(cfg, top);
            let node = node_pick % m;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts = vec![0u64; m];
            engine.sample_node_assignments(node, clients, &queues, &rule, &mut rng, &mut counts);
            prop_assert_eq!(counts.iter().sum::<u64>(), clients);
            let nbrs = engine.neighborhood(node);
            for (j, &c) in counts.iter().enumerate() {
                if !nbrs.contains(&(j as u32)) {
                    prop_assert_eq!(
                        c, 0,
                        "queue {} outside A({}) = {:?} got clients", j, node, nbrs
                    );
                }
            }
        }
    }

    #[test]
    fn full_mesh_graph_reproduces_the_aggregate_rng_stream(
        n in 100u64..20_000,
        m in 5usize..40,
        seed in 0u64..10_000,
        horizon in 1usize..12,
    ) {
        // The degenerate topology must take the aggregate fast path: whole
        // episodes are bit-for-bit identical, not just equal in law. Both
        // the explicit FullMesh tag and a covering ring must qualify.
        let cfg = SystemConfig::paper().with_size(n, m).with_dt(2.0);
        let policy = FixedRulePolicy::new(
            mflb_policy::jsq_rule(6, 2),
            "JSQ(2)",
        );
        let agg = AggregateEngine::new(cfg.clone());
        let reference = run_episode(&agg, &policy, horizon, &mut run_rng(seed, 0));
        // A ring with 2r+1 = M covers the cycle only for odd M; even M
        // rings are filtered out by the is_full_mesh check below.
        for top in [Topology::FullMesh, Topology::Ring { radius: (m - 1) / 2 }] {
            if !top.is_full_mesh(m) {
                continue;
            }
            let graph = GraphEngine::new(cfg.clone(), top.clone());
            let got = run_episode(&graph, &policy, horizon, &mut run_rng(seed, 0));
            prop_assert_eq!(&got.drops_per_epoch, &reference.drops_per_epoch, "{:?}", &top);
            prop_assert_eq!(&got.mean_queue_len, &reference.mean_queue_len, "{:?}", &top);
            prop_assert_eq!(&got.lambda_trace, &reference.lambda_trace, "{:?}", &top);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_episodes_are_partition_invariant(
        m in 10usize..48,
        n in 100u64..20_000,
        shard_a in 1usize..64,
        shard_b in 1usize..64,
        workers in 1usize..5,
        seed in 0u64..10_000,
    ) {
        // The defining property of the sharded stream: shard size and
        // worker count are pure execution detail. Any (shard, workers)
        // pair — including the 1-shard degenerate split — must produce
        // byte-identical episodes.
        let mut top_rng = StdRng::seed_from_u64(seed ^ 0xC33E);
        let top = topology_strategy(m).generate(&mut top_rng);
        // Full-mesh covers always take the aggregate path; the sharded
        // invariant is vacuous there.
        if !top.is_full_mesh(m) {
            let cfg = SystemConfig::paper().with_size(n, m).with_dt(2.0);
            let policy = FixedRulePolicy::new(mflb_policy::jsq_rule(6, 2), "JSQ(2)");
            let base = GraphEngine::new(cfg, top).with_mode(StepMode::Sharded);
            let one = base.clone().with_shard_size(1 << 20).with_workers(1);
            let reference = run_episode(&one, &policy, 6, &mut run_rng(seed, 0));
            let split = base.with_shard_size(shard_a.min(shard_b)).with_workers(workers);
            let got = run_episode(&split, &policy, 6, &mut run_rng(seed, 0));
            prop_assert_eq!(&got.drops_per_epoch, &reference.drops_per_epoch);
            prop_assert_eq!(&got.mean_queue_len, &reference.mean_queue_len);
            prop_assert_eq!(&got.max_share_per_epoch, &reference.max_share_per_epoch);
            prop_assert_eq!(got.jobs_completed, reference.jobs_completed);
        }
    }

    #[test]
    fn sharded_assignments_conserve_job_mass(
        queues in profile_strategy(),
        rule in rule_strategy(),
        n in 1u64..50_000,
        shard in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let m = queues.len();
        let mut top_rng = StdRng::seed_from_u64(seed ^ 0xD44F);
        let top = topology_strategy(m).generate(&mut top_rng);
        let cfg = SystemConfig::paper().with_size(n.max(1), m);
        let engine = GraphEngine::new(cfg, top)
            .with_mode(StepMode::Sharded)
            .with_shard_size(shard);
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = engine.sample_assignments(&queues, &rule, &mut rng);
        prop_assert_eq!(counts.len(), m);
        prop_assert_eq!(counts.iter().sum::<u64>(), n, "every client lands somewhere");
    }

    #[test]
    fn timeline_pops_in_nondecreasing_time_seq_order(
        raw in prop::collection::vec(0.0f64..100.0, 1..200),
    ) {
        // Quantizing to a coarse grid forces plenty of exact time ties,
        // so the monotone-seq tiebreak is actually exercised.
        let mut tl: Timeline<usize> = Timeline::new();
        for (i, &t) in raw.iter().enumerate() {
            tl.schedule((t * 4.0).round() / 4.0, i);
        }
        let mut last: Option<(f64, u64)> = None;
        let mut popped = 0usize;
        while let Some((t, seq, _)) = tl.pop() {
            if let Some((lt, ls)) = last {
                prop_assert!(
                    t > lt || (t == lt && seq > ls),
                    "(time, seq) must strictly increase: ({lt}, {ls}) then ({t}, {seq})"
                );
            }
            last = Some((t, seq));
            popped += 1;
        }
        prop_assert_eq!(popped, raw.len(), "every scheduled event pops exactly once");
    }

    #[test]
    fn timeline_pop_order_is_insertion_order_independent(
        raw in prop::collection::vec(0.0f64..1e4, 1..120),
        perm_seed in 0u64..10_000,
    ) {
        // With distinct times the popped (time, payload) sequence is a
        // pure function of the event set — heap layout (and therefore
        // insertion order) must not show through.
        let mut times = raw;
        times.sort_by(f64::total_cmp);
        times.dedup();
        let sorted: Vec<(f64, usize)> = times.iter().copied().zip(0..).collect();
        let mut shuffled = sorted.clone();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }
        let drain = |events: &[(f64, usize)]| {
            let mut tl: Timeline<usize> = Timeline::new();
            for &(t, id) in events {
                tl.schedule(t, id);
            }
            let mut out = Vec::with_capacity(events.len());
            while let Some((t, _, id)) = tl.pop() {
                out.push((t, id));
            }
            out
        };
        prop_assert_eq!(drain(&sorted), drain(&shuffled));
    }

    #[test]
    fn event_episodes_conserve_job_mass(
        m in 5usize..30,
        n in 50u64..5_000,
        law_pick in 0usize..3,
        horizon in 1usize..10,
        seed in 0u64..10_000,
    ) {
        // Every dispatched job is accounted for exactly once: completed,
        // dropped, or still in the system — across laws and horizons.
        let cfg = SystemConfig::paper().with_size(n, m).with_dt(2.0);
        let law = match law_pick {
            0 => JobSizeLaw::Exponential { rate: 1.0 },
            1 => JobSizeLaw::Pareto { shape: 2.5, scale: 0.5 },
            _ => JobSizeLaw::BoundedPareto { shape: 1.5, lo: 0.2, hi: 20.0 },
        };
        let engine = EventEngine::new(cfg, law);
        let policy = FixedRulePolicy::new(mflb_policy::jsq_rule(6, 2), "JSQ(2)");
        let mut rng = run_rng(seed, 0);
        let mut state = engine.init_state(&mut rng);
        for _ in 0..horizon {
            let h = engine.empirical(&state);
            let rule = policy.decide(&h, 0, 0.9);
            engine.step(&mut state, &rule, 0.9, &mut rng);
            prop_assert_eq!(
                state.jobs_arrived(),
                state.jobs_completed() + state.jobs_dropped() + state.jobs_in_system(),
                "job mass must balance after every epoch"
            );
        }
    }

    #[test]
    fn serve_replays_bit_identically(
        num_jobs in 1usize..120,
        gap_q in 1u32..40,
        seed in 0u64..10_000,
        synthetic_pick in 0usize..2,
    ) {
        let synthetic = synthetic_pick == 1;
        // A serve run is a deterministic function of (engine, policy,
        // source, seed): replaying the same trace — or re-running the
        // same synthetic stream — reproduces every statistic bit for bit.
        let cfg = SystemConfig::paper().with_size(200, 10).with_dt(2.0);
        let engine = EventEngine::new(
            cfg,
            JobSizeLaw::BoundedPareto { shape: 1.5, lo: 0.2, hi: 20.0 },
        );
        let policy = FixedRulePolicy::new(mflb_policy::jsq_rule(6, 2), "JSQ(2)");
        let gap = gap_q as f64 * 0.025;
        let source = if synthetic {
            JobSource::Synthetic
        } else {
            JobSource::Trace(
                (0..num_jobs)
                    .map(|i| Job {
                        t: i as f64 * gap,
                        size: 0.2 + ((i * 37 + seed as usize) % 11) as f64 * 0.15,
                    })
                    .collect(),
            )
        };
        let opts = ServeOptions {
            duration: synthetic.then_some(20.0),
            seed,
            ..Default::default()
        };
        let a = serve(&engine, &policy, "JSQ(2)", &source, &opts, |_| {}).unwrap();
        let b = serve(&engine, &policy, "JSQ(2)", &source, &opts, |_| {}).unwrap();
        prop_assert_eq!(a.jobs_arrived, b.jobs_arrived);
        prop_assert_eq!(a.jobs_completed, b.jobs_completed);
        prop_assert_eq!(a.jobs_dropped, b.jobs_dropped);
        prop_assert_eq!(a.intervals, b.intervals);
        prop_assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
        prop_assert_eq!(a.mean_sojourn.to_bits(), b.mean_sojourn.to_bits());
        prop_assert_eq!(a.max_sojourn.to_bits(), b.max_sojourn.to_bits());
        prop_assert_eq!(a.drop_fraction.to_bits(), b.drop_fraction.to_bits());
        prop_assert_eq!(a.mean_queue_len.to_bits(), b.mean_queue_len.to_bits());
    }

    #[test]
    fn sharded_routing_never_leaves_the_neighborhood(
        queues in profile_strategy(),
        rule in rule_strategy(),
        node_pick in 0usize..1_000,
        clients in 1u64..20_000,
        epoch_base in 0u64..u64::MAX,
        seed in 0u64..10_000,
    ) {
        // The per-dispatcher derived stream (both the ≤16-client
        // per-client path and the binomial chain above it) must respect
        // A(i) for any epoch base.
        let m = queues.len();
        let mut top_rng = StdRng::seed_from_u64(seed ^ 0xE55A);
        let top = topology_strategy(m).generate(&mut top_rng);
        if !top.is_full_mesh(m) {
            let cfg = SystemConfig::paper().with_size(clients, m);
            let engine = GraphEngine::new(cfg, top);
            let node = node_pick % m;
            let mut counts = vec![0u64; m];
            engine.sample_node_assignments_sharded(
                node, clients, &queues, &rule, epoch_base, &mut counts,
            );
            prop_assert_eq!(counts.iter().sum::<u64>(), clients);
            let nbrs = engine.neighborhood(node);
            for (j, &c) in counts.iter().enumerate() {
                if !nbrs.contains(&(j as u32)) {
                    prop_assert_eq!(
                        c, 0,
                        "queue {} outside A({}) = {:?} got clients", j, node, nbrs
                    );
                }
            }
        }
    }
}

/// Strategy: an arbitrary fault plan with every family active — bounded
/// parameters keep the runs busy but finite.
fn fault_plan_strategy() -> impl Strategy<Value = mflb_core::FaultPlan> {
    (
        (5.0f64..50.0, 1.0f64..20.0, 0.0f64..1.0), // mttf, mttr, obs drop_prob
        (0.0f64..20.0, 1.0f64..10.0, 0.0f64..10.0, 1.0f64..10.0), // windows: start, len, gap, len
        (0.1f64..2.0, 1.0f64..2.0),                // straggler factor, overload factor
    )
        .prop_map(|((mttf, mttr, drop_prob), (s1, l1, gap, l2), (sf, of))| {
            let (e1, s2) = (s1 + l1, s1 + l1 + gap);
            mflb_core::FaultPlan {
                crashes: Some(mflb_core::CrashFaults { mttf, mttr }),
                stragglers: vec![
                    mflb_core::StragglerWindow { start: s1, end: e1, factor: sf, queues: None },
                    mflb_core::StragglerWindow {
                        start: s2,
                        end: s2 + l2,
                        factor: 1.0 / sf,
                        queues: Some(vec![0, 3]),
                    },
                ],
                observation: Some(mflb_core::ObservationFaults { drop_prob }),
                overloads: vec![
                    mflb_core::OverloadWindow { start: s1, end: e1, factor: of },
                    mflb_core::OverloadWindow { start: s2, end: s2 + l2, factor: 2.0 / of },
                ],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn faulted_episodes_replay_bit_identically(
        plan in fault_plan_strategy(),
        seed in 0u64..10_000,
    ) {
        // Fault randomness is keyed off (epoch_base, salt, index) counter
        // streams: rerunning the same faulted episode at the same seed
        // reproduces the drop total bit for bit, on every faultable engine.
        let cfg = SystemConfig::paper().with_size(200, 10).with_dt(2.0);
        let policy = FixedRulePolicy::new(mflb_policy::jsq_rule(6, 2), "JSQ(2)");
        let event = EventEngine::new(cfg.clone(), JobSizeLaw::Exponential { rate: 1.0 })
            .with_faults(plan.clone());
        let fifo = mflb_sim::FifoEngine::new(cfg.clone()).with_faults(plan.clone());
        let graph = GraphEngine::new(cfg, Topology::Ring { radius: 2 })
            .with_mode(StepMode::Sharded)
            .with_faults(plan);
        let a = run_episode(&event, &policy, 10, &mut run_rng(seed, 0)).total_drops;
        let b = run_episode(&event, &policy, 10, &mut run_rng(seed, 0)).total_drops;
        prop_assert_eq!(a.to_bits(), b.to_bits());
        let a = run_episode(&fifo, &policy, 10, &mut run_rng(seed, 0)).total_drops;
        let b = run_episode(&fifo, &policy, 10, &mut run_rng(seed, 0)).total_drops;
        prop_assert_eq!(a.to_bits(), b.to_bits());
        let a = run_episode(&graph, &policy, 10, &mut run_rng(seed, 0)).total_drops;
        let b = run_episode(&graph, &policy, 10, &mut run_rng(seed, 0)).total_drops;
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn fault_schedules_are_insertion_order_independent(
        plan in fault_plan_strategy(),
        seed in 0u64..10_000,
    ) {
        // The straggler/overload windows are disjoint in time, so listing
        // them in the opposite order is the *same* schedule — and must
        // produce the same episode bit for bit.
        let mut reversed = plan.clone();
        reversed.stragglers.reverse();
        reversed.overloads.reverse();
        let cfg = SystemConfig::paper().with_size(200, 10).with_dt(2.0);
        let policy = FixedRulePolicy::new(mflb_policy::jsq_rule(6, 2), "JSQ(2)");
        let a_engine = EventEngine::new(cfg.clone(), JobSizeLaw::Exponential { rate: 1.0 })
            .with_faults(plan);
        let b_engine = EventEngine::new(cfg, JobSizeLaw::Exponential { rate: 1.0 })
            .with_faults(reversed);
        let a = run_episode(&a_engine, &policy, 10, &mut run_rng(seed, 0)).total_drops;
        let b = run_episode(&b_engine, &policy, 10, &mut run_rng(seed, 0)).total_drops;
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }
}

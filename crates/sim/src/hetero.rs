//! Heterogeneous-server finite system — the paper's §5 extension.
//!
//! Servers carry per-class service rates ([`mflb_queue::hetero::ServerPool`]);
//! clients observe *composite* states `(queue length, rate class)` and
//! apply a decision rule over composite indices (built e.g. with
//! [`mflb_policy::sed_rule`]). Assignment is per-client (the clean
//! aggregation of the homogeneous engine would need per-(state, class)
//! grouping; at the example scales N ≤ 10⁵ the literal loop is fine), but
//! episodes run through the generic [`crate::run_episode`] /
//! [`crate::monte_carlo()`] drivers like every other engine, so the §5
//! evaluations get thread-parallel Monte Carlo and conditioned-λ episodes
//! for free.

use crate::episode::{length_epoch_stats, simulate_birth_death_epoch, Engine, EpochStats};
use mflb_core::{DecisionRule, StateDist, SystemConfig};
use mflb_queue::hetero::ServerPool;
use rand::rngs::StdRng;

/// Episode state of [`HeteroEngine`]: queue lengths plus per-epoch scratch.
#[derive(Debug, Clone)]
pub struct HeteroState {
    queues: Vec<usize>,
    counts: Vec<u64>,
    sampled: Vec<usize>,
    tuple: Vec<usize>,
}

impl HeteroState {
    /// Current queue lengths.
    pub fn queues(&self) -> &[usize] {
        &self.queues
    }
}

/// Finite system with heterogeneous service rates.
#[derive(Debug, Clone)]
pub struct HeteroEngine {
    config: SystemConfig,
    pool: ServerPool,
    /// Rate class of each server (index into the distinct-rate table).
    class_of: Vec<usize>,
    /// Distinct class rates, in class order.
    class_rates: Vec<f64>,
}

impl HeteroEngine {
    /// Builds the engine from a configuration (N, d, Δt, arrivals, buffer)
    /// and a server pool; the pool's size overrides `config.num_queues`.
    pub fn new(mut config: SystemConfig, pool: ServerPool) -> Self {
        config.num_queues = pool.len();
        config.validate().expect("invalid system configuration");
        // Quantize rates into classes (exact comparison suffices: pools are
        // constructed from explicit class rates).
        let mut class_rates: Vec<f64> = Vec::new();
        let class_of = pool
            .rates()
            .iter()
            .map(|&r| {
                if let Some(c) = class_rates.iter().position(|&x| (x - r).abs() < 1e-12) {
                    c
                } else {
                    class_rates.push(r);
                    class_rates.len() - 1
                }
            })
            .collect();
        Self { config, pool, class_of, class_rates }
    }

    /// The server pool in force.
    pub fn pool(&self) -> &ServerPool {
        &self.pool
    }

    /// Number of distinct rate classes.
    pub fn num_classes(&self) -> usize {
        self.class_rates.len()
    }

    /// Distinct class rates.
    pub fn class_rates(&self) -> &[f64] {
        &self.class_rates
    }

    /// Composite state (for rule lookup) of server `j` holding `z` jobs.
    pub fn composite_state(&self, j: usize, z: usize) -> usize {
        mflb_policy::composite_index(z, self.class_of[j], self.config.num_states())
    }
}

impl Engine for HeteroEngine {
    type State = HeteroState;

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The §5 heterogeneous experiments start from an empty system; `ν₀`
    /// is a length-only distribution and carries no class information, so
    /// the engine does not consume randomness here (composite initial
    /// sampling is the sparse/localized follow-up work's territory).
    fn init_state(&self, _rng: &mut StdRng) -> HeteroState {
        let m = self.pool.len();
        HeteroState {
            queues: vec![0; m],
            counts: vec![0; m],
            sampled: vec![0; self.config.d],
            tuple: vec![0; self.config.d],
        }
    }

    fn empirical(&self, state: &HeteroState) -> StateDist {
        StateDist::empirical(&state.queues, self.config.buffer)
    }

    /// One decision epoch under a composite-state decision rule. `rule`
    /// must be built over `num_states × num_classes` composite states with
    /// the same `d`.
    fn step(
        &self,
        state: &mut HeteroState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        let HeteroState { queues, counts, sampled, tuple } = state;
        let m = queues.len();
        assert_eq!(
            rule.num_states(),
            self.config.num_states() * self.num_classes(),
            "rule must cover composite states"
        );
        crate::episode::sample_per_client_assignments(
            self.config.num_clients,
            &|j| self.composite_state(j, queues[j]),
            rule,
            rng,
            counts,
            sampled,
            tuple,
        );
        let scale = m as f64 * lambda / self.config.num_clients as f64;
        let (dropped, served) = simulate_birth_death_epoch(
            queues,
            counts,
            scale,
            &|j| self.pool.rate(j),
            self.config.buffer,
            self.config.dt,
            rng,
        );
        length_epoch_stats(queues, counts, self.config.num_clients, dropped, served)
    }

    fn name(&self) -> &'static str {
        "hetero"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_policy::{jsq_rule, sed_rule};

    fn two_speed_engine() -> HeteroEngine {
        let cfg = mflb_core::SystemConfig::paper().with_size(2_000, 20).with_dt(2.0);
        // 10 fast servers (α = 1.6), 10 slow (α = 0.4): same total capacity
        // as 20 homogeneous α = 1 servers.
        let pool = ServerPool::two_speed(10, 1.6, 10, 0.4, 5);
        HeteroEngine::new(cfg, pool)
    }

    #[test]
    fn classes_detected() {
        let e = two_speed_engine();
        assert_eq!(e.num_classes(), 2);
        assert_eq!(e.class_rates(), &[1.6, 0.4]);
        assert_eq!(e.composite_state(0, 3), 3); // class 0
        assert_eq!(e.composite_state(19, 3), 6 + 3); // class 1
    }

    #[test]
    fn sed_beats_state_only_jsq_on_two_speed_pool() {
        // JSQ ignores rates and overloads slow servers; SED accounts for
        // them. Expanded to composite states, JSQ compares only z.
        let e = two_speed_engine();
        let zs = 6;
        let sed = FixedRulePolicy::new(sed_rule(zs, 2, e.class_rates()), "SED");
        // State-only JSQ lifted to composite indices.
        let jsq_plain = jsq_rule(zs, 2);
        let jsq_lifted = FixedRulePolicy::new(
            mflb_core::DecisionRule::from_fn(zs * 2, 2, |t| {
                let raw: Vec<usize> = t.iter().map(|&c| c % zs).collect();
                (0..2).map(|u| jsq_plain.prob(&raw, u)).collect()
            }),
            "JSQ",
        );
        let mut drops_sed = 0.0;
        let mut drops_jsq = 0.0;
        let runs = 24;
        for r in 0..runs {
            drops_sed += run_episode(&e, &sed, 30, &mut run_rng(1, r)).total_drops;
            drops_jsq += run_episode(&e, &jsq_lifted, 30, &mut run_rng(2, r)).total_drops;
        }
        assert!(
            drops_sed < drops_jsq,
            "SED ({drops_sed:.2}) must beat rate-blind JSQ ({drops_jsq:.2})"
        );
    }

    #[test]
    fn homogeneous_pool_reduces_to_plain_engine_statistics() {
        // One class -> composite == plain states; compare against the
        // homogeneous aggregate engine.
        let cfg = mflb_core::SystemConfig::paper().with_size(900, 30).with_dt(3.0);
        let pool = ServerPool::homogeneous(30, 1.0, 5);
        let hetero = HeteroEngine::new(cfg.clone(), pool);
        let policy = FixedRulePolicy::new(jsq_rule(6, 2), "JSQ");
        let mut h_total = 0.0;
        // Per-episode drop counts are skewed (sd ≈ 0.7 vs mean ≈ 1.6), so 30
        // runs leave the sample means ~0.4 apart at the 95th percentile; 120
        // runs bring both engines within ~0.1 of each other.
        let runs = 120;
        for r in 0..runs {
            h_total += run_episode(&hetero, &policy, 15, &mut run_rng(3, r)).total_drops;
        }
        let agg = crate::aggregate::AggregateEngine::new(cfg);
        let mc = crate::monte_carlo::monte_carlo(&agg, &policy, 15, runs as usize, 9, 0);
        let h_mean = h_total / runs as f64;
        // Loose statistical agreement (different engines, same law).
        assert!(
            (h_mean - mc.mean()).abs() < 0.25 * mc.mean().max(1.0),
            "hetero {h_mean} vs aggregate {}",
            mc.mean()
        );
    }
}

//! The `mflb serve` runtime: a long-running dispatcher loop over the
//! event-heap [`EventEngine`].
//!
//! [`serve`] ingests a job stream — either the engine's own synthetic
//! Poisson/Pareto generator or a replayed JSONL trace — and dispatches
//! every job through an upper-level policy under the paper's
//! sampled-and-delayed observation model: the decision rule is refreshed
//! once per sync interval `Δt` from the stale length snapshot, exactly as
//! in training. Online metrics stream out as periodic [`ServeTick`]s and
//! a final [`ServeReport`] (the JSON the CLI prints and the bench suite
//! mines for jobs-dispatched-per-second).
//!
//! # Trace JSONL schema
//!
//! One job per line, `{"t": <arrival time>, "size": <work units>}`:
//! times must be finite, nonnegative and nondecreasing; sizes positive
//! and finite. Blank lines and `#` comments are skipped. A malformed
//! line is reported with its 1-based line number ([`parse_trace`]).
//!
//! # Determinism
//!
//! A serve run is a deterministic function of `(engine, policy, source,
//! seed)`: the master RNG only draws the initial state, the MMPP level
//! path and one `epoch_base` per interval; all per-job randomness runs
//! through the engine's counter-keyed streams. Replaying the same trace
//! (or re-running the same synthetic stream) at a fixed seed is
//! bit-identical — the regression suite pins a run.

use crate::episode::{run_rng, Engine};
use crate::event_engine::{ArrivalFeed, EventEngine, EventState, PoissonFeed};
use mflb_core::mdp::UpperPolicy;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One job of a replayed trace: arrival time and size in work units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Arrival time (absolute, from the start of the run).
    pub t: f64,
    /// Work units; service takes `size / service_rate` time units.
    pub size: f64,
}

/// Parses a JSONL job trace (see the module docs for the schema). Every
/// complaint names the offending 1-based line.
pub fn parse_trace(text: &str) -> Result<Vec<Job>, String> {
    let mut jobs = Vec::new();
    let mut last_t = 0.0f64;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let n = i + 1;
        let job: Job = serde_json::from_str(line).map_err(|e| format!("trace line {n}: {e}"))?;
        if !(job.t.is_finite() && job.t >= 0.0) {
            return Err(format!(
                "trace line {n}: arrival time must be finite and nonnegative, got {}",
                job.t
            ));
        }
        if job.t < last_t {
            return Err(format!(
                "trace line {n}: arrival times must be nondecreasing, got {} after {last_t}",
                job.t
            ));
        }
        if !(job.size > 0.0 && job.size.is_finite()) {
            return Err(format!(
                "trace line {n}: job size must be positive and finite, got {}",
                job.size
            ));
        }
        last_t = job.t;
        jobs.push(job);
    }
    Ok(jobs)
}

/// Where the served jobs come from.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// The engine's own Poisson arrivals with scenario job sizes,
    /// modulated by the configured MMPP λ-path.
    Synthetic,
    /// A replayed trace (see [`parse_trace`]).
    Trace(Vec<Job>),
}

impl JobSource {
    /// Short tag used in reports and log lines (`synthetic` / `trace`).
    pub fn label(&self) -> &'static str {
        match self {
            JobSource::Synthetic => "synthetic",
            JobSource::Trace(_) => "trace",
        }
    }
}

/// Termination and reporting knobs of one [`serve`] run. The default is
/// an unbounded, silent, seed-0 run (synthetic streams still hard-stop
/// at the scenario's `eval_time`).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Stop admitting jobs once this many have been dispatched (then
    /// drain the system). `None` = unlimited.
    pub max_jobs: Option<u64>,
    /// Hard stop at this simulation time. `None`: synthetic runs default
    /// to the scenario's `eval_time`; trace runs drain to completion.
    pub duration: Option<f64>,
    /// Emit a [`ServeTick`] every this many sync intervals (`0` = never).
    pub report_every: usize,
    /// Master seed (initial state, MMPP path, per-interval stream keys).
    pub seed: u64,
}

/// One periodic progress line of a [`serve`] run (serialized as JSONL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeTick {
    /// Simulation time at the end of the reported interval.
    pub sim_time: f64,
    /// Jobs dispatched so far (preloaded ν₀ jobs included).
    pub jobs_arrived: u64,
    /// Jobs that finished service so far.
    pub jobs_completed: u64,
    /// Jobs dropped at a full buffer so far.
    pub jobs_dropped: u64,
    /// Jobs currently queued or in service.
    pub jobs_in_system: u64,
    /// Running fraction of dispatched jobs that were dropped.
    pub drop_fraction: f64,
    /// Running mean sojourn time of completed jobs.
    pub mean_sojourn: f64,
    /// Mean queue length at the snapshot.
    pub mean_queue_len: f64,
}

/// Final summary of a [`serve`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Engine identifier (`event-job-level`).
    pub engine: String,
    /// Upper-level policy label.
    pub policy: String,
    /// Job source (`synthetic` or `trace`).
    pub source: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Simulation time covered.
    pub sim_time: f64,
    /// Sync intervals (policy refreshes) executed.
    pub intervals: u64,
    /// Jobs dispatched (preloaded ν₀ jobs included).
    pub jobs_arrived: u64,
    /// Jobs that finished service.
    pub jobs_completed: u64,
    /// Jobs dropped at a full buffer.
    pub jobs_dropped: u64,
    /// Jobs still queued or in service at the end.
    pub jobs_in_system: u64,
    /// Fraction of dispatched jobs that were dropped.
    pub drop_fraction: f64,
    /// Mean sojourn time of completed jobs.
    pub mean_sojourn: f64,
    /// Largest sojourn time observed.
    pub max_sojourn: f64,
    /// Mean queue length at the end of the run.
    pub mean_queue_len: f64,
    /// Wall-clock seconds spent in the dispatcher loop.
    pub wall_seconds: f64,
    /// Jobs dispatched per wall-clock second (the ROADMAP throughput
    /// bar; also tracked by `mflb bench --suite serve`).
    pub jobs_per_sec: f64,
}

impl ServeReport {
    /// Pretty-printed JSON (the artifact `mflb serve --out` writes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report back from [`Self::to_json`] output (or the
    /// compact JSON line the CLI prints).
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// A replayed trace as an [`ArrivalFeed`]: absolute times straight from
/// the file, consumed lazily across sync intervals.
struct TraceFeed<'a> {
    jobs: &'a [Job],
    cursor: usize,
}

impl ArrivalFeed for TraceFeed<'_> {
    fn peek(&mut self, _prev_time: f64, _k: u64) -> Option<(f64, f64)> {
        self.jobs.get(self.cursor).map(|j| (j.t, j.size))
    }

    fn advance(&mut self) {
        self.cursor += 1;
    }
}

/// Runs the dispatcher loop; see the module docs. `on_tick` fires every
/// `report_every` intervals with the running counters.
pub fn serve(
    engine: &EventEngine,
    policy: &dyn UpperPolicy,
    policy_name: &str,
    source: &JobSource,
    opts: &ServeOptions,
    mut on_tick: impl FnMut(&ServeTick),
) -> Result<ServeReport, String> {
    let config = engine.config();
    let dt = config.dt;
    let hard_stop = match source {
        JobSource::Synthetic => Some(opts.duration.unwrap_or(config.eval_time)),
        JobSource::Trace(_) => opts.duration,
    };
    if let Some(te) = hard_stop {
        if !(te > 0.0 && te.is_finite()) {
            return Err(format!("serve duration must be positive and finite, got {te}"));
        }
    }

    let t0 = Instant::now();
    let mut rng = run_rng(opts.seed, 0);
    let mut state: EventState = engine.init_state(&mut rng);
    let mut lambda_idx = config.arrivals.sample_initial(&mut rng);
    let mut trace_feed = match source {
        JobSource::Trace(jobs) => Some(TraceFeed { jobs, cursor: 0 }),
        JobSource::Synthetic => None,
    };

    let mut intervals = 0u64;
    let mut sojourn_sum = 0.0f64;
    let mut max_sojourn = 0.0f64;
    let mut last_mean_queue_len = 0.0f64;

    loop {
        if let Some(te) = hard_stop {
            if state.clock() + 1e-12 >= te {
                break;
            }
        }
        let admitted_all = opts.max_jobs.is_some_and(|mj| state.jobs_arrived() >= mj)
            || trace_feed.as_ref().is_some_and(|f| f.cursor >= f.jobs.len());
        if admitted_all && state.jobs_in_system() == 0 {
            break;
        }
        // Synthetic runs without a job cap only ever stop at `hard_stop`
        // (always set for them), so this loop cannot run away.

        // The λ-level is the policy's modulation input in both modes; a
        // trace does not carry one, so the configured MMPP path plays
        // that role during replay as well.
        let lambda = config.arrivals.level_rate(lambda_idx);
        let h = engine.empirical(&state);
        let rule = policy.decide(&h, lambda_idx, lambda);
        let epoch_base: u64 = rng.gen();
        let t_end = state.clock() + dt;
        let budget = opts.max_jobs.map_or(u64::MAX, |mj| mj.saturating_sub(state.jobs_arrived()));
        let stats = match trace_feed.as_mut() {
            Some(feed) => engine.run_interval(&mut state, &rule, epoch_base, t_end, feed, budget),
            None => {
                let rate = config.num_queues as f64 * lambda;
                let mut feed = PoissonFeed::new(epoch_base, rate, engine.job_size().clone());
                engine.run_interval(&mut state, &rule, epoch_base, t_end, &mut feed, budget)
            }
        };
        intervals += 1;
        for &s in &stats.sojourns {
            sojourn_sum += s;
            if s > max_sojourn {
                max_sojourn = s;
            }
        }
        last_mean_queue_len = stats.mean_queue_len;
        lambda_idx = config.arrivals.step(lambda_idx, &mut rng);

        if opts.report_every > 0 && intervals.is_multiple_of(opts.report_every as u64) {
            on_tick(&ServeTick {
                sim_time: state.clock(),
                jobs_arrived: state.jobs_arrived(),
                jobs_completed: state.jobs_completed(),
                jobs_dropped: state.jobs_dropped(),
                jobs_in_system: state.jobs_in_system(),
                drop_fraction: state.jobs_dropped() as f64 / state.jobs_arrived().max(1) as f64,
                mean_sojourn: sojourn_sum / state.jobs_completed().max(1) as f64,
                mean_queue_len: stats.mean_queue_len,
            });
        }
    }

    let wall_seconds = t0.elapsed().as_secs_f64();
    Ok(ServeReport {
        engine: engine.name().to_string(),
        policy: policy_name.to_string(),
        source: source.label().to_string(),
        seed: opts.seed,
        sim_time: state.clock(),
        intervals,
        jobs_arrived: state.jobs_arrived(),
        jobs_completed: state.jobs_completed(),
        jobs_dropped: state.jobs_dropped(),
        jobs_in_system: state.jobs_in_system(),
        drop_fraction: state.jobs_dropped() as f64 / state.jobs_arrived().max(1) as f64,
        mean_sojourn: sojourn_sum / state.jobs_completed().max(1) as f64,
        max_sojourn,
        mean_queue_len: last_mean_queue_len,
        wall_seconds,
        jobs_per_sec: state.jobs_arrived() as f64 / wall_seconds.max(1e-12),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_core::{JobSizeLaw, SystemConfig};
    use mflb_policy::jsq_rule;

    fn engine() -> EventEngine {
        EventEngine::new(
            SystemConfig::paper().with_size(100, 10).with_dt(2.0),
            JobSizeLaw::Exponential { rate: 1.0 },
        )
    }

    fn jsq() -> FixedRulePolicy {
        FixedRulePolicy::new(jsq_rule(6, 2), "JSQ(2)")
    }

    #[test]
    fn parse_trace_accepts_comments_and_rejects_bad_lines() {
        let good = "# header\n{\"t\": 0.0, \"size\": 1.0}\n\n{\"t\": 0.5, \"size\": 2.0}\n";
        let jobs = parse_trace(good).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1], Job { t: 0.5, size: 2.0 });

        for (text, needle) in [
            ("{\"t\": 1.0}", "line 1"),
            ("{\"t\": 0.0, \"size\": 1.0}\nnot json", "line 2"),
            ("{\"t\": -1.0, \"size\": 1.0}", "nonnegative"),
            ("{\"t\": 2.0, \"size\": 1.0}\n{\"t\": 1.0, \"size\": 1.0}", "nondecreasing"),
            ("{\"t\": 0.0, \"size\": 0.0}", "positive"),
        ] {
            let err = parse_trace(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} → {err}");
        }
    }

    #[test]
    fn synthetic_serve_reports_consistent_counters() {
        let e = engine();
        let opts = ServeOptions { duration: Some(40.0), seed: 7, ..Default::default() };
        let report = serve(&e, &jsq(), "JSQ(2)", &JobSource::Synthetic, &opts, |_| {}).unwrap();
        assert_eq!(report.source, "synthetic");
        assert_eq!(report.intervals, 20);
        assert!((report.sim_time - 40.0).abs() < 1e-9);
        assert!(report.jobs_arrived > 0);
        assert_eq!(
            report.jobs_arrived,
            report.jobs_completed + report.jobs_dropped + report.jobs_in_system
        );
        assert!(report.jobs_per_sec > 0.0);
    }

    #[test]
    fn trace_serve_drains_to_completion_and_is_deterministic() {
        let e = engine();
        let jobs: Vec<Job> =
            (0..25).map(|i| Job { t: 0.3 * i as f64, size: 0.5 + 0.1 * (i % 5) as f64 }).collect();
        let source = JobSource::Trace(jobs);
        let opts = ServeOptions { seed: 3, report_every: 2, ..Default::default() };
        let mut ticks = Vec::new();
        let a = serve(&e, &jsq(), "JSQ(2)", &source, &opts, |t| ticks.push(t.clone())).unwrap();
        assert_eq!(a.jobs_arrived, 25);
        assert_eq!(a.jobs_in_system, 0, "trace runs drain to completion");
        assert_eq!(a.jobs_completed + a.jobs_dropped, 25);
        assert!(!ticks.is_empty());
        let b = serve(&e, &jsq(), "JSQ(2)", &source, &opts, |_| {}).unwrap();
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert_eq!(a.mean_sojourn.to_bits(), b.mean_sojourn.to_bits());
        assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
    }

    #[test]
    fn max_jobs_caps_admissions_then_drains() {
        let e = engine();
        let opts =
            ServeOptions { max_jobs: Some(30), duration: Some(1e6), seed: 5, ..Default::default() };
        let report = serve(&e, &jsq(), "JSQ(2)", &JobSource::Synthetic, &opts, |_| {}).unwrap();
        assert_eq!(report.jobs_arrived, 30);
        assert_eq!(report.jobs_in_system, 0);
    }
}

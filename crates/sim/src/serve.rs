//! The `mflb serve` runtime: a long-running dispatcher loop over the
//! event-heap [`EventEngine`].
//!
//! [`serve`] ingests a job stream — either the engine's own synthetic
//! Poisson/Pareto generator or a replayed JSONL trace — and dispatches
//! every job through an upper-level policy under the paper's
//! sampled-and-delayed observation model: the decision rule is refreshed
//! once per sync interval `Δt` from the stale length snapshot, exactly as
//! in training. Online metrics stream out as periodic [`ServeTick`]s and
//! a final [`ServeReport`] (the JSON the CLI prints and the bench suite
//! mines for jobs-dispatched-per-second).
//!
//! # Trace JSONL schema
//!
//! One job per line, `{"t": <arrival time>, "size": <work units>}`:
//! times must be finite, nonnegative and nondecreasing; sizes positive
//! and finite. Blank lines and `#` comments are skipped. A malformed
//! line is reported with its 1-based line number ([`parse_trace`]).
//! Traces replay either fully buffered ([`JobSource::Trace`]) or
//! streamed line-by-line from any reader — e.g. stdin — with the same
//! 1-based diagnostics ([`JobSource::Stream`], [`LineTraceReader`]).
//!
//! # Graceful degradation
//!
//! The serve loop degrades rather than falls over when the world turns
//! hostile (typically under a [`mflb_core::FaultPlan`] attached to the
//! engine):
//!
//! * **bounded admission** — with [`ServeOptions::admission_cap`] set,
//!   a job arriving while the in-system count is at or above the cap is
//!   shed *before* routing (back-pressure toward the client), counted in
//!   [`ServeReport::jobs_shed`];
//! * **staleness watchdog** — when observation faults starve the policy
//!   of refreshes, [`ServeOptions::staleness_threshold`] switches
//!   dispatch from the checkpoint policy to a static fallback tier
//!   (JSQ/softmin) that herds less on stale data; the watchdog has
//!   hysteresis (enter at age ≥ threshold, leave at age ≤ threshold/2)
//!   so a flapping channel cannot thrash the tiers;
//! * **ingestion retry** — streamed trace reads retry transient I/O
//!   errors with exponential backoff before giving up
//!   ([`LineTraceReader::with_retry`]).
//!
//! # Determinism
//!
//! A serve run is a deterministic function of `(engine, policy, source,
//! seed)`: the master RNG only draws the initial state, the MMPP level
//! path and one `epoch_base` per interval; all per-job randomness —
//! fault draws included — runs through the engine's counter-keyed
//! streams. Replaying the same trace (or re-running the same synthetic
//! stream) at a fixed seed is bit-identical — the regression suite pins
//! both a fault-free and a faulted run. A synthetic run recorded through
//! [`serve_with`]'s recorder and replayed as a trace at the same seed is
//! bit-identical too, because per-interval job indices (the counter keys)
//! are preserved by construction.

use crate::episode::{run_rng, Engine};
use crate::error::ServeError;
use crate::event_engine::{ArrivalFeed, EventEngine, EventState, PoissonFeed};
use mflb_core::mdp::{ObservationBatch, UpperPolicy};
use mflb_core::DecisionRule;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::io::BufRead;
use std::time::Instant;

/// One job of a replayed trace: arrival time and size in work units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Arrival time (absolute, from the start of the run).
    pub t: f64,
    /// Work units; service takes `size / service_rate` time units.
    pub size: f64,
}

impl Job {
    /// The job's trace line (compact JSON, the schema `parse_trace`
    /// reads back).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("job serialization cannot fail")
    }
}

/// Parses one line of a JSONL job trace. `lineno` is 1-based (used in
/// every complaint), `last_t` the previous job's arrival time (for the
/// nondecreasing check). Returns `Ok(None)` for blank lines and `#`
/// comments.
pub fn parse_trace_line(raw: &str, lineno: usize, last_t: f64) -> Result<Option<Job>, ServeError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let job: Job = serde_json::from_str(line)
        .map_err(|source| ServeError::TraceParse { line: lineno, source })?;
    if !(job.t.is_finite() && job.t >= 0.0) {
        return Err(ServeError::ArrivalTime { line: lineno, t: job.t });
    }
    if job.t < last_t {
        return Err(ServeError::ArrivalOrder { line: lineno, t: job.t, last_t });
    }
    if !(job.size > 0.0 && job.size.is_finite()) {
        return Err(ServeError::JobSize { line: lineno, size: job.size });
    }
    Ok(Some(job))
}

/// Parses a JSONL job trace (see the module docs for the schema). Every
/// complaint names the offending 1-based line.
pub fn parse_trace(text: &str) -> Result<Vec<Job>, ServeError> {
    let mut jobs = Vec::new();
    let mut last_t = 0.0f64;
    for (i, raw) in text.lines().enumerate() {
        if let Some(job) = parse_trace_line(raw, i + 1, last_t)? {
            last_t = job.t;
            jobs.push(job);
        }
    }
    Ok(jobs)
}

/// A streaming JSONL trace reader: parses jobs lazily, line by line,
/// from any [`BufRead`] (a file, stdin, a pipe) with the same 1-based
/// line diagnostics as [`parse_trace`]. Transient read errors are
/// retried with exponential backoff before the run aborts.
pub struct LineTraceReader {
    reader: Box<dyn BufRead>,
    lineno: usize,
    last_t: f64,
    retries: u32,
    backoff_ms: u64,
    pending: Option<Job>,
    error: Option<ServeError>,
    done: bool,
}

impl std::fmt::Debug for LineTraceReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineTraceReader")
            .field("lineno", &self.lineno)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl LineTraceReader {
    /// Wraps `reader` with the default retry budget (3 retries, 50 ms
    /// initial backoff).
    pub fn new(reader: Box<dyn BufRead>) -> Self {
        Self::with_retry(reader, 3, 50)
    }

    /// Wraps `reader`, retrying each failed line read up to `retries`
    /// times with `backoff_ms · 2^attempt` sleeps in between. A retried
    /// read restarts the line, so the reader must not deliver partial
    /// lines across errors (files, pipes and stdin all qualify).
    pub fn with_retry(reader: Box<dyn BufRead>, retries: u32, backoff_ms: u64) -> Self {
        Self {
            reader,
            lineno: 0,
            last_t: 0.0,
            retries,
            backoff_ms,
            pending: None,
            error: None,
            done: false,
        }
    }

    /// Whether the stream has been fully consumed (EOF reached and the
    /// last job dispatched).
    pub fn exhausted(&self) -> bool {
        self.done && self.pending.is_none()
    }

    /// Takes the first ingestion error, if one occurred (the serve loop
    /// turns it into its own `Err`).
    pub fn take_error(&mut self) -> Option<ServeError> {
        self.error.take()
    }

    fn read_line_with_retry(&mut self, buf: &mut String) -> std::io::Result<usize> {
        let mut attempt = 0u32;
        loop {
            buf.clear();
            match self.reader.read_line(buf) {
                Ok(n) => return Ok(n),
                Err(_) if attempt < self.retries => {
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(
                        self.backoff_ms << (attempt - 1).min(6),
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Advances to the next job (skipping blanks/comments); parks parse
    /// and I/O failures in `error` and marks the stream done.
    fn fill(&mut self) {
        if self.pending.is_some() || self.done {
            return;
        }
        let mut buf = String::new();
        loop {
            match self.read_line_with_retry(&mut buf) {
                Ok(0) => {
                    self.done = true;
                    return;
                }
                Ok(_) => {
                    self.lineno += 1;
                    match parse_trace_line(&buf, self.lineno, self.last_t) {
                        Ok(None) => continue,
                        Ok(Some(job)) => {
                            self.last_t = job.t;
                            self.pending = Some(job);
                            return;
                        }
                        Err(e) => {
                            self.error = Some(e);
                            self.done = true;
                            return;
                        }
                    }
                }
                Err(e) => {
                    self.error = Some(ServeError::TraceIo {
                        line: self.lineno + 1,
                        retries: self.retries,
                        source: e,
                    });
                    self.done = true;
                    return;
                }
            }
        }
    }
}

impl ArrivalFeed for LineTraceReader {
    fn peek(&mut self, _prev_time: f64, _k: u64) -> Option<(f64, f64)> {
        self.fill();
        self.pending.map(|j| (j.t, j.size))
    }

    fn advance(&mut self) {
        self.pending = None;
    }
}

/// Where the served jobs come from.
#[derive(Debug)]
pub enum JobSource {
    /// The engine's own Poisson arrivals with scenario job sizes,
    /// modulated by the configured MMPP λ-path.
    Synthetic,
    /// A replayed, fully-buffered trace (see [`parse_trace`]).
    Trace(Vec<Job>),
    /// A trace streamed line-by-line from a reader (e.g. stdin); parsed
    /// lazily, consumed once.
    Stream(RefCell<LineTraceReader>),
}

impl JobSource {
    /// Short tag used in reports and log lines
    /// (`synthetic` / `trace` / `stream`).
    pub fn label(&self) -> &'static str {
        match self {
            JobSource::Synthetic => "synthetic",
            JobSource::Trace(_) => "trace",
            JobSource::Stream(_) => "stream",
        }
    }
}

/// Termination, reporting and degradation knobs of one [`serve`] run.
/// The default is an unbounded, silent, seed-0, unprotected run
/// (synthetic streams still hard-stop at the scenario's `eval_time`).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Stop admitting jobs once this many have been dispatched (then
    /// drain the system). `None` = unlimited.
    pub max_jobs: Option<u64>,
    /// Hard stop at this simulation time. `None`: synthetic runs default
    /// to the scenario's `eval_time`; trace runs drain to completion.
    pub duration: Option<f64>,
    /// Emit a [`ServeTick`] every this many sync intervals (`0` = never).
    pub report_every: usize,
    /// Master seed (initial state, MMPP path, per-interval stream keys).
    pub seed: u64,
    /// Bounded admission: shed a job (before routing) whenever the
    /// in-system count is at or above this cap. `None` = admit all.
    pub admission_cap: Option<u64>,
    /// Staleness watchdog: once the observation snapshot is at least
    /// this many intervals old, dispatch falls back to the static tier
    /// passed to [`serve_with`]; it returns to the primary policy when
    /// the age drops back to `threshold / 2` (hysteresis). `None` (or no
    /// fallback tier) disables the watchdog.
    pub staleness_threshold: Option<u64>,
}

/// One periodic progress line of a [`serve`] run (serialized as JSONL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeTick {
    /// Simulation time at the end of the reported interval.
    pub sim_time: f64,
    /// Jobs dispatched so far (preloaded ν₀ jobs included).
    pub jobs_arrived: u64,
    /// Jobs that finished service so far.
    pub jobs_completed: u64,
    /// Jobs dropped at a full buffer so far.
    pub jobs_dropped: u64,
    /// Jobs shed by bounded admission so far.
    #[serde(default)]
    pub jobs_shed: u64,
    /// Jobs currently queued or in service.
    pub jobs_in_system: u64,
    /// Running fraction of dispatched jobs that were dropped.
    pub drop_fraction: f64,
    /// Running mean sojourn time of completed jobs.
    pub mean_sojourn: f64,
    /// Mean queue length at the snapshot.
    pub mean_queue_len: f64,
    /// Sync intervals since the last observation refresh landed.
    #[serde(default)]
    pub observation_age: u64,
    /// Whether the staleness watchdog has dispatch on the fallback tier.
    #[serde(default)]
    pub fallback_active: bool,
}

/// Final summary of a [`serve`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Engine identifier (`event-job-level`).
    pub engine: String,
    /// Upper-level policy label.
    pub policy: String,
    /// Job source (`synthetic`, `trace` or `stream`).
    pub source: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Simulation time covered.
    pub sim_time: f64,
    /// Sync intervals (policy refreshes) executed.
    pub intervals: u64,
    /// Jobs dispatched (preloaded ν₀ jobs included; shed jobs too).
    pub jobs_arrived: u64,
    /// Jobs that finished service.
    pub jobs_completed: u64,
    /// Jobs dropped at a full buffer.
    pub jobs_dropped: u64,
    /// Jobs shed by bounded admission (back-pressure, never routed).
    #[serde(default)]
    pub jobs_shed: u64,
    /// Jobs still queued or in service at the end.
    pub jobs_in_system: u64,
    /// Fraction of dispatched jobs that were dropped at a buffer.
    pub drop_fraction: f64,
    /// Fraction of dispatched jobs lost either way (dropped or shed) —
    /// the robustness headline number.
    #[serde(default)]
    pub loss_fraction: f64,
    /// Mean sojourn time of completed jobs.
    pub mean_sojourn: f64,
    /// Largest sojourn time observed.
    pub max_sojourn: f64,
    /// Mean queue length at the end of the run.
    pub mean_queue_len: f64,
    /// Intervals whose observation refresh was dropped by the fault
    /// plan's observation channel.
    #[serde(default)]
    pub observation_dropped: u64,
    /// Times the staleness watchdog switched dispatch onto the fallback
    /// tier.
    #[serde(default)]
    pub fallback_activations: u64,
    /// Intervals dispatched on the fallback tier.
    #[serde(default)]
    pub fallback_intervals: u64,
    /// Wall-clock seconds spent in the dispatcher loop.
    pub wall_seconds: f64,
    /// Jobs dispatched per wall-clock second (the ROADMAP throughput
    /// bar; also tracked by `mflb bench --suite serve`).
    pub jobs_per_sec: f64,
}

impl ServeReport {
    /// Pretty-printed JSON (the artifact `mflb serve --out` writes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report back from [`Self::to_json`] output (or the
    /// compact JSON line the CLI prints).
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        serde_json::from_str(text).map_err(ServeError::Report)
    }
}

/// A replayed trace as an [`ArrivalFeed`]: absolute times straight from
/// the file, consumed lazily across sync intervals.
struct TraceFeed<'a> {
    jobs: &'a [Job],
    cursor: usize,
}

impl ArrivalFeed for TraceFeed<'_> {
    fn peek(&mut self, _prev_time: f64, _k: u64) -> Option<(f64, f64)> {
        self.jobs.get(self.cursor).map(|j| (j.t, j.size))
    }

    fn advance(&mut self) {
        self.cursor += 1;
    }
}

/// Wraps a feed and records every job the engine actually consumed —
/// `advance` fires exactly when a job enters the timeline, so the
/// recorded trace replays bit-identically at the same seed.
struct RecordingFeed<'a, F: ArrivalFeed> {
    inner: F,
    out: &'a mut Vec<Job>,
    last: Option<Job>,
}

impl<F: ArrivalFeed> ArrivalFeed for RecordingFeed<'_, F> {
    fn peek(&mut self, prev_time: f64, k: u64) -> Option<(f64, f64)> {
        let peeked = self.inner.peek(prev_time, k);
        self.last = peeked.map(|(t, size)| Job { t, size });
        peeked
    }

    fn advance(&mut self) {
        if let Some(job) = self.last.take() {
            self.out.push(job);
        }
        self.inner.advance();
    }
}

/// Runs the dispatcher loop; see the module docs. `on_tick` fires every
/// `report_every` intervals with the running counters. Equivalent to
/// [`serve_with`] with no fallback tier and no trace recorder.
pub fn serve(
    engine: &EventEngine,
    policy: &dyn UpperPolicy,
    policy_name: &str,
    source: &JobSource,
    opts: &ServeOptions,
    on_tick: impl FnMut(&ServeTick),
) -> Result<ServeReport, ServeError> {
    serve_with(engine, policy, policy_name, None, source, opts, None, on_tick)
}

/// The full dispatcher loop behind [`serve`]: `fallback` is the static
/// policy tier the staleness watchdog degrades to (with its label), and
/// `record` collects every synthetic job the engine consumed, in trace
/// order, for `mflb simulate --record-trace`-style replay.
#[allow(clippy::too_many_arguments)]
pub fn serve_with(
    engine: &EventEngine,
    policy: &dyn UpperPolicy,
    policy_name: &str,
    fallback: Option<&dyn UpperPolicy>,
    source: &JobSource,
    opts: &ServeOptions,
    mut record: Option<&mut Vec<Job>>,
    mut on_tick: impl FnMut(&ServeTick),
) -> Result<ServeReport, ServeError> {
    let config = engine.config();
    let dt = config.dt;
    let hard_stop = match source {
        JobSource::Synthetic => Some(opts.duration.unwrap_or(config.eval_time)),
        JobSource::Trace(_) | JobSource::Stream(_) => opts.duration,
    };
    if let Some(te) = hard_stop {
        if !(te > 0.0 && te.is_finite()) {
            return Err(ServeError::Duration(te));
        }
    }
    if let Some(th) = opts.staleness_threshold {
        if th == 0 {
            return Err(ServeError::StalenessZero);
        }
        if fallback.is_none() {
            return Err(ServeError::MissingFallback);
        }
    }

    let t0 = Instant::now();
    let mut rng = run_rng(opts.seed, 0);
    let mut state: EventState = engine.init_state(&mut rng);
    let mut lambda_idx = config.arrivals.sample_initial(&mut rng);
    let mut trace_feed = match source {
        JobSource::Trace(jobs) => Some(TraceFeed { jobs, cursor: 0 }),
        JobSource::Synthetic | JobSource::Stream(_) => None,
    };
    let mut stream_feed = match source {
        JobSource::Stream(reader) => Some(reader.borrow_mut()),
        JobSource::Synthetic | JobSource::Trace(_) => None,
    };

    let mut intervals = 0u64;
    let mut sojourn_sum = 0.0f64;
    let mut max_sojourn = 0.0f64;
    let mut last_mean_queue_len = 0.0f64;
    let mut fallback_active = false;
    let mut fallback_activations = 0u64;
    let mut fallback_intervals = 0u64;
    let mut observation_dropped = 0u64;
    let mut prev_obs_age = 0u64;
    // Dispatch goes through the batched policy entry point (batch of
    // one): bit-identical to `decide` for every tier, and the neural
    // policy's f32/fast-tanh paths are exercised by exactly the code the
    // Monte-Carlo driver uses.
    let mut batch = ObservationBatch::new(config.num_states(), config.arrivals.num_levels());
    let mut rules = vec![DecisionRule::uniform(1, 1)];

    loop {
        if let Some(te) = hard_stop {
            if state.clock() + 1e-12 >= te {
                break;
            }
        }
        let admitted_all = opts.max_jobs.is_some_and(|mj| state.jobs_arrived() >= mj)
            || trace_feed.as_ref().is_some_and(|f| f.cursor >= f.jobs.len())
            || stream_feed.as_ref().is_some_and(|f| f.exhausted());
        if admitted_all && state.jobs_in_system() == 0 {
            break;
        }
        // Synthetic runs without a job cap only ever stop at `hard_stop`
        // (always set for them), so this loop cannot run away.

        // One `epoch_base` per interval, drawn before the policy decides:
        // `decide` consumes no master randomness, so the draw order (and
        // with it every pinned stream) is unchanged, while the fault
        // plan's observation channel can settle *before* the decision.
        let epoch_base: u64 = rng.gen();
        engine.begin_interval(&mut state, epoch_base);

        // Staleness watchdog with hysteresis: degrade to the static tier
        // at age ≥ threshold, return at age ≤ threshold/2.
        if let (Some(th), Some(_)) = (opts.staleness_threshold, fallback) {
            let age = state.observation_age();
            if !fallback_active && age >= th {
                fallback_active = true;
                fallback_activations += 1;
            } else if fallback_active && age <= th / 2 {
                fallback_active = false;
            }
        }
        if state.observation_age() > prev_obs_age {
            observation_dropped += 1;
        }
        prev_obs_age = state.observation_age();

        // The λ-level is the policy's modulation input in both modes; a
        // trace does not carry one, so the configured MMPP path plays
        // that role during replay as well. The policy sees the engine's
        // *observation* — under observation faults a stale snapshot.
        let lambda = config.arrivals.level_rate(lambda_idx);
        batch.clear();
        batch.push(engine.observed(&state), lambda_idx, lambda);
        match (fallback_active, fallback) {
            (true, Some(fb)) => fb.decide_batch(&batch, &mut rules),
            _ => policy.decide_batch(&batch, &mut rules),
        }
        let rule = &rules[0];
        if fallback_active {
            fallback_intervals += 1;
        }
        let t_end = state.clock() + dt;
        let budget = opts.max_jobs.map_or(u64::MAX, |mj| mj.saturating_sub(state.jobs_arrived()));
        let cap = opts.admission_cap;
        let stats = if let Some(feed) = trace_feed.as_mut() {
            engine.run_interval(&mut state, rule, epoch_base, t_end, feed, budget, cap)
        } else if let Some(feed) = stream_feed.as_mut() {
            let stats =
                engine.run_interval(&mut state, rule, epoch_base, t_end, &mut **feed, budget, cap);
            if let Some(e) = feed.take_error() {
                return Err(e);
            }
            stats
        } else {
            let rate = config.num_queues as f64 * lambda;
            let mut feed = PoissonFeed::new(epoch_base, rate, engine.job_size().clone());
            match record.as_deref_mut() {
                Some(out) => {
                    let mut rec = RecordingFeed { inner: feed, out, last: None };
                    engine.run_interval(&mut state, rule, epoch_base, t_end, &mut rec, budget, cap)
                }
                None => {
                    engine.run_interval(&mut state, rule, epoch_base, t_end, &mut feed, budget, cap)
                }
            }
        };
        intervals += 1;
        for &s in &stats.sojourns {
            sojourn_sum += s;
            if s > max_sojourn {
                max_sojourn = s;
            }
        }
        last_mean_queue_len = stats.mean_queue_len;
        lambda_idx = config.arrivals.step(lambda_idx, &mut rng);

        if opts.report_every > 0 && intervals.is_multiple_of(opts.report_every as u64) {
            on_tick(&ServeTick {
                sim_time: state.clock(),
                jobs_arrived: state.jobs_arrived(),
                jobs_completed: state.jobs_completed(),
                jobs_dropped: state.jobs_dropped(),
                jobs_shed: state.jobs_shed(),
                jobs_in_system: state.jobs_in_system(),
                drop_fraction: state.jobs_dropped() as f64 / state.jobs_arrived().max(1) as f64,
                mean_sojourn: sojourn_sum / state.jobs_completed().max(1) as f64,
                mean_queue_len: stats.mean_queue_len,
                observation_age: state.observation_age(),
                fallback_active,
            });
        }
    }

    let wall_seconds = t0.elapsed().as_secs_f64();
    let arrived = state.jobs_arrived();
    Ok(ServeReport {
        engine: engine.name().to_string(),
        policy: policy_name.to_string(),
        source: source.label().to_string(),
        seed: opts.seed,
        sim_time: state.clock(),
        intervals,
        jobs_arrived: arrived,
        jobs_completed: state.jobs_completed(),
        jobs_dropped: state.jobs_dropped(),
        jobs_shed: state.jobs_shed(),
        jobs_in_system: state.jobs_in_system(),
        drop_fraction: state.jobs_dropped() as f64 / arrived.max(1) as f64,
        loss_fraction: (state.jobs_dropped() + state.jobs_shed()) as f64 / arrived.max(1) as f64,
        mean_sojourn: sojourn_sum / state.jobs_completed().max(1) as f64,
        max_sojourn,
        mean_queue_len: last_mean_queue_len,
        observation_dropped,
        fallback_activations,
        fallback_intervals,
        wall_seconds,
        jobs_per_sec: arrived as f64 / wall_seconds.max(1e-12),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_core::{FaultPlan, JobSizeLaw, SystemConfig};
    use mflb_policy::jsq_rule;

    fn engine() -> EventEngine {
        EventEngine::new(
            SystemConfig::paper().with_size(100, 10).with_dt(2.0),
            JobSizeLaw::Exponential { rate: 1.0 },
        )
    }

    fn jsq() -> FixedRulePolicy {
        FixedRulePolicy::new(jsq_rule(6, 2), "JSQ(2)")
    }

    #[test]
    fn parse_trace_accepts_comments_and_rejects_bad_lines() {
        let good = "# header\n{\"t\": 0.0, \"size\": 1.0}\n\n{\"t\": 0.5, \"size\": 2.0}\n";
        let jobs = parse_trace(good).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1], Job { t: 0.5, size: 2.0 });

        for (text, needle) in [
            ("{\"t\": 1.0}", "line 1"),
            ("{\"t\": 0.0, \"size\": 1.0}\nnot json", "line 2"),
            ("{\"t\": -1.0, \"size\": 1.0}", "nonnegative"),
            ("{\"t\": 2.0, \"size\": 1.0}\n{\"t\": 1.0, \"size\": 1.0}", "nondecreasing"),
            ("{\"t\": 0.0, \"size\": 0.0}", "positive"),
        ] {
            let err = parse_trace(text).unwrap_err().to_string();
            assert!(err.contains(needle), "{text:?} → {err}");
        }
    }

    #[test]
    fn synthetic_serve_reports_consistent_counters() {
        let e = engine();
        let opts = ServeOptions { duration: Some(40.0), seed: 7, ..Default::default() };
        let report = serve(&e, &jsq(), "JSQ(2)", &JobSource::Synthetic, &opts, |_| {}).unwrap();
        assert_eq!(report.source, "synthetic");
        assert_eq!(report.intervals, 20);
        assert!((report.sim_time - 40.0).abs() < 1e-9);
        assert!(report.jobs_arrived > 0);
        assert_eq!(
            report.jobs_arrived,
            report.jobs_completed + report.jobs_dropped + report.jobs_in_system
        );
        assert_eq!(report.jobs_shed, 0);
        assert_eq!(report.loss_fraction.to_bits(), report.drop_fraction.to_bits());
        assert!(report.jobs_per_sec > 0.0);
    }

    #[test]
    fn trace_serve_drains_to_completion_and_is_deterministic() {
        let e = engine();
        let jobs: Vec<Job> =
            (0..25).map(|i| Job { t: 0.3 * i as f64, size: 0.5 + 0.1 * (i % 5) as f64 }).collect();
        let source = JobSource::Trace(jobs);
        let opts = ServeOptions { seed: 3, report_every: 2, ..Default::default() };
        let mut ticks = Vec::new();
        let a = serve(&e, &jsq(), "JSQ(2)", &source, &opts, |t| ticks.push(t.clone())).unwrap();
        assert_eq!(a.jobs_arrived, 25);
        assert_eq!(a.jobs_in_system, 0, "trace runs drain to completion");
        assert_eq!(a.jobs_completed + a.jobs_dropped, 25);
        assert!(!ticks.is_empty());
        let b = serve(&e, &jsq(), "JSQ(2)", &source, &opts, |_| {}).unwrap();
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert_eq!(a.mean_sojourn.to_bits(), b.mean_sojourn.to_bits());
        assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
    }

    #[test]
    fn max_jobs_caps_admissions_then_drains() {
        let e = engine();
        let opts =
            ServeOptions { max_jobs: Some(30), duration: Some(1e6), seed: 5, ..Default::default() };
        let report = serve(&e, &jsq(), "JSQ(2)", &JobSource::Synthetic, &opts, |_| {}).unwrap();
        assert_eq!(report.jobs_arrived, 30);
        assert_eq!(report.jobs_in_system, 0);
    }

    #[test]
    fn streamed_source_matches_the_buffered_trace_bit_for_bit() {
        let e = engine();
        let jobs: Vec<Job> =
            (0..40).map(|i| Job { t: 0.2 * i as f64, size: 0.4 + 0.05 * (i % 7) as f64 }).collect();
        let text: String = jobs.iter().map(|j| j.to_jsonl() + "\n").collect();
        let opts = ServeOptions { seed: 11, ..Default::default() };
        let buffered = serve(&e, &jsq(), "JSQ(2)", &JobSource::Trace(jobs), &opts, |_| {}).unwrap();
        let stream = JobSource::Stream(RefCell::new(LineTraceReader::new(Box::new(
            std::io::Cursor::new(text),
        ))));
        let streamed = serve(&e, &jsq(), "JSQ(2)", &stream, &opts, |_| {}).unwrap();
        assert_eq!(streamed.source, "stream");
        assert_eq!(buffered.jobs_completed, streamed.jobs_completed);
        assert_eq!(buffered.mean_sojourn.to_bits(), streamed.mean_sojourn.to_bits());
        assert_eq!(buffered.sim_time.to_bits(), streamed.sim_time.to_bits());
    }

    #[test]
    fn streamed_source_reports_the_offending_line() {
        let e = engine();
        let text = "{\"t\": 0.0, \"size\": 1.0}\n{\"t\": 0.5, \"size\": -2.0}\n";
        let stream = JobSource::Stream(RefCell::new(LineTraceReader::new(Box::new(
            std::io::Cursor::new(text.to_string()),
        ))));
        let err = serve(&e, &jsq(), "JSQ(2)", &stream, &ServeOptions::default(), |_| {})
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn recorded_synthetic_run_replays_bit_identically() {
        let e = engine();
        let opts = ServeOptions { duration: Some(30.0), seed: 13, ..Default::default() };
        let mut recorded = Vec::new();
        let live = serve_with(
            &e,
            &jsq(),
            "JSQ(2)",
            None,
            &JobSource::Synthetic,
            &opts,
            Some(&mut recorded),
            |_| {},
        )
        .unwrap();
        assert!(!recorded.is_empty());
        let replay =
            serve(&e, &jsq(), "JSQ(2)", &JobSource::Trace(recorded), &opts, |_| {}).unwrap();
        assert_eq!(live.jobs_arrived, replay.jobs_arrived);
        assert_eq!(live.jobs_completed, replay.jobs_completed);
        assert_eq!(live.jobs_dropped, replay.jobs_dropped);
        assert_eq!(live.mean_sojourn.to_bits(), replay.mean_sojourn.to_bits());
        assert_eq!(live.drop_fraction.to_bits(), replay.drop_fraction.to_bits());
    }

    #[test]
    fn admission_cap_sheds_and_keeps_job_mass_conserved() {
        let e = engine();
        let opts = ServeOptions {
            duration: Some(40.0),
            seed: 7,
            admission_cap: Some(5),
            ..Default::default()
        };
        let report = serve(&e, &jsq(), "JSQ(2)", &JobSource::Synthetic, &opts, |_| {}).unwrap();
        assert!(report.jobs_shed > 0, "a tight cap must shed under paper load");
        assert_eq!(
            report.jobs_arrived,
            report.jobs_completed + report.jobs_dropped + report.jobs_shed + report.jobs_in_system
        );
        assert!(report.loss_fraction >= report.drop_fraction);
    }

    #[test]
    fn watchdog_degrades_to_the_fallback_tier_under_observation_faults() {
        let plan = FaultPlan::from_json(r#"{"observation": {"drop_prob": 0.9}}"#).unwrap();
        let e = engine().with_faults(plan);
        let opts = ServeOptions {
            duration: Some(60.0),
            seed: 2,
            staleness_threshold: Some(2),
            ..Default::default()
        };
        let fb = jsq();
        let report =
            serve_with(&e, &jsq(), "JSQ(2)", Some(&fb), &JobSource::Synthetic, &opts, None, |_| {})
                .unwrap();
        assert!(report.observation_dropped > 0);
        assert!(report.fallback_activations > 0, "watchdog must trip at 90% drop");
        assert!(report.fallback_intervals >= report.fallback_activations);
        // Hysteresis: activations are sticky — far fewer switches than
        // degraded intervals.
        assert!(report.fallback_intervals <= report.intervals);
    }

    #[test]
    fn watchdog_without_fallback_tier_is_a_usage_error() {
        let e = engine();
        let opts = ServeOptions { staleness_threshold: Some(3), ..Default::default() };
        let err = serve(&e, &jsq(), "JSQ(2)", &JobSource::Synthetic, &opts, |_| {})
            .unwrap_err()
            .to_string();
        assert!(err.contains("fallback"), "{err}");
    }
}

//! The exact aggregated finite-system engine: `O(M)` per epoch instead of
//! `O(N·d)`, following the *same probability law* as the per-client engine.
//!
//! ### Exactness argument
//! Conditional on the epoch-start queue states and the decision rule, the
//! clients' (sampled queues, action) tuples are i.i.d. (Eq. 3–4). A single
//! client assigns its traffic to one specific queue `j` with probability
//! depending only on the *state* `z_j` of that queue:
//!
//! ```text
//! q_z = (1/M) · Σ_u Σ_{z̄ : z̄_u = z} h(u | z̄) · Π_{k≠u} H(z̄_k)
//! ```
//!
//! where `H` is the empirical state distribution. (This is exactly
//! `per_state_arrival_rates(H, h, 1)/M` from `mflb-core` — the same integral
//! as the mean-field arrival rate, evaluated at the empirical measure.)
//! Therefore the client-count vector over queues is
//! `Multinomial(N, (q_{z_1}, …, q_{z_M}))`, which we sample hierarchically:
//!
//! 1. counts per *state group* `C_z ∼ Multinomial(N, (m_z·q_z)_z)` —
//!    `|Z|` categories,
//! 2. within a group, clients split uniformly over its `m_z` queues
//!    (exchangeability) — conditional binomials, `O(M)` total.
//!
//! Both levels use the exact samplers from `mflb-queue`, so the resulting
//! per-queue counts have *identical* distribution to the per-client engine
//! for any `N` — including the paper's `N = M² = 10^6` (Fig. 4–5) and the
//! `N ⋡ M` ablation (Fig. 6). The integration tests verify the agreement
//! statistically.

use crate::episode::{length_epoch_stats, simulate_birth_death_epoch, Engine, EpochStats};
use mflb_core::meanfield::per_state_arrival_rates;
use mflb_core::{DecisionRule, StateDist, SystemConfig};
use mflb_queue::sampler::Sampler;
use rand::rngs::StdRng;

/// Samples the per-queue client counts for one epoch by the hierarchical
/// multinomial decomposition described in the module docs. `queues` holds
/// the epoch-start queue **lengths**; the result assigns all
/// `num_clients` clients. Shared by the homogeneous aggregate engine, the
/// phase-type engine and the job-level FIFO engine (whose assignment laws
/// depend on lengths only).
pub fn sample_client_assignments(
    num_clients: u64,
    buffer: usize,
    queues: &[usize],
    rule: &DecisionRule,
    rng: &mut StdRng,
) -> Vec<u64> {
    let mut counts = vec![0u64; queues.len()];
    sample_client_assignments_into(num_clients, buffer, queues, rule, rng, &mut counts);
    counts
}

/// Buffer-reusing core of [`sample_client_assignments`]: writes the counts
/// into `counts` (which must have one slot per queue) instead of
/// allocating. The `O(B)` group-level temporaries are negligible next to
/// the `O(M)` count vector and are kept local.
pub fn sample_client_assignments_into(
    num_clients: u64,
    buffer: usize,
    queues: &[usize],
    rule: &DecisionRule,
    rng: &mut StdRng,
    counts: &mut [u64],
) {
    let m = queues.len();
    let zs = buffer + 1;
    debug_assert_eq!(counts.len(), m);

    // Empirical state distribution and per-state group sizes.
    let mut group_size = vec![0u64; zs];
    for &z in queues {
        group_size[z] += 1;
    }
    let h = StateDist::empirical(queues, buffer);

    // q_z·M = per-state specific-queue assignment probability × M.
    // per_state_arrival_rates(H, h, 1.0) returns exactly M·q_z.
    let m_qz = per_state_arrival_rates(&h, rule, 1.0);

    // Level 1: clients per state group, Multinomial(N, m_z·q_z).
    let group_probs: Vec<f64> =
        (0..zs).map(|z| (group_size[z] as f64 / m as f64) * m_qz[z]).collect();
    // Conservation: Σ_z group_probs = 1 exactly (up to fp). Clamp tiny
    // drift so the residual "none" category never goes negative.
    let group_counts = Sampler::multinomial(rng, num_clients, &group_probs);

    // Level 2: uniform split of each group's clients over its queues.
    let mut remaining_in_group = group_size;
    let mut remaining_clients = group_counts;
    for (j, &z) in queues.iter().enumerate() {
        let g = remaining_in_group[z];
        debug_assert!(g >= 1);
        let c = if g == 1 {
            remaining_clients[z]
        } else {
            Sampler::binomial(rng, remaining_clients[z], 1.0 / g as f64)
        };
        counts[j] = c;
        remaining_clients[z] -= c;
        remaining_in_group[z] -= 1;
    }
}

/// Episode state of [`AggregateEngine`]: queue lengths plus the reusable
/// client-count buffer.
#[derive(Debug, Clone)]
pub struct AggregateState {
    queues: Vec<usize>,
    counts: Vec<u64>,
}

impl AggregateState {
    /// Wraps explicit queue lengths (benchmarks and tests).
    pub fn from_queues(queues: Vec<usize>) -> Self {
        let m = queues.len();
        Self { queues, counts: vec![0; m] }
    }

    /// Current queue lengths.
    pub fn queues(&self) -> &[usize] {
        &self.queues
    }
}

/// Aggregated epoch executor.
#[derive(Debug, Clone)]
pub struct AggregateEngine {
    config: SystemConfig,
}

impl AggregateEngine {
    /// Creates the engine for a validated configuration.
    pub fn new(config: SystemConfig) -> Self {
        config.validate().expect("invalid system configuration");
        Self { config }
    }

    /// Samples the per-queue client counts by the hierarchical multinomial
    /// decomposition (exposed for the engine-agreement tests).
    pub fn sample_assignments(
        &self,
        queues: &[usize],
        rule: &DecisionRule,
        rng: &mut StdRng,
    ) -> Vec<u64> {
        sample_client_assignments(self.config.num_clients, self.config.buffer, queues, rule, rng)
    }
}

impl Engine for AggregateEngine {
    type State = AggregateState;

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn init_state(&self, rng: &mut StdRng) -> AggregateState {
        AggregateState::from_queues(crate::episode::sample_initial_queues(&self.config, rng))
    }

    fn empirical(&self, state: &AggregateState) -> StateDist {
        StateDist::empirical(&state.queues, self.config.buffer)
    }

    fn step(
        &self,
        state: &mut AggregateState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        let AggregateState { queues, counts } = state;
        debug_assert_eq!(queues.len(), self.config.num_queues);
        sample_client_assignments_into(
            self.config.num_clients,
            self.config.buffer,
            queues,
            rule,
            rng,
            counts,
        );

        let m = queues.len();
        let scale = m as f64 * lambda / self.config.num_clients as f64;
        let (dropped, served) = simulate_birth_death_epoch(
            queues,
            counts,
            scale,
            &|_| self.config.service_rate,
            self.config.buffer,
            self.config.dt,
            rng,
        );
        length_epoch_stats(queues, counts, self.config.num_clients, dropped, served)
    }

    fn name(&self) -> &'static str {
        "aggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PerClientEngine;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_linalg::stats::{chi_square_test, Summary};
    use rand::SeedableRng;

    fn jsq_rule() -> DecisionRule {
        DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    #[test]
    fn counts_sum_to_n() {
        let cfg = SystemConfig::paper().with_size(10_000, 50);
        let engine = AggregateEngine::new(cfg.clone());
        let queues: Vec<usize> = (0..50).map(|j| j % 6).collect();
        let mut rng = StdRng::seed_from_u64(1);
        for rule in [DecisionRule::uniform(6, 2), jsq_rule()] {
            let counts = engine.sample_assignments(&queues, &rule, &mut rng);
            assert_eq!(counts.iter().sum::<u64>(), 10_000);
        }
    }

    #[test]
    fn per_queue_count_marginals_match_per_client_engine() {
        // Same mixed state profile, both engines, many resamples: the
        // count distribution on a designated queue must agree.
        let cfg = SystemConfig::paper().with_size(2_000, 10);
        let agg = AggregateEngine::new(cfg.clone());
        let per = PerClientEngine::new(cfg.clone());
        let queues: Vec<usize> = vec![0, 0, 1, 2, 3, 4, 5, 5, 2, 1];
        let rule = jsq_rule();
        let reps = 4_000;
        let mut rng_a = StdRng::seed_from_u64(2);
        let mut rng_b = StdRng::seed_from_u64(3);
        let mut sum_a = Summary::new();
        let mut sum_b = Summary::new();
        // Compare the count histogram of queue 0 (a short queue under JSQ).
        let max_c = 1200usize;
        let mut hist_a = vec![0.0; 30];
        let mut hist_b = vec![0.0; 30];
        let bucket = |c: u64| ((c as usize).min(max_c) * 29 / max_c).min(29);
        for _ in 0..reps {
            let ca = agg.sample_assignments(&queues, &rule, &mut rng_a);
            let cb = per.sample_assignments(&queues, &rule, &mut rng_b);
            sum_a.push(ca[0] as f64);
            sum_b.push(cb[0] as f64);
            hist_a[bucket(ca[0])] += 1.0;
            hist_b[bucket(cb[0])] += 1.0;
        }
        // Means within joint noise.
        let tol = 4.0 * (sum_a.std_err() + sum_b.std_err());
        assert!(
            (sum_a.mean() - sum_b.mean()).abs() < tol,
            "means {} vs {}",
            sum_a.mean(),
            sum_b.mean()
        );
        // Histogram agreement via chi-square (per-client as "expected").
        let (_, _, p) = chi_square_test(&hist_a, &hist_b, 8.0);
        assert!(p > 1e-4, "count-histogram chi-square p = {p}");
    }

    #[test]
    fn episode_totals_agree_between_engines_statistically() {
        let cfg = SystemConfig::paper().with_size(900, 30).with_dt(3.0);
        let agg = AggregateEngine::new(cfg.clone());
        let per = PerClientEngine::new(cfg.clone());
        let policy = FixedRulePolicy::new(jsq_rule(), "JSQ(2)");
        let horizon = 15;
        let runs = 60;
        let mut sa = Summary::new();
        let mut sb = Summary::new();
        for r in 0..runs {
            sa.push(run_episode(&agg, &policy, horizon, &mut run_rng(100, r)).total_drops);
            sb.push(run_episode(&per, &policy, horizon, &mut run_rng(200, r)).total_drops);
        }
        let tol = 4.0 * (sa.std_err() + sb.std_err());
        assert!(
            (sa.mean() - sb.mean()).abs() < tol,
            "episode drops {} vs {} (tol {tol})",
            sa.mean(),
            sb.mean()
        );
    }

    #[test]
    fn large_n_runs_fast_enough_to_be_usable() {
        // N = 10^6 clients, M = 1000 queues: one epoch must complete (this
        // is the whole point of the aggregation).
        let cfg = SystemConfig::paper().with_m_squared(1000).with_dt(5.0);
        let engine = AggregateEngine::new(cfg.clone());
        let mut state = AggregateState::from_queues(vec![0usize; 1000]);
        let rule = jsq_rule();
        let mut rng = StdRng::seed_from_u64(4);
        let stats = engine.step(&mut state, &rule, 0.9, &mut rng);
        assert!(stats.drops >= 0.0);
        // After one epoch from empty under load 0.9, some queues are
        // occupied.
        assert!(state.queues().iter().any(|&z| z > 0));
    }

    #[test]
    fn zero_arrival_rate_only_drains() {
        let cfg = SystemConfig::paper().with_size(100, 10).with_dt(50.0);
        let engine = AggregateEngine::new(cfg.clone());
        let mut state = AggregateState::from_queues(vec![5usize; 10]);
        let rule = DecisionRule::uniform(6, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let stats = engine.step(&mut state, &rule, 0.0, &mut rng);
        assert_eq!(stats.drops, 0.0);
        assert!(state.queues().iter().all(|&z| z == 0), "queues must drain: {:?}", state.queues());
    }
}

//! Event-heap, continuous-time **job-level** engine: the piece that turns
//! the epoch-synchronous simulators into a system.
//!
//! The paper's engines advance in lockstep epochs of length `Δt` and only
//! ever see queue *lengths*. [`EventEngine`] instead materializes every
//! job as an event on a [`Timeline`] — a [`std::collections::BinaryHeap`]
//! of typed events popped in `(time, seq)` order:
//!
//! * **arrival** — a job reaches the dispatcher, samples `d` queues,
//!   observes their *stale* lengths (the snapshot frozen at the last
//!   sync boundary), routes through the [`DecisionRule`], and either
//!   joins its queue or is dropped if the queue is at buffer `B`;
//! * **service completion** — the head-of-line job finishes after
//!   `size / α` time units and reports its sojourn time; the next job
//!   (if any) starts service;
//! * **observation refresh** — the sync-delay boundary at `clock + Δt`:
//!   the epoch ends, lengths are re-snapshotted, and the upper-level
//!   policy gets to emit a fresh rule.
//!
//! Job sizes come from a [`JobSizeLaw`] ([`mflb_core::jobs`]) —
//! exponential reproduces the paper's M/M/1/B length process in law,
//! Pareto/bounded-Pareto open the heavy-tailed workload axis.
//!
//! # Determinism
//!
//! Every random draw comes from a **counter-keyed stream** in the PR-7
//! sharded-graph style (`stream_rng(epoch_base, salt, k)`): the `k`-th
//! job of an epoch draws its interarrival gap, its size and its routing
//! from three streams keyed by `k` alone. Service completions consume no
//! randomness at all (the completion instant is `start + size/α`).
//! Consequently the simulation is a deterministic function of the
//! episode RNG's one `epoch_base` draw per epoch — heap tie-breaking,
//! internal `BinaryHeap` layout, or a refactor of the pop loop cannot
//! perturb results, and ties are themselves broken deterministically by
//! the monotone schedule sequence number. The regression suite pins an
//! episode of this engine bit-exactly.

use crate::episode::{sample_initial_queues, stream_rng, Engine, EpochStats};
use mflb_core::{DecisionRule, FaultPlan, JobSizeLaw, StateDist, SystemConfig};
use mflb_queue::sampler::Sampler;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BinaryHeap, VecDeque};

/// Stream salts keeping an epoch's three per-job draw families
/// (interarrival gap, job size, routing) on disjoint counter streams.
const SALT_ARRIVE: u64 = 0x6C62_272E_07BB_0142;
const SALT_SIZE: u64 = 0x27D4_EB2F_1656_67C5;
const SALT_ROUTE: u64 = 0x5851_F42D_4C95_7F2D;

/// One scheduled entry of a [`Timeline`].
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == std::cmp::Ordering::Equal && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `BinaryHeap` is a max-heap; reversing `(time, seq)` makes
        // `pop` yield the earliest event, ties broken by schedule order.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event heap: entries pop in nondecreasing
/// `(time, seq)` order, where `seq` is the monotone counter assigned by
/// [`Timeline::schedule`]. Equal-time events therefore resolve in
/// schedule order — deterministically, independent of the underlying
/// heap's internal layout.
#[derive(Debug, Clone)]
pub struct Timeline<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for Timeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Timeline<T> {
    /// An empty timeline.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` at `time` (must be finite) and returns the
    /// sequence number that breaks ties against equal-time events.
    pub fn schedule(&mut self, time: f64, payload: T) -> u64 {
        assert!(time.is_finite(), "event times must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
        seq
    }

    /// Removes and returns the earliest `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(f64, u64, T)> {
        self.heap.pop().map(|s| (s.time, s.seq, s.payload))
    }

    /// Time of the earliest scheduled event, if any.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all scheduled events (sequence numbers keep advancing).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Typed events of the job-level engine.
#[derive(Debug, Clone)]
pub(crate) enum EngineEvent {
    /// A job of the given size reaches the dispatcher.
    Arrival {
        /// Work units the job carries.
        size: f64,
    },
    /// The head-of-line job of this queue finishes service.
    Completion {
        /// Queue index.
        queue: usize,
    },
    /// The sync-delay boundary: the epoch/interval ends here.
    Refresh,
}

/// A stream of jobs feeding one [`EventEngine`] interval: either the
/// engine's own counter-keyed Poisson process or a replayed trace.
/// `peek` must be idempotent until `advance` consumes the job.
pub(crate) trait ArrivalFeed {
    /// The next job's `(time, size)`: `prev_time` is the previous
    /// arrival's time (interval start for `k = 0`), `k` the job's index
    /// within the interval (the counter-stream key). `None` = exhausted.
    fn peek(&mut self, prev_time: f64, k: u64) -> Option<(f64, f64)>;
    /// Consumes the job last returned by `peek`.
    fn advance(&mut self);
}

/// The engine's own arrival law: a Poisson process of total rate
/// `M · λ` (matching the epoch engines, whose per-queue rates sum to
/// `M · λ`) with i.i.d. sizes, every draw keyed by the job index so the
/// stream is independent of processing order. Restarted fresh at each
/// sync boundary — exact by memorylessness of the Poisson process.
pub(crate) struct PoissonFeed {
    epoch_base: u64,
    rate: f64,
    law: JobSizeLaw,
    cached: Option<(u64, f64, f64)>,
}

impl PoissonFeed {
    pub(crate) fn new(epoch_base: u64, rate: f64, law: JobSizeLaw) -> Self {
        Self { epoch_base, rate, law, cached: None }
    }
}

impl ArrivalFeed for PoissonFeed {
    fn peek(&mut self, prev_time: f64, k: u64) -> Option<(f64, f64)> {
        if self.rate <= 0.0 {
            return None; // a silent arrival level produces no jobs
        }
        if let Some((ck, t, s)) = self.cached {
            if ck == k {
                return Some((t, s));
            }
        }
        let gap = Sampler::exponential(&mut stream_rng(self.epoch_base, SALT_ARRIVE, k), self.rate);
        let size = self.law.sample(&mut stream_rng(self.epoch_base, SALT_SIZE, k));
        let t = prev_time + gap;
        self.cached = Some((k, t, size));
        Some((t, size))
    }

    fn advance(&mut self) {
        self.cached = None;
    }
}

/// Episode state of [`EventEngine`]: job-level queues, the stale
/// observation snapshot, the event heap and lifetime job counters.
#[derive(Debug, Clone)]
pub struct EventState {
    /// Per-queue FIFO of `(arrival_time, size)`; front is in service.
    queues: Vec<VecDeque<(f64, f64)>>,
    /// Current queue lengths, kept in sync with `queues`.
    lengths: Vec<usize>,
    /// Lengths frozen at the last sync boundary — what arrivals observe.
    snapshot: Vec<usize>,
    /// Pending events (completions persist across epoch boundaries).
    timeline: Timeline<EngineEvent>,
    /// Simulation clock (end of the last completed interval).
    clock: f64,
    /// Per-interval dispatch counts (scratch, reported via `max_share`).
    counts: Vec<u64>,
    /// Routing scratch: the `d` sampled queue indices.
    sampled: Vec<usize>,
    /// Routing scratch: their observed (stale) lengths.
    tuple: Vec<usize>,
    /// Whether a completion event is scheduled for each queue. Without
    /// faults this is exactly `lengths[j] > 0`; a fully-crashed interval
    /// (multiplier 0) stalls a nonempty queue with no completion pending
    /// until [`EventEngine::begin_interval`] rescues it on recovery.
    in_service: Vec<bool>,
    /// Per-queue effective service-rate multiplier for the current
    /// interval (crash up-fraction × straggler factor); all `1.0` when no
    /// fault plan is attached.
    mult: Vec<f64>,
    /// Crash-renewal Up/Down phase per queue.
    fault_up: Vec<bool>,
    /// Sync intervals since the last observation refresh landed (`0` =
    /// the snapshot is fresh; grows only under observation faults).
    obs_age: u64,
    jobs_arrived: u64,
    jobs_completed: u64,
    jobs_dropped: u64,
    jobs_shed: u64,
}

impl EventState {
    /// Jobs that ever reached the dispatcher (preloaded jobs included).
    pub fn jobs_arrived(&self) -> u64 {
        self.jobs_arrived
    }

    /// Jobs that finished service.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    /// Jobs dropped at a full buffer.
    pub fn jobs_dropped(&self) -> u64 {
        self.jobs_dropped
    }

    /// Jobs shed by admission control before routing (back-pressure).
    pub fn jobs_shed(&self) -> u64 {
        self.jobs_shed
    }

    /// Jobs currently queued or in service.
    pub fn jobs_in_system(&self) -> u64 {
        self.lengths.iter().map(|&l| l as u64).sum()
    }

    /// Current simulation time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Sync intervals since the last observation refresh landed; `0`
    /// whenever the snapshot is fresh. Grows only under observation
    /// faults — the `serve` staleness watchdog monitors this.
    pub fn observation_age(&self) -> u64 {
        self.obs_age
    }
}

/// Continuous-time job-level engine over a [`Timeline`] event heap.
///
/// Implements [`Engine`], so it runs through [`crate::run_episode`] and
/// [`crate::monte_carlo()`] like every epoch engine: each `step` is one
/// sync interval `[clock, clock + Δt)` driven by its own Poisson job
/// stream. The `mflb serve` runtime drives the same event loop directly
/// (via the crate-internal interval runner) with either a synthetic feed
/// or a replayed trace.
#[derive(Debug, Clone)]
pub struct EventEngine {
    config: SystemConfig,
    job_size: JobSizeLaw,
    faults: Option<FaultPlan>,
}

impl EventEngine {
    /// Creates the engine for a validated configuration and size law.
    pub fn new(config: SystemConfig, job_size: JobSizeLaw) -> Self {
        config.validate().expect("invalid system configuration");
        job_size.validate().expect("invalid job-size law");
        Self { config, job_size, faults: None }
    }

    /// Attaches a fault plan ([`mflb_core::faults`]). An empty plan is
    /// dropped on the floor, keeping the engine on the exact fault-free
    /// code path (and its pinned RNG streams).
    ///
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate_for`] — construct
    /// via [`crate::Scenario::build`] for an `Err`-reporting path.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        plan.validate_for(self.config.num_queues).expect("invalid fault plan");
        self.faults = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// The configured job-size law.
    pub fn job_size(&self) -> &JobSizeLaw {
        &self.job_size
    }

    /// The attached fault plan, if any non-empty one is configured.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Empirical distribution of the **observation snapshot** — what the
    /// dispatchers (and the `serve` policy tier) actually see. Identical
    /// to [`Engine::empirical`] right after a successful refresh; stale
    /// whenever observation faults dropped the refresh.
    pub fn observed(&self, state: &EventState) -> StateDist {
        StateDist::empirical(&state.snapshot, self.config.buffer)
    }

    /// Opens the sync interval `[state.clock, state.clock + Δt)`: decides
    /// whether this interval's observation refresh lands (under the fault
    /// plan's observation channel), re-snapshots the lengths if it does,
    /// computes every queue's effective service-rate multiplier for the
    /// interval, and reschedules service for queues recovering from a
    /// full stall. Must be called exactly once before each
    /// [`EventEngine::run_interval`]; with no fault plan it reduces to
    /// the plain snapshot copy.
    pub(crate) fn begin_interval(&self, state: &mut EventState, epoch_base: u64) {
        let Some(plan) = &self.faults else {
            state.snapshot.copy_from_slice(&state.lengths);
            return;
        };
        if plan.refresh_dropped(epoch_base) {
            state.obs_age += 1;
        } else {
            state.snapshot.copy_from_slice(&state.lengths);
            state.obs_age = 0;
        }
        if !plan.has_service_faults() {
            return;
        }
        let t0 = state.clock;
        let dt = self.config.dt;
        let service_rate = self.config.service_rate;
        for j in 0..self.config.num_queues {
            state.mult[j] = plan.service_multiplier(&mut state.fault_up[j], epoch_base, j, t0, dt);
            // Rescue a stalled queue: its head job starts service at the
            // interval boundary, served at this interval's rate.
            if !state.in_service[j] && state.lengths[j] > 0 && state.mult[j] > 0.0 {
                let size = state.queues[j].front().expect("nonempty queue has a head job").1;
                state.timeline.schedule(
                    t0 + size / (service_rate * state.mult[j]),
                    EngineEvent::Completion { queue: j },
                );
                state.in_service[j] = true;
            }
        }
    }

    /// Runs the event loop over `[state.clock, t_end)`: pulls jobs from
    /// `feed` (at most `max_arrivals`), routes each through `rule` under
    /// the stale snapshot, and services queues until the refresh event at
    /// `t_end` pops. `shed_above` is the admission cap: a job arriving
    /// while the in-system count is at or above it is shed before routing
    /// (back-pressure), counted in [`EventState::jobs_shed`]. The caller
    /// must open the interval with [`EventEngine::begin_interval`] first.
    /// Advances the clock to `t_end` and returns the interval's
    /// statistics (completions of jobs from earlier intervals count
    /// toward this one).
    #[allow(clippy::too_many_arguments)] // crate-internal; serve_with is the public surface
    pub(crate) fn run_interval(
        &self,
        state: &mut EventState,
        rule: &DecisionRule,
        epoch_base: u64,
        t_end: f64,
        feed: &mut dyn ArrivalFeed,
        max_arrivals: u64,
        shed_above: Option<u64>,
    ) -> EpochStats {
        let m = self.config.num_queues;
        let buffer = self.config.buffer;
        let service_rate = self.config.service_rate;
        let faulted = self.faults.as_ref().is_some_and(|p| p.has_service_faults());
        let EventState {
            queues,
            lengths,
            snapshot,
            timeline,
            clock,
            counts,
            sampled,
            tuple,
            in_service,
            mult,
            fault_up: _,
            obs_age: _,
            jobs_arrived,
            jobs_completed,
            jobs_dropped,
            jobs_shed,
        } = state;

        counts.iter_mut().for_each(|c| *c = 0);
        timeline.schedule(t_end, EngineEvent::Refresh);

        let mut in_system: u64 = match shed_above {
            Some(_) => lengths.iter().map(|&l| l as u64).sum(),
            None => 0,
        };
        let mut prev_arrival = *clock;
        let mut k: u64 = 0;
        let mut arrived = 0u64;
        let mut dropped = 0u64;
        let mut completed = 0u64;
        let mut shed = 0u64;
        let mut sojourns = Vec::new();
        let mut arrival_scheduled = false;

        loop {
            // Keep exactly one upcoming arrival on the heap: the next one
            // is only materialized once the previous has been processed,
            // so a trace feed is consumed lazily and a Poisson feed draws
            // nothing past the boundary.
            if !arrival_scheduled && arrived < max_arrivals {
                if let Some((t, size)) = feed.peek(prev_arrival, k) {
                    if t < t_end {
                        timeline.schedule(t, EngineEvent::Arrival { size });
                        arrival_scheduled = true;
                    }
                }
            }
            let (t, _seq, event) =
                timeline.pop().expect("refresh sentinel keeps the timeline non-empty");
            match event {
                EngineEvent::Refresh => break,
                EngineEvent::Arrival { size } => {
                    feed.advance();
                    arrival_scheduled = false;
                    prev_arrival = t;
                    if shed_above.is_some_and(|cap| in_system >= cap) {
                        // Back-pressure: reject before routing — no
                        // routing randomness is consumed, so shedding is
                        // itself a deterministic function of the state.
                        k += 1;
                        arrived += 1;
                        shed += 1;
                        continue;
                    }
                    let mut rng = stream_rng(epoch_base, SALT_ROUTE, k);
                    for s in 0..self.config.d {
                        sampled[s] = rng.gen_range(0..m);
                        tuple[s] = snapshot[sampled[s]];
                    }
                    let u = rule.sample(tuple, &mut rng);
                    let j = sampled[u];
                    k += 1;
                    arrived += 1;
                    counts[j] += 1;
                    if lengths[j] >= buffer {
                        dropped += 1;
                    } else {
                        if !in_service[j] {
                            let rate = if faulted { service_rate * mult[j] } else { service_rate };
                            if rate > 0.0 {
                                timeline.schedule(
                                    t + size / rate,
                                    EngineEvent::Completion { queue: j },
                                );
                                in_service[j] = true;
                            }
                        }
                        queues[j].push_back((t, size));
                        lengths[j] += 1;
                        in_system += 1;
                    }
                }
                EngineEvent::Completion { queue: j } => {
                    let (arrived_at, _size) =
                        queues[j].pop_front().expect("completion implies a job in service");
                    lengths[j] -= 1;
                    in_system = in_system.saturating_sub(1);
                    sojourns.push(t - arrived_at);
                    completed += 1;
                    match queues[j].front() {
                        Some(&(_, next_size)) => {
                            let rate = if faulted { service_rate * mult[j] } else { service_rate };
                            if rate > 0.0 {
                                timeline.schedule(
                                    t + next_size / rate,
                                    EngineEvent::Completion { queue: j },
                                );
                            } else {
                                in_service[j] = false;
                            }
                        }
                        None => in_service[j] = false,
                    }
                }
            }
        }

        *clock = t_end;
        *jobs_arrived += arrived;
        *jobs_completed += completed;
        *jobs_dropped += dropped;
        *jobs_shed += shed;

        let max_count = counts.iter().copied().max().unwrap_or(0);
        EpochStats {
            drops: dropped as f64 / m as f64,
            dropped,
            completed,
            mean_queue_len: lengths.iter().map(|&l| l as f64).sum::<f64>() / m as f64,
            // Epoch engines report the share of all N clients herding
            // onto one queue; job-level intervals have no client
            // population, so this is the share of *this interval's jobs*
            // dispatched to the most-loaded queue.
            max_share: max_count as f64 / arrived.max(1) as f64,
            sojourns,
        }
    }
}

impl Engine for EventEngine {
    type State = EventState;

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn init_state(&self, rng: &mut StdRng) -> EventState {
        let lengths = sample_initial_queues(&self.config, rng);
        let mut timeline = Timeline::new();
        let queues: Vec<VecDeque<(f64, f64)>> = lengths
            .iter()
            .enumerate()
            .map(|(j, &n)| {
                let mut q = VecDeque::with_capacity(n.max(4));
                for i in 0..n {
                    let size = self.job_size.sample(rng);
                    if i == 0 {
                        timeline.schedule(
                            size / self.config.service_rate,
                            EngineEvent::Completion { queue: j },
                        );
                    }
                    q.push_back((0.0, size));
                }
                q
            })
            .collect();
        let m = queues.len();
        let preloaded: u64 = lengths.iter().map(|&l| l as u64).sum();
        EventState {
            queues,
            snapshot: lengths.clone(),
            in_service: lengths.iter().map(|&n| n > 0).collect(),
            lengths,
            timeline,
            clock: 0.0,
            counts: vec![0; m],
            sampled: vec![0; self.config.d],
            tuple: vec![0; self.config.d],
            mult: vec![1.0; m],
            fault_up: vec![true; m],
            obs_age: 0,
            jobs_arrived: preloaded,
            jobs_completed: 0,
            jobs_dropped: 0,
            jobs_shed: 0,
        }
    }

    fn empirical(&self, state: &EventState) -> StateDist {
        StateDist::empirical(&state.lengths, self.config.buffer)
    }

    fn step(
        &self,
        state: &mut EventState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        let epoch_base: u64 = rng.gen();
        self.begin_interval(state, epoch_base);
        let t_end = state.clock + self.config.dt;
        let rate = self.config.num_queues as f64 * lambda;
        let mut feed = PoissonFeed::new(epoch_base, rate, self.job_size.clone());
        self.run_interval(state, rule, epoch_base, t_end, &mut feed, u64::MAX, None)
    }

    fn name(&self) -> &'static str {
        "event-job-level"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_policy::{jsq_rule, rnd_rule};

    fn engine(law: JobSizeLaw) -> EventEngine {
        EventEngine::new(SystemConfig::paper().with_size(400, 20).with_dt(4.0), law)
    }

    #[test]
    fn timeline_pops_in_time_then_seq_order() {
        let mut tl = Timeline::new();
        tl.schedule(3.0, "c");
        tl.schedule(1.0, "a");
        tl.schedule(2.0, "b1");
        tl.schedule(2.0, "b2");
        let popped: Vec<&str> = std::iter::from_fn(|| tl.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(popped, vec!["a", "b1", "b2", "c"]);
        assert!(tl.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn timeline_rejects_non_finite_times() {
        Timeline::new().schedule(f64::NAN, ());
    }

    #[test]
    fn episodes_run_and_conserve_job_mass() {
        for law in [
            JobSizeLaw::Exponential { rate: 1.0 },
            JobSizeLaw::BoundedPareto { shape: 1.5, lo: 0.2, hi: 20.0 },
        ] {
            let e = engine(law);
            let policy = FixedRulePolicy::new(jsq_rule(6, 2), "JSQ(2)");
            let mut rng = run_rng(11, 0);
            let mut state = e.init_state(&mut rng);
            let rule = jsq_rule(6, 2);
            for _ in 0..10 {
                e.step(&mut state, &rule, 0.9, &mut rng);
            }
            assert!(state.jobs_arrived() > 0, "busy system must see jobs");
            assert_eq!(
                state.jobs_arrived(),
                state.jobs_completed() + state.jobs_dropped() + state.jobs_in_system(),
                "job mass must be conserved"
            );
            let out = run_episode(&e, &policy, 10, &mut run_rng(12, 0));
            assert_eq!(out.drops_per_epoch.len(), 10);
            assert_eq!(out.sojourns.len() as u64, out.jobs_completed);
            assert!(out.sojourns.iter().all(|&s| s > 0.0));
        }
    }

    #[test]
    fn episodes_are_bit_identical_across_reruns() {
        let e = engine(JobSizeLaw::Pareto { shape: 2.5, scale: 0.4 });
        let policy = FixedRulePolicy::new(rnd_rule(6, 2), "RND");
        let a = run_episode(&e, &policy, 15, &mut run_rng(21, 3));
        let b = run_episode(&e, &policy, 15, &mut run_rng(21, 3));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
        assert_eq!(a.sojourns, b.sojourns);
        assert_eq!(a.mean_queue_len, b.mean_queue_len);
    }
}

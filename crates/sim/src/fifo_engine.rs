//! Job-level finite-system engine: every queue is a FIFO queue with
//! per-job arrival/departure timestamps ([`mflb_queue::fifo::FifoQueue`]),
//! so **sojourn times** (waiting + service) of completed jobs can be
//! measured next to drops — the response-time story the paper's
//! introduction motivates, executed in `fig8_sojourn`.
//!
//! Service is exponential, so the queue-*length* process coincides in law
//! with [`crate::aggregate::AggregateEngine`] (the FIFO discipline only
//! decides *which* job departs); client assignment reuses the exact
//! hierarchical multinomial aggregation over observed lengths. Sojourn
//! samples of each epoch flow into
//! [`crate::episode::EpisodeOutcome::sojourns`] through the generic
//! episode drivers, and [`crate::monte_carlo()`] pools them across runs.

use crate::aggregate::sample_client_assignments_into;
use crate::episode::{Engine, EpochStats};
use mflb_core::{DecisionRule, FaultPlan, StateDist, SystemConfig};
use mflb_queue::fifo::FifoQueue;
use rand::rngs::StdRng;
use rand::Rng;

/// Episode state of [`FifoEngine`]: the job-level queues plus scratch.
#[derive(Debug, Clone)]
pub struct FifoState {
    queues: Vec<FifoQueue>,
    /// Observed (buffer-capped) queue lengths, kept in sync with `queues`.
    lengths: Vec<usize>,
    counts: Vec<u64>,
    /// Epochs stepped so far — the clock (`t0 = epoch · Δt`) for
    /// window-based fault lookups. Advances even without a fault plan.
    epoch: u64,
    /// Per-queue crash renewal state; only consulted when a
    /// [`FaultPlan`] is attached.
    fault_up: Vec<bool>,
}

impl FifoState {
    /// Current job-level queues.
    pub fn queues(&self) -> &[FifoQueue] {
        &self.queues
    }
}

/// Job-level epoch executor with homogeneous exponential service.
#[derive(Debug, Clone)]
pub struct FifoEngine {
    config: SystemConfig,
    /// Deterministic fault plan (`None` = pristine engine; empty plans
    /// are normalized to `None` so they cannot perturb any stream).
    faults: Option<FaultPlan>,
}

impl FifoEngine {
    /// Creates the engine for a validated configuration.
    pub fn new(config: SystemConfig) -> Self {
        config.validate().expect("invalid system configuration");
        Self { config, faults: None }
    }

    /// Attaches a deterministic [`FaultPlan`]. Empty plans are dropped so
    /// a fault-free engine stays bit-identical to one never handed a
    /// plan; faulted epochs draw one extra `epoch_base` to key the
    /// crash/straggler streams.
    ///
    /// # Panics
    /// Panics on an invalid plan — construct via [`crate::Scenario::build`]
    /// for an `Err`-reporting path.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        plan.validate_for(self.config.num_queues).expect("invalid fault plan");
        self.faults = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }
}

impl Engine for FifoEngine {
    type State = FifoState;

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn init_state(&self, rng: &mut StdRng) -> FifoState {
        let lengths = crate::episode::sample_initial_queues(&self.config, rng);
        let queues: Vec<FifoQueue> = lengths
            .iter()
            .map(|&n| {
                let mut q = FifoQueue::new(self.config.service_rate, self.config.buffer);
                q.preload(n);
                q
            })
            .collect();
        let m = queues.len();
        FifoState { queues, lengths, counts: vec![0; m], epoch: 0, fault_up: vec![true; m] }
    }

    fn empirical(&self, state: &FifoState) -> StateDist {
        StateDist::empirical(&state.lengths, self.config.buffer)
    }

    fn step(
        &self,
        state: &mut FifoState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        let FifoState { queues, lengths, counts, epoch, fault_up } = state;
        let m = queues.len();
        debug_assert_eq!(m, self.config.num_queues);
        let t0 = *epoch as f64 * self.config.dt;
        *epoch += 1;
        // A faulted epoch draws one extra `epoch_base` for the fault
        // streams *before* any other randomness (and rewrites each
        // queue's public `service_rate` for the interval); a fault-free
        // engine never reaches either, so pinned streams are untouched.
        let lambda = match &self.faults {
            Some(plan) => {
                let epoch_base: u64 = rng.gen();
                if plan.has_service_faults() {
                    let dt = self.config.dt;
                    for (j, (q, up)) in queues.iter_mut().zip(fault_up.iter_mut()).enumerate() {
                        let mult = plan.service_multiplier(up, epoch_base, j, t0, dt);
                        q.service_rate = self.config.service_rate * mult;
                    }
                }
                lambda * plan.arrival_factor(t0, self.config.dt)
            }
            None => lambda,
        };
        sample_client_assignments_into(
            self.config.num_clients,
            self.config.buffer,
            lengths,
            rule,
            rng,
            counts,
        );

        let scale = m as f64 * lambda / self.config.num_clients as f64;
        let mut dropped = 0u64;
        let mut completed = 0u64;
        let mut sojourns = Vec::new();
        let mut total_len = 0usize;
        for (j, q) in queues.iter_mut().enumerate() {
            let stats = q.run_epoch(scale * counts[j] as f64, self.config.dt, rng);
            dropped += stats.drops;
            completed += stats.completed;
            if sojourns.is_empty() {
                sojourns = stats.sojourn_times;
            } else {
                sojourns.extend(stats.sojourn_times);
            }
            lengths[j] = q.len().min(self.config.buffer);
            total_len += q.len();
        }
        let max_count = counts.iter().copied().max().unwrap_or(0);
        EpochStats {
            drops: dropped as f64 / m as f64,
            dropped,
            completed,
            mean_queue_len: total_len as f64 / m as f64,
            max_share: max_count as f64 / self.config.num_clients.max(1) as f64,
            sojourns,
        }
    }

    fn name(&self) -> &'static str {
        "fifo-job-level"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateEngine;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_linalg::stats::Summary;
    use mflb_policy::{jsq_rule, rnd_rule};

    #[test]
    fn drop_totals_agree_with_aggregate_engine_in_law() {
        // Exponential service: the length process matches the aggregate
        // birth–death engine, so episode drop totals agree statistically.
        let cfg = SystemConfig::paper().with_size(900, 30).with_dt(3.0);
        let fifo = FifoEngine::new(cfg.clone());
        let agg = AggregateEngine::new(cfg);
        let policy = FixedRulePolicy::new(jsq_rule(6, 2), "JSQ(2)");
        let (mut sa, mut sb) = (Summary::new(), Summary::new());
        for r in 0..50 {
            sa.push(run_episode(&fifo, &policy, 15, &mut run_rng(61, r)).total_drops);
            sb.push(run_episode(&agg, &policy, 15, &mut run_rng(62, r)).total_drops);
        }
        let tol = 4.0 * (sa.std_err() + sb.std_err());
        assert!(
            (sa.mean() - sb.mean()).abs() < tol,
            "fifo {} vs aggregate {} (tol {tol})",
            sa.mean(),
            sb.mean()
        );
    }

    #[test]
    fn episodes_report_sojourns_and_job_counters() {
        let cfg = SystemConfig::paper().with_size(400, 20).with_dt(5.0);
        let engine = FifoEngine::new(cfg.clone());
        let policy = FixedRulePolicy::new(rnd_rule(6, 2), "RND");
        let out = run_episode(&engine, &policy, 20, &mut run_rng(70, 0));
        assert!(out.jobs_completed > 0, "busy system must complete jobs");
        assert_eq!(out.sojourns.len() as u64, out.jobs_completed);
        // Sojourn = waiting + service > 0, and bounded by the episode span.
        let span = cfg.dt * 20.0;
        assert!(out.sojourns.iter().all(|&s| s > 0.0 && s <= span));
        assert!((0.0..=1.0).contains(&out.drop_fraction()));
    }
}

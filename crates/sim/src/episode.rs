//! The stateful [`Engine`] abstraction and the generic episode drivers
//! (Algorithm 1 of the paper).
//!
//! One evaluation episode runs `T_e` decision epochs. At each epoch:
//!
//! 1. the empirical queue-state distribution `H_t^M` is computed (line 8)
//!    via [`Engine::empirical`],
//! 2. the upper-level policy produces the decision rule `h_t` (line 9),
//! 3. [`Engine::step`] assigns clients and simulates every queue's CTMC
//!    for `Δt` time units, counting drops (lines 10–19),
//! 4. the arrival level advances (line 20).
//!
//! Engines own an associated [`Engine::State`] type, so variants whose
//! per-queue state is richer than a plain length — phase-carrying
//! ([`crate::ph_engine::PhAggregateEngine`]), class-composite
//! ([`crate::hetero::HeteroEngine`]), private-snapshot
//! ([`crate::staggered::StaggeredEngine`]) and job-level
//! ([`crate::fifo_engine::FifoEngine`]) — all run through the same
//! [`run_episode`] / [`run_episode_conditioned`] /
//! [`crate::monte_carlo()`] drivers as the homogeneous
//! [`crate::client::PerClientEngine`] and
//! [`crate::aggregate::AggregateEngine`].

use mflb_core::mdp::{ObservationBatch, UpperPolicy};
use mflb_core::{DecisionRule, StateDist, SystemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A finite-system simulation engine with persistent episode state.
///
/// The state carries everything that must survive from one decision epoch
/// to the next (queue lengths, service phases, per-client snapshots, …)
/// plus reusable scratch buffers, so the per-epoch hot path allocates
/// nothing proportional to `M` or `N`.
pub trait Engine: Send + Sync {
    /// Per-episode simulation state (queue contents + scratch buffers).
    type State;

    /// System configuration in force.
    fn config(&self) -> &SystemConfig;

    /// Samples a fresh episode-start state (Alg. 1, lines 4–6).
    fn init_state(&self, rng: &mut StdRng) -> Self::State;

    /// The empirical queue-**length** distribution `H_t^M` the upper-level
    /// policy observes (Eq. 2). Richer engines project onto lengths.
    fn empirical(&self, state: &Self::State) -> StateDist;

    /// Runs one decision epoch in place and returns its statistics
    /// (lines 10–19; drops are `D_t^{N,M}` of Eq. 6).
    fn step(
        &self,
        state: &mut Self::State,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats;

    /// Engine identifier for harness output.
    fn name(&self) -> &'static str;
}

/// Everything one [`Engine::step`] reports about its epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochStats {
    /// Average drops per queue during the epoch (`D_t^{N,M}`, Eq. 6).
    pub drops: f64,
    /// Raw dropped-packet count (i.e. `drops · M`).
    pub dropped: u64,
    /// Raw service completions during the epoch.
    pub completed: u64,
    /// Mean queue length at the end of the epoch.
    pub mean_queue_len: f64,
    /// Largest fraction of all `N` clients assigned to a single queue —
    /// the herding diagnostic of the paper's §1.
    pub max_share: f64,
    /// Sojourn times of jobs completed this epoch (job-level engines
    /// only; empty elsewhere).
    pub sojourns: Vec<f64>,
}

/// Everything recorded over one finite-system episode, for every engine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpisodeOutcome {
    /// Average per-queue drops in each epoch (`D_t^{N,M}`).
    pub drops_per_epoch: Vec<f64>,
    /// Cumulative average per-queue drops `Σ_t D_t^{N,M}` — the quantity
    /// plotted in Fig. 4–6 ("total packets dropped", normalized per queue).
    pub total_drops: f64,
    /// Episode return `−total_drops` (comparable to the MFC MDP value).
    pub total_return: f64,
    /// Mean queue length at the end of each epoch (diagnostics).
    pub mean_queue_len: Vec<f64>,
    /// Arrival-level index in force during each epoch.
    pub lambda_trace: Vec<usize>,
    /// Per-epoch herding diagnostic: largest fraction of all clients
    /// assigned to one queue (`examples/herd_behaviour`).
    #[serde(default)]
    pub max_share_per_epoch: Vec<f64>,
    /// Sojourn times of completed jobs (job-level engines only; Fig. 8).
    #[serde(default)]
    pub sojourns: Vec<f64>,
    /// Raw service completions over the episode.
    #[serde(default)]
    pub jobs_completed: u64,
    /// Raw dropped-packet count over the episode.
    #[serde(default)]
    pub jobs_dropped: u64,
}

impl EpisodeOutcome {
    fn record(&mut self, lambda_idx: usize, stats: EpochStats) {
        self.drops_per_epoch.push(stats.drops);
        self.total_drops += stats.drops;
        self.mean_queue_len.push(stats.mean_queue_len);
        self.lambda_trace.push(lambda_idx);
        self.max_share_per_epoch.push(stats.max_share);
        self.sojourns.extend(stats.sojourns);
        self.jobs_completed += stats.completed;
        self.jobs_dropped += stats.dropped;
    }

    fn finish(&mut self) {
        self.total_return = -self.total_drops;
    }

    /// Fraction of jobs dropped among all jobs that reached a queue.
    pub fn drop_fraction(&self) -> f64 {
        let total = self.jobs_dropped + self.jobs_completed;
        self.jobs_dropped as f64 / (total.max(1)) as f64
    }
}

/// Samples initial queue states i.i.d. from the configured `ν₀` (Alg. 1,
/// lines 4–6).
pub fn sample_initial_queues(config: &SystemConfig, rng: &mut StdRng) -> Vec<usize> {
    let nu0 = &config.initial_dist;
    (0..config.num_queues)
        .map(|_| {
            let mut u: f64 = rng.gen();
            for (z, &p) in nu0.iter().enumerate() {
                u -= p;
                if u <= 0.0 {
                    return z;
                }
            }
            nu0.len() - 1
        })
        .collect()
}

/// Runs one episode of `horizon` epochs under an upper-level policy, with
/// the arrival level evolving stochastically (Algorithm 1).
pub fn run_episode<E: Engine>(
    engine: &E,
    policy: &dyn UpperPolicy,
    horizon: usize,
    rng: &mut StdRng,
) -> EpisodeOutcome {
    let config = engine.config();
    let mut state = engine.init_state(rng);
    let mut lambda_idx = config.arrivals.sample_initial(rng);
    let mut out = EpisodeOutcome::default();
    // Route the decision through the batched entry point (batch of one):
    // `decide_batch` is bit-identical to `decide` for every policy, and
    // going through one code path keeps the sequential and lockstep
    // drivers impossible to drift apart.
    let mut batch = ObservationBatch::new(config.num_states(), config.arrivals.num_levels());
    let mut rules = vec![DecisionRule::uniform(1, 1)];
    for _ in 0..horizon {
        let lambda = config.arrivals.level_rate(lambda_idx);
        batch.clear();
        batch.push(engine.empirical(&state), lambda_idx, lambda);
        policy.decide_batch(&batch, &mut rules);
        let stats = engine.step(&mut state, &rules[0], lambda, rng);
        out.record(lambda_idx, stats);
        lambda_idx = config.arrivals.step(lambda_idx, rng);
    }
    out.finish();
    out
}

/// Runs `rngs.len()` episodes in lockstep: each decision epoch stacks
/// every live episode's observation into one [`ObservationBatch`] and
/// makes a single [`UpperPolicy::decide_batch`] call, turning the neural
/// policy's per-episode gemvs into one gemm per layer.
///
/// Bit-identical to calling [`run_episode`] once per RNG: each episode's
/// RNG is private and consumed in exactly the same order (`init_state`,
/// `sample_initial`, then per epoch `step` and the arrival-level
/// transition), and `decide`/`decide_batch` draw no randomness. The
/// Monte-Carlo driver ([`crate::monte_carlo()`]) runs chunks of episodes
/// through this path.
pub fn run_episodes_lockstep<E: Engine>(
    engine: &E,
    policy: &dyn UpperPolicy,
    horizon: usize,
    rngs: &mut [StdRng],
) -> Vec<EpisodeOutcome> {
    let config = engine.config();
    let k = rngs.len();
    let mut states: Vec<E::State> = rngs.iter_mut().map(|r| engine.init_state(r)).collect();
    let mut lambda_idxs: Vec<usize> =
        rngs.iter_mut().map(|r| config.arrivals.sample_initial(r)).collect();
    let mut outs = vec![EpisodeOutcome::default(); k];
    let mut batch = ObservationBatch::new(config.num_states(), config.arrivals.num_levels());
    let mut rules = vec![DecisionRule::uniform(1, 1); k];
    for _ in 0..horizon {
        batch.clear();
        for i in 0..k {
            let lambda = config.arrivals.level_rate(lambda_idxs[i]);
            batch.push(engine.empirical(&states[i]), lambda_idxs[i], lambda);
        }
        policy.decide_batch(&batch, &mut rules);
        for i in 0..k {
            let stats = engine.step(&mut states[i], &rules[i], batch.lambda(i), &mut rngs[i]);
            outs[i].record(lambda_idxs[i], stats);
            lambda_idxs[i] = config.arrivals.step(lambda_idxs[i], &mut rngs[i]);
        }
    }
    for o in &mut outs {
        o.finish();
    }
    outs
}

/// Runs one episode conditioned on an explicit arrival-level sequence (the
/// Theorem-1 setting: the same `λ` path is fed to the mean-field model and
/// the finite system). Available for every engine.
pub fn run_episode_conditioned<E: Engine>(
    engine: &E,
    policy: &dyn UpperPolicy,
    lambda_seq: &[usize],
    rng: &mut StdRng,
) -> EpisodeOutcome {
    let config = engine.config();
    let mut state = engine.init_state(rng);
    let mut out = EpisodeOutcome::default();
    let mut batch = ObservationBatch::new(config.num_states(), config.arrivals.num_levels());
    let mut rules = vec![DecisionRule::uniform(1, 1)];
    for &lambda_idx in lambda_seq {
        let lambda = config.arrivals.level_rate(lambda_idx);
        batch.clear();
        batch.push(engine.empirical(&state), lambda_idx, lambda);
        policy.decide_batch(&batch, &mut rules);
        let stats = engine.step(&mut state, &rules[0], lambda, rng);
        out.record(lambda_idx, stats);
    }
    out.finish();
    out
}

/// Derives a per-run RNG from a base seed (stable across thread counts so
/// Monte-Carlo results are reproducible regardless of parallelism).
pub fn run_rng(base_seed: u64, run_index: u64) -> StdRng {
    // SplitMix64 scramble keeps consecutive run seeds decorrelated.
    let mut z = base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(run_index + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Derives the RNG for one `(phase, entity)` pair of an epoch: a
/// SplitMix64-style scramble of `(epoch_base ^ salt) + idx·φ` seeds the
/// engine-wide `StdRng` (whose `seed_from_u64` adds four more SplitMix64
/// rounds), keeping streams decorrelated across entities and phases.
/// Shared by the sharded [`crate::graph_engine::GraphEngine`], the
/// event-heap [`crate::event_engine::EventEngine`] and the fault layer
/// ([`mflb_core::FaultPlan`]): giving each logical entity (queue,
/// dispatcher, job) its *own* counter-keyed stream is what makes epochs
/// bit-identical regardless of shard partition, worker count, or heap
/// tie-breaking. The scramble itself lives in `mflb_core::faults` so the
/// fault streams are salts of the exact same scheme.
pub(crate) use mflb_core::stream_rng;

/// Shared per-client assignment sweep (Eq. 3–4): every client samples `d`
/// queue indices uniformly with replacement, observes each through
/// `observe(j)` (plain length for the homogeneous engine, composite
/// `(length, class)` index for the heterogeneous one), draws its action
/// from the rule and increments its destination's count. The draw order is
/// part of the seed-pinned regression contract — change it only together
/// with `tests/engine_regression.rs`.
pub(crate) fn sample_per_client_assignments(
    num_clients: u64,
    observe: &dyn Fn(usize) -> usize,
    rule: &DecisionRule,
    rng: &mut StdRng,
    counts: &mut [u64],
    sampled: &mut [usize],
    tuple: &mut [usize],
) {
    let m = counts.len();
    let d = tuple.len();
    debug_assert_eq!(sampled.len(), d);
    counts.iter_mut().for_each(|c| *c = 0);
    for _ in 0..num_clients {
        for k in 0..d {
            sampled[k] = rng.gen_range(0..m);
            tuple[k] = observe(sampled[k]);
        }
        let u = rule.sample(tuple, rng);
        counts[sampled[u]] += 1;
    }
}

/// Shared birth–death epoch sweep: every queue `j` runs an exact CTMC for
/// `dt` with frozen arrival rate `scale · counts[j]` (Alg. 1 lines 15–19).
/// Idle empty queues are skipped — [`mflb_queue::BirthDeathQueue`] with a
/// zero total rate consumes no randomness, so the skip is RNG-neutral.
/// Returns `(dropped, served)` raw event counts.
pub(crate) fn simulate_birth_death_epoch(
    queues: &mut [usize],
    counts: &[u64],
    scale: f64,
    service_rate: &dyn Fn(usize) -> f64,
    buffer: usize,
    dt: f64,
    rng: &mut StdRng,
) -> (u64, u64) {
    let mut dropped = 0u64;
    let mut served = 0u64;
    for (j, q) in queues.iter_mut().enumerate() {
        if counts[j] == 0 && *q == 0 {
            continue; // idle empty queue: nothing can happen
        }
        let model =
            mflb_queue::BirthDeathQueue::new(scale * counts[j] as f64, service_rate(j), buffer);
        let outcome = model.simulate_epoch(*q, dt, rng);
        *q = outcome.final_state;
        dropped += outcome.drops;
        served += outcome.served;
    }
    (dropped, served)
}

/// Assembles the [`EpochStats`] common to all length-state engines.
pub(crate) fn length_epoch_stats(
    queues: &[usize],
    counts: &[u64],
    num_clients: u64,
    dropped: u64,
    served: u64,
) -> EpochStats {
    let m = queues.len().max(1) as f64;
    let max_count = counts.iter().copied().max().unwrap_or(0);
    EpochStats {
        drops: dropped as f64 / m,
        dropped,
        completed: served,
        mean_queue_len: queues.iter().map(|&z| z as f64).sum::<f64>() / m,
        max_share: max_count as f64 / num_clients.max(1) as f64,
        sojourns: Vec::new(),
    }
}

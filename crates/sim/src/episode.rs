//! Episode driver for the finite `N`-client `M`-queue system
//! (Algorithm 1 of the paper).
//!
//! One evaluation episode runs `T_e` decision epochs. At each epoch:
//!
//! 1. the empirical queue-state distribution `H_t^M` is computed (line 8),
//! 2. the upper-level policy produces the decision rule `h_t` (line 9),
//! 3. the engine assigns clients and simulates every queue's CTMC for `Δt`
//!    time units, counting drops (lines 10–19),
//! 4. the arrival level advances (line 20).
//!
//! Two interchangeable engines implement step 3: the literal
//! [`crate::client::PerClientEngine`] and the exact aggregated
//! [`crate::aggregate::AggregateEngine`] (see the crate docs for the
//! exactness argument).

use mflb_core::mdp::UpperPolicy;
use mflb_core::{DecisionRule, StateDist, SystemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A finite-system epoch executor.
pub trait FiniteEngine: Send + Sync {
    /// System configuration in force.
    fn config(&self) -> &SystemConfig;

    /// Runs one decision epoch in place on `queues` (current queue lengths)
    /// and returns the **average number of drops per queue** during the
    /// epoch (`D_t^{N,M}`, Eq. 6).
    fn run_epoch(
        &self,
        queues: &mut [usize],
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> f64;

    /// Engine identifier for harness output.
    fn name(&self) -> &'static str;
}

/// Everything recorded over one finite-system episode.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpisodeOutcome {
    /// Average per-queue drops in each epoch (`D_t^{N,M}`).
    pub drops_per_epoch: Vec<f64>,
    /// Cumulative average per-queue drops `Σ_t D_t^{N,M}` — the quantity
    /// plotted in Fig. 4–6 ("total packets dropped", normalized per queue).
    pub total_drops: f64,
    /// Episode return `−total_drops` (comparable to the MFC MDP value).
    pub total_return: f64,
    /// Mean queue length at the end of each epoch (diagnostics).
    pub mean_queue_len: Vec<f64>,
    /// Arrival-level index in force during each epoch.
    pub lambda_trace: Vec<usize>,
}

/// Samples initial queue states i.i.d. from the configured `ν₀` (Alg. 1,
/// lines 4–6).
pub fn sample_initial_queues(config: &SystemConfig, rng: &mut StdRng) -> Vec<usize> {
    let nu0 = &config.initial_dist;
    (0..config.num_queues)
        .map(|_| {
            let mut u: f64 = rng.gen();
            for (z, &p) in nu0.iter().enumerate() {
                u -= p;
                if u <= 0.0 {
                    return z;
                }
            }
            nu0.len() - 1
        })
        .collect()
}

/// Runs one episode of `horizon` epochs under an upper-level policy, with
/// the arrival level evolving stochastically (Algorithm 1).
pub fn run_episode<E: FiniteEngine + ?Sized>(
    engine: &E,
    policy: &dyn UpperPolicy,
    horizon: usize,
    rng: &mut StdRng,
) -> EpisodeOutcome {
    let config = engine.config();
    let mut queues = sample_initial_queues(config, rng);
    let mut lambda_idx = config.arrivals.sample_initial(rng);
    let mut out = EpisodeOutcome::default();
    for _ in 0..horizon {
        let lambda = config.arrivals.level_rate(lambda_idx);
        let h = StateDist::empirical(&queues, config.buffer);
        let rule = policy.decide(&h, lambda_idx, lambda);
        let drops = engine.run_epoch(&mut queues, &rule, lambda, rng);
        out.drops_per_epoch.push(drops);
        out.total_drops += drops;
        out.mean_queue_len
            .push(queues.iter().map(|&z| z as f64).sum::<f64>() / queues.len() as f64);
        out.lambda_trace.push(lambda_idx);
        lambda_idx = config.arrivals.step(lambda_idx, rng);
    }
    out.total_return = -out.total_drops;
    out
}

/// Runs one episode conditioned on an explicit arrival-level sequence (the
/// Theorem-1 setting: the same `λ` path is fed to the mean-field model and
/// the finite system).
pub fn run_episode_conditioned<E: FiniteEngine + ?Sized>(
    engine: &E,
    policy: &dyn UpperPolicy,
    lambda_seq: &[usize],
    rng: &mut StdRng,
) -> EpisodeOutcome {
    let config = engine.config();
    let mut queues = sample_initial_queues(config, rng);
    let mut out = EpisodeOutcome::default();
    for &lambda_idx in lambda_seq {
        let lambda = config.arrivals.level_rate(lambda_idx);
        let h = StateDist::empirical(&queues, config.buffer);
        let rule = policy.decide(&h, lambda_idx, lambda);
        let drops = engine.run_epoch(&mut queues, &rule, lambda, rng);
        out.drops_per_epoch.push(drops);
        out.total_drops += drops;
        out.mean_queue_len
            .push(queues.iter().map(|&z| z as f64).sum::<f64>() / queues.len() as f64);
        out.lambda_trace.push(lambda_idx);
    }
    out.total_return = -out.total_drops;
    out
}

/// Derives a per-run RNG from a base seed (stable across thread counts so
/// Monte-Carlo results are reproducible regardless of parallelism).
pub fn run_rng(base_seed: u64, run_index: u64) -> StdRng {
    // SplitMix64 scramble keeps consecutive run seeds decorrelated.
    let mut z = base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(run_index + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

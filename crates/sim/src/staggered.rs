//! Staggered (asynchronous) information updates — the information
//! structure of Zhou/Shroff/Wierman \[43\] that the paper contrasts its
//! synchronous broadcast against, built so the two can be compared
//! head-to-head.
//!
//! The paper's model refreshes *every* client's `d`-sample and observed
//! states at every decision epoch (synchronous broadcast every Δt). Here
//! clients are partitioned into `c` cohorts; cohort `r` refreshes its
//! sample/observations only at epochs `t ≡ r (mod c)`, and routes on its
//! **stored stale snapshot** in between. Each client therefore works with
//! information aged 0..c−1 epochs — but crucially the refresh times are
//! *spread out*, so clients do not all chase the same momentary shortest
//! queues.
//!
//! The head-to-head this enables (`ablation_staggered`): synchronized
//! broadcast with period `c·Δt` versus `c` staggered cohorts at epoch
//! `Δt` — identical per-client refresh period, very different herding
//! behaviour.
//!
//! This engine is per-client (the aggregate multinomial law does not
//! apply: a client's destination now depends on its private stale
//! snapshot, not the current queue states alone), so it targets the
//! `N ≤ 10^5` scales also used by the heterogeneous engine.

use crate::episode::EpisodeOutcome;
use mflb_core::mdp::UpperPolicy;
use mflb_core::{StateDist, SystemConfig};
use mflb_queue::BirthDeathQueue;
use rand::rngs::StdRng;
use rand::Rng;

/// Finite system with cohort-staggered information refreshes.
#[derive(Debug, Clone)]
pub struct StaggeredEngine {
    config: SystemConfig,
    cohorts: usize,
}

impl StaggeredEngine {
    /// Creates the engine with `cohorts ≥ 1` refresh cohorts
    /// (`cohorts = 1` is the paper's synchronous model).
    ///
    /// # Panics
    /// Panics on an invalid configuration or zero cohorts.
    pub fn new(config: SystemConfig, cohorts: usize) -> Self {
        config.validate().expect("invalid system configuration");
        assert!(cohorts >= 1, "need at least one cohort");
        Self { config, cohorts }
    }

    /// System configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of refresh cohorts.
    pub fn cohorts(&self) -> usize {
        self.cohorts
    }

    /// Runs one episode of `horizon` epochs under an upper-level policy.
    ///
    /// Per epoch: the due cohort resamples its `d` queues and snapshots
    /// their states; every client draws its destination from the epoch's
    /// decision rule applied to its **own stored snapshot**; queues then
    /// evolve for `Δt` with frozen arrival splits (Algorithm 1 lines
    /// 15–19).
    pub fn run_episode(
        &self,
        policy: &dyn UpperPolicy,
        horizon: usize,
        rng: &mut StdRng,
    ) -> EpisodeOutcome {
        let cfg = &self.config;
        let n = cfg.num_clients as usize;
        let m = cfg.num_queues;
        let d = cfg.d;

        let mut queues = crate::episode::sample_initial_queues(cfg, rng);
        let mut lambda_idx = cfg.arrivals.sample_initial(rng);

        // Per-client persistent state: sampled queue indices and the
        // states observed at the last refresh.
        let mut samples = vec![0usize; n * d];
        let mut snapshots = vec![0u8; n * d];
        // Epoch 0 initializes everyone (cold start = fresh broadcast).
        for i in 0..n {
            for k in 0..d {
                let j = rng.gen_range(0..m);
                samples[i * d + k] = j;
                snapshots[i * d + k] = queues[j] as u8;
            }
        }

        let mut out = EpisodeOutcome::default();
        let mut counts = vec![0u64; m];
        let mut tuple = vec![0usize; d];
        for t in 0..horizon {
            let lambda = cfg.arrivals.level_rate(lambda_idx);
            let h = StateDist::empirical(&queues, cfg.buffer);
            let rule = policy.decide(&h, lambda_idx, lambda);

            // Refresh the due cohort (all cohorts when c = 1).
            if self.cohorts >= 1 {
                let due = t % self.cohorts;
                for i in 0..n {
                    if i % self.cohorts == due {
                        for k in 0..d {
                            let j = rng.gen_range(0..m);
                            samples[i * d + k] = j;
                            snapshots[i * d + k] = queues[j] as u8;
                        }
                    }
                }
            }

            // Route every client on its stored (possibly stale) snapshot.
            counts.iter_mut().for_each(|c| *c = 0);
            for i in 0..n {
                for k in 0..d {
                    tuple[k] = snapshots[i * d + k] as usize;
                }
                let u = rule.sample(&tuple, rng);
                counts[samples[i * d + u]] += 1;
            }

            // Queue evolution with frozen per-queue arrival rates.
            let scale = m as f64 * lambda / n as f64;
            let mut drops = 0u64;
            for (j, q) in queues.iter_mut().enumerate() {
                if counts[j] == 0 && *q == 0 {
                    continue;
                }
                let model =
                    BirthDeathQueue::new(scale * counts[j] as f64, cfg.service_rate, cfg.buffer);
                let outcome = model.simulate_epoch(*q, cfg.dt, rng);
                *q = outcome.final_state;
                drops += outcome.drops;
            }
            let per_queue = drops as f64 / m as f64;
            out.drops_per_epoch.push(per_queue);
            out.total_drops += per_queue;
            out.mean_queue_len.push(queues.iter().map(|&z| z as f64).sum::<f64>() / m as f64);
            out.lambda_trace.push(lambda_idx);
            lambda_idx = cfg.arrivals.step(lambda_idx, rng);
        }
        out.total_return = -out.total_drops;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PerClientEngine;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_core::DecisionRule;
    use mflb_linalg::stats::Summary;
    use mflb_queue::ArrivalProcess;

    fn jsq() -> DecisionRule {
        DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    #[test]
    fn one_cohort_matches_per_client_engine_statistically() {
        // c = 1 refreshes everyone every epoch — the paper's synchronous
        // model — so episode totals must agree in law with the literal
        // per-client engine.
        let cfg = SystemConfig::paper().with_size(800, 20).with_dt(2.0);
        let staggered = StaggeredEngine::new(cfg.clone(), 1);
        let per = PerClientEngine::new(cfg);
        let policy = FixedRulePolicy::new(jsq(), "JSQ(2)");
        let (mut sa, mut sb) = (Summary::new(), Summary::new());
        for r in 0..40 {
            sa.push(staggered.run_episode(&policy, 12, &mut run_rng(1, r)).total_drops);
            sb.push(run_episode(&per, &policy, 12, &mut run_rng(2, r)).total_drops);
        }
        let tol = 4.0 * (sa.std_err() + sb.std_err());
        assert!(
            (sa.mean() - sb.mean()).abs() < tol,
            "staggered(1) {} vs per-client {} (tol {tol})",
            sa.mean(),
            sb.mean()
        );
    }

    #[test]
    fn staleness_hurts_jsq() {
        // More cohorts = older private snapshots. Under JSQ (which trusts
        // its observations absolutely) drops must grow with the cohort
        // count at fixed epoch length.
        let mut cfg = SystemConfig::paper().with_size(2_000, 20).with_dt(1.0);
        cfg.arrivals = ArrivalProcess::constant(0.9);
        let policy = FixedRulePolicy::new(jsq(), "JSQ(2)");
        let drops_at = |c: usize| {
            let engine = StaggeredEngine::new(cfg.clone(), c);
            let mut s = Summary::new();
            for r in 0..24 {
                s.push(engine.run_episode(&policy, 30, &mut run_rng(10 + c as u64, r)).total_drops);
            }
            s.mean()
        };
        let fresh = drops_at(1);
        let stale = drops_at(10);
        assert!(
            stale > fresh,
            "10-epoch-old snapshots ({stale:.2}) must drop more than fresh ({fresh:.2})"
        );
    }

    #[test]
    fn staggering_beats_synchronized_slow_broadcast() {
        // Same per-client refresh period (4 time units), two architectures:
        // (a) synchronized broadcast every 4 time units (paper's model at
        //     Δt = 4), (b) 4 staggered cohorts refreshing every 4 epochs
        //     of length 1. Staggering de-synchronizes the herd, so JSQ
        //     should drop fewer packets under (b).
        let mut base = SystemConfig::paper().with_size(2_000, 20);
        base.arrivals = ArrivalProcess::constant(0.9);
        let policy = FixedRulePolicy::new(jsq(), "JSQ(2)");

        let sync_cfg = base.clone().with_dt(4.0);
        let sync = PerClientEngine::new(sync_cfg);
        let mut s_sync = Summary::new();
        for r in 0..30 {
            s_sync.push(run_episode(&sync, &policy, 10, &mut run_rng(30, r)).total_drops);
        }

        let stag_cfg = base.with_dt(1.0);
        let stag = StaggeredEngine::new(stag_cfg, 4);
        let mut s_stag = Summary::new();
        for r in 0..30 {
            // 40 epochs of length 1 = the same 40 time units.
            s_stag.push(stag.run_episode(&policy, 40, &mut run_rng(31, r)).total_drops);
        }

        assert!(
            s_stag.mean() < s_sync.mean(),
            "staggered {:.2} should beat synchronized {:.2}",
            s_stag.mean(),
            s_sync.mean()
        );
    }

    #[test]
    fn per_epoch_assignment_conserves_clients() {
        // Sanity through observable behaviour: with zero service and tiny
        // buffers, total drops + accepted across an epoch equal arrivals;
        // indirectly verified by the drop bound D ≤ λ·Δt·horizon.
        let mut cfg = SystemConfig::paper().with_size(500, 10).with_dt(2.0);
        cfg.arrivals = ArrivalProcess::constant(0.9);
        let engine = StaggeredEngine::new(cfg, 3);
        let policy = FixedRulePolicy::new(DecisionRule::uniform(6, 2), "RND");
        let out = engine.run_episode(&policy, 20, &mut run_rng(50, 0));
        assert_eq!(out.drops_per_epoch.len(), 20);
        for &dpq in &out.drops_per_epoch {
            assert!((0.0..=0.9 * 2.0 + 1.0).contains(&dpq));
        }
    }
}

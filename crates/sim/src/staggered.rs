//! Staggered (asynchronous) information updates — the information
//! structure of Zhou/Shroff/Wierman \[43\] that the paper contrasts its
//! synchronous broadcast against, built so the two can be compared
//! head-to-head.
//!
//! The paper's model refreshes *every* client's `d`-sample and observed
//! states at every decision epoch (synchronous broadcast every Δt). Here
//! clients are partitioned into `c` cohorts; cohort `r` refreshes its
//! sample/observations only at epochs `t ≡ r (mod c)`, and routes on its
//! **stored stale snapshot** in between. Each client therefore works with
//! information aged 0..c−1 epochs — but crucially the refresh times are
//! *spread out*, so clients do not all chase the same momentary shortest
//! queues.
//!
//! The head-to-head this enables (`ablation_staggered`): synchronized
//! broadcast with period `c·Δt` versus `c` staggered cohorts at epoch
//! `Δt` — identical per-client refresh period, very different herding
//! behaviour.
//!
//! Assignment is per-client (the aggregate multinomial law does not
//! apply: a client's destination now depends on its private stale
//! snapshot, not the current queue states alone). The per-client
//! snapshots live in [`StaggeredState`], so the engine runs through the
//! generic [`crate::run_episode`] and thread-parallel
//! [`crate::monte_carlo()`] drivers like every other engine.

use crate::episode::{length_epoch_stats, simulate_birth_death_epoch, Engine, EpochStats};
use mflb_core::{DecisionRule, StateDist, SystemConfig};
use rand::rngs::StdRng;
use rand::Rng;

/// Episode state of [`StaggeredEngine`]: queue lengths, every client's
/// persistent `d`-sample and stale state snapshot, the epoch counter that
/// drives the cohort refresh schedule, and per-epoch scratch.
#[derive(Debug, Clone)]
pub struct StaggeredState {
    queues: Vec<usize>,
    /// Sampled queue indices, `d` per client.
    samples: Vec<usize>,
    /// States observed at the owning client's last refresh.
    snapshots: Vec<u8>,
    /// Epoch counter (selects the due cohort).
    epoch: usize,
    /// Cold-start flag: the first step initializes every client's
    /// snapshot (fresh broadcast), exactly like the synchronous model.
    primed: bool,
    counts: Vec<u64>,
    tuple: Vec<usize>,
}

impl StaggeredState {
    /// Current queue lengths.
    pub fn queues(&self) -> &[usize] {
        &self.queues
    }
}

/// Finite system with cohort-staggered information refreshes.
#[derive(Debug, Clone)]
pub struct StaggeredEngine {
    config: SystemConfig,
    cohorts: usize,
}

impl StaggeredEngine {
    /// Creates the engine with `cohorts ≥ 1` refresh cohorts
    /// (`cohorts = 1` is the paper's synchronous model).
    ///
    /// # Panics
    /// Panics on an invalid configuration, zero cohorts, or a buffer
    /// beyond 255 (client snapshots store queue lengths as `u8`).
    pub fn new(config: SystemConfig, cohorts: usize) -> Self {
        config.validate().expect("invalid system configuration");
        assert!(cohorts >= 1, "need at least one cohort");
        assert!(config.buffer <= u8::MAX as usize, "u8 snapshots cap the buffer at 255");
        Self { config, cohorts }
    }

    /// Number of refresh cohorts.
    pub fn cohorts(&self) -> usize {
        self.cohorts
    }
}

impl Engine for StaggeredEngine {
    type State = StaggeredState;

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn init_state(&self, rng: &mut StdRng) -> StaggeredState {
        let n = self.config.num_clients as usize;
        let d = self.config.d;
        StaggeredState {
            queues: crate::episode::sample_initial_queues(&self.config, rng),
            samples: vec![0; n * d],
            snapshots: vec![0; n * d],
            epoch: 0,
            primed: false,
            counts: vec![0; self.config.num_queues],
            tuple: vec![0; d],
        }
    }

    fn empirical(&self, state: &StaggeredState) -> StateDist {
        StateDist::empirical(&state.queues, self.config.buffer)
    }

    /// One epoch: the due cohort resamples its `d` queues and snapshots
    /// their states; every client draws its destination from the epoch's
    /// decision rule applied to its **own stored snapshot**; queues then
    /// evolve for `Δt` with frozen arrival splits (Algorithm 1 lines
    /// 15–19).
    fn step(
        &self,
        state: &mut StaggeredState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        let cfg = &self.config;
        let n = cfg.num_clients as usize;
        let m = cfg.num_queues;
        let d = cfg.d;
        let StaggeredState { queues, samples, snapshots, epoch, primed, counts, tuple } = state;

        // Cold start: epoch 0 initializes everyone (fresh broadcast).
        if !*primed {
            for i in 0..n {
                for k in 0..d {
                    let j = rng.gen_range(0..m);
                    samples[i * d + k] = j;
                    snapshots[i * d + k] = queues[j] as u8;
                }
            }
            *primed = true;
        }

        // Refresh the due cohort (all cohorts when c = 1).
        let due = *epoch % self.cohorts;
        for i in 0..n {
            if i % self.cohorts == due {
                for k in 0..d {
                    let j = rng.gen_range(0..m);
                    samples[i * d + k] = j;
                    snapshots[i * d + k] = queues[j] as u8;
                }
            }
        }

        // Route every client on its stored (possibly stale) snapshot.
        counts.iter_mut().for_each(|c| *c = 0);
        for i in 0..n {
            for k in 0..d {
                tuple[k] = snapshots[i * d + k] as usize;
            }
            let u = rule.sample(tuple, rng);
            counts[samples[i * d + u]] += 1;
        }

        // Queue evolution with frozen per-queue arrival rates.
        let scale = m as f64 * lambda / n as f64;
        let (dropped, served) = simulate_birth_death_epoch(
            queues,
            counts,
            scale,
            &|_| cfg.service_rate,
            cfg.buffer,
            cfg.dt,
            rng,
        );
        *epoch += 1;
        length_epoch_stats(queues, counts, cfg.num_clients, dropped, served)
    }

    fn name(&self) -> &'static str {
        "staggered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PerClientEngine;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_core::DecisionRule;
    use mflb_linalg::stats::Summary;
    use mflb_queue::ArrivalProcess;

    fn jsq() -> DecisionRule {
        DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    #[test]
    fn one_cohort_matches_per_client_engine_statistically() {
        // c = 1 refreshes everyone every epoch — the paper's synchronous
        // model — so episode totals must agree in law with the literal
        // per-client engine.
        let cfg = SystemConfig::paper().with_size(800, 20).with_dt(2.0);
        let staggered = StaggeredEngine::new(cfg.clone(), 1);
        let per = PerClientEngine::new(cfg);
        let policy = FixedRulePolicy::new(jsq(), "JSQ(2)");
        let (mut sa, mut sb) = (Summary::new(), Summary::new());
        for r in 0..40 {
            sa.push(run_episode(&staggered, &policy, 12, &mut run_rng(1, r)).total_drops);
            sb.push(run_episode(&per, &policy, 12, &mut run_rng(2, r)).total_drops);
        }
        let tol = 4.0 * (sa.std_err() + sb.std_err());
        assert!(
            (sa.mean() - sb.mean()).abs() < tol,
            "staggered(1) {} vs per-client {} (tol {tol})",
            sa.mean(),
            sb.mean()
        );
    }

    #[test]
    fn staleness_hurts_jsq() {
        // More cohorts = older private snapshots. Under JSQ (which trusts
        // its observations absolutely) drops must grow with the cohort
        // count at fixed epoch length.
        let mut cfg = SystemConfig::paper().with_size(2_000, 20).with_dt(1.0);
        cfg.arrivals = ArrivalProcess::constant(0.9);
        let policy = FixedRulePolicy::new(jsq(), "JSQ(2)");
        let drops_at = |c: usize| {
            let engine = StaggeredEngine::new(cfg.clone(), c);
            let mut s = Summary::new();
            for r in 0..24 {
                s.push(
                    run_episode(&engine, &policy, 30, &mut run_rng(10 + c as u64, r)).total_drops,
                );
            }
            s.mean()
        };
        let fresh = drops_at(1);
        let stale = drops_at(10);
        assert!(
            stale > fresh,
            "10-epoch-old snapshots ({stale:.2}) must drop more than fresh ({fresh:.2})"
        );
    }

    #[test]
    fn staggering_beats_synchronized_slow_broadcast() {
        // Same per-client refresh period (4 time units), two architectures:
        // (a) synchronized broadcast every 4 time units (paper's model at
        //     Δt = 4), (b) 4 staggered cohorts refreshing every 4 epochs
        //     of length 1. Staggering de-synchronizes the herd, so JSQ
        //     should drop fewer packets under (b).
        let mut base = SystemConfig::paper().with_size(2_000, 20);
        base.arrivals = ArrivalProcess::constant(0.9);
        let policy = FixedRulePolicy::new(jsq(), "JSQ(2)");

        let sync_cfg = base.clone().with_dt(4.0);
        let sync = PerClientEngine::new(sync_cfg);
        let mut s_sync = Summary::new();
        for r in 0..30 {
            s_sync.push(run_episode(&sync, &policy, 10, &mut run_rng(30, r)).total_drops);
        }

        let stag_cfg = base.with_dt(1.0);
        let stag = StaggeredEngine::new(stag_cfg, 4);
        let mut s_stag = Summary::new();
        for r in 0..30 {
            // 40 epochs of length 1 = the same 40 time units.
            s_stag.push(run_episode(&stag, &policy, 40, &mut run_rng(31, r)).total_drops);
        }

        assert!(
            s_stag.mean() < s_sync.mean(),
            "staggered {:.2} should beat synchronized {:.2}",
            s_stag.mean(),
            s_sync.mean()
        );
    }

    #[test]
    fn per_epoch_assignment_conserves_clients() {
        // Sanity through observable behaviour: with zero service and tiny
        // buffers, total drops + accepted across an epoch equal arrivals;
        // indirectly verified by the drop bound D ≤ λ·Δt·horizon.
        let mut cfg = SystemConfig::paper().with_size(500, 10).with_dt(2.0);
        cfg.arrivals = ArrivalProcess::constant(0.9);
        let engine = StaggeredEngine::new(cfg, 3);
        let policy = FixedRulePolicy::new(DecisionRule::uniform(6, 2), "RND");
        let out = run_episode(&engine, &policy, 20, &mut run_rng(50, 0));
        assert_eq!(out.drops_per_epoch.len(), 20);
        for &dpq in &out.drops_per_epoch {
            assert!((0.0..=0.9 * 2.0 + 1.0).contains(&dpq));
        }
    }
}

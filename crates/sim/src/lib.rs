//! Finite `N`-client `M`-queue system simulator (Algorithm 1 of the
//! paper), built around one stateful [`Engine`] trait.
//!
//! Every engine owns an associated [`Engine::State`] (queue contents plus
//! reusable scratch buffers) and exposes three hooks — `init_state`,
//! `empirical`, `step` — so the generic episode drivers
//! ([`run_episode`], [`run_episode_conditioned`]) and the thread-parallel
//! [`monte_carlo()`] fan-out work identically for all of them:
//!
//! * [`client::PerClientEngine`] — the literal model: every client samples
//!   `d` queues, observes their stale states, draws its destination from
//!   the decision rule; `O(N·d)` per epoch;
//! * [`aggregate::AggregateEngine`] — exact hierarchical-multinomial
//!   aggregation of the client layer, `O(M)` per epoch, *identical in
//!   law* (see its module docs for the argument). This is what makes the
//!   paper's `N = M² = 10^6` configurations tractable;
//! * [`hetero::HeteroEngine`] — heterogeneous service rates with
//!   composite `(length, class)` observations (the paper's §5 extension);
//! * [`staggered::StaggeredEngine`] — cohort-staggered information
//!   refreshes (the Zhou/Shroff/Wierman baseline), with per-client stale
//!   snapshots carried in its state;
//! * [`ph_engine::PhAggregateEngine`] — phase-type service over joint
//!   `(length, phase)` queue states (§5 extension);
//! * [`fifo_engine::FifoEngine`] — job-level FIFO queues reporting
//!   per-job sojourn times (the Fig. 8 response-time extension);
//! * [`graph_engine::GraphEngine`] — locality-constrained routing over a
//!   graph [`mflb_core::Topology`] (ring/torus/random-regular): each
//!   dispatcher samples its `d` queues from its closed neighborhood; the
//!   full mesh is the degenerate case and reproduces the aggregate
//!   engine's RNG stream bit for bit;
//! * [`event_engine::EventEngine`] — continuous-time job-level engine on
//!   a [`Timeline`] event heap with exponential or Pareto/bounded-Pareto
//!   job sizes ([`mflb_core::JobSizeLaw`]); the [`serve()`] runtime drives
//!   it as a long-running dispatcher over synthetic or replayed-trace
//!   job streams (`mflb serve`).
//!
//! [`scenario`] adds a serde-driven construction layer: a [`Scenario`]
//! (engine kind + [`mflb_core::SystemConfig`] + service law / pool /
//! cohort parameters) validates itself and builds an [`AnyEngine`] from
//! data, so benches, examples and downstream tools can describe whole
//! experiments as JSON.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod aggregate;
pub mod client;
pub mod episode;
pub mod error;
pub mod event_engine;
pub mod fifo_engine;
pub mod graph_engine;
pub mod hetero;
pub mod monte_carlo;
pub mod ph_engine;
pub mod scenario;
pub mod serve;
pub mod staggered;

pub use aggregate::AggregateEngine;
pub use client::PerClientEngine;
pub use episode::{
    run_episode, run_episode_conditioned, run_episodes_lockstep, run_rng, sample_initial_queues,
    Engine, EpisodeOutcome, EpochStats,
};
pub use error::{ScenarioError, ServeError};
pub use event_engine::{EventEngine, EventState, Timeline};
pub use fifo_engine::FifoEngine;
pub use graph_engine::{GraphEngine, GraphState, StepMode};
pub use hetero::HeteroEngine;
pub use monte_carlo::{monte_carlo, monte_carlo_conditioned, MonteCarloResult};
pub use ph_engine::{sample_initial_ph_queues, PhAggregateEngine};
pub use scenario::{AnyEngine, AnyState, EngineSpec, Scenario, ServiceLaw};
pub use serve::{
    parse_trace, parse_trace_line, serve, serve_with, Job, JobSource, LineTraceReader,
    ServeOptions, ServeReport, ServeTick,
};
pub use staggered::StaggeredEngine;

//! Finite `N`-client `M`-queue system simulator (Algorithm 1 of the
//! paper), with two interchangeable engines:
//!
//! * [`client::PerClientEngine`] — the literal model: every client samples
//!   `d` queues, observes their stale states, draws its destination from
//!   the decision rule; `O(N·d)` per epoch;
//! * [`aggregate::AggregateEngine`] — exact hierarchical-multinomial
//!   aggregation of the client layer, `O(M)` per epoch, *identical in
//!   law* (see its module docs for the argument). This is what makes the
//!   paper's `N = M² = 10^6` configurations tractable.
//!
//! [`episode`] drives full evaluation episodes; [`monte_carlo()`] fans runs
//! out over threads with reproducible per-run seeding.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod aggregate;
pub mod client;
pub mod episode;
pub mod hetero;
pub mod monte_carlo;
pub mod ph_engine;
pub mod staggered;

pub use aggregate::AggregateEngine;
pub use client::PerClientEngine;
pub use episode::{
    run_episode, run_episode_conditioned, run_rng, sample_initial_queues, EpisodeOutcome,
    FiniteEngine,
};
pub use hetero::{HeteroEngine, HeteroOutcome};
pub use monte_carlo::{monte_carlo, monte_carlo_conditioned, MonteCarloResult};
pub use ph_engine::{run_ph_episode, sample_initial_ph_queues, PhAggregateEngine};
pub use staggered::StaggeredEngine;

//! The literal per-client finite-system engine (Algorithm 1, lines 10–19).
//!
//! Every client independently samples `d` queue indices uniformly at random
//! (Eq. 3), observes their *epoch-start* states (the synchronously
//! broadcast, hence stale, information), draws its destination from the
//! decision rule (Eq. 4), and commits its share of the epoch's traffic to
//! that queue. Queue `j` then runs an exact birth–death CTMC for `Δt` time
//! units with frozen arrival rate `λ_j = M·λ_t·(#clients on j)/N` (Eq. 5).
//!
//! Cost is `O(N·d + M·events)` per epoch — the faithful baseline against
//! which the O(M)-per-epoch [`crate::aggregate::AggregateEngine`] is
//! validated (they follow the same probability law; see the crate docs).

use crate::episode::{length_epoch_stats, simulate_birth_death_epoch, Engine, EpochStats};
use mflb_core::{DecisionRule, StateDist, SystemConfig};
use rand::rngs::StdRng;

/// Episode state of [`PerClientEngine`]: queue lengths plus reusable
/// per-epoch scratch buffers (client counts and `d`-sample workspace).
#[derive(Debug, Clone)]
pub struct PerClientState {
    queues: Vec<usize>,
    counts: Vec<u64>,
    sampled: Vec<usize>,
    tuple: Vec<usize>,
}

impl PerClientState {
    /// Wraps explicit queue lengths (benchmarks and tests).
    pub fn from_queues(queues: Vec<usize>, d: usize) -> Self {
        let m = queues.len();
        Self { queues, counts: vec![0; m], sampled: vec![0; d], tuple: vec![0; d] }
    }

    /// Current queue lengths.
    pub fn queues(&self) -> &[usize] {
        &self.queues
    }
}

/// Per-client epoch executor.
#[derive(Debug, Clone)]
pub struct PerClientEngine {
    config: SystemConfig,
}

impl PerClientEngine {
    /// Creates the engine for a validated configuration.
    pub fn new(config: SystemConfig) -> Self {
        config.validate().expect("invalid system configuration");
        Self { config }
    }

    /// Samples every client's assignment and returns the per-queue client
    /// counts (exposed for the engine-agreement tests).
    pub fn sample_assignments(
        &self,
        queues: &[usize],
        rule: &DecisionRule,
        rng: &mut StdRng,
    ) -> Vec<u64> {
        let mut counts = vec![0u64; queues.len()];
        let mut sampled = vec![0usize; self.config.d];
        let mut tuple = vec![0usize; self.config.d];
        self.sample_assignments_into(queues, rule, rng, &mut counts, &mut sampled, &mut tuple);
        counts
    }

    fn sample_assignments_into(
        &self,
        queues: &[usize],
        rule: &DecisionRule,
        rng: &mut StdRng,
        counts: &mut [u64],
        sampled: &mut [usize],
        tuple: &mut [usize],
    ) {
        crate::episode::sample_per_client_assignments(
            self.config.num_clients,
            &|j| queues[j],
            rule,
            rng,
            counts,
            sampled,
            tuple,
        );
    }
}

impl Engine for PerClientEngine {
    type State = PerClientState;

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn init_state(&self, rng: &mut StdRng) -> PerClientState {
        PerClientState::from_queues(
            crate::episode::sample_initial_queues(&self.config, rng),
            self.config.d,
        )
    }

    fn empirical(&self, state: &PerClientState) -> StateDist {
        StateDist::empirical(&state.queues, self.config.buffer)
    }

    fn step(
        &self,
        state: &mut PerClientState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        let PerClientState { queues, counts, sampled, tuple } = state;
        debug_assert_eq!(queues.len(), self.config.num_queues);
        self.sample_assignments_into(queues, rule, rng, counts, sampled, tuple);

        // Per-queue arrival rates (Eq. 5) and exact CTMC simulation.
        let m = queues.len();
        let scale = m as f64 * lambda / self.config.num_clients as f64;
        let (dropped, served) = simulate_birth_death_epoch(
            queues,
            counts,
            scale,
            &|_| self.config.service_rate,
            self.config.buffer,
            self.config.dt,
            rng,
        );
        length_epoch_stats(queues, counts, self.config.num_clients, dropped, served)
    }

    fn name(&self) -> &'static str {
        "per-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_core::DecisionRule;
    use rand::SeedableRng;

    fn small_config() -> SystemConfig {
        SystemConfig::paper().with_size(400, 20).with_dt(2.0)
    }

    #[test]
    fn assignment_counts_sum_to_n() {
        let cfg = small_config();
        let engine = PerClientEngine::new(cfg.clone());
        let queues = vec![0usize; cfg.num_queues];
        let rule = DecisionRule::uniform(cfg.num_states(), cfg.d);
        let mut rng = StdRng::seed_from_u64(1);
        let counts = engine.sample_assignments(&queues, &rule, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), cfg.num_clients);
    }

    #[test]
    fn uniform_rule_spreads_assignments() {
        let cfg = small_config();
        let engine = PerClientEngine::new(cfg.clone());
        let queues = vec![0usize; cfg.num_queues];
        let rule = DecisionRule::uniform(cfg.num_states(), cfg.d);
        let mut rng = StdRng::seed_from_u64(2);
        let counts = engine.sample_assignments(&queues, &rule, &mut rng);
        let expect = cfg.num_clients as f64 / cfg.num_queues as f64; // 20
        for &c in &counts {
            // 6σ band for Binomial(400, 1/20).
            let sd = (cfg.num_clients as f64 * (1.0 / 20.0) * (19.0 / 20.0)).sqrt();
            assert!((c as f64 - expect).abs() < 6.0 * sd, "count {c}");
        }
    }

    #[test]
    fn jsq_rule_sends_everyone_to_short_queues() {
        let cfg = SystemConfig::paper().with_size(1000, 10).with_dt(1.0);
        let engine = PerClientEngine::new(cfg.clone());
        // Queue 0 empty, the rest full.
        let mut queues = vec![5usize; 10];
        queues[0] = 0;
        let rule = mflb_core::DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        });
        let mut rng = StdRng::seed_from_u64(3);
        let counts = engine.sample_assignments(&queues, &rule, &mut rng);
        // Herd behaviour: every client that sampled queue 0 sends there.
        // P(sample includes queue 0) = 1 - (9/10)^2 = 0.19.
        let frac = counts[0] as f64 / 1000.0;
        assert!((frac - 0.19).abs() < 0.06, "herding fraction {frac}");
    }

    #[test]
    fn episode_runs_and_accumulates() {
        let cfg = small_config();
        let engine = PerClientEngine::new(cfg.clone());
        let policy = FixedRulePolicy::new(DecisionRule::uniform(cfg.num_states(), cfg.d), "RND");
        let mut rng = run_rng(7, 0);
        let out = run_episode(&engine, &policy, 20, &mut rng);
        assert_eq!(out.drops_per_epoch.len(), 20);
        assert!((out.total_drops + out.total_return).abs() < 1e-12);
        assert!(out.total_drops >= 0.0);
        assert!(out.mean_queue_len.iter().all(|&l| (0.0..=5.0).contains(&l)));
        // The richer outcome fields are filled for every engine.
        assert_eq!(out.max_share_per_epoch.len(), 20);
        assert!(out.max_share_per_epoch.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // total_drops is Σ_t (dropped_t / M): the raw counter matches it
        // up to float summation order.
        assert!((out.jobs_dropped as f64 / cfg.num_queues as f64 - out.total_drops).abs() < 1e-9);
    }

    #[test]
    fn seeded_episodes_reproduce() {
        let cfg = small_config();
        let engine = PerClientEngine::new(cfg.clone());
        let policy = FixedRulePolicy::new(DecisionRule::uniform(cfg.num_states(), cfg.d), "RND");
        let a = run_episode(&engine, &policy, 10, &mut run_rng(11, 3));
        let b = run_episode(&engine, &policy, 10, &mut run_rng(11, 3));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
    }

    #[test]
    fn state_scratch_buffers_do_not_leak_between_epochs() {
        // Two consecutive steps on one state must match two fresh
        // single-step states driven by the same RNG stream.
        let cfg = small_config();
        let engine = PerClientEngine::new(cfg.clone());
        let rule = DecisionRule::uniform(cfg.num_states(), cfg.d);
        let mut rng_a = run_rng(5, 0);
        let mut rng_b = run_rng(5, 0);
        let mut state = engine.init_state(&mut rng_a);
        let mut queues = crate::episode::sample_initial_queues(&cfg, &mut rng_b);
        let s1 = engine.step(&mut state, &rule, 0.9, &mut rng_a);
        let s2 = engine.step(&mut state, &rule, 0.9, &mut rng_a);
        for expect in [s1, s2] {
            let mut fresh = PerClientState::from_queues(queues.clone(), cfg.d);
            let got = engine.step(&mut fresh, &rule, 0.9, &mut rng_b);
            assert_eq!(got, expect);
            queues = fresh.queues().to_vec();
        }
    }
}

//! The literal per-client finite-system engine (Algorithm 1, lines 10–19).
//!
//! Every client independently samples `d` queue indices uniformly at random
//! (Eq. 3), observes their *epoch-start* states (the synchronously
//! broadcast, hence stale, information), draws its destination from the
//! decision rule (Eq. 4), and commits its share of the epoch's traffic to
//! that queue. Queue `j` then runs an exact birth–death CTMC for `Δt` time
//! units with frozen arrival rate `λ_j = M·λ_t·(#clients on j)/N` (Eq. 5).
//!
//! Cost is `O(N·d + M·events)` per epoch — the faithful baseline against
//! which the O(M)-per-epoch [`crate::aggregate::AggregateEngine`] is
//! validated (they follow the same probability law; see the crate docs).

use crate::episode::FiniteEngine;
use mflb_core::{DecisionRule, SystemConfig};
use mflb_queue::BirthDeathQueue;
use rand::rngs::StdRng;
use rand::Rng;

/// Per-client epoch executor.
#[derive(Debug, Clone)]
pub struct PerClientEngine {
    config: SystemConfig,
}

impl PerClientEngine {
    /// Creates the engine for a validated configuration.
    pub fn new(config: SystemConfig) -> Self {
        config.validate().expect("invalid system configuration");
        Self { config }
    }

    /// Samples every client's assignment and returns the per-queue client
    /// counts (exposed for the engine-agreement tests).
    pub fn sample_assignments(
        &self,
        queues: &[usize],
        rule: &DecisionRule,
        rng: &mut StdRng,
    ) -> Vec<u64> {
        let m = queues.len();
        let d = self.config.d;
        let mut counts = vec![0u64; m];
        let mut sampled = vec![0usize; d];
        let mut tuple = vec![0usize; d];
        for _ in 0..self.config.num_clients {
            for k in 0..d {
                sampled[k] = rng.gen_range(0..m);
                tuple[k] = queues[sampled[k]];
            }
            let u = rule.sample(&tuple, rng);
            counts[sampled[u]] += 1;
        }
        counts
    }
}

impl FiniteEngine for PerClientEngine {
    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn run_epoch(
        &self,
        queues: &mut [usize],
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> f64 {
        let m = queues.len();
        debug_assert_eq!(m, self.config.num_queues);
        let counts = self.sample_assignments(queues, rule, rng);

        // Per-queue arrival rates (Eq. 5) and exact CTMC simulation.
        let n = self.config.num_clients as f64;
        let scale = m as f64 * lambda / n;
        let mut total_drops = 0u64;
        for (j, q) in queues.iter_mut().enumerate() {
            let rate = scale * counts[j] as f64;
            let model = BirthDeathQueue::new(rate, self.config.service_rate, self.config.buffer);
            let outcome = model.simulate_epoch(*q, self.config.dt, rng);
            *q = outcome.final_state;
            total_drops += outcome.drops;
        }
        total_drops as f64 / m as f64
    }

    fn name(&self) -> &'static str {
        "per-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_core::DecisionRule;
    use rand::SeedableRng;

    fn small_config() -> SystemConfig {
        SystemConfig::paper().with_size(400, 20).with_dt(2.0)
    }

    #[test]
    fn assignment_counts_sum_to_n() {
        let cfg = small_config();
        let engine = PerClientEngine::new(cfg.clone());
        let queues = vec![0usize; cfg.num_queues];
        let rule = DecisionRule::uniform(cfg.num_states(), cfg.d);
        let mut rng = StdRng::seed_from_u64(1);
        let counts = engine.sample_assignments(&queues, &rule, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), cfg.num_clients);
    }

    #[test]
    fn uniform_rule_spreads_assignments() {
        let cfg = small_config();
        let engine = PerClientEngine::new(cfg.clone());
        let queues = vec![0usize; cfg.num_queues];
        let rule = DecisionRule::uniform(cfg.num_states(), cfg.d);
        let mut rng = StdRng::seed_from_u64(2);
        let counts = engine.sample_assignments(&queues, &rule, &mut rng);
        let expect = cfg.num_clients as f64 / cfg.num_queues as f64; // 20
        for &c in &counts {
            // 6σ band for Binomial(400, 1/20).
            let sd = (cfg.num_clients as f64 * (1.0 / 20.0) * (19.0 / 20.0)).sqrt();
            assert!((c as f64 - expect).abs() < 6.0 * sd, "count {c}");
        }
    }

    #[test]
    fn jsq_rule_sends_everyone_to_short_queues() {
        let cfg = SystemConfig::paper().with_size(1000, 10).with_dt(1.0);
        let engine = PerClientEngine::new(cfg.clone());
        // Queue 0 empty, the rest full.
        let mut queues = vec![5usize; 10];
        queues[0] = 0;
        let rule = mflb_core::DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        });
        let mut rng = StdRng::seed_from_u64(3);
        let counts = engine.sample_assignments(&queues, &rule, &mut rng);
        // Herd behaviour: every client that sampled queue 0 sends there.
        // P(sample includes queue 0) = 1 - (9/10)^2 = 0.19.
        let frac = counts[0] as f64 / 1000.0;
        assert!((frac - 0.19).abs() < 0.06, "herding fraction {frac}");
    }

    #[test]
    fn episode_runs_and_accumulates() {
        let cfg = small_config();
        let engine = PerClientEngine::new(cfg.clone());
        let policy = FixedRulePolicy::new(DecisionRule::uniform(cfg.num_states(), cfg.d), "RND");
        let mut rng = run_rng(7, 0);
        let out = run_episode(&engine, &policy, 20, &mut rng);
        assert_eq!(out.drops_per_epoch.len(), 20);
        assert!((out.total_drops + out.total_return).abs() < 1e-12);
        assert!(out.total_drops >= 0.0);
        assert!(out.mean_queue_len.iter().all(|&l| (0.0..=5.0).contains(&l)));
    }

    #[test]
    fn seeded_episodes_reproduce() {
        let cfg = small_config();
        let engine = PerClientEngine::new(cfg.clone());
        let policy = FixedRulePolicy::new(DecisionRule::uniform(cfg.num_states(), cfg.d), "RND");
        let a = run_episode(&engine, &policy, 10, &mut run_rng(11, 3));
        let b = run_episode(&engine, &policy, 10, &mut run_rng(11, 3));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
    }
}

//! Typed errors for the scenario layer and the serve runtime.
//!
//! [`crate::scenario`] and [`mod@crate::serve`] used to report failures as
//! `Result<_, String>`; downstream tools need to distinguish a malformed
//! trace line from an I/O failure (retry? abort?) and to compose with
//! `std::error::Error` consumers, so both now report structured enums
//! following the `mflb_dp::DpError` pattern. Every `Display` rendering is
//! byte-compatible with the old string messages — the CLI's exit-2
//! diagnostics and the tests pinning them are unchanged — and both types
//! convert [`Into`] `String` so legacy `Result<_, String>` call sites keep
//! composing with `?`.

use std::fmt;

/// Errors from validating or building a [`crate::Scenario`].
#[derive(Debug)]
pub enum ScenarioError {
    /// The embedded `SystemConfig` is inconsistent.
    Config(String),
    /// The fault plan is invalid or attached to an engine that cannot
    /// honor one.
    Faults(String),
    /// The service-time law ([`crate::ServiceLaw`]) is invalid.
    Service(String),
    /// The graph topology is invalid for this queue count.
    Topology(String),
    /// The job-size law is invalid.
    JobSize(String),
    /// An engine-specific parameter (pool, cohorts, shard size) is
    /// invalid.
    Engine(String),
    /// The scenario JSON could not be parsed (syntax, unknown engine
    /// kind, missing field).
    Json(serde_json::Error),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Config(e) => write!(f, "config: {e}"),
            ScenarioError::Faults(e) => write!(f, "faults: {e}"),
            ScenarioError::Service(e) => write!(f, "service: {e}"),
            ScenarioError::Topology(e) => write!(f, "topology: {e}"),
            ScenarioError::JobSize(e) => write!(f, "job_size: {e}"),
            // Engine complaints already name their subject ("hetero pool
            // has …"); no prefix, matching the historical messages.
            ScenarioError::Engine(e) => write!(f, "{e}"),
            ScenarioError::Json(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for ScenarioError {
    fn from(e: serde_json::Error) -> Self {
        ScenarioError::Json(e)
    }
}

// Legacy `Result<_, String>` pipelines (the RL eval path, examples,
// bench bins) keep composing with `?`.
impl From<ScenarioError> for String {
    fn from(e: ScenarioError) -> Self {
        e.to_string()
    }
}

/// Errors from a [`crate::serve()`] run or from trace parsing.
#[derive(Debug)]
pub enum ServeError {
    /// A trace line is not valid JSON.
    TraceParse {
        /// 1-based line number.
        line: usize,
        /// Underlying deserialization error.
        source: serde_json::Error,
    },
    /// A trace job's arrival time is not finite and nonnegative.
    ArrivalTime {
        /// 1-based line number.
        line: usize,
        /// The offending arrival time.
        t: f64,
    },
    /// A trace job's arrival time went backwards.
    ArrivalOrder {
        /// 1-based line number.
        line: usize,
        /// The offending arrival time.
        t: f64,
        /// The previous job's arrival time.
        last_t: f64,
    },
    /// A trace job's size is not positive and finite.
    JobSize {
        /// 1-based line number.
        line: usize,
        /// The offending size.
        size: f64,
    },
    /// A streamed trace read failed even after retries.
    TraceIo {
        /// 1-based line number being read.
        line: usize,
        /// Retry budget that was exhausted.
        retries: u32,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The requested serve duration is not positive and finite.
    Duration(f64),
    /// A staleness threshold of zero intervals was requested.
    StalenessZero,
    /// A staleness threshold was set without a fallback policy tier.
    MissingFallback,
    /// A [`crate::ServeReport`] could not be parsed back from JSON.
    Report(serde_json::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::TraceParse { line, source } => write!(f, "trace line {line}: {source}"),
            ServeError::ArrivalTime { line, t } => {
                write!(f, "trace line {line}: arrival time must be finite and nonnegative, got {t}")
            }
            ServeError::ArrivalOrder { line, t, last_t } => write!(
                f,
                "trace line {line}: arrival times must be nondecreasing, got {t} after {last_t}"
            ),
            ServeError::JobSize { line, size } => {
                write!(f, "trace line {line}: job size must be positive and finite, got {size}")
            }
            ServeError::TraceIo { line, retries, source } => {
                write!(f, "trace line {line}: read failed after {retries} retries: {source}")
            }
            ServeError::Duration(te) => {
                write!(f, "serve duration must be positive and finite, got {te}")
            }
            ServeError::StalenessZero => {
                write!(f, "staleness threshold must be at least 1 interval")
            }
            ServeError::MissingFallback => {
                write!(f, "a staleness threshold needs a fallback policy tier")
            }
            ServeError::Report(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::TraceParse { source, .. } => Some(source),
            ServeError::TraceIo { source, .. } => Some(source),
            ServeError::Report(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for String {
    fn from(e: ServeError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_display_keeps_the_historical_prefixes() {
        assert_eq!(
            ScenarioError::Config("d must be at least 1".into()).to_string(),
            "config: d must be at least 1"
        );
        assert_eq!(
            ScenarioError::Engine("hetero server rates must be positive and finite".into())
                .to_string(),
            "hetero server rates must be positive and finite"
        );
        assert!(std::error::Error::source(&ScenarioError::Config("x".into())).is_none());
    }

    #[test]
    fn serve_display_matches_the_historical_trace_diagnostics() {
        assert_eq!(
            ServeError::ArrivalTime { line: 3, t: -1.0 }.to_string(),
            "trace line 3: arrival time must be finite and nonnegative, got -1"
        );
        assert_eq!(
            ServeError::ArrivalOrder { line: 2, t: 1.0, last_t: 2.0 }.to_string(),
            "trace line 2: arrival times must be nondecreasing, got 1 after 2"
        );
        assert_eq!(
            ServeError::JobSize { line: 1, size: 0.0 }.to_string(),
            "trace line 1: job size must be positive and finite, got 0"
        );
        assert_eq!(
            ServeError::Duration(-3.0).to_string(),
            "serve duration must be positive and finite, got -3"
        );
        let io = ServeError::TraceIo {
            line: 7,
            retries: 3,
            source: std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe closed"),
        };
        let text = io.to_string();
        assert!(text.starts_with("trace line 7: read failed after 3 retries:"), "{text}");
        assert!(std::error::Error::source(&io).is_some());
    }

    #[test]
    fn errors_convert_into_strings_for_legacy_pipelines() {
        let s: String = ServeError::StalenessZero.into();
        assert_eq!(s, "staleness threshold must be at least 1 interval");
        let s: String = ScenarioError::Topology("ring radius 0".into()).into();
        assert_eq!(s, "topology: ring radius 0");
    }
}

//! Finite `N,M` system with **phase-type service** — the simulator
//! counterpart of [`mflb_core::ph_meanfield`].
//!
//! Clients still observe only the queue lengths, so the assignment law per
//! epoch is identical to the homogeneous system (it depends on the
//! empirical **length** profile only) and the exact hierarchical
//! multinomial aggregation of [`crate::aggregate`] is reused verbatim.
//! Each queue then evolves as an independent `M/PH/1/B` chain over joint
//! `(length, phase)` states, simulated exactly with Gillespie
//! ([`mflb_queue::PhQueue::simulate_epoch`]). Phases persist *across*
//! epochs — residual service ages correctly, which is the whole point of
//! the extension. The joint states live in [`PhState`], so the engine
//! runs through the generic [`crate::run_episode`] and thread-parallel
//! [`crate::monte_carlo()`] drivers like every other engine.

use mflb_core::{DecisionRule, StateDist, SystemConfig};
use mflb_queue::{PhQueue, PhQueueState, PhaseType};
use rand::rngs::StdRng;

use crate::aggregate::sample_client_assignments_into;
use crate::episode::{Engine, EpochStats};

/// Episode state of [`PhAggregateEngine`]: joint `(length, phase)` queue
/// states, a reusable `M/PH/1/B` model (only the frozen arrival rate
/// varies per queue) and per-epoch scratch.
#[derive(Debug, Clone)]
pub struct PhState {
    queues: Vec<PhQueueState>,
    model: PhQueue,
    lengths: Vec<usize>,
    counts: Vec<u64>,
}

impl PhState {
    /// Current joint queue states.
    pub fn queues(&self) -> &[PhQueueState] {
        &self.queues
    }
}

/// Aggregated finite-system engine with phase-type service.
///
/// The `service_rate` of the wrapped [`SystemConfig`] is ignored; the
/// service law is the supplied [`PhaseType`].
#[derive(Debug, Clone)]
pub struct PhAggregateEngine {
    config: SystemConfig,
    service: PhaseType,
}

impl PhAggregateEngine {
    /// Creates the engine.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent.
    pub fn new(config: SystemConfig, service: PhaseType) -> Self {
        config.validate().expect("invalid system configuration");
        Self { config, service }
    }

    /// Service-time distribution.
    pub fn service(&self) -> &PhaseType {
        &self.service
    }

    /// Wraps explicit joint queue states (tests).
    pub fn state_from_queues(&self, queues: Vec<PhQueueState>) -> PhState {
        let m = queues.len();
        PhState {
            queues,
            model: PhQueue::new(0.0, self.service.clone(), self.config.buffer),
            lengths: vec![0; m],
            counts: vec![0; m],
        }
    }
}

impl Engine for PhAggregateEngine {
    type State = PhState;

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn init_state(&self, rng: &mut StdRng) -> PhState {
        self.state_from_queues(sample_initial_ph_queues(&self.config, &self.service, rng))
    }

    fn empirical(&self, state: &PhState) -> StateDist {
        // Length histogram over B+1 bins — O(B) temporary, not O(M).
        let mut counts = vec![0u64; self.config.num_states()];
        for q in &state.queues {
            counts[q.len] += 1;
        }
        StateDist::from_counts(&counts)
    }

    /// Runs one decision epoch in place on the joint queue states.
    fn step(
        &self,
        state: &mut PhState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        let PhState { queues, model, lengths, counts } = state;
        let m = queues.len();
        debug_assert_eq!(m, self.config.num_queues);
        for (l, q) in lengths.iter_mut().zip(queues.iter()) {
            *l = q.len;
        }
        sample_client_assignments_into(
            self.config.num_clients,
            self.config.buffer,
            lengths,
            rule,
            rng,
            counts,
        );

        let n = self.config.num_clients as f64;
        let scale = m as f64 * lambda / n;
        let mut dropped = 0u64;
        let mut served = 0u64;
        for (j, q) in queues.iter_mut().enumerate() {
            if counts[j] == 0 && q.len == 0 {
                continue; // idle empty queue: nothing can happen
            }
            model.arrival_rate = scale * counts[j] as f64;
            let (end, outcome) = model.simulate_epoch(*q, self.config.dt, rng);
            *q = end;
            dropped += outcome.drops;
            served += outcome.served;
        }
        let max_count = counts.iter().copied().max().unwrap_or(0);
        EpochStats {
            drops: dropped as f64 / m as f64,
            dropped,
            completed: served,
            mean_queue_len: queues.iter().map(|q| q.len as f64).sum::<f64>() / m as f64,
            max_share: max_count as f64 / self.config.num_clients.max(1) as f64,
            sojourns: Vec::new(),
        }
    }

    fn name(&self) -> &'static str {
        "ph-aggregate"
    }
}

/// Samples initial joint states: lengths i.i.d. from ν₀, in-service phases
/// from the service law's initial mix `α`.
pub fn sample_initial_ph_queues(
    config: &SystemConfig,
    service: &PhaseType,
    rng: &mut StdRng,
) -> Vec<PhQueueState> {
    crate::episode::sample_initial_queues(config, rng)
        .into_iter()
        .map(|len| PhQueueState { len, phase: if len > 0 { service.sample_phase(rng) } else { 0 } })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateEngine;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_linalg::stats::Summary;
    use rand::SeedableRng;

    fn jsq() -> DecisionRule {
        DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    #[test]
    fn exponential_service_matches_plain_aggregate_engine() {
        // k = 1 PH service is exponential: episode drop totals from the PH
        // engine and the plain aggregate engine must agree statistically.
        let cfg = SystemConfig::paper().with_size(900, 30).with_dt(3.0);
        let ph = PhAggregateEngine::new(cfg.clone(), PhaseType::exponential(1.0));
        let agg = AggregateEngine::new(cfg);
        let policy = FixedRulePolicy::new(jsq(), "JSQ(2)");
        let (mut sa, mut sb) = (Summary::new(), Summary::new());
        let runs = 50;
        for r in 0..runs {
            sa.push(run_episode(&ph, &policy, 15, &mut run_rng(10, r)).total_drops);
            sb.push(run_episode(&agg, &policy, 15, &mut run_rng(20, r)).total_drops);
        }
        let tol = 4.0 * (sa.std_err() + sb.std_err());
        assert!(
            (sa.mean() - sb.mean()).abs() < tol,
            "PH {} vs plain {} (tol {tol})",
            sa.mean(),
            sb.mean()
        );
    }

    #[test]
    fn zero_arrivals_drain_and_clear_phases() {
        let cfg = SystemConfig::paper().with_size(100, 10).with_dt(60.0);
        let engine = PhAggregateEngine::new(cfg, PhaseType::erlang(3, 3.0));
        let mut state = engine.state_from_queues(vec![PhQueueState { len: 5, phase: 1 }; 10]);
        let mut rng = StdRng::seed_from_u64(1);
        let stats = engine.step(&mut state, &DecisionRule::uniform(6, 2), 0.0, &mut rng);
        assert_eq!(stats.drops, 0.0);
        assert!(state.queues().iter().all(|q| q.len == 0 && q.phase == 0), "{:?}", state.queues());
    }

    #[test]
    fn finite_ph_system_tracks_ph_mean_field() {
        // Episode drop totals of a moderately large finite PH system must
        // approach the PH mean-field value (the Theorem-1 story carried to
        // the extension).
        let cfg = SystemConfig::paper().with_size(10_000, 100).with_dt(5.0);
        let service = PhaseType::fit_mean_scv(1.0, 2.0);
        let engine = PhAggregateEngine::new(cfg.clone(), service.clone());
        let policy = FixedRulePolicy::new(jsq(), "JSQ(2)");
        let horizon = 20;
        let mut s = Summary::new();
        for r in 0..40 {
            s.push(run_episode(&engine, &policy, horizon, &mut run_rng(30, r)).total_drops);
        }
        // Mean-field reference on matched random arrival sequences.
        let mdp = mflb_core::PhMeanFieldMdp::new(cfg, service);
        let mut mf = Summary::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..40 {
            mf.push(-mdp.rollout(&policy, horizon, &mut rng).total_return);
        }
        let tol = 4.0 * (s.std_err() + mf.std_err()) + 0.05 * mf.mean().abs();
        assert!(
            (s.mean() - mf.mean()).abs() < tol,
            "finite {} vs mean-field {} (tol {tol})",
            s.mean(),
            mf.mean()
        );
    }

    #[test]
    fn high_scv_service_drops_more_in_finite_system() {
        let cfg = SystemConfig::paper().with_size(2_500, 50).with_dt(5.0);
        let policy = FixedRulePolicy::new(jsq(), "JSQ(2)");
        let mut total = Vec::new();
        for &scv in &[0.25, 4.0] {
            let engine = PhAggregateEngine::new(cfg.clone(), PhaseType::fit_mean_scv(1.0, scv));
            let mut s = Summary::new();
            for r in 0..40 {
                s.push(run_episode(&engine, &policy, 25, &mut run_rng(40, r)).total_drops);
            }
            total.push(s.mean());
        }
        assert!(
            total[0] < total[1],
            "SCV .25 drops {} must be below SCV 4 drops {}",
            total[0],
            total[1]
        );
    }

    #[test]
    fn initial_ph_queues_respect_nu0_and_alpha() {
        let mut cfg = SystemConfig::paper().with_size(100, 2_000);
        cfg.initial_dist = vec![0.5, 0.5, 0.0, 0.0, 0.0, 0.0];
        let service = PhaseType::hyperexponential(&[0.3, 0.7], &[1.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let queues = sample_initial_ph_queues(&cfg, &service, &mut rng);
        let busy = queues.iter().filter(|q| q.len == 1).count();
        assert!((busy as f64 / 2_000.0 - 0.5).abs() < 0.05);
        let phase1 = queues.iter().filter(|q| q.len == 1 && q.phase == 1).count();
        assert!((phase1 as f64 / busy as f64 - 0.7).abs() < 0.06);
        assert!(queues.iter().all(|q| q.len > 0 || q.phase == 0));
    }
}

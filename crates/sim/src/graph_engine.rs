//! The locality-constrained finite-system engine: dispatchers route over
//! a graph [`Topology`] instead of the paper's full mesh.
//!
//! ### Model
//! Every queue `j` hosts a dispatcher whose **accessible set** `A(j)` is
//! its closed neighborhood (itself plus its graph neighbors, size `k` —
//! see [`mflb_core::Topology`]). Each epoch:
//!
//! 1. every client connects to a uniformly random dispatcher (clients are
//!    exchangeable traffic sources, re-mixed every epoch), so the
//!    per-dispatcher client counts are `Multinomial(N, 1/M, …, 1/M)`;
//! 2. each of a dispatcher's clients samples `d` queues uniformly **with
//!    replacement from `A(j)`**, observes their epoch-start (stale)
//!    lengths — the same delayed/staggered information semantics as every
//!    other engine — and draws its destination from the decision rule;
//! 3. every queue runs its exact birth–death CTMC for `Δt` (Alg. 1,
//!    lines 15–19), unchanged.
//!
//! ### Exact aggregation per neighborhood
//! Conditional on the epoch-start lengths, a dispatcher's clients are
//! i.i.d., and a single client routes to the *specific* queue `j ∈ A(i)`
//! with probability `ρ(H_i)[z_j] / k`, where `H_i` is the empirical
//! length distribution of `A(i)` and `ρ` is the Eq. 22 integrand — the
//! same hierarchical argument as [`crate::aggregate::AggregateEngine`],
//! applied to the `k`-queue neighborhood instead of all `M` queues. `H_i`
//! occupies at most `min(k, |Z|)` states, so `ρ` is evaluated by the
//! **sparse-support** sweep
//! ([`mflb_core::per_state_arrival_rates_sparse_into`], cost
//! `|support|^d·d`) whenever the support is smaller than the state space,
//! and by the dense `|Z|^d·d` sweep otherwise — a bit-identical,
//! perf-only cutover. Per-epoch cost is `O(M·(k + min(k,|Z|)^d·d))`,
//! independent of `N`.
//!
//! ### Execution modes
//! [`StepMode::Sequential`] is the original single-stream path: one
//! episode RNG drives the client multinomial, every per-dispatcher draw
//! and every queue CTMC in index order — **byte-identical** to the PR
//! that introduced the engine (pinned in `tests/engine_regression.rs`).
//! [`StepMode::Sharded`] re-keys every stochastic ingredient of an epoch
//! to its own SplitMix64-derived stream (one `epoch_base` draw from the
//! episode RNG per epoch, then per-tree-node home-count splits,
//! per-dispatcher assignment draws, per-queue CTMCs), so the epoch can be
//! stepped shard-by-shard in parallel while staying **bit-identical
//! across any shard size and worker count**: cross-shard routing counts
//! accumulate through relaxed `AtomicU64` adds (integer addition
//! commutes) and per-epoch statistics are merged as integers in
//! shard-index-free form. The mode is auto-selected by system size and
//! can be forced via [`GraphEngine::with_mode`]; the two modes sample the
//! same law but different streams.
//!
//! ### Full mesh ≡ aggregate, bit for bit
//! When the topology's accessible sets cover all `M` queues
//! ([`Topology::is_full_mesh`]), dispatcher identity is irrelevant and
//! the assignment law is exactly the paper's. The engine then takes the
//! [`crate::aggregate`] fast path — the *same* RNG call sequence as
//! [`crate::aggregate::AggregateEngine`], regardless of the configured
//! mode — so a full-mesh graph episode is **bit-identical** to an
//! aggregate-engine episode under the same seed (enforced by
//! `tests/engine_regression.rs` and the sim property suite).

use crate::aggregate::sample_client_assignments_into;
use crate::episode::{
    length_epoch_stats, simulate_birth_death_epoch, stream_rng, Engine, EpochStats,
};
use mflb_core::{
    per_state_arrival_rates_into, per_state_arrival_rates_sparse_into, CsrNeighborhoods,
    DecisionRule, FaultPlan, StateDist, SystemConfig, Topology,
};
use mflb_queue::sampler::Sampler;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stream salts keeping the sharded epoch's three phase families (home
/// counts, per-dispatcher assignment, per-queue service) on disjoint
/// SplitMix64-derived streams.
const SALT_HOME: u64 = 0x9AE1_6A3B_2F90_404F;
const SALT_ASSIGN: u64 = 0xD1B5_4A32_D192_ED03;
const SALT_SERVE: u64 = 0x8CB9_2BA7_2F3D_8DD7;

/// Largest system the constructor keeps on the legacy sequential path by
/// default (small systems gain nothing from sharding, and the sequential
/// stream is the one the pinned regression constants were captured on).
const AUTO_SEQUENTIAL_MAX: usize = 4096;

/// Default contiguous dispatcher range per shard in [`StepMode::Sharded`].
const DEFAULT_SHARD_SIZE: usize = 16_384;

/// Below this many clients a dispatcher draws per-client categorical
/// inversions over its `k`-entry support instead of the `k`-binomial
/// chain — fewer RNG draws when `N/M` is small, same law. The cutoff
/// depends only on the (partition-independent) client count, so it never
/// perturbs cross-shard determinism.
const PER_CLIENT_DRAW_MAX: u64 = 16;

/// How [`GraphEngine`] executes one epoch on a sparse topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMode {
    /// Single-stream path: the episode RNG drives every draw in index
    /// order. Byte-identical to the engine's original (PR 5) behaviour;
    /// auto-selected for systems of at most a few thousand queues.
    Sequential,
    /// Partition-independent derived-stream path: one `epoch_base` draw
    /// per epoch re-keys per-node/per-dispatcher/per-queue streams, so
    /// shards step in parallel and episodes are bit-identical across any
    /// shard size and worker count. Auto-selected for large systems.
    Sharded,
}

/// Episode state of [`GraphEngine`]: queue lengths plus reusable
/// per-epoch scratch (client counts, per-dispatcher counts, neighborhood
/// histogram/rates/probability buffers, and the atomic count lattice the
/// sharded mode accumulates cross-shard routing into).
#[derive(Debug)]
pub struct GraphState {
    queues: Vec<usize>,
    counts: Vec<u64>,
    /// Sharded-mode accumulation target: dispatchers add their routed
    /// clients here with relaxed `fetch_add` (commutative, hence
    /// deterministic under any thread interleaving); drained back to
    /// zero into `counts` before the service pass.
    counts_atomic: Vec<AtomicU64>,
    home_counts: Vec<u64>,
    hist: Vec<f64>,
    rates: Vec<f64>,
    probs: Vec<f64>,
    support: Vec<usize>,
    /// Epochs stepped so far — the engine's clock (`t0 = epoch · Δt`) for
    /// window-based fault lookups. Advances even without a fault plan
    /// (no randomness involved).
    epoch: u64,
    /// Per-queue crash renewal state (`true` = up at interval start);
    /// only consulted when a [`FaultPlan`] is attached.
    fault_up: Vec<bool>,
    /// Per-queue service-rate multipliers of the current epoch (all ones
    /// without a fault plan).
    mult: Vec<f64>,
}

impl Clone for GraphState {
    fn clone(&self) -> Self {
        Self {
            queues: self.queues.clone(),
            counts: self.counts.clone(),
            counts_atomic: self
                .counts_atomic
                .iter()
                .map(|a| AtomicU64::new(a.load(Ordering::Relaxed)))
                .collect(),
            home_counts: self.home_counts.clone(),
            hist: self.hist.clone(),
            rates: self.rates.clone(),
            probs: self.probs.clone(),
            support: self.support.clone(),
            epoch: self.epoch,
            fault_up: self.fault_up.clone(),
            mult: self.mult.clone(),
        }
    }
}

impl GraphState {
    /// Wraps explicit queue lengths (benchmarks and tests). `zs` is the
    /// number of queue states `B + 1`, `k` the accessible-set size.
    pub fn from_queues(queues: Vec<usize>, zs: usize, k: usize) -> Self {
        let m = queues.len();
        Self {
            queues,
            counts: vec![0; m],
            counts_atomic: (0..m).map(|_| AtomicU64::new(0)).collect(),
            home_counts: vec![0; m],
            hist: vec![0.0; zs],
            rates: vec![0.0; zs],
            probs: vec![0.0; k],
            support: Vec::with_capacity(zs),
            epoch: 0,
            fault_up: vec![true; m],
            mult: vec![1.0; m],
        }
    }

    /// Current queue lengths.
    pub fn queues(&self) -> &[usize] {
        &self.queues
    }
}

/// Locality-constrained epoch executor over a graph topology.
#[derive(Debug, Clone)]
pub struct GraphEngine {
    config: SystemConfig,
    topology: Topology,
    /// CSR closed neighborhoods (`None` on the full-mesh fast path, which
    /// never consults them).
    csr: Option<CsrNeighborhoods>,
    /// Accessible-set size.
    k: usize,
    /// Whether the accessible sets cover all `M` queues (aggregate fast
    /// path, bit-identical RNG stream).
    full_mesh: bool,
    /// Epoch execution mode (see [`StepMode`]).
    mode: StepMode,
    /// Contiguous dispatcher range per shard in sharded mode.
    shard_size: usize,
    /// Worker threads for sharded stepping (`0` = one per available
    /// core). Never affects results — only wall-clock.
    workers: usize,
    /// Deterministic fault plan (`None` = pristine engine; empty plans
    /// are normalized to `None` so they cannot perturb any stream).
    faults: Option<FaultPlan>,
}

impl GraphEngine {
    /// Creates the engine for a validated configuration and topology.
    ///
    /// Systems with at most a few thousand queues start in
    /// [`StepMode::Sequential`] (the pinned legacy stream); larger ones
    /// in [`StepMode::Sharded`]. Override with [`GraphEngine::with_mode`].
    ///
    /// # Panics
    /// Panics if the configuration or topology is invalid — construct via
    /// [`crate::Scenario::build`] for an `Err`-reporting path.
    pub fn new(config: SystemConfig, topology: Topology) -> Self {
        config.validate().expect("invalid system configuration");
        let m = config.num_queues;
        topology.validate(m).expect("invalid topology");
        let full_mesh = topology.is_full_mesh(m);
        let (csr, k) = if full_mesh {
            (None, m)
        } else {
            let csr = topology.csr(m).expect("validated topology must materialize");
            let k = csr.neighborhood_size();
            (Some(csr), k)
        };
        let mode = if full_mesh || m <= AUTO_SEQUENTIAL_MAX {
            StepMode::Sequential
        } else {
            StepMode::Sharded
        };
        Self {
            config,
            topology,
            csr,
            k,
            full_mesh,
            mode,
            shard_size: DEFAULT_SHARD_SIZE,
            workers: 0,
            faults: None,
        }
    }

    /// Attaches a deterministic [`FaultPlan`]. Empty plans are dropped so
    /// a fault-free engine stays bit-identical to one never handed a
    /// plan; faulted epochs key their crash/straggler streams off one
    /// extra `epoch_base` draw (sequential mode) or the existing sharded
    /// epoch base, so they stay bit-identical across shard/worker counts.
    ///
    /// # Panics
    /// Panics on an invalid plan — construct via [`crate::Scenario::build`]
    /// for an `Err`-reporting path.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        plan.validate_for(self.config.num_queues).expect("invalid fault plan");
        self.faults = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Forces the epoch execution mode (no-op on the full-mesh fast path,
    /// which always follows the aggregate engine's stream).
    pub fn with_mode(mut self, mode: StepMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the contiguous dispatcher range per shard (≥ 1). Sharded
    /// episodes are bit-identical for **any** shard size; this knob only
    /// trades scheduling granularity against per-shard overhead.
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Sets the sharded-mode worker-thread count (`0` = one per available
    /// core). Results are bit-identical for any value.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The epoch execution mode in force.
    pub fn mode(&self) -> StepMode {
        self.mode
    }

    /// The topology in force.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accessible-set size `k` (equals `M` on the full-mesh fast path).
    pub fn neighborhood_size(&self) -> usize {
        self.k
    }

    /// The closed neighborhood `A(node)` (own queue first, CSR row).
    /// Empty slice on the full-mesh fast path, where `A(node)` is
    /// implicitly all queues.
    pub fn neighborhood(&self, node: usize) -> &[u32] {
        match &self.csr {
            Some(csr) => csr.row(node),
            None => &[],
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// Samples the assignments of `clients` clients connected to one
    /// dispatcher, **adding** the resulting counts into `counts` (exposed
    /// for the locality property tests: counts outside
    /// [`GraphEngine::neighborhood`]`(node)` are never touched). This is
    /// the **sequential-stream** form, drawing from the caller's RNG.
    ///
    /// # Panics
    /// Panics on the full-mesh fast path, which has no per-dispatcher
    /// assignment stage.
    pub fn sample_node_assignments(
        &self,
        node: usize,
        clients: u64,
        queues: &[usize],
        rule: &DecisionRule,
        rng: &mut StdRng,
        counts: &mut [u64],
    ) {
        assert!(!self.full_mesh, "full-mesh fast path has no per-node stage");
        let zs = self.config.num_states();
        let mut hist = vec![0.0; zs];
        let mut rates = vec![0.0; zs];
        let mut probs = vec![0.0; self.k];
        let mut support = Vec::with_capacity(zs);
        self.node_probs(node, queues, rule, &mut hist, &mut rates, &mut probs, &mut support);
        let row = self.csr.as_ref().expect("sparse path").row(node);
        multinomial_add_into(rng, clients, &probs, row, counts);
    }

    /// Sharded-stream counterpart of
    /// [`GraphEngine::sample_node_assignments`]: draws dispatcher
    /// `node`'s assignments from its `(epoch_base, node)`-derived stream —
    /// the exact stream the sharded epoch uses, independent of which
    /// shard or worker processes the node (exposed for the shard
    /// determinism and locality property tests).
    pub fn sample_node_assignments_sharded(
        &self,
        node: usize,
        clients: u64,
        queues: &[usize],
        rule: &DecisionRule,
        epoch_base: u64,
        counts: &mut [u64],
    ) {
        assert!(!self.full_mesh, "full-mesh fast path has no per-node stage");
        let zs = self.config.num_states();
        let mut hist = vec![0.0; zs];
        let mut rates = vec![0.0; zs];
        let mut probs = vec![0.0; self.k];
        let mut support = Vec::with_capacity(zs);
        self.node_probs(node, queues, rule, &mut hist, &mut rates, &mut probs, &mut support);
        let row = self.csr.as_ref().expect("sparse path").row(node);
        sharded_assign_draws(node, clients, &probs, row, epoch_base, |j, c| {
            counts[j] += c;
        });
    }

    /// Builds dispatcher `node`'s neighborhood histogram `H_i`, its
    /// occupied support, the per-state rates `ρ(H_i)` (sparse/dense
    /// cutover — bit-identical either way) and the routing probabilities
    /// `probs[t] = ρ[z_{A(i)_t}]/k`.
    #[allow(clippy::too_many_arguments)]
    fn node_probs(
        &self,
        node: usize,
        queues: &[usize],
        rule: &DecisionRule,
        hist: &mut [f64],
        rates: &mut [f64],
        probs: &mut [f64],
        support: &mut Vec<usize>,
    ) {
        let row = self.csr.as_ref().expect("sparse path").row(node);
        let k = self.k;
        // Empirical length distribution of the accessible set.
        hist.iter_mut().for_each(|h| *h = 0.0);
        support.clear();
        for &j in row {
            let z = queues[j as usize];
            if hist[z] == 0.0 {
                support.push(z);
            }
            hist[z] += 1.0;
        }
        let inv_k = 1.0 / k as f64;
        hist.iter_mut().for_each(|h| *h *= inv_k);
        support.sort_unstable();
        // ρ(H_i)[z] = k · (specific-queue pick probability for state z);
        // Σ_j ρ[z_j]/k = Σ_z H_i(z)·ρ[z] = 1 exactly (thinning identity).
        // The sparse sweep visits only the ≤ min(k,|Z|) occupied states
        // and is bit-identical to the dense one on them, so the cutover
        // cannot shift any downstream draw.
        if support.len() < hist.len() {
            per_state_arrival_rates_sparse_into(hist, support, rule, 1.0, rates);
        } else {
            per_state_arrival_rates_into(hist, rule, 1.0, rates);
        }
        for (t, &j) in row.iter().enumerate() {
            probs[t] = rates[queues[j as usize]] * inv_k;
        }
    }

    /// Samples the per-queue client counts for one epoch (exposed for the
    /// engine-agreement and conservation tests). Follows the engine's
    /// configured mode: the sequential stream consumes the caller's RNG
    /// draw-by-draw; the sharded stream consumes exactly one `u64` from
    /// it (the epoch base).
    pub fn sample_assignments(
        &self,
        queues: &[usize],
        rule: &DecisionRule,
        rng: &mut StdRng,
    ) -> Vec<u64> {
        let mut state = GraphState::from_queues(queues.to_vec(), self.config.num_states(), self.k);
        self.sample_assignments_into(rule, rng, &mut state);
        state.counts
    }

    fn sample_assignments_into(
        &self,
        rule: &DecisionRule,
        rng: &mut StdRng,
        state: &mut GraphState,
    ) {
        let GraphState {
            queues,
            counts,
            counts_atomic,
            home_counts,
            hist,
            rates,
            probs,
            support,
            ..
        } = state;
        if self.full_mesh {
            // Dispatcher identity is irrelevant when every accessible set
            // covers all M queues: take the aggregate engine's exact
            // hierarchical-multinomial path — same law, same RNG stream.
            sample_client_assignments_into(
                self.config.num_clients,
                self.config.buffer,
                queues,
                rule,
                rng,
                counts,
            );
            return;
        }
        match self.mode {
            StepMode::Sequential => {
                counts.iter_mut().for_each(|c| *c = 0);
                // 1. Clients → dispatchers, Multinomial(N, uniform).
                let m = queues.len();
                let uniform = 1.0 / m as f64;
                let mut remaining_n = self.config.num_clients;
                let mut remaining_mass = 1.0f64;
                for (i, h) in home_counts.iter_mut().enumerate() {
                    if remaining_n == 0 {
                        *h = 0;
                        continue;
                    }
                    let cond =
                        if i + 1 == m { 1.0 } else { (uniform / remaining_mass).clamp(0.0, 1.0) };
                    let c = Sampler::binomial(rng, remaining_n, cond);
                    *h = c;
                    remaining_n -= c;
                    remaining_mass -= uniform;
                }
                // 2. Per dispatcher: exact multinomial over its neighborhood.
                for i in 0..m {
                    if home_counts[i] == 0 {
                        continue;
                    }
                    self.node_probs(i, queues, rule, hist, rates, probs, support);
                    let row = self.csr.as_ref().expect("sparse path").row(i);
                    multinomial_add_into(rng, home_counts[i], probs, row, counts);
                }
            }
            StepMode::Sharded => {
                let epoch_base: u64 = rng.gen();
                self.run_assignment_pass(queues, home_counts, counts_atomic, rule, epoch_base);
                for (c, a) in counts.iter_mut().zip(counts_atomic.iter()) {
                    *c = a.swap(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Sharded phase 1+2: per-shard home counts (dyadic multinomial
    /// splitting) followed by per-dispatcher assignment draws, with
    /// routed counts accumulated into the atomic lattice. Shards are
    /// distributed round-robin over workers; every draw comes from an
    /// `(epoch_base, entity)`-derived stream, so the outcome is
    /// independent of the shard/worker partition.
    fn run_assignment_pass(
        &self,
        queues: &[usize],
        home_counts: &mut [u64],
        counts_atomic: &[AtomicU64],
        rule: &DecisionRule,
        epoch_base: u64,
    ) {
        let shard = self.shard_size.max(1);
        let num_shards = home_counts.len().div_ceil(shard);
        let workers = self.effective_workers().clamp(1, num_shards.max(1));
        if workers == 1 {
            for (s, home) in home_counts.chunks_mut(shard).enumerate() {
                self.shard_assignment_pass(
                    s * shard,
                    home,
                    queues,
                    counts_atomic,
                    rule,
                    epoch_base,
                );
            }
            return;
        }
        let mut buckets: Vec<Vec<(usize, &mut [u64])>> = (0..workers).map(|_| Vec::new()).collect();
        for (s, home) in home_counts.chunks_mut(shard).enumerate() {
            buckets[s % workers].push((s * shard, home));
        }
        crossbeam::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move |_| {
                    for (start, home) in bucket {
                        self.shard_assignment_pass(
                            start,
                            home,
                            queues,
                            counts_atomic,
                            rule,
                            epoch_base,
                        );
                    }
                });
            }
        })
        .expect("assignment worker panicked");
    }

    /// Phase 1+2 for one shard `[start, start + home.len())`.
    fn shard_assignment_pass(
        &self,
        start: usize,
        home: &mut [u64],
        queues: &[usize],
        counts_atomic: &[AtomicU64],
        rule: &DecisionRule,
        epoch_base: u64,
    ) {
        let m = self.config.num_queues;
        dyadic_home_counts(
            epoch_base,
            self.config.num_clients,
            0,
            m,
            start,
            start + home.len(),
            home,
        );
        let zs = self.config.num_states();
        let mut hist = vec![0.0; zs];
        let mut rates = vec![0.0; zs];
        let mut probs = vec![0.0; self.k];
        let mut support = Vec::with_capacity(zs);
        let csr = self.csr.as_ref().expect("sparse path");
        for (off, &clients) in home.iter().enumerate() {
            if clients == 0 {
                continue;
            }
            let node = start + off;
            self.node_probs(node, queues, rule, &mut hist, &mut rates, &mut probs, &mut support);
            sharded_assign_draws(node, clients, &probs, csr.row(node), epoch_base, |j, c| {
                counts_atomic[j].fetch_add(c, Ordering::Relaxed);
            });
        }
    }

    /// Sharded phase 3: drain the atomic counts, run every queue's CTMC
    /// from its `(epoch_base, queue)`-derived stream, and merge the
    /// integer drop/serve totals (order-free).
    fn run_service_pass(
        &self,
        queues: &mut [usize],
        counts: &mut [u64],
        counts_atomic: &[AtomicU64],
        scale: f64,
        mult: &[f64],
        epoch_base: u64,
    ) -> (u64, u64) {
        let shard = self.shard_size.max(1);
        let num_shards = queues.len().div_ceil(shard);
        let workers = self.effective_workers().clamp(1, num_shards.max(1));
        if workers == 1 {
            let (mut dropped, mut served) = (0u64, 0u64);
            for (s, (qs, cs)) in queues.chunks_mut(shard).zip(counts.chunks_mut(shard)).enumerate()
            {
                let (d, sv) = self.shard_service_pass(
                    s * shard,
                    qs,
                    cs,
                    counts_atomic,
                    scale,
                    mult,
                    epoch_base,
                );
                dropped += d;
                served += sv;
            }
            return (dropped, served);
        }
        // A shard's work item: (first queue index, queue states, counts).
        type ShardItem<'a> = (usize, &'a mut [usize], &'a mut [u64]);
        let mut buckets: Vec<Vec<ShardItem>> = (0..workers).map(|_| Vec::new()).collect();
        for (s, (qs, cs)) in queues.chunks_mut(shard).zip(counts.chunks_mut(shard)).enumerate() {
            buckets[s % workers].push((s * shard, qs, cs));
        }
        let (mut dropped, mut served) = (0u64, 0u64);
        crossbeam::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move |_| {
                        let (mut d, mut sv) = (0u64, 0u64);
                        for (start, qs, cs) in bucket {
                            let (bd, bs) = self.shard_service_pass(
                                start,
                                qs,
                                cs,
                                counts_atomic,
                                scale,
                                mult,
                                epoch_base,
                            );
                            d += bd;
                            sv += bs;
                        }
                        (d, sv)
                    })
                })
                .collect();
            for h in handles {
                let (d, sv) = h.join().expect("service worker panicked");
                dropped += d;
                served += sv;
            }
        })
        .expect("service worker panicked");
        (dropped, served)
    }

    /// Phase 3 for one shard `[start, start + queues.len())`. `mult` is
    /// the (epoch-wide, shard-independent) per-queue service multiplier
    /// lattice — exactly `1.0` everywhere without a fault plan, which
    /// leaves the service rate bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn shard_service_pass(
        &self,
        start: usize,
        queues: &mut [usize],
        counts: &mut [u64],
        counts_atomic: &[AtomicU64],
        scale: f64,
        mult: &[f64],
        epoch_base: u64,
    ) -> (u64, u64) {
        let (mut dropped, mut served) = (0u64, 0u64);
        for (off, (q, c)) in queues.iter_mut().zip(counts.iter_mut()).enumerate() {
            let j = start + off;
            let cj = counts_atomic[j].swap(0, Ordering::Relaxed);
            *c = cj;
            if cj == 0 && *q == 0 {
                continue; // idle empty queue: nothing can happen
            }
            let mut rng = stream_rng(epoch_base, SALT_SERVE, j as u64);
            let model = mflb_queue::BirthDeathQueue::new(
                scale * cj as f64,
                self.config.service_rate * mult[j],
                self.config.buffer,
            );
            let outcome = model.simulate_epoch(*q, self.config.dt, &mut rng);
            *q = outcome.final_state;
            dropped += outcome.drops;
            served += outcome.served;
        }
        (dropped, served)
    }

    /// One sharded epoch: a single `epoch_base` draw from the episode RNG
    /// re-keys all phase streams; both passes run shard-parallel. Fault
    /// multipliers ride the same epoch base (computed once, serially),
    /// so faulted sharded episodes stay bit-identical across any shard
    /// size and worker count.
    fn step_sharded(
        &self,
        state: &mut GraphState,
        rule: &DecisionRule,
        lambda: f64,
        t0: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        let epoch_base: u64 = rng.gen();
        let lambda = self.apply_faults(state, epoch_base, t0, lambda);
        let GraphState { queues, counts, counts_atomic, home_counts, mult, .. } = state;
        self.run_assignment_pass(queues, home_counts, counts_atomic, rule, epoch_base);
        let m = queues.len();
        let scale = m as f64 * lambda / self.config.num_clients as f64;
        let (dropped, served) =
            self.run_service_pass(queues, counts, counts_atomic, scale, mult, epoch_base);
        length_epoch_stats(queues, counts, self.config.num_clients, dropped, served)
    }

    /// Advances the per-queue fault state for the interval `[t0, t0+Δt)`
    /// under `epoch_base`, filling `state.mult`, and returns the
    /// (overload-scaled) arrival rate. No-op returning `lambda` untouched
    /// when no plan is attached.
    fn apply_faults(&self, state: &mut GraphState, epoch_base: u64, t0: f64, lambda: f64) -> f64 {
        let Some(plan) = &self.faults else { return lambda };
        if plan.has_service_faults() {
            let dt = self.config.dt;
            for (j, (up, mult)) in state.fault_up.iter_mut().zip(state.mult.iter_mut()).enumerate()
            {
                *mult = plan.service_multiplier(up, epoch_base, j, t0, dt);
            }
        }
        lambda * plan.arrival_factor(t0, self.config.dt)
    }
}

/// Writes the `Multinomial(N, uniform)` home counts for dispatchers in
/// `[a, b)` into `out` by descending a **fixed dyadic splitting tree**
/// over `[lo, hi)`: each internal node draws `Binomial(n, left/width)`
/// from its own `(epoch_base, node)`-derived stream to split its client
/// mass between halves. The tree shape depends only on `M`, so every
/// shard recomputes the `O(log M)` ancestors of its range plus its own
/// subtree and gets counts that are **independent of the shard
/// partition** — the key to bit-identical episodes across shard sizes.
fn dyadic_home_counts(
    epoch_base: u64,
    clients: u64,
    lo: usize,
    hi: usize,
    a: usize,
    b: usize,
    out: &mut [u64],
) {
    if hi <= a || lo >= b {
        return; // subtree entirely outside the shard
    }
    if hi - lo == 1 {
        out[lo - a] = clients;
        return;
    }
    if clients == 0 {
        out[lo.max(a) - a..hi.min(b) - a].iter_mut().for_each(|h| *h = 0);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let p = (mid - lo) as f64 / (hi - lo) as f64;
    // (lo, hi) identifies the tree node; hi ≤ M < 2³² cannot collide.
    let key = ((lo as u64) << 32).wrapping_add(hi as u64);
    let mut rng = stream_rng(epoch_base, SALT_HOME, key);
    let left = Sampler::binomial(&mut rng, clients, p);
    dyadic_home_counts(epoch_base, left, lo, mid, a, b, out);
    dyadic_home_counts(epoch_base, clients - left, mid, hi, a, b, out);
}

/// Draws one dispatcher's `Multinomial(clients, probs)` from its
/// `(epoch_base, node)`-derived stream and feeds nonzero category counts
/// to `add(queue, count)`. Small client batches use per-client categorical
/// inversion over the `k`-entry support (the "cumulative sampling over the
/// nonzero support" of the sparse design — cheaper than `k` binomials
/// when `N/M` is small); larger ones the conditional-binomial chain. The
/// branch depends only on `clients`, never on the partition.
fn sharded_assign_draws(
    node: usize,
    clients: u64,
    probs: &[f64],
    targets: &[u32],
    epoch_base: u64,
    mut add: impl FnMut(usize, u64),
) {
    debug_assert_eq!(probs.len(), targets.len());
    let mut rng = stream_rng(epoch_base, SALT_ASSIGN, node as u64);
    if clients <= PER_CLIENT_DRAW_MAX {
        for _ in 0..clients {
            let t = categorical_positive(&mut rng, probs);
            add(targets[t] as usize, 1);
        }
        return;
    }
    let mut remaining_n = clients;
    let mut remaining_mass: f64 = probs.iter().sum();
    for (t, &p) in probs.iter().enumerate() {
        if remaining_n == 0 {
            break;
        }
        let c = if t + 1 == probs.len() || (p > 0.0 && remaining_mass <= p) {
            remaining_n
        } else {
            Sampler::binomial(&mut rng, remaining_n, (p / remaining_mass).clamp(0.0, 1.0))
        };
        if c > 0 {
            add(targets[t] as usize, c);
        }
        remaining_n -= c;
        remaining_mass -= p;
    }
    debug_assert_eq!(remaining_n, 0, "every client must land in the neighborhood");
}

/// Inversion sample over an unnormalized pmf that never lands on a
/// zero-probability category (floating-point slack falls back to the
/// last *positive* entry, mirroring [`multinomial_add_into`]'s absorb
/// rule).
fn categorical_positive(rng: &mut StdRng, pmf: &[f64]) -> usize {
    let total: f64 = pmf.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    let mut last_positive = 0usize;
    for (t, &p) in pmf.iter().enumerate() {
        if p > 0.0 {
            last_positive = t;
            u -= p;
            if u <= 0.0 {
                return t;
            }
        }
    }
    last_positive
}

/// Samples `Multinomial(n, probs)` by conditional binomials and **adds**
/// the category counts onto `counts[targets[t]]`. `probs` must sum to 1
/// (up to floating-point drift; the last category — and any earlier
/// positive-probability category the drifted residual mass has shrunk to —
/// absorbs everyone left, so all `n` trials always land).
fn multinomial_add_into(
    rng: &mut StdRng,
    n: u64,
    probs: &[f64],
    targets: &[u32],
    counts: &mut [u64],
) {
    debug_assert_eq!(probs.len(), targets.len());
    let mut remaining_n = n;
    let mut remaining_mass: f64 = probs.iter().sum();
    for (t, &p) in probs.iter().enumerate() {
        if remaining_n == 0 {
            break;
        }
        // FP subtraction is not exact, so neither `remaining_mass <= p` at
        // the last positive category nor a nonpositive residual can be
        // relied on alone: the last index must absorb unconditionally
        // (else drift above p_last strands clients), and an early absorb
        // must require p > 0 (else drift below zero dumps clients on a
        // zero-probability neighbor).
        let c = if t + 1 == probs.len() || (p > 0.0 && remaining_mass <= p) {
            remaining_n
        } else {
            Sampler::binomial(rng, remaining_n, (p / remaining_mass).clamp(0.0, 1.0))
        };
        counts[targets[t] as usize] += c;
        remaining_n -= c;
        remaining_mass -= p;
    }
    debug_assert_eq!(remaining_n, 0, "every client must land in the neighborhood");
}

impl Engine for GraphEngine {
    type State = GraphState;

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn init_state(&self, rng: &mut StdRng) -> GraphState {
        GraphState::from_queues(
            crate::episode::sample_initial_queues(&self.config, rng),
            self.config.num_states(),
            self.k,
        )
    }

    fn empirical(&self, state: &GraphState) -> StateDist {
        StateDist::empirical(&state.queues, self.config.buffer)
    }

    fn step(
        &self,
        state: &mut GraphState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        debug_assert_eq!(state.queues.len(), self.config.num_queues);
        let t0 = state.epoch as f64 * self.config.dt;
        state.epoch += 1;
        if !self.full_mesh && self.mode == StepMode::Sharded {
            return self.step_sharded(state, rule, lambda, t0, rng);
        }
        // A faulted sequential (or full-mesh) epoch draws one extra
        // `epoch_base` for the crash/straggler streams *before* any other
        // randomness; a fault-free engine never reaches this draw, so the
        // pinned legacy streams are untouched.
        let lambda = match &self.faults {
            Some(_) => {
                let epoch_base: u64 = rng.gen();
                self.apply_faults(state, epoch_base, t0, lambda)
            }
            None => lambda,
        };
        self.sample_assignments_into(rule, rng, state);
        let GraphState { queues, counts, mult, .. } = state;
        let m = queues.len();
        let scale = m as f64 * lambda / self.config.num_clients as f64;
        let (dropped, served) = simulate_birth_death_epoch(
            queues,
            counts,
            scale,
            &|j| self.config.service_rate * mult[j],
            self.config.buffer,
            self.config.dt,
            rng,
        );
        length_epoch_stats(queues, counts, self.config.num_clients, dropped, served)
    }

    fn name(&self) -> &'static str {
        "graph"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateEngine;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use rand::SeedableRng;

    fn jsq_rule() -> DecisionRule {
        DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    #[test]
    fn counts_sum_to_n_on_sparse_topologies() {
        let cfg = SystemConfig::paper().with_size(10_000, 36);
        for top in [
            Topology::Ring { radius: 1 },
            Topology::Ring { radius: 3 },
            Topology::Torus { radius: 1 },
            Topology::RandomRegular { degree: 4, seed: 3 },
        ] {
            for mode in [StepMode::Sequential, StepMode::Sharded] {
                let engine = GraphEngine::new(cfg.clone(), top.clone()).with_mode(mode);
                let queues: Vec<usize> = (0..36).map(|j| j % 6).collect();
                let mut rng = StdRng::seed_from_u64(1);
                for rule in [DecisionRule::uniform(6, 2), jsq_rule()] {
                    let counts = engine.sample_assignments(&queues, &rule, &mut rng);
                    assert_eq!(counts.iter().sum::<u64>(), 10_000, "{top:?} {mode:?}");
                }
            }
        }
    }

    #[test]
    fn node_assignments_stay_in_the_neighborhood() {
        let cfg = SystemConfig::paper().with_size(5_000, 20);
        let engine = GraphEngine::new(cfg, Topology::Ring { radius: 2 });
        let queues: Vec<usize> = (0..20).map(|j| (j * 3) % 6).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u64; 20];
        engine.sample_node_assignments(7, 1_000, &queues, &jsq_rule(), &mut rng, &mut counts);
        assert_eq!(counts.iter().sum::<u64>(), 1_000);
        let mut sharded = vec![0u64; 20];
        engine.sample_node_assignments_sharded(7, 1_000, &queues, &jsq_rule(), 99, &mut sharded);
        assert_eq!(sharded.iter().sum::<u64>(), 1_000);
        let nbrs = engine.neighborhood(7);
        for j in 0..20u32 {
            if !nbrs.contains(&j) {
                assert_eq!(counts[j as usize], 0, "queue {j} is outside A(7) = {nbrs:?}");
                assert_eq!(sharded[j as usize], 0, "queue {j} is outside A(7) = {nbrs:?}");
            }
        }
    }

    #[test]
    fn full_mesh_episode_is_bit_identical_to_aggregate() {
        let cfg = SystemConfig::paper().with_size(900, 30).with_dt(3.0);
        let graph = GraphEngine::new(cfg.clone(), Topology::FullMesh);
        let agg = AggregateEngine::new(cfg);
        let policy = FixedRulePolicy::new(jsq_rule(), "JSQ(2)");
        let a = run_episode(&graph, &policy, 15, &mut run_rng(9, 0));
        let b = run_episode(&agg, &policy, 15, &mut run_rng(9, 0));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
        assert_eq!(a.mean_queue_len, b.mean_queue_len);
        assert_eq!(a.lambda_trace, b.lambda_trace);
    }

    #[test]
    fn covering_ring_takes_the_full_mesh_fast_path_too() {
        // 2·radius + 1 = M: the ring is a full mesh in disguise and must
        // take the bit-identical aggregate path.
        let cfg = SystemConfig::paper().with_size(200, 9).with_dt(2.0);
        let ring = GraphEngine::new(cfg.clone(), Topology::Ring { radius: 4 });
        let agg = AggregateEngine::new(cfg);
        let policy = FixedRulePolicy::new(jsq_rule(), "JSQ(2)");
        let a = run_episode(&ring, &policy, 10, &mut run_rng(3, 1));
        let b = run_episode(&agg, &policy, 10, &mut run_rng(3, 1));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
    }

    #[test]
    fn ring_episode_runs_and_accumulates() {
        let cfg = SystemConfig::paper().with_size(400, 20).with_dt(2.0);
        let engine = GraphEngine::new(cfg.clone(), Topology::Ring { radius: 2 });
        let policy = FixedRulePolicy::new(DecisionRule::uniform(6, 2), "RND");
        let out = run_episode(&engine, &policy, 20, &mut run_rng(7, 0));
        assert_eq!(out.drops_per_epoch.len(), 20);
        assert!(out.total_drops >= 0.0);
        assert!(out.max_share_per_epoch.iter().all(|&s| (0.0..=1.0).contains(&s)));
        assert!((out.jobs_dropped as f64 / 20.0 - out.total_drops).abs() < 1e-9);
    }

    #[test]
    fn seeded_ring_episodes_reproduce() {
        let cfg = SystemConfig::paper().with_size(400, 20).with_dt(2.0);
        let engine = GraphEngine::new(cfg, Topology::RandomRegular { degree: 4, seed: 5 });
        let policy = FixedRulePolicy::new(jsq_rule(), "JSQ(2)");
        let a = run_episode(&engine, &policy, 10, &mut run_rng(11, 3));
        let b = run_episode(&engine, &policy, 10, &mut run_rng(11, 3));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
    }

    #[test]
    fn sharded_episodes_are_bit_identical_across_shard_and_worker_counts() {
        // The sharded stream's defining property: the (shard size, worker
        // count) pair is pure execution detail. One shard on one thread,
        // many tiny shards on one thread, and many shards on many threads
        // must produce byte-identical episodes.
        let cfg = SystemConfig::paper().with_size(2_000, 60).with_dt(2.0);
        let policy = FixedRulePolicy::new(jsq_rule(), "JSQ(2)");
        let base = GraphEngine::new(cfg.clone(), Topology::Ring { radius: 2 })
            .with_mode(StepMode::Sharded);
        let reference = run_episode(
            &base.clone().with_shard_size(1 << 20).with_workers(1),
            &policy,
            12,
            &mut run_rng(21, 0),
        );
        for (shard_size, workers) in [(7usize, 1usize), (16, 3), (1, 4), (60, 2)] {
            let engine = base.clone().with_shard_size(shard_size).with_workers(workers);
            let out = run_episode(&engine, &policy, 12, &mut run_rng(21, 0));
            assert_eq!(
                out.drops_per_epoch, reference.drops_per_epoch,
                "shard_size={shard_size} workers={workers}"
            );
            assert_eq!(out.mean_queue_len, reference.mean_queue_len);
            assert_eq!(out.max_share_per_epoch, reference.max_share_per_epoch);
            assert_eq!(out.jobs_completed, reference.jobs_completed);
        }
    }

    #[test]
    fn sequential_and_sharded_agree_in_law() {
        // Different streams, same distribution: long-run per-queue count
        // means under RND must match λ·N/M for both modes, and the two
        // modes' empirical means must agree with each other.
        let cfg = SystemConfig::paper().with_size(4_000, 36);
        let top = Topology::Torus { radius: 1 };
        let seq = GraphEngine::new(cfg.clone(), top.clone()).with_mode(StepMode::Sequential);
        let sha = GraphEngine::new(cfg, top).with_mode(StepMode::Sharded).with_shard_size(13);
        let queues: Vec<usize> = (0..36).map(|j| (j * 7) % 6).collect();
        let rule = jsq_rule();
        let reps = 200;
        let (mut rng_a, mut rng_b) = (StdRng::seed_from_u64(8), StdRng::seed_from_u64(9));
        let (mut tot_seq, mut tot_sha) = (0u64, 0u64);
        for _ in 0..reps {
            tot_seq += seq.sample_assignments(&queues, &rule, &mut rng_a)[0];
            tot_sha += sha.sample_assignments(&queues, &rule, &mut rng_b)[0];
        }
        let (mean_seq, mean_sha) = (tot_seq as f64 / reps as f64, tot_sha as f64 / reps as f64);
        assert!(
            (mean_seq - mean_sha).abs() < 0.1 * mean_seq.max(1.0),
            "mode laws must agree: sequential {mean_seq} vs sharded {mean_sha}"
        );
    }

    #[test]
    fn rnd_marginals_match_the_mesh_but_jsq_localizes() {
        // Under RND, locality is invisible in law (each client lands on a
        // uniformly random queue either way): per-queue count means match
        // the aggregate engine's. Under JSQ they must differ, because a
        // locally short queue only attracts its own neighborhood.
        let cfg = SystemConfig::paper().with_size(4_000, 10);
        let ring = GraphEngine::new(cfg.clone(), Topology::Ring { radius: 1 });
        let agg = AggregateEngine::new(cfg);
        // Queue 0 is the unique empty queue; the rest are full.
        let mut queues = vec![5usize; 10];
        queues[0] = 0;
        let reps = 300;
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(4);
        let (mut rnd_ring, mut rnd_agg, mut jsq_ring, mut jsq_agg) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..reps {
            rnd_ring +=
                ring.sample_assignments(&queues, &DecisionRule::uniform(6, 2), &mut rng_a)[0];
            rnd_agg += agg.sample_assignments(&queues, &DecisionRule::uniform(6, 2), &mut rng_b)[0];
            jsq_ring += ring.sample_assignments(&queues, &jsq_rule(), &mut rng_a)[0];
            jsq_agg += agg.sample_assignments(&queues, &jsq_rule(), &mut rng_b)[0];
        }
        let (rnd_ring, rnd_agg) = (rnd_ring as f64 / reps as f64, rnd_agg as f64 / reps as f64);
        let (jsq_ring, jsq_agg) = (jsq_ring as f64 / reps as f64, jsq_agg as f64 / reps as f64);
        assert!(
            (rnd_ring - rnd_agg).abs() < 0.05 * rnd_agg,
            "RND means must agree: ring {rnd_ring} vs mesh {rnd_agg}"
        );
        // Mesh JSQ: every client seeing queue 0 routes there, P = 1−(9/10)²
        // = 0.19 → ≈760 clients. Ring: only the 3 neighborhoods containing
        // queue 0 can reach it (1200 clients, each P = 1−(2/3)² = 5/9)
        // → ≈667. The catchment cap must show up well beyond noise.
        assert!(
            jsq_ring < 0.93 * jsq_agg,
            "locality must cap the herd: ring {jsq_ring} vs mesh {jsq_agg}"
        );
    }

    #[test]
    fn zero_arrival_rate_only_drains_in_both_modes() {
        for mode in [StepMode::Sequential, StepMode::Sharded] {
            let cfg = SystemConfig::paper().with_size(100, 10).with_dt(50.0);
            let engine = GraphEngine::new(cfg, Topology::Ring { radius: 1 }).with_mode(mode);
            let mut state = GraphState::from_queues(vec![5usize; 10], 6, 3);
            let mut rng = StdRng::seed_from_u64(5);
            let stats = engine.step(&mut state, &DecisionRule::uniform(6, 2), 0.0, &mut rng);
            assert_eq!(stats.drops, 0.0, "{mode:?}");
            assert!(
                state.queues().iter().all(|&z| z == 0),
                "queues must drain ({mode:?}): {:?}",
                state.queues()
            );
        }
    }

    #[test]
    fn large_systems_auto_select_sharded_mode_and_small_ones_do_not() {
        let small = GraphEngine::new(
            SystemConfig::paper().with_size(400, 100),
            Topology::Ring { radius: 2 },
        );
        assert_eq!(small.mode(), StepMode::Sequential);
        let large = GraphEngine::new(
            SystemConfig::paper().with_size(40_000, 10_000),
            Topology::Ring { radius: 2 },
        );
        assert_eq!(large.mode(), StepMode::Sharded);
    }

    #[test]
    fn dyadic_home_counts_are_partition_independent_and_conserving() {
        let (m, n, base) = (37usize, 10_000u64, 0xFEED_u64);
        let mut whole = vec![0u64; m];
        dyadic_home_counts(base, n, 0, m, 0, m, &mut whole);
        assert_eq!(whole.iter().sum::<u64>(), n);
        // Recompute each sub-range independently: identical counts.
        for (a, b) in [(0usize, 5usize), (5, 6), (6, 20), (20, 37)] {
            let mut part = vec![0u64; b - a];
            dyadic_home_counts(base, n, 0, m, a, b, &mut part);
            assert_eq!(part, whole[a..b], "range [{a},{b})");
        }
    }
}

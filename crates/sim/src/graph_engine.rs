//! The locality-constrained finite-system engine: dispatchers route over
//! a graph [`Topology`] instead of the paper's full mesh.
//!
//! ### Model
//! Every queue `j` hosts a dispatcher whose **accessible set** `A(j)` is
//! its closed neighborhood (itself plus its graph neighbors, size `k` —
//! see [`mflb_core::Topology`]). Each epoch:
//!
//! 1. every client connects to a uniformly random dispatcher (clients are
//!    exchangeable traffic sources, re-mixed every epoch), so the
//!    per-dispatcher client counts are `Multinomial(N, 1/M, …, 1/M)`;
//! 2. each of a dispatcher's clients samples `d` queues uniformly **with
//!    replacement from `A(j)`**, observes their epoch-start (stale)
//!    lengths — the same delayed/staggered information semantics as every
//!    other engine — and draws its destination from the decision rule;
//! 3. every queue runs its exact birth–death CTMC for `Δt` (Alg. 1,
//!    lines 15–19), unchanged.
//!
//! ### Exact aggregation per neighborhood
//! Conditional on the epoch-start lengths, a dispatcher's clients are
//! i.i.d., and a single client routes to the *specific* queue `j ∈ A(i)`
//! with probability `ρ(H_i)[z_j] / k`, where `H_i` is the empirical
//! length distribution of `A(i)` and `ρ` is the Eq. 22 integrand
//! ([`mflb_core::per_state_arrival_rates_into`]) — the same hierarchical
//! argument as [`crate::aggregate::AggregateEngine`], applied to the
//! `k`-queue neighborhood instead of all `M` queues. The per-neighborhood
//! count vector is therefore an exact `Multinomial(n_i, (ρ[z_j]/k)_j)`;
//! cost `O(M·(k + |Z|^d·d))` per epoch, independent of `N`.
//!
//! ### Full mesh ≡ aggregate, bit for bit
//! When the topology's accessible sets cover all `M` queues
//! ([`Topology::is_full_mesh`]), dispatcher identity is irrelevant and
//! the assignment law is exactly the paper's. The engine then takes the
//! [`crate::aggregate`] fast path — the *same* RNG call sequence as
//! [`crate::aggregate::AggregateEngine`] — so a full-mesh graph episode
//! is **bit-identical** to an aggregate-engine episode under the same
//! seed (enforced by `tests/engine_regression.rs` and the sim property
//! suite).

use crate::aggregate::sample_client_assignments_into;
use crate::episode::{length_epoch_stats, simulate_birth_death_epoch, Engine, EpochStats};
use mflb_core::{per_state_arrival_rates_into, DecisionRule, StateDist, SystemConfig, Topology};
use mflb_queue::sampler::Sampler;
use rand::rngs::StdRng;

/// Episode state of [`GraphEngine`]: queue lengths plus reusable
/// per-epoch scratch (client counts, per-dispatcher counts, neighborhood
/// histogram/rates/probability buffers).
#[derive(Debug, Clone)]
pub struct GraphState {
    queues: Vec<usize>,
    counts: Vec<u64>,
    home_counts: Vec<u64>,
    hist: Vec<f64>,
    rates: Vec<f64>,
    probs: Vec<f64>,
}

impl GraphState {
    /// Wraps explicit queue lengths (benchmarks and tests). `zs` is the
    /// number of queue states `B + 1`, `k` the accessible-set size.
    pub fn from_queues(queues: Vec<usize>, zs: usize, k: usize) -> Self {
        let m = queues.len();
        Self {
            queues,
            counts: vec![0; m],
            home_counts: vec![0; m],
            hist: vec![0.0; zs],
            rates: vec![0.0; zs],
            probs: vec![0.0; k],
        }
    }

    /// Current queue lengths.
    pub fn queues(&self) -> &[usize] {
        &self.queues
    }
}

/// Locality-constrained epoch executor over a graph topology.
#[derive(Debug, Clone)]
pub struct GraphEngine {
    config: SystemConfig,
    topology: Topology,
    /// Flattened closed neighborhoods, stride `k` (empty on the full-mesh
    /// fast path, which never consults them).
    nbr: Vec<usize>,
    /// Accessible-set size.
    k: usize,
    /// Whether the accessible sets cover all `M` queues (aggregate fast
    /// path, bit-identical RNG stream).
    full_mesh: bool,
}

impl GraphEngine {
    /// Creates the engine for a validated configuration and topology.
    ///
    /// # Panics
    /// Panics if the configuration or topology is invalid — construct via
    /// [`crate::Scenario::build`] for an `Err`-reporting path.
    pub fn new(config: SystemConfig, topology: Topology) -> Self {
        config.validate().expect("invalid system configuration");
        let m = config.num_queues;
        topology.validate(m).expect("invalid topology");
        let full_mesh = topology.is_full_mesh(m);
        let (nbr, k) = if full_mesh {
            (Vec::new(), m)
        } else {
            let k = topology.neighborhood_size(m);
            (topology.neighborhoods(m).expect("validated topology must materialize"), k)
        };
        Self { config, topology, nbr, k, full_mesh }
    }

    /// The topology in force.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accessible-set size `k` (equals `M` on the full-mesh fast path).
    pub fn neighborhood_size(&self) -> usize {
        self.k
    }

    /// The closed neighborhood `A(node)` (own queue first). Empty slice on
    /// the full-mesh fast path, where `A(node)` is implicitly all queues.
    pub fn neighborhood(&self, node: usize) -> &[usize] {
        if self.full_mesh {
            &[]
        } else {
            &self.nbr[node * self.k..(node + 1) * self.k]
        }
    }

    /// Samples the assignments of `clients` clients connected to one
    /// dispatcher, **adding** the resulting counts into `counts` (exposed
    /// for the locality property tests: counts outside
    /// [`GraphEngine::neighborhood`]`(node)` are never touched).
    ///
    /// # Panics
    /// Panics on the full-mesh fast path, which has no per-dispatcher
    /// assignment stage.
    pub fn sample_node_assignments(
        &self,
        node: usize,
        clients: u64,
        queues: &[usize],
        rule: &DecisionRule,
        rng: &mut StdRng,
        counts: &mut [u64],
    ) {
        assert!(!self.full_mesh, "full-mesh fast path has no per-node stage");
        let zs = self.config.num_states();
        let mut hist = vec![0.0; zs];
        let mut rates = vec![0.0; zs];
        let mut probs = vec![0.0; self.k];
        self.assign_node(
            node, clients, queues, rule, rng, counts, &mut hist, &mut rates, &mut probs,
        );
    }

    /// Scratch-buffer core of [`GraphEngine::sample_node_assignments`].
    #[allow(clippy::too_many_arguments)]
    fn assign_node(
        &self,
        node: usize,
        clients: u64,
        queues: &[usize],
        rule: &DecisionRule,
        rng: &mut StdRng,
        counts: &mut [u64],
        hist: &mut [f64],
        rates: &mut [f64],
        probs: &mut [f64],
    ) {
        let k = self.k;
        let nbrs = &self.nbr[node * k..(node + 1) * k];
        // Empirical length distribution of the accessible set.
        hist.iter_mut().for_each(|h| *h = 0.0);
        for &j in nbrs {
            hist[queues[j]] += 1.0;
        }
        let inv_k = 1.0 / k as f64;
        hist.iter_mut().for_each(|h| *h *= inv_k);
        // ρ(H_i)[z] = k · (specific-queue pick probability for state z);
        // Σ_j ρ[z_j]/k = Σ_z H_i(z)·ρ[z] = 1 exactly (thinning identity).
        per_state_arrival_rates_into(hist, rule, 1.0, rates);
        for (t, &j) in nbrs.iter().enumerate() {
            probs[t] = rates[queues[j]] * inv_k;
        }
        multinomial_add_into(rng, clients, probs, nbrs, counts);
    }

    /// Samples the per-queue client counts for one epoch (exposed for the
    /// engine-agreement and conservation tests).
    pub fn sample_assignments(
        &self,
        queues: &[usize],
        rule: &DecisionRule,
        rng: &mut StdRng,
    ) -> Vec<u64> {
        let mut state = GraphState::from_queues(queues.to_vec(), self.config.num_states(), self.k);
        self.sample_assignments_into(rule, rng, &mut state);
        state.counts
    }

    fn sample_assignments_into(
        &self,
        rule: &DecisionRule,
        rng: &mut StdRng,
        state: &mut GraphState,
    ) {
        let GraphState { queues, counts, home_counts, hist, rates, probs } = state;
        if self.full_mesh {
            // Dispatcher identity is irrelevant when every accessible set
            // covers all M queues: take the aggregate engine's exact
            // hierarchical-multinomial path — same law, same RNG stream.
            sample_client_assignments_into(
                self.config.num_clients,
                self.config.buffer,
                queues,
                rule,
                rng,
                counts,
            );
            return;
        }
        counts.iter_mut().for_each(|c| *c = 0);
        // 1. Clients → dispatchers, Multinomial(N, uniform).
        let m = queues.len();
        let uniform = 1.0 / m as f64;
        let mut remaining_n = self.config.num_clients;
        let mut remaining_mass = 1.0f64;
        for (i, h) in home_counts.iter_mut().enumerate() {
            if remaining_n == 0 {
                *h = 0;
                continue;
            }
            let cond = if i + 1 == m { 1.0 } else { (uniform / remaining_mass).clamp(0.0, 1.0) };
            let c = Sampler::binomial(rng, remaining_n, cond);
            *h = c;
            remaining_n -= c;
            remaining_mass -= uniform;
        }
        // 2. Per dispatcher: exact multinomial over its neighborhood.
        for i in 0..m {
            if home_counts[i] == 0 {
                continue;
            }
            self.assign_node(i, home_counts[i], queues, rule, rng, counts, hist, rates, probs);
        }
    }
}

/// Samples `Multinomial(n, probs)` by conditional binomials and **adds**
/// the category counts onto `counts[targets[t]]`. `probs` must sum to 1
/// (up to floating-point drift; the last category — and any earlier
/// positive-probability category the drifted residual mass has shrunk to —
/// absorbs everyone left, so all `n` trials always land).
fn multinomial_add_into(
    rng: &mut StdRng,
    n: u64,
    probs: &[f64],
    targets: &[usize],
    counts: &mut [u64],
) {
    debug_assert_eq!(probs.len(), targets.len());
    let mut remaining_n = n;
    let mut remaining_mass: f64 = probs.iter().sum();
    for (t, &p) in probs.iter().enumerate() {
        if remaining_n == 0 {
            break;
        }
        // FP subtraction is not exact, so neither `remaining_mass <= p` at
        // the last positive category nor a nonpositive residual can be
        // relied on alone: the last index must absorb unconditionally
        // (else drift above p_last strands clients), and an early absorb
        // must require p > 0 (else drift below zero dumps clients on a
        // zero-probability neighbor).
        let c = if t + 1 == probs.len() || (p > 0.0 && remaining_mass <= p) {
            remaining_n
        } else {
            Sampler::binomial(rng, remaining_n, (p / remaining_mass).clamp(0.0, 1.0))
        };
        counts[targets[t]] += c;
        remaining_n -= c;
        remaining_mass -= p;
    }
    debug_assert_eq!(remaining_n, 0, "every client must land in the neighborhood");
}

impl Engine for GraphEngine {
    type State = GraphState;

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn init_state(&self, rng: &mut StdRng) -> GraphState {
        GraphState::from_queues(
            crate::episode::sample_initial_queues(&self.config, rng),
            self.config.num_states(),
            self.k,
        )
    }

    fn empirical(&self, state: &GraphState) -> StateDist {
        StateDist::empirical(&state.queues, self.config.buffer)
    }

    fn step(
        &self,
        state: &mut GraphState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        debug_assert_eq!(state.queues.len(), self.config.num_queues);
        self.sample_assignments_into(rule, rng, state);
        let GraphState { queues, counts, .. } = state;
        let m = queues.len();
        let scale = m as f64 * lambda / self.config.num_clients as f64;
        let (dropped, served) = simulate_birth_death_epoch(
            queues,
            counts,
            scale,
            &|_| self.config.service_rate,
            self.config.buffer,
            self.config.dt,
            rng,
        );
        length_epoch_stats(queues, counts, self.config.num_clients, dropped, served)
    }

    fn name(&self) -> &'static str {
        "graph"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateEngine;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use rand::SeedableRng;

    fn jsq_rule() -> DecisionRule {
        DecisionRule::from_fn(6, 2, |t| {
            use std::cmp::Ordering::*;
            match t[0].cmp(&t[1]) {
                Less => vec![1.0, 0.0],
                Greater => vec![0.0, 1.0],
                Equal => vec![0.5, 0.5],
            }
        })
    }

    #[test]
    fn counts_sum_to_n_on_sparse_topologies() {
        let cfg = SystemConfig::paper().with_size(10_000, 36);
        for top in [
            Topology::Ring { radius: 1 },
            Topology::Ring { radius: 3 },
            Topology::Torus { radius: 1 },
            Topology::RandomRegular { degree: 4, seed: 3 },
        ] {
            let engine = GraphEngine::new(cfg.clone(), top.clone());
            let queues: Vec<usize> = (0..36).map(|j| j % 6).collect();
            let mut rng = StdRng::seed_from_u64(1);
            for rule in [DecisionRule::uniform(6, 2), jsq_rule()] {
                let counts = engine.sample_assignments(&queues, &rule, &mut rng);
                assert_eq!(counts.iter().sum::<u64>(), 10_000, "{top:?}");
            }
        }
    }

    #[test]
    fn node_assignments_stay_in_the_neighborhood() {
        let cfg = SystemConfig::paper().with_size(5_000, 20);
        let engine = GraphEngine::new(cfg, Topology::Ring { radius: 2 });
        let queues: Vec<usize> = (0..20).map(|j| (j * 3) % 6).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u64; 20];
        engine.sample_node_assignments(7, 1_000, &queues, &jsq_rule(), &mut rng, &mut counts);
        assert_eq!(counts.iter().sum::<u64>(), 1_000);
        let nbrs = engine.neighborhood(7);
        for (j, &c) in counts.iter().enumerate() {
            if !nbrs.contains(&j) {
                assert_eq!(c, 0, "queue {j} is outside A(7) = {nbrs:?}");
            }
        }
    }

    #[test]
    fn full_mesh_episode_is_bit_identical_to_aggregate() {
        let cfg = SystemConfig::paper().with_size(900, 30).with_dt(3.0);
        let graph = GraphEngine::new(cfg.clone(), Topology::FullMesh);
        let agg = AggregateEngine::new(cfg);
        let policy = FixedRulePolicy::new(jsq_rule(), "JSQ(2)");
        let a = run_episode(&graph, &policy, 15, &mut run_rng(9, 0));
        let b = run_episode(&agg, &policy, 15, &mut run_rng(9, 0));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
        assert_eq!(a.mean_queue_len, b.mean_queue_len);
        assert_eq!(a.lambda_trace, b.lambda_trace);
    }

    #[test]
    fn covering_ring_takes_the_full_mesh_fast_path_too() {
        // 2·radius + 1 = M: the ring is a full mesh in disguise and must
        // take the bit-identical aggregate path.
        let cfg = SystemConfig::paper().with_size(200, 9).with_dt(2.0);
        let ring = GraphEngine::new(cfg.clone(), Topology::Ring { radius: 4 });
        let agg = AggregateEngine::new(cfg);
        let policy = FixedRulePolicy::new(jsq_rule(), "JSQ(2)");
        let a = run_episode(&ring, &policy, 10, &mut run_rng(3, 1));
        let b = run_episode(&agg, &policy, 10, &mut run_rng(3, 1));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
    }

    #[test]
    fn ring_episode_runs_and_accumulates() {
        let cfg = SystemConfig::paper().with_size(400, 20).with_dt(2.0);
        let engine = GraphEngine::new(cfg.clone(), Topology::Ring { radius: 2 });
        let policy = FixedRulePolicy::new(DecisionRule::uniform(6, 2), "RND");
        let out = run_episode(&engine, &policy, 20, &mut run_rng(7, 0));
        assert_eq!(out.drops_per_epoch.len(), 20);
        assert!(out.total_drops >= 0.0);
        assert!(out.max_share_per_epoch.iter().all(|&s| (0.0..=1.0).contains(&s)));
        assert!((out.jobs_dropped as f64 / 20.0 - out.total_drops).abs() < 1e-9);
    }

    #[test]
    fn seeded_ring_episodes_reproduce() {
        let cfg = SystemConfig::paper().with_size(400, 20).with_dt(2.0);
        let engine = GraphEngine::new(cfg, Topology::RandomRegular { degree: 4, seed: 5 });
        let policy = FixedRulePolicy::new(jsq_rule(), "JSQ(2)");
        let a = run_episode(&engine, &policy, 10, &mut run_rng(11, 3));
        let b = run_episode(&engine, &policy, 10, &mut run_rng(11, 3));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
    }

    #[test]
    fn rnd_marginals_match_the_mesh_but_jsq_localizes() {
        // Under RND, locality is invisible in law (each client lands on a
        // uniformly random queue either way): per-queue count means match
        // the aggregate engine's. Under JSQ they must differ, because a
        // locally short queue only attracts its own neighborhood.
        let cfg = SystemConfig::paper().with_size(4_000, 10);
        let ring = GraphEngine::new(cfg.clone(), Topology::Ring { radius: 1 });
        let agg = AggregateEngine::new(cfg);
        // Queue 0 is the unique empty queue; the rest are full.
        let mut queues = vec![5usize; 10];
        queues[0] = 0;
        let reps = 300;
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(4);
        let (mut rnd_ring, mut rnd_agg, mut jsq_ring, mut jsq_agg) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..reps {
            rnd_ring +=
                ring.sample_assignments(&queues, &DecisionRule::uniform(6, 2), &mut rng_a)[0];
            rnd_agg += agg.sample_assignments(&queues, &DecisionRule::uniform(6, 2), &mut rng_b)[0];
            jsq_ring += ring.sample_assignments(&queues, &jsq_rule(), &mut rng_a)[0];
            jsq_agg += agg.sample_assignments(&queues, &jsq_rule(), &mut rng_b)[0];
        }
        let (rnd_ring, rnd_agg) = (rnd_ring as f64 / reps as f64, rnd_agg as f64 / reps as f64);
        let (jsq_ring, jsq_agg) = (jsq_ring as f64 / reps as f64, jsq_agg as f64 / reps as f64);
        assert!(
            (rnd_ring - rnd_agg).abs() < 0.05 * rnd_agg,
            "RND means must agree: ring {rnd_ring} vs mesh {rnd_agg}"
        );
        // Mesh JSQ: every client seeing queue 0 routes there, P = 1−(9/10)²
        // = 0.19 → ≈760 clients. Ring: only the 3 neighborhoods containing
        // queue 0 can reach it (1200 clients, each P = 1−(2/3)² = 5/9)
        // → ≈667. The catchment cap must show up well beyond noise.
        assert!(
            jsq_ring < 0.93 * jsq_agg,
            "locality must cap the herd: ring {jsq_ring} vs mesh {jsq_agg}"
        );
    }

    #[test]
    fn zero_arrival_rate_only_drains() {
        let cfg = SystemConfig::paper().with_size(100, 10).with_dt(50.0);
        let engine = GraphEngine::new(cfg, Topology::Ring { radius: 1 });
        let mut state = GraphState::from_queues(vec![5usize; 10], 6, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let stats = engine.step(&mut state, &DecisionRule::uniform(6, 2), 0.0, &mut rng);
        assert_eq!(stats.drops, 0.0);
        assert!(state.queues().iter().all(|&z| z == 0), "queues must drain: {:?}", state.queues());
    }
}

//! Data-driven scenario layer: construct **any** engine from a serde
//! spec.
//!
//! A [`Scenario`] bundles a [`SystemConfig`] with an [`EngineSpec`]
//! (engine kind plus its extra parameters — server-pool rates, cohort
//! count, service law). [`Scenario::build`] validates the spec and
//! returns an [`AnyEngine`], which implements [`Engine`] by delegation,
//! so a scenario loaded from JSON runs through [`crate::run_episode`] and
//! the thread-parallel [`crate::monte_carlo()`] exactly like a
//! hand-constructed engine. This is what lets the bench binaries and
//! examples describe *what* to simulate as data instead of wiring each
//! engine type by hand — and what the sparse/localized follow-up work
//! plugs richer engines into.
//!
//! Malformed specs (zero cohorts, an empty server pool, an invalid
//! service law, an inconsistent `SystemConfig`) are reported as `Err`
//! from [`Scenario::validate`] / [`Scenario::build`] — never as panics.
//!
//! # The scenario JSON schema
//!
//! Annotated examples — one per engine kind — live under
//! `examples/scenarios/` and feed `mflb train` / `mflb eval` /
//! `mflb simulate --scenario` directly. A spec is an object with exactly
//! two keys:
//!
//! ```json
//! {
//!   "config":  { ... a SystemConfig ... },
//!   "engine":  "Aggregate"  // or a tagged object, see below
//! }
//! ```
//!
//! ## `config` — the `SystemConfig` (Table 1 of the paper)
//!
//! | field | type | meaning | constraint |
//! |---|---|---|---|
//! | `dt` | float | synchronization delay Δt (epoch length) | > 0, finite |
//! | `service_rate` | float | service rate α of every queue (ignored by `Ph`, overridden per server by `Hetero`) | > 0 |
//! | `arrivals` | object | the MMPP: `{"levels": [λ…], "kernel": [[row-stochastic]], "initial": [probs]}` | rows/initial sum to 1 |
//! | `num_clients` | int | N, finite system only | ≥ 1 |
//! | `num_queues` | int | M, finite system only | ≥ 1 |
//! | `d` | int | sampled accessible queues per client | ≥ 1 (sampling is with replacement, so `d > M` is legal) |
//! | `buffer` | int | queue capacity B; the state space is `{0..B}` | ≥ 1; ≤ 255 for `Staggered` (u8 snapshots) |
//! | `initial_dist` | float array | ν₀ over `{0..B}` | length `B+1`, sums to 1, entries ≥ 0 |
//! | `gamma` | float | discount of the control objective | in (0, 1) |
//! | `train_episode_len` | int | training horizon T in epochs (Table 1: 500) | ≥ 1 |
//! | `eval_time` | float | evaluation horizon in *time units*; `T_e = round(eval_time/dt)` | > 0 |
//! | `holding_cost` | float | per-job-per-time-unit cost added to the drop objective | ≥ 0; **default 0** (may be omitted) |
//!
//! All other fields are mandatory; a missing field is a parse error.
//!
//! ## `engine` — the `EngineSpec` (externally tagged)
//!
//! | JSON | engine | extra validation |
//! |---|---|---|
//! | `"PerClient"` | literal per-client engine | — |
//! | `"Aggregate"` | exact O(M) aggregation | — |
//! | `"JobLevel"` | job-level FIFO with sojourns | — |
//! | `{"Staggered": {"cohorts": k}}` | cohort-staggered refreshes | `k ≥ 1`; `buffer ≤ 255` |
//! | `{"Hetero": {"rates": [α…]}}` | heterogeneous pool | non-empty, `len == num_queues`, all rates > 0 and finite |
//! | `{"Ph": {"service": law}}` | phase-type service | see laws below |
//! | `{"Graph": {"topology": top, "shard_size": s}}` | locality-constrained routing | see topologies below; `shard_size` is optional (≥ 1 when given — forces sharded parallel stepping with that dispatcher range per shard; omitted = auto by system size) |
//! | `{"Event": {"job_size": law}}` | continuous-time event-heap job-level engine | see job-size laws below |
//!
//! Topologies for `Graph` (the [`mflb_core::Topology`] families; clients
//! sample their `d` queues from the dispatcher's closed neighborhood
//! instead of all `M` queues — see the "Locality" and "Scaling" sections
//! of the README). All are stored CSR and built by `O(M·d)` streaming
//! generators, so million-queue specs stay cheap to materialize:
//!
//! | JSON | topology | validation |
//! |---|---|---|
//! | `"FullMesh"` | the paper's model (degenerate case) | — |
//! | `{"Ring": {"radius": r}}` | cycle, reach `±r` | `r ≥ 1`, `2r+1 ≤ M` |
//! | `{"Torus": {"radius": r}}` | `√M × √M` torus, L1-ball reach | `M` square, `2r+1 ≤ √M` |
//! | `{"RandomRegular": {"degree": g, "seed": s}}` | seed-pinned random `g`-regular graph | `1 ≤ g < M`, `g·M` even |
//!
//! Service laws for `Ph` (all rates/means/probabilities must be positive
//! and finite; phase expansions are capped at [`MAX_SERVICE_PHASES`]):
//!
//! | JSON | law |
//! |---|---|
//! | `{"Exponential": {"rate": α}}` | exponential (the paper's model) |
//! | `{"Erlang": {"k": k, "rate": α}}` | Erlang-k, SCV `1/k` |
//! | `{"Hyperexponential": {"probs": […], "rates": […]}}` | mixture; `probs` sum to 1, lengths match |
//! | `{"MeanScv": {"mean": m, "scv": c}}` | two-moment PH fit |
//!
//! Job-size laws for `Event` (the [`mflb_core::JobSizeLaw`] families —
//! each job draws one size in work units; service takes
//! `size / service_rate` time; all parameters positive and finite):
//!
//! | JSON | law |
//! |---|---|
//! | `{"Exponential": {"rate": r}}` | exponential sizes, mean `1/r` (the paper's model in law) |
//! | `{"Pareto": {"shape": a, "scale": s}}` | heavy-tailed Pareto on `[s, ∞)`; infinite mean for `a ≤ 1` |
//! | `{"BoundedPareto": {"shape": a, "lo": l, "hi": h}}` | Pareto truncated to `[l, h]`; needs `l < h` |
//!
//! ## Validation errors
//!
//! [`Scenario::from_json`] reports *syntax* problems (malformed JSON, an
//! unknown engine tag, a missing field); [`Scenario::validate`] — called
//! by [`Scenario::build`] and by every CLI entry point — reports
//! *semantic* ones, each as a human-readable string naming the offending
//! field: inconsistent `SystemConfig` (`initial_dist` length/mass, γ
//! outside (0,1), `d = 0`), pool-size or rate-sign problems for `Hetero`,
//! `cohorts = 0` or an over-wide buffer for `Staggered`, and every
//! service-law complaint of [`ServiceLaw::validate`].

use crate::aggregate::AggregateEngine;
use crate::client::PerClientEngine;
use crate::episode::{Engine, EpochStats};
use crate::error::ScenarioError;
use crate::event_engine::EventEngine;
use crate::fifo_engine::FifoEngine;
use crate::graph_engine::GraphEngine;
use crate::hetero::HeteroEngine;
use crate::ph_engine::PhAggregateEngine;
use crate::staggered::StaggeredEngine;
use mflb_core::{DecisionRule, FaultPlan, JobSizeLaw, StateDist, SystemConfig, Topology};
use mflb_queue::hetero::ServerPool;
use mflb_queue::PhaseType;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Engine kinds that honor a [`FaultPlan`] (the job- and queue-level
/// engines whose epoch loop exposes per-queue service rates).
fn supports_faults(spec: &EngineSpec) -> bool {
    matches!(spec, EngineSpec::Event { .. } | EngineSpec::Graph { .. } | EngineSpec::JobLevel)
}

/// A service-time law as data (constructs a [`PhaseType`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceLaw {
    /// Exponential service with the given rate (the paper's model).
    Exponential {
        /// Service rate α.
        rate: f64,
    },
    /// Erlang-`k` service (SCV `1/k`).
    Erlang {
        /// Number of phases.
        k: usize,
        /// Per-phase rate.
        rate: f64,
    },
    /// Hyperexponential mixture (SCV ≥ 1).
    Hyperexponential {
        /// Mixture weights (must sum to 1).
        probs: Vec<f64>,
        /// Per-branch rates.
        rates: Vec<f64>,
    },
    /// Two-moment phase-type fit to a target mean and SCV.
    MeanScv {
        /// Target mean service time.
        mean: f64,
        /// Target squared coefficient of variation.
        scv: f64,
    },
}

/// Largest phase count a [`ServiceLaw`] may expand to. Phase-type solvers
/// and the Gillespie engine work with dense `k × k` matrices, so an
/// unbounded `k` from a data file would abort on allocation instead of
/// erroring; every SCV the experiments sweep needs ≤ 4 phases.
pub const MAX_SERVICE_PHASES: usize = 64;

impl ServiceLaw {
    /// Checks the law's parameters. Complaints come back as
    /// [`ScenarioError::Service`], whose rendering carries the historical
    /// `service:` prefix.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.check().map_err(ScenarioError::Service)
    }

    fn check(&self) -> Result<(), String> {
        let pos = |v: f64, what: &str| {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(format!("{what} must be positive and finite, got {v}"))
            }
        };
        match self {
            ServiceLaw::Exponential { rate } => pos(*rate, "exponential rate"),
            ServiceLaw::Erlang { k, rate } => {
                if *k == 0 {
                    return Err("erlang law needs at least one phase".into());
                }
                if *k > MAX_SERVICE_PHASES {
                    return Err(format!(
                        "erlang law with {k} phases exceeds the {MAX_SERVICE_PHASES}-phase cap"
                    ));
                }
                pos(*rate, "erlang rate")
            }
            ServiceLaw::Hyperexponential { probs, rates } => {
                if probs.is_empty() || probs.len() != rates.len() {
                    return Err(format!(
                        "hyperexponential law needs matching non-empty probs/rates, got {}/{}",
                        probs.len(),
                        rates.len()
                    ));
                }
                if probs.iter().any(|&p| !(0.0..=1.0).contains(&p) || !p.is_finite()) {
                    return Err("hyperexponential probs must lie in [0, 1]".into());
                }
                let mass: f64 = probs.iter().sum();
                if (mass - 1.0).abs() > 1e-9 {
                    return Err(format!("hyperexponential probs must sum to 1, got {mass}"));
                }
                if probs.len() > MAX_SERVICE_PHASES {
                    return Err(format!(
                        "hyperexponential law with {} branches exceeds the \
                         {MAX_SERVICE_PHASES}-phase cap",
                        probs.len()
                    ));
                }
                for &r in rates {
                    pos(r, "hyperexponential rate")?;
                }
                Ok(())
            }
            ServiceLaw::MeanScv { mean, scv } => {
                pos(*mean, "service mean")?;
                pos(*scv, "service scv")?;
                // The two-moment fit uses an Erlang mixture with
                // k = ceil(1/scv) phases below SCV 1.
                if (1.0 / *scv).ceil() > MAX_SERVICE_PHASES as f64 {
                    return Err(format!(
                        "scv {scv} needs more than {MAX_SERVICE_PHASES} Erlang phases to fit"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Constructs the phase-type law.
    pub fn build(&self) -> Result<PhaseType, ScenarioError> {
        self.validate()?;
        Ok(match self {
            ServiceLaw::Exponential { rate } => PhaseType::exponential(*rate),
            ServiceLaw::Erlang { k, rate } => PhaseType::erlang(*k, *rate),
            ServiceLaw::Hyperexponential { probs, rates } => {
                PhaseType::hyperexponential(probs, rates)
            }
            ServiceLaw::MeanScv { mean, scv } => PhaseType::fit_mean_scv(*mean, *scv),
        })
    }
}

/// Which engine a [`Scenario`] constructs, plus its extra parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineSpec {
    /// The literal per-client engine ([`PerClientEngine`]).
    PerClient,
    /// The exact `O(M)` aggregation ([`AggregateEngine`]).
    Aggregate,
    /// Heterogeneous service rates (§5; [`HeteroEngine`]). One rate per
    /// server; must match `config.num_queues`.
    Hetero {
        /// Per-server service rates.
        rates: Vec<f64>,
    },
    /// Cohort-staggered information refreshes ([`StaggeredEngine`]).
    Staggered {
        /// Number of refresh cohorts (≥ 1; 1 = synchronous model).
        cohorts: usize,
    },
    /// Phase-type service ([`PhAggregateEngine`]).
    Ph {
        /// The service-time law.
        service: ServiceLaw,
    },
    /// Job-level FIFO queues with sojourn tracking ([`FifoEngine`]).
    JobLevel,
    /// Locality-constrained routing over a graph topology
    /// ([`GraphEngine`]): each dispatcher samples its `d` queues from its
    /// closed neighborhood instead of all `M` queues.
    Graph {
        /// The neighborhood structure (ring / torus / random-regular /
        /// full mesh).
        topology: Topology,
        /// Forces the sharded parallel stepping path with this contiguous
        /// dispatcher range per shard (≥ 1). Omitted: the engine picks its
        /// mode by system size. Sharded episodes are bit-identical for
        /// **any** shard size and worker count, so this knob only affects
        /// wall-clock; worker threads stay an execution-level setting
        /// ([`AnyEngine::with_workers`]), never part of the spec.
        #[serde(default)]
        shard_size: Option<usize>,
    },
    /// Continuous-time event-heap job-level engine ([`EventEngine`]):
    /// jobs as timeline events with exponential or heavy-tailed sizes,
    /// serviced FIFO under sampled-and-delayed observations. The engine
    /// behind `mflb serve`.
    Event {
        /// The job-size law (exponential reproduces the paper's length
        /// process in law; Pareto laws open the heavy-tailed axis).
        job_size: JobSizeLaw,
    },
}

/// A complete, serializable simulation scenario.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct Scenario {
    /// System configuration (sizes, Δt, arrivals, buffer, ν₀, …).
    pub config: SystemConfig,
    /// Engine kind and engine-specific parameters.
    pub engine: EngineSpec,
    /// Optional deterministic fault plan (crashes, stragglers,
    /// observation faults, overload bursts — [`mflb_core::faults`]).
    /// Only the job- and queue-level engines (`Event`, `Graph`,
    /// `JobLevel`) honor one; `None` or an empty plan is the fault-free
    /// model.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
}

// Hand-written (instead of derived) so a fault-free scenario serializes
// to the exact bytes it produced before the `faults` field existed:
// training checkpoints embed this JSON and pin its hash, and an absent
// plan must not perturb them. The vendored serde derive has no
// `skip_serializing_if`, hence the manual impl.
impl Serialize for Scenario {
    fn to_value(&self) -> serde::json::Value {
        let mut entries = vec![
            ("config".to_string(), self.config.to_value()),
            ("engine".to_string(), self.engine.to_value()),
        ];
        if let Some(plan) = &self.faults {
            entries.push(("faults".to_string(), plan.to_value()));
        }
        serde::json::Value::Obj(entries)
    }
}

impl Scenario {
    /// Bundles a configuration with an engine spec (no fault plan).
    pub fn new(config: SystemConfig, engine: EngineSpec) -> Self {
        Self { config, engine, faults: None }
    }

    /// Attaches a fault plan; an empty plan is normalized to `None` so
    /// it cannot perturb serialized bytes or engine code paths.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// Checks the whole spec. Each complaint comes back as the
    /// [`ScenarioError`] variant naming the offending layer; the
    /// `Display` renderings are the historical human-readable strings.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.config.validate().map_err(ScenarioError::Config)?;
        if let Some(plan) = &self.faults {
            if !plan.is_empty() && !supports_faults(&self.engine) {
                return Err(ScenarioError::Faults(
                    "engine kind does not honor a fault plan \
                     (supported: Event, Graph, JobLevel)"
                        .into(),
                ));
            }
            plan.validate_for(self.config.num_queues).map_err(ScenarioError::Faults)?;
        }
        match &self.engine {
            EngineSpec::PerClient | EngineSpec::Aggregate | EngineSpec::JobLevel => Ok(()),
            EngineSpec::Hetero { rates } => {
                if rates.is_empty() {
                    return Err(ScenarioError::Engine(
                        "hetero engine needs a non-empty server pool".into(),
                    ));
                }
                if rates.len() != self.config.num_queues {
                    return Err(ScenarioError::Engine(format!(
                        "hetero pool has {} servers but config.num_queues is {}",
                        rates.len(),
                        self.config.num_queues
                    )));
                }
                if rates.iter().any(|&r| !(r > 0.0 && r.is_finite())) {
                    return Err(ScenarioError::Engine(
                        "hetero server rates must be positive and finite".into(),
                    ));
                }
                Ok(())
            }
            EngineSpec::Staggered { cohorts } => {
                if *cohorts == 0 {
                    return Err(ScenarioError::Engine(
                        "staggered engine needs at least one cohort".into(),
                    ));
                }
                // Client snapshots store queue lengths as u8.
                if self.config.buffer > u8::MAX as usize {
                    return Err(ScenarioError::Engine(format!(
                        "staggered engine supports buffers up to {}, got {}",
                        u8::MAX,
                        self.config.buffer
                    )));
                }
                Ok(())
            }
            EngineSpec::Ph { service } => service.validate(),
            EngineSpec::Graph { topology, shard_size } => {
                if let Some(0) = shard_size {
                    return Err(ScenarioError::Engine(
                        "graph shard_size must be at least 1".into(),
                    ));
                }
                topology.validate(self.config.num_queues).map_err(ScenarioError::Topology)
            }
            EngineSpec::Event { job_size } => job_size.validate().map_err(ScenarioError::JobSize),
        }
    }

    /// Validates and constructs the engine (attaching the fault plan, if
    /// any, to the engines that honor one).
    pub fn build(&self) -> Result<AnyEngine, ScenarioError> {
        self.validate()?;
        let plan = || self.faults.clone().unwrap_or_default();
        Ok(match &self.engine {
            EngineSpec::PerClient => {
                AnyEngine::PerClient(PerClientEngine::new(self.config.clone()))
            }
            EngineSpec::Aggregate => {
                AnyEngine::Aggregate(AggregateEngine::new(self.config.clone()))
            }
            EngineSpec::Hetero { rates } => AnyEngine::Hetero(HeteroEngine::new(
                self.config.clone(),
                ServerPool::heterogeneous(rates.clone(), self.config.buffer),
            )),
            EngineSpec::Staggered { cohorts } => {
                AnyEngine::Staggered(StaggeredEngine::new(self.config.clone(), *cohorts))
            }
            EngineSpec::Ph { service } => {
                AnyEngine::Ph(PhAggregateEngine::new(self.config.clone(), service.build()?))
            }
            EngineSpec::JobLevel => {
                AnyEngine::JobLevel(FifoEngine::new(self.config.clone()).with_faults(plan()))
            }
            EngineSpec::Graph { topology, shard_size } => {
                let mut engine = GraphEngine::new(self.config.clone(), topology.clone());
                if let Some(s) = shard_size {
                    engine = engine
                        .with_mode(crate::graph_engine::StepMode::Sharded)
                        .with_shard_size(*s);
                }
                AnyEngine::Graph(engine.with_faults(plan()))
            }
            EngineSpec::Event { job_size } => AnyEngine::Event(
                EventEngine::new(self.config.clone(), job_size.clone()).with_faults(plan()),
            ),
        })
    }

    /// Serializes the scenario to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization cannot fail")
    }

    /// Parses a scenario from JSON (syntax errors and unknown engine
    /// kinds surface as [`ScenarioError::Json`]; call
    /// [`Scenario::validate`] / `build` for semantic checks).
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(text).map_err(ScenarioError::Json)
    }
}

/// Any engine a [`Scenario`] can construct, usable directly with
/// [`crate::run_episode`] / [`crate::monte_carlo()`] through its
/// [`Engine`] impl.
#[derive(Debug, Clone)]
pub enum AnyEngine {
    /// Literal per-client engine.
    PerClient(PerClientEngine),
    /// Exact aggregated engine.
    Aggregate(AggregateEngine),
    /// Heterogeneous-pool engine.
    Hetero(HeteroEngine),
    /// Staggered-information engine.
    Staggered(StaggeredEngine),
    /// Phase-type service engine.
    Ph(PhAggregateEngine),
    /// Job-level FIFO engine.
    JobLevel(FifoEngine),
    /// Locality-constrained graph engine.
    Graph(GraphEngine),
    /// Continuous-time event-heap job-level engine.
    Event(EventEngine),
}

impl AnyEngine {
    /// Sets the worker-thread count for engines with a parallel stepping
    /// path (`0` = one per available core; a no-op for every other
    /// engine). Currently that is the sharded [`GraphEngine`]. Never part
    /// of a [`Scenario`] spec: sharded episodes are bit-identical for any
    /// worker count, so this is pure execution configuration (the CLI
    /// wires `--workers` through here).
    pub fn with_workers(self, workers: usize) -> Self {
        match self {
            AnyEngine::Graph(e) => AnyEngine::Graph(e.with_workers(workers)),
            other => other,
        }
    }
}

/// Episode state of [`AnyEngine`] (one variant per engine).
#[allow(missing_docs)]
pub enum AnyState {
    PerClient(<PerClientEngine as Engine>::State),
    Aggregate(<AggregateEngine as Engine>::State),
    Hetero(<HeteroEngine as Engine>::State),
    Staggered(<StaggeredEngine as Engine>::State),
    Ph(<PhAggregateEngine as Engine>::State),
    JobLevel(<FifoEngine as Engine>::State),
    Graph(<GraphEngine as Engine>::State),
    Event(<EventEngine as Engine>::State),
}

macro_rules! delegate {
    ($self:ident, $e:ident => $body:expr) => {
        match $self {
            AnyEngine::PerClient($e) => $body,
            AnyEngine::Aggregate($e) => $body,
            AnyEngine::Hetero($e) => $body,
            AnyEngine::Staggered($e) => $body,
            AnyEngine::Ph($e) => $body,
            AnyEngine::JobLevel($e) => $body,
            AnyEngine::Graph($e) => $body,
            AnyEngine::Event($e) => $body,
        }
    };
}

macro_rules! delegate_state {
    ($self:ident, $state:ident, $e:ident, $s:ident => $body:expr) => {
        match ($self, $state) {
            (AnyEngine::PerClient($e), AnyState::PerClient($s)) => $body,
            (AnyEngine::Aggregate($e), AnyState::Aggregate($s)) => $body,
            (AnyEngine::Hetero($e), AnyState::Hetero($s)) => $body,
            (AnyEngine::Staggered($e), AnyState::Staggered($s)) => $body,
            (AnyEngine::Ph($e), AnyState::Ph($s)) => $body,
            (AnyEngine::JobLevel($e), AnyState::JobLevel($s)) => $body,
            (AnyEngine::Graph($e), AnyState::Graph($s)) => $body,
            (AnyEngine::Event($e), AnyState::Event($s)) => $body,
            _ => panic!("AnyState does not belong to this AnyEngine"),
        }
    };
}

impl Engine for AnyEngine {
    type State = AnyState;

    fn config(&self) -> &SystemConfig {
        delegate!(self, e => e.config())
    }

    fn init_state(&self, rng: &mut StdRng) -> AnyState {
        match self {
            AnyEngine::PerClient(e) => AnyState::PerClient(e.init_state(rng)),
            AnyEngine::Aggregate(e) => AnyState::Aggregate(e.init_state(rng)),
            AnyEngine::Hetero(e) => AnyState::Hetero(e.init_state(rng)),
            AnyEngine::Staggered(e) => AnyState::Staggered(e.init_state(rng)),
            AnyEngine::Ph(e) => AnyState::Ph(e.init_state(rng)),
            AnyEngine::JobLevel(e) => AnyState::JobLevel(e.init_state(rng)),
            AnyEngine::Graph(e) => AnyState::Graph(e.init_state(rng)),
            AnyEngine::Event(e) => AnyState::Event(e.init_state(rng)),
        }
    }

    fn empirical(&self, state: &AnyState) -> StateDist {
        delegate_state!(self, state, e, s => e.empirical(s))
    }

    fn step(
        &self,
        state: &mut AnyState,
        rule: &DecisionRule,
        lambda: f64,
        rng: &mut StdRng,
    ) -> EpochStats {
        delegate_state!(self, state, e, s => e.step(s, rule, lambda, rng))
    }

    fn name(&self) -> &'static str {
        delegate!(self, e => e.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::{run_episode, run_rng};
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_policy::rnd_rule;

    fn base_config() -> SystemConfig {
        SystemConfig::paper().with_size(200, 10).with_dt(2.0)
    }

    fn all_specs() -> Vec<EngineSpec> {
        vec![
            EngineSpec::PerClient,
            EngineSpec::Aggregate,
            EngineSpec::Hetero { rates: vec![1.0; 10] },
            EngineSpec::Staggered { cohorts: 4 },
            EngineSpec::Ph { service: ServiceLaw::MeanScv { mean: 1.0, scv: 2.0 } },
            EngineSpec::JobLevel,
            EngineSpec::Graph { topology: Topology::Ring { radius: 2 }, shard_size: None },
            EngineSpec::Graph {
                topology: Topology::RandomRegular { degree: 4, seed: 1 },
                shard_size: None,
            },
            EngineSpec::Graph { topology: Topology::FullMesh, shard_size: None },
            EngineSpec::Event { job_size: JobSizeLaw::Exponential { rate: 1.0 } },
            EngineSpec::Event {
                job_size: JobSizeLaw::BoundedPareto { shape: 1.5, lo: 0.2, hi: 20.0 },
            },
        ]
    }

    #[test]
    fn every_engine_kind_builds_and_runs_an_episode() {
        let policy = FixedRulePolicy::new(rnd_rule(6, 2), "RND");
        for spec in all_specs() {
            let scenario = Scenario::new(base_config(), spec);
            let engine = scenario.build().expect("valid scenario must build");
            let out = run_episode(&engine, &policy, 5, &mut run_rng(1, 0));
            assert_eq!(out.drops_per_epoch.len(), 5, "{}", engine.name());
        }
    }

    #[test]
    fn any_engine_matches_direct_engine_bit_for_bit() {
        // The enum wrapper must not perturb the RNG stream.
        let policy = FixedRulePolicy::new(rnd_rule(6, 2), "RND");
        let direct = AggregateEngine::new(base_config());
        let wrapped = Scenario::new(base_config(), EngineSpec::Aggregate).build().unwrap();
        let a = run_episode(&direct, &policy, 10, &mut run_rng(2, 0));
        let b = run_episode(&wrapped, &policy, 10, &mut run_rng(2, 0));
        assert_eq!(a.drops_per_epoch, b.drops_per_epoch);
        assert_eq!(a.mean_queue_len, b.mean_queue_len);
    }

    #[test]
    fn malformed_specs_error_instead_of_panicking() {
        let cases = vec![
            ("zero cohorts", EngineSpec::Staggered { cohorts: 0 }),
            ("empty pool", EngineSpec::Hetero { rates: vec![] }),
            ("pool size mismatch", EngineSpec::Hetero { rates: vec![1.0; 3] }),
            (
                "negative rate",
                EngineSpec::Hetero {
                    rates: vec![1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
                },
            ),
            (
                "zero erlang phases",
                EngineSpec::Ph { service: ServiceLaw::Erlang { k: 0, rate: 1.0 } },
            ),
            (
                "negative scv",
                EngineSpec::Ph { service: ServiceLaw::MeanScv { mean: 1.0, scv: -2.0 } },
            ),
            (
                "probs not summing to 1",
                EngineSpec::Ph {
                    service: ServiceLaw::Hyperexponential {
                        probs: vec![0.3, 0.3],
                        rates: vec![1.0, 2.0],
                    },
                },
            ),
            (
                "phase count beyond the cap",
                EngineSpec::Ph { service: ServiceLaw::Erlang { k: 1_000_000, rate: 1.0 } },
            ),
            (
                "scv needing more phases than the cap",
                EngineSpec::Ph { service: ServiceLaw::MeanScv { mean: 1.0, scv: 1e-9 } },
            ),
            (
                "zero-radius ring",
                EngineSpec::Graph { topology: Topology::Ring { radius: 0 }, shard_size: None },
            ),
            (
                "ring wider than the cycle",
                EngineSpec::Graph { topology: Topology::Ring { radius: 5 }, shard_size: None },
            ),
            (
                "torus on a non-square queue count",
                EngineSpec::Graph { topology: Topology::Torus { radius: 1 }, shard_size: None },
            ),
            (
                "random-regular degree beyond M",
                EngineSpec::Graph {
                    topology: Topology::RandomRegular { degree: 10, seed: 1 },
                    shard_size: None,
                },
            ),
            (
                "nonpositive job-size rate",
                EngineSpec::Event { job_size: JobSizeLaw::Exponential { rate: 0.0 } },
            ),
            (
                "nonpositive pareto shape",
                EngineSpec::Event { job_size: JobSizeLaw::Pareto { shape: -2.0, scale: 1.0 } },
            ),
            (
                "bounded pareto with lo >= hi",
                EngineSpec::Event {
                    job_size: JobSizeLaw::BoundedPareto { shape: 2.0, lo: 5.0, hi: 1.0 },
                },
            ),
        ];
        for (what, spec) in cases {
            let scenario = Scenario::new(base_config(), spec);
            assert!(scenario.build().is_err(), "{what} must be rejected");
        }
        // Broken SystemConfig is caught too.
        let mut bad = Scenario::new(base_config(), EngineSpec::Aggregate);
        bad.config.initial_dist = vec![0.5; 2];
        assert!(bad.build().is_err(), "inconsistent config must be rejected");
        // The staggered engine's u8 snapshots cap the buffer at 255.
        let wide =
            Scenario::new(base_config().with_buffer(300), EngineSpec::Staggered { cohorts: 2 });
        assert!(wide.build().is_err(), "buffer > 255 must be rejected for staggered");
        assert!(
            Scenario::new(base_config().with_buffer(300), EngineSpec::Aggregate).build().is_ok(),
            "wide buffers stay fine for engines without u8 snapshots"
        );
    }

    #[test]
    fn scenarios_round_trip_through_json_for_every_engine_kind() {
        for spec in all_specs() {
            let scenario = Scenario::new(base_config(), spec);
            let json = scenario.to_json();
            let back = Scenario::from_json(&json).expect("round trip");
            assert_eq!(scenario, back, "json: {json}");
        }
    }

    #[test]
    fn unknown_engine_kind_is_a_parse_error() {
        let mut json = Scenario::new(base_config(), EngineSpec::PerClient).to_json();
        json = json.replace("PerClient", "Quantum");
        assert!(Scenario::from_json(&json).is_err());
    }

    fn crashy_plan() -> FaultPlan {
        FaultPlan {
            crashes: Some(mflb_core::CrashFaults { mttf: 20.0, mttr: 5.0 }),
            ..FaultPlan::default()
        }
    }

    #[test]
    fn fault_free_scenarios_serialize_without_a_faults_key() {
        // Training checkpoints embed scenario JSON and pin its hash: an
        // absent (or empty) plan must not change a single byte.
        let pristine = Scenario::new(base_config(), EngineSpec::Aggregate);
        let json = pristine.to_json();
        assert!(!json.contains("faults"), "no faults key expected: {json}");
        let emptied = pristine.clone().with_faults(FaultPlan::empty());
        assert_eq!(emptied.to_json(), json, "empty plan must serialize identically");
        assert_eq!(Scenario::from_json(&json).unwrap(), pristine);
    }

    #[test]
    fn fault_plans_round_trip_through_json_and_reach_the_engine() {
        for spec in [
            EngineSpec::Event { job_size: JobSizeLaw::Exponential { rate: 1.0 } },
            EngineSpec::Graph { topology: Topology::Ring { radius: 2 }, shard_size: None },
            EngineSpec::JobLevel,
        ] {
            let scenario = Scenario::new(base_config(), spec).with_faults(crashy_plan());
            let back = Scenario::from_json(&scenario.to_json()).expect("round trip");
            assert_eq!(scenario, back);
            let engine = back.build().expect("faulted scenario must build");
            let has_plan = match &engine {
                AnyEngine::Event(e) => e.faults().is_some(),
                AnyEngine::Graph(e) => e.faults().is_some(),
                AnyEngine::JobLevel(e) => e.faults().is_some(),
                _ => unreachable!(),
            };
            assert!(has_plan, "plan must reach the built engine");
        }
    }

    #[test]
    fn fault_plans_on_unsupported_engines_are_rejected() {
        for spec in
            [EngineSpec::Aggregate, EngineSpec::PerClient, EngineSpec::Staggered { cohorts: 2 }]
        {
            let scenario = Scenario::new(base_config(), spec).with_faults(crashy_plan());
            let err = scenario.validate().expect_err("plan on unsupported engine").to_string();
            assert!(err.starts_with("faults:"), "{err}");
        }
    }

    #[test]
    fn invalid_fault_plans_are_rejected_with_field_names() {
        let plan = FaultPlan {
            stragglers: vec![mflb_core::StragglerWindow {
                start: 0.0,
                end: 10.0,
                factor: 0.5,
                queues: Some(vec![99]),
            }],
            ..FaultPlan::default()
        };
        let scenario = Scenario::new(base_config(), EngineSpec::JobLevel).with_faults(plan);
        let err = scenario.validate().expect_err("out-of-range queue index").to_string();
        assert!(err.contains("queue 99"), "{err}");
    }

    #[test]
    fn faulted_epochs_run_and_stay_reproducible_for_every_supported_engine() {
        let policy = FixedRulePolicy::new(rnd_rule(6, 2), "RND");
        for spec in [
            EngineSpec::Event { job_size: JobSizeLaw::Exponential { rate: 1.0 } },
            EngineSpec::Graph { topology: Topology::Ring { radius: 2 }, shard_size: None },
            EngineSpec::Graph { topology: Topology::Ring { radius: 2 }, shard_size: Some(3) },
            EngineSpec::JobLevel,
        ] {
            let scenario = Scenario::new(base_config(), spec).with_faults(crashy_plan());
            let engine = scenario.build().expect("faulted scenario must build");
            let a = run_episode(&engine, &policy, 8, &mut run_rng(41, 0));
            let b = run_episode(&engine, &policy, 8, &mut run_rng(41, 0));
            assert_eq!(a.drops_per_epoch, b.drops_per_epoch, "{}", engine.name());
            assert_eq!(a.mean_queue_len, b.mean_queue_len, "{}", engine.name());
        }
    }
}

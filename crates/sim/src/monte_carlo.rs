//! Parallel Monte-Carlo evaluation of policies on the finite system.
//!
//! The paper evaluates every configuration with `n = 100` independent
//! simulations and reports means with 95% confidence intervals (Fig. 4–6).
//! Runs are distributed over worker threads with crossbeam's scoped
//! threads; each run derives its RNG from `(base_seed, run_index)` so the
//! result is bit-identical regardless of the worker count. The driver is
//! generic over [`Engine`], so every engine — including the
//! heterogeneous, staggered-information, phase-type and job-level ones —
//! fans out over threads.

use crate::episode::{
    run_episode_conditioned, run_episodes_lockstep, run_rng, Engine, EpisodeOutcome,
};
use mflb_core::mdp::UpperPolicy;
use mflb_linalg::stats::Summary;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Aggregated Monte-Carlo output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonteCarloResult {
    /// Summary over runs of the cumulative per-queue drops.
    pub drops: Summary,
    /// Total drops of each run (for downstream statistics/plots).
    pub per_run: Vec<f64>,
    /// Mean per-epoch drop trajectory averaged over runs.
    pub mean_drops_per_epoch: Vec<f64>,
    /// Sojourn times of completed jobs pooled over all runs, in run order
    /// (job-level engines only; empty elsewhere).
    #[serde(default)]
    pub sojourns: Vec<f64>,
    /// Raw service completions summed over runs.
    #[serde(default)]
    pub jobs_completed: u64,
    /// Raw dropped-packet count summed over runs.
    #[serde(default)]
    pub jobs_dropped: u64,
}

impl MonteCarloResult {
    /// Mean cumulative drops.
    pub fn mean(&self) -> f64 {
        self.drops.mean()
    }

    /// 95% confidence half-width.
    pub fn ci95(&self) -> f64 {
        self.drops.ci95_half_width()
    }

    /// Fraction of jobs dropped among all jobs that reached a queue.
    pub fn drop_fraction(&self) -> f64 {
        let total = self.jobs_dropped + self.jobs_completed;
        self.jobs_dropped as f64 / (total.max(1)) as f64
    }
}

/// Episodes per lockstep chunk: each worker claims a chunk of consecutive
/// run indices and steps them together so the neural policy sees one
/// 16-row gemm per decision epoch instead of 16 gemvs. A constant
/// (independent of the thread count) so results stay bit-identical across
/// worker counts; 16 rows already amortize the 2×256 weight streaming.
const LOCKSTEP_CHUNK: usize = 16;

/// Runs `n_runs` independent episodes of `horizon` epochs and aggregates
/// drop statistics, using up to `threads` workers (0 → available
/// parallelism).
///
/// Episodes run in lockstep chunks of [`run_episodes_lockstep`] so
/// batched policies amortize inference across runs; per-run results are
/// bit-identical to running each episode alone (each run's RNG is
/// private and `decide_batch` matches `decide`).
pub fn monte_carlo<E: Engine>(
    engine: &E,
    policy: &(dyn UpperPolicy + Sync),
    horizon: usize,
    n_runs: usize,
    base_seed: u64,
    threads: usize,
) -> MonteCarloResult {
    run_many_chunks(n_runs, threads, |start, len| {
        let mut rngs: Vec<_> = (0..len).map(|i| run_rng(base_seed, start + i as u64)).collect();
        run_episodes_lockstep(engine, policy, horizon, &mut rngs)
    })
}

/// Conditioned variant: every run uses the same arrival-level sequence
/// (queue noise still differs per run), isolating the Theorem-1 comparison.
pub fn monte_carlo_conditioned<E: Engine>(
    engine: &E,
    policy: &(dyn UpperPolicy + Sync),
    lambda_seq: &[usize],
    n_runs: usize,
    base_seed: u64,
    threads: usize,
) -> MonteCarloResult {
    run_many(n_runs, threads, |run| {
        run_episode_conditioned(engine, policy, lambda_seq, &mut run_rng(base_seed, run))
    })
}

fn run_many<F>(n_runs: usize, threads: usize, job: F) -> MonteCarloResult
where
    F: Fn(u64) -> EpisodeOutcome + Sync,
{
    run_many_chunks(n_runs, threads, |start, len| (0..len as u64).map(|i| job(start + i)).collect())
}

/// Work-stealing chunk scheduler: workers claim chunks of
/// [`LOCKSTEP_CHUNK`] consecutive run indices. The chunk boundaries are a
/// pure function of `n_runs` — never of the worker count — so results
/// are bit-identical regardless of parallelism, exactly as with the old
/// per-run scheduler.
fn run_many_chunks<F>(n_runs: usize, threads: usize, job: F) -> MonteCarloResult
where
    F: Fn(u64, usize) -> Vec<EpisodeOutcome> + Sync,
{
    let n_chunks = n_runs.div_ceil(LOCKSTEP_CHUNK).max(1);
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(n_chunks);

    let next = std::sync::atomic::AtomicU64::new(0);
    let results: Mutex<Vec<(u64, Vec<EpisodeOutcome>)>> = Mutex::new(Vec::with_capacity(n_chunks));

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let chunk = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if chunk >= n_chunks as u64 {
                    break;
                }
                let start = chunk * LOCKSTEP_CHUNK as u64;
                let len = LOCKSTEP_CHUNK.min(n_runs - start as usize);
                let outcomes = job(start, len);
                results.lock().push((chunk, outcomes));
            });
        }
    })
    .expect("monte-carlo worker panicked");

    let mut chunks = results.into_inner();
    chunks.sort_by_key(|(chunk, _)| *chunk);
    let outcomes: Vec<EpisodeOutcome> = chunks.into_iter().flat_map(|(_, outs)| outs).collect();

    let mut drops = Summary::new();
    let mut per_run = Vec::with_capacity(n_runs);
    let mut mean_per_epoch: Vec<f64> = Vec::new();
    let mut sojourns = Vec::new();
    let mut jobs_completed = 0u64;
    let mut jobs_dropped = 0u64;
    for o in &outcomes {
        drops.push(o.total_drops);
        per_run.push(o.total_drops);
        if mean_per_epoch.len() < o.drops_per_epoch.len() {
            mean_per_epoch.resize(o.drops_per_epoch.len(), 0.0);
        }
        for (acc, &v) in mean_per_epoch.iter_mut().zip(&o.drops_per_epoch) {
            *acc += v;
        }
        sojourns.extend_from_slice(&o.sojourns);
        jobs_completed += o.jobs_completed;
        jobs_dropped += o.jobs_dropped;
    }
    let n = outcomes.len().max(1) as f64;
    for v in &mut mean_per_epoch {
        *v /= n;
    }

    MonteCarloResult {
        drops,
        per_run,
        mean_drops_per_epoch: mean_per_epoch,
        sojourns,
        jobs_completed,
        jobs_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateEngine;
    use crate::staggered::StaggeredEngine;
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_core::{DecisionRule, SystemConfig};

    fn setup() -> (AggregateEngine, FixedRulePolicy) {
        let cfg = SystemConfig::paper().with_size(400, 20).with_dt(2.0);
        let engine = AggregateEngine::new(cfg.clone());
        let policy = FixedRulePolicy::new(DecisionRule::uniform(cfg.num_states(), cfg.d), "RND");
        (engine, policy)
    }

    #[test]
    fn lockstep_chunks_match_independent_episodes() {
        // More runs than one LOCKSTEP_CHUNK so a chunk boundary is crossed;
        // every per-run outcome must equal a standalone `run_episode`.
        let (engine, policy) = setup();
        let r = monte_carlo(&engine, &policy, 10, LOCKSTEP_CHUNK + 5, 42, 2);
        for run in 0..(LOCKSTEP_CHUNK + 5) as u64 {
            let solo = crate::episode::run_episode(&engine, &policy, 10, &mut run_rng(42, run));
            assert_eq!(r.per_run[run as usize], solo.total_drops, "run {run}");
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (engine, policy) = setup();
        let a = monte_carlo(&engine, &policy, 10, 8, 42, 1);
        let b = monte_carlo(&engine, &policy, 10, 8, 42, 4);
        assert_eq!(a.per_run, b.per_run);
        assert_eq!(a.mean_drops_per_epoch, b.mean_drops_per_epoch);
    }

    #[test]
    fn stateful_engines_are_deterministic_across_thread_counts_too() {
        // The staggered engine carries per-client snapshot state; the
        // unified driver must still be reproducible under parallelism.
        let cfg = SystemConfig::paper().with_size(300, 15).with_dt(2.0);
        let engine = StaggeredEngine::new(cfg.clone(), 3);
        let policy = FixedRulePolicy::new(DecisionRule::uniform(cfg.num_states(), cfg.d), "RND");
        let a = monte_carlo(&engine, &policy, 8, 6, 13, 1);
        let b = monte_carlo(&engine, &policy, 8, 6, 13, 3);
        assert_eq!(a.per_run, b.per_run);
    }

    #[test]
    fn summary_matches_per_run_values() {
        let (engine, policy) = setup();
        let r = monte_carlo(&engine, &policy, 10, 12, 7, 0);
        assert_eq!(r.per_run.len(), 12);
        let mean = r.per_run.iter().sum::<f64>() / 12.0;
        assert!((r.mean() - mean).abs() < 1e-12);
        assert!(r.ci95() >= 0.0);
        assert_eq!(r.mean_drops_per_epoch.len(), 10);
    }

    #[test]
    fn conditioned_runs_share_lambda_path() {
        let (engine, policy) = setup();
        let seq = vec![0usize; 10];
        let r = monte_carlo_conditioned(&engine, &policy, &seq, 6, 3, 2);
        assert_eq!(r.per_run.len(), 6);
        // All-high-load conditioning: more drops than all-low.
        let seq_low = vec![1usize; 10];
        let r_low = monte_carlo_conditioned(&engine, &policy, &seq_low, 6, 3, 2);
        assert!(r.mean() > r_low.mean());
    }

    #[test]
    fn job_counters_pool_across_runs() {
        let cfg = SystemConfig::paper().with_size(400, 20).with_dt(3.0);
        let engine = crate::fifo_engine::FifoEngine::new(cfg.clone());
        let policy = FixedRulePolicy::new(DecisionRule::uniform(cfg.num_states(), cfg.d), "RND");
        let r = monte_carlo(&engine, &policy, 10, 4, 9, 2);
        assert!(r.jobs_completed > 0);
        assert_eq!(r.sojourns.len() as u64, r.jobs_completed);
        assert!((0.0..=1.0).contains(&r.drop_fraction()));
    }
}

//! Property-based tests for the simplex lattice: ranking, snapping and
//! linear-exact interpolation must hold for *arbitrary* distributions and
//! grid shapes, not just the hand-picked unit-test cases.

use mflb_core::StateDist;
use mflb_dp::SimplexGrid;
use proptest::prelude::*;

/// Strategy: a random distribution over `n` states (normalized positive
/// weights, bounded away from degenerate all-zero vectors).
fn dist_strategy(n: usize) -> impl Strategy<Value = StateDist> {
    prop::collection::vec(0.0f64..1.0, n).prop_filter_map("needs positive mass", move |w| {
        let total: f64 = w.iter().sum();
        if total < 1e-3 {
            return None;
        }
        let mut probs: Vec<f64> = w.iter().map(|x| x / total).collect();
        // Compensate rounding drift on the largest entry.
        let drift: f64 = 1.0 - probs.iter().sum::<f64>();
        let argmax = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        probs[argmax] += drift;
        Some(StateDist::new(probs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rank_unrank_roundtrip(
        n in 2usize..7,
        g in 1usize..12,
        seed in 0usize..10_000,
    ) {
        let grid = SimplexGrid::new(n, g);
        let idx = seed % grid.num_points();
        let counts = grid.unrank(idx);
        prop_assert_eq!(counts.iter().sum::<usize>(), g);
        prop_assert_eq!(grid.rank(&counts), idx);
    }

    #[test]
    fn snap_yields_nearby_lattice_point(nu in dist_strategy(6), g in 2usize..24) {
        let grid = SimplexGrid::new(6, g);
        let idx = grid.snap(&nu);
        let point = grid.point(idx);
        // Largest-remainder rounding moves < 1/G per coordinate.
        let bound = 6.0 / g as f64;
        prop_assert!(nu.l1_distance(&point) <= bound + 1e-9,
            "snap distance {} exceeds {}", nu.l1_distance(&point), bound);
    }

    #[test]
    fn interpolation_reconstructs_exactly(nu in dist_strategy(6), g in 2usize..24) {
        let grid = SimplexGrid::new(6, g);
        let parts = grid.interpolate(&nu);
        let total: f64 = parts.iter().map(|(_, w)| w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "weights sum {total}");
        prop_assert!(parts.len() <= 7, "{} vertices", parts.len());
        let mut recon = [0.0f64; 6];
        for &(idx, w) in &parts {
            prop_assert!(w > 0.0);
            for (r, &p) in recon.iter_mut().zip(grid.point(idx).as_slice()) {
                *r += w * p;
            }
        }
        for (a, b) in recon.iter().zip(nu.as_slice()) {
            prop_assert!((a - b).abs() < 1e-8, "reconstruction {a} vs {b}");
        }
    }

    #[test]
    fn interpolation_weights_are_a_partition_even_at_vertices(
        n in 2usize..7,
        g in 1usize..10,
        seed in 0usize..5_000,
    ) {
        // Lattice points themselves must interpolate to a single vertex.
        let grid = SimplexGrid::new(n, g);
        let idx = seed % grid.num_points();
        let parts = grid.interpolate(&grid.point(idx));
        prop_assert_eq!(parts.len(), 1);
        prop_assert_eq!(parts[0].0, idx);
    }
}

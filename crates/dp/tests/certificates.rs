//! Seed-pinned certification tests for the DP solver itself: the solved
//! lattice optimum must be internally consistent (greedy actions, Q-values
//! and Bellman residuals all telling the same story), stable under
//! checkpoint round-trips down to the byte, and its error paths must
//! surface as typed [`DpError`] variants, not panics or bare strings.

use mflb_core::{StateDist, SystemConfig};
use mflb_dp::{ActionLibrary, DpCheckpoint, DpConfig, DpError, DpSolution, SimplexGrid};
use mflb_queue::mmpp::ArrivalProcess;

/// `unwrap_err` without requiring `DpSolution: Debug`.
fn expect_err(result: Result<DpSolution, DpError>) -> DpError {
    match result {
        Err(e) => e,
        Ok(_) => panic!("expected an error, got a solution"),
    }
}

/// A deliberately tiny, hand-inspectable MDP: one deterministic arrival
/// level (no modulation), buffer 1 (two length states — empty or full), so
/// the lattice is a 1-simplex and every quantity is cheap to recompute.
fn tiny_config() -> SystemConfig {
    let arrivals = ArrivalProcess::new(vec![0.8], vec![vec![1.0]], vec![1.0]);
    SystemConfig::paper().with_size(100, 10).with_buffer(1).with_dt(2.0).with_arrivals(arrivals)
}

/// Single-threaded solve so every test sees bit-identical tables.
fn solve_tiny(grid: usize) -> DpSolution {
    let config = tiny_config();
    let dp = DpConfig { grid_resolution: grid, tol: 1e-9, max_sweeps: 10_000, threads: 1 };
    DpSolution::solve(&config, ActionLibrary::softmin_default(config.num_states(), config.d), &dp)
}

#[test]
fn greedy_q_values_and_residuals_agree_everywhere() {
    let sol = solve_tiny(16);
    assert!(sol.residual <= 1e-9, "solver reported non-convergence: {}", sol.residual);
    for s in sol.grid().indices() {
        for l in 0..sol.num_levels() {
            let nu = sol.grid().point(s);
            let q = sol.q_values(&nu, l);
            // Greedy action is the argmax of the Q-values, through both
            // entry points (distribution and lattice-index addressed).
            let greedy = sol.greedy_action(&nu, l);
            assert_eq!(greedy, sol.greedy_action_at(s, l), "entry points disagree at ({s}, {l})");
            let q_max = q.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                q[greedy] >= q_max - 1e-12,
                "greedy action {greedy} is not the Q-argmax at ({s}, {l})"
            );
            // The residual the solver reports is exactly |max_a Q − V|.
            let by_hand = (q_max - sol.value(&nu, l)).abs();
            let reported = sol.bellman_residual_at(s, l);
            assert!(
                (by_hand - reported).abs() < 1e-12,
                "residual at ({s}, {l}): by hand {by_hand}, reported {reported}"
            );
            // And a converged solution has (numerically) zero residual.
            assert!(reported < 1e-7, "Bellman residual {reported} at ({s}, {l})");
        }
    }
}

#[test]
fn value_matches_a_directly_iterated_discounted_rollout() {
    // On a 1-simplex the interpolated value function is piecewise linear,
    // so following the greedy policy through the *continuous* model and
    // summing discounted rewards must land very close to V.
    let sol = solve_tiny(32);
    let config = tiny_config();
    let mdp = mflb_core::MeanFieldMdp::new(config.clone());
    for s in [0, 8, 16, 24, 32] {
        let mut state = mflb_core::MfState { dist: sol.grid().point(s), lambda_idx: 0 };
        let expected = sol.value(&state.dist, 0);
        let mut total = 0.0;
        let mut discount = 1.0;
        // γ = 0.99 ⇒ the tail after 2500 steps is bounded by
        // 0.99^2500 · max|V| ≈ 1e-11 · |V|: negligible.
        for _ in 0..2_500 {
            let a = sol.greedy_action(&state.dist, state.lambda_idx);
            let (next, reward, _) = mdp.step_with_next_lambda(&state, sol.actions().rule(a), 0);
            total += discount * reward;
            discount *= config.gamma;
            state = next;
        }
        let scale = expected.abs().max(1.0);
        assert!(
            (expected - total).abs() / scale < 0.02,
            "V({s}) = {expected} but the greedy rollout returned {total}"
        );
    }
}

#[test]
fn pinned_value_at_the_empty_vertex_is_stable() {
    // Regression pin: the solved value at ν₀ = δ_empty. Deterministic
    // (single-threaded sweeps, no RNG anywhere in the solver), so any
    // drift means the dynamics, reward or interpolation changed.
    let sol = solve_tiny(16);
    let nu0 = StateDist::all_empty(tiny_config().buffer);
    let v = sol.value(&nu0, 0);
    let pinned = -68.553_365_950_285_15;
    assert!(
        (v - pinned).abs() < 1e-9,
        "V(ν₀) drifted from its pinned value: {v} (pinned {pinned})"
    );
}

#[test]
fn checkpoint_roundtrip_is_bit_identical() {
    let sol = solve_tiny(8);
    let dir = std::env::temp_dir().join("mflb_dp_certificates_roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let first = dir.join("first.json");
    let second = dir.join("second.json");

    sol.save_json(&first).unwrap();
    let loaded = DpSolution::load_json(&first).unwrap();
    loaded.save_json(&second).unwrap();

    // Byte-identical files: the round-trip loses nothing, and a re-save
    // is deterministic.
    let a = std::fs::read(&first).unwrap();
    let b = std::fs::read(&second).unwrap();
    assert_eq!(a, b, "save → load → save must be byte-identical");

    // The reloaded solution answers queries identically.
    assert_eq!(loaded.sweeps, sol.sweeps);
    assert!((loaded.residual - sol.residual).abs() == 0.0);
    for s in sol.grid().indices() {
        for l in 0..sol.num_levels() {
            let nu = sol.grid().point(s);
            assert_eq!(loaded.greedy_action_at(s, l), sol.greedy_action_at(s, l));
            assert!((loaded.value(&nu, l) - sol.value(&nu, l)).abs() == 0.0);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_surfaces_as_a_typed_io_error() {
    let path = std::env::temp_dir().join("mflb_dp_certificates_missing.json");
    let _ = std::fs::remove_file(&path);
    let err = expect_err(DpSolution::load_json(&path));
    match &err {
        DpError::Io { path: p, .. } => assert_eq!(p, &path),
        other => panic!("expected DpError::Io, got {other:?}"),
    }
    assert!(std::error::Error::source(&err).is_some(), "Io carries its cause");
    assert!(format!("{err}").contains("mflb_dp_certificates_missing.json"), "names the path");
}

#[test]
fn corrupt_json_surfaces_as_a_typed_parse_error() {
    let path = std::env::temp_dir().join("mflb_dp_certificates_corrupt.json");
    std::fs::write(&path, "{ this is not json").unwrap();
    let err = expect_err(DpSolution::load_json(&path));
    assert!(matches!(err, DpError::Json { .. }), "expected DpError::Json, got {err:?}");
    assert!(std::error::Error::source(&err).is_some(), "Json carries its cause");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_table_surfaces_as_a_checkpoint_error() {
    let sol = solve_tiny(4);
    let mut ckpt: DpCheckpoint = sol.to_checkpoint();
    ckpt.values.pop();
    let err = expect_err(DpSolution::try_from_checkpoint(ckpt));
    match &err {
        DpError::Checkpoint(msg) => {
            assert!(!msg.is_empty(), "checkpoint errors must say what is wrong")
        }
        other => panic!("expected DpError::Checkpoint, got {other:?}"),
    }
    assert!(std::error::Error::source(&err).is_none(), "Checkpoint has no deeper cause");
}

#[test]
fn checkpoint_grid_shape_is_consistent() {
    let sol = solve_tiny(6);
    let grid = SimplexGrid::new(tiny_config().num_states(), 6);
    assert_eq!(sol.grid().num_points(), grid.num_points());
    let ckpt = sol.to_checkpoint();
    assert_eq!(ckpt.values.len(), grid.num_points() * sol.num_levels());
}

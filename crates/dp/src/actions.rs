//! Finite action libraries for the discretized MFC MDP.
//!
//! The true action space `H = {h : Z^d → P(U)}` is continuous; exact DP
//! needs a finite subset. The default library is the softmin(β) family on
//! a log-spaced β grid — it contains MF-RND (`β = 0`), is effectively
//! MF-JSQ(d) at the top of the grid (`exp(−64) ≈ 0` for queue-length gaps
//! ≥ 1), and spans the interpolation regime the learned policies live in.
//! DP over this library answers: *how much of the achievable value needs
//! state feedback on `ν_t` (which DP has, through the grid) versus rule
//! interpolation alone?*

use mflb_core::DecisionRule;
use mflb_policy::softmin_rule;

/// A named finite library of decision rules.
#[derive(Debug, Clone)]
pub struct ActionLibrary {
    names: Vec<String>,
    rules: Vec<DecisionRule>,
}

impl ActionLibrary {
    /// Builds a library from explicit `(name, rule)` pairs.
    ///
    /// # Panics
    /// Panics if the library is empty or the rules disagree on shape.
    pub fn new(entries: Vec<(String, DecisionRule)>) -> Self {
        assert!(!entries.is_empty(), "need at least one action");
        let (num_states, d) = (entries[0].1.num_states(), entries[0].1.d());
        for (name, rule) in &entries {
            assert_eq!(rule.num_states(), num_states, "shape mismatch in '{name}'");
            assert_eq!(rule.d(), d, "d mismatch in '{name}'");
        }
        let (names, rules) = entries.into_iter().unzip();
        Self { names, rules }
    }

    /// The default softmin(β) library over a log-spaced β grid,
    /// `β ∈ {0} ∪ {2^{−2}, …, 2^6}`: 10 rules from MF-RND to (numerically)
    /// MF-JSQ(d).
    pub fn softmin_default(num_states: usize, d: usize) -> Self {
        let mut entries = vec![("softmin(0)=RND".to_string(), softmin_rule(num_states, d, 0.0))];
        let mut beta = 0.25;
        while beta <= 64.0 {
            entries.push((format!("softmin({beta})"), softmin_rule(num_states, d, beta)));
            beta *= 2.0;
        }
        Self::new(entries)
    }

    /// A finer softmin library with `per_octave` rules between successive
    /// powers of two (for resolution ablations).
    pub fn softmin_fine(num_states: usize, d: usize, per_octave: usize) -> Self {
        assert!(per_octave >= 1);
        let mut entries = vec![("softmin(0)".to_string(), softmin_rule(num_states, d, 0.0))];
        let lo: f64 = 0.25;
        let hi: f64 = 64.0;
        let octaves = (hi / lo).log2();
        let steps = (octaves * per_octave as f64).round() as usize;
        for s in 0..=steps {
            let beta = lo * 2f64.powf(s as f64 / per_octave as f64);
            entries.push((format!("softmin({beta:.3})"), softmin_rule(num_states, d, beta)));
        }
        Self::new(entries)
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the library is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rule at an action index.
    pub fn rule(&self, a: usize) -> &DecisionRule {
        &self.rules[a]
    }

    /// The display name of an action.
    pub fn name(&self, a: usize) -> &str {
        &self.names[a]
    }

    /// All rules.
    pub fn rules(&self) -> &[DecisionRule] {
        &self.rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_policy::{jsq_rule, rnd_rule};

    #[test]
    fn default_library_brackets_rnd_and_jsq() {
        let lib = ActionLibrary::softmin_default(6, 2);
        assert_eq!(lib.len(), 10);
        assert!(lib.rule(0).max_abs_diff(&rnd_rule(6, 2)) < 1e-12);
        assert!(lib.rule(lib.len() - 1).max_abs_diff(&jsq_rule(6, 2)) < 1e-9);
    }

    #[test]
    fn fine_library_is_denser() {
        let coarse = ActionLibrary::softmin_default(6, 2);
        let fine = ActionLibrary::softmin_fine(6, 2, 3);
        assert!(fine.len() > 2 * coarse.len());
    }

    #[test]
    #[should_panic(expected = "at least one action")]
    fn rejects_empty_library() {
        ActionLibrary::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_mixed_shapes() {
        ActionLibrary::new(vec![("a".into(), rnd_rule(6, 2)), ("b".into(), rnd_rule(5, 2))]);
    }
}

//! Exact dynamic programming for the mean-field control MDP.
//!
//! The paper solves the MFC MDP (Eq. 29–31) with policy-gradient RL
//! because the state/action spaces are continuous. For moderate buffer
//! sizes the state space `P(Z) × Λ` is low-dimensional enough to
//! discretize and solve *exactly* (up to lattice resolution and a finite
//! action family) with value iteration. This crate provides that
//! certified yardstick:
//!
//! * [`simplex_grid::SimplexGrid`] — a `1/G`-lattice over `P(Z)` with
//!   exact combinatorial indexing and ℓ₁-optimal snapping,
//! * [`actions::ActionLibrary`] — finite decision-rule families (softmin
//!   β-grids bracketing MF-RND and MF-JSQ),
//! * [`value_iteration::DpSolution`] — parallel transition precompute +
//!   value iteration, with Howard policy iteration as an independent
//!   cross-check solver and JSON checkpoints;
//!   [`value_iteration::GridPolicy`] deploys the greedy solution as a
//!   standard [`mflb_core::UpperPolicy`].
//!
//! Used by the `ablation_dp` experiment to ask: *how close does PPO get
//! to the restricted-family optimum, and how much does ν-feedback add
//! over the best constant rule?*

#![deny(rustdoc::broken_intra_doc_links)]

pub mod actions;
pub mod error;
pub mod simplex_grid;
pub mod value_iteration;

pub use actions::ActionLibrary;
pub use error::DpError;
pub use simplex_grid::SimplexGrid;
pub use value_iteration::{DpCheckpoint, DpConfig, DpSolution, GridPolicy};

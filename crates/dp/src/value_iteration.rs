//! Exact value iteration on the discretized MFC MDP.
//!
//! The MFC MDP of Eq. 29–31 has a *deterministic* `ν`-transition (exact
//! discretization) and stochastic dynamics only through the 2-level (in
//! general `L`-level) arrival chain. Discretizing `P(Z)` with a
//! [`SimplexGrid`] and restricting actions to a finite
//! [`ActionLibrary`] turns it into a finite MDP with `|grid| × L` states,
//! solved here by standard value iteration with **linear-exact simplex
//! interpolation** ([`SimplexGrid::interpolate`]) of the continuation
//! value:
//!
//! ```text
//! V(s, l) ← max_a [ r(s, l, a) + γ · Σ_{l'} P_λ(l'|l) · Σ_k w_k V(v_k(s,a), l') ]
//! ```
//!
//! where `Σ_k w_k·v_k` reconstructs the continuous next distribution
//! exactly. Interpolated backups remove the `O(1/G)` snap bias (which a
//! discount of `γ = 0.99` would amplify ~100×) and remain a
//! `γ`-contraction because the weights are convex.
//!
//! All `|grid| × L × |A|` one-epoch transitions (one matrix-exponential
//! batch each) are precomputed in parallel with crossbeam scoped threads
//! into a CSR table; the sweeps afterwards are pure table arithmetic. The
//! greedy policy is exported as a [`GridPolicy`] — a one-step-lookahead
//! [`UpperPolicy`] usable by every simulator and harness in the
//! workspace.
//!
//! This gives the reproduction a *certified* (up to grid resolution)
//! optimum over the restricted action family — the yardstick the PPO
//! ablation is measured against.

use crate::actions::ActionLibrary;
use crate::error::DpError;
use crate::simplex_grid::SimplexGrid;
use mflb_core::mdp::UpperPolicy;
use mflb_core::{DecisionRule, MeanFieldMdp, StateDist, SystemConfig};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Configuration of the DP solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpConfig {
    /// Simplex lattice resolution `G` (probabilities are multiples of
    /// `1/G`).
    pub grid_resolution: usize,
    /// Sup-norm convergence tolerance on the value function.
    pub tol: f64,
    /// Hard cap on sweeps.
    pub max_sweeps: usize,
    /// Worker threads for the transition precompute (0 → available
    /// parallelism).
    pub threads: usize,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self { grid_resolution: 12, tol: 1e-6, max_sweeps: 4_000, threads: 0 }
    }
}

/// CSR-style table of precomputed one-epoch transitions: entry
/// `(s·L + l)·A + a` owns `rewards[e]` and the interpolation pairs
/// `targets/weights[offsets[e]..offsets[e+1]]` of the next distribution.
struct TransitionTable {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    rewards: Vec<f64>,
}

/// The solved discretized MDP: optimal values and the greedy policy over
/// the lattice.
pub struct DpSolution {
    config: SystemConfig,
    grid: SimplexGrid,
    actions: ActionLibrary,
    num_levels: usize,
    /// `values[s · L + l]` = optimal value of `(grid point s, level l)`.
    values: Vec<f64>,
    /// `best[s · L + l]` = greedy action index at the lattice state.
    best: Vec<u32>,
    /// Sweeps performed.
    pub sweeps: usize,
    /// Final sup-norm residual.
    pub residual: f64,
}

/// Interpolated continuation value of one table entry given the current
/// value function: `Σ_{l'} P(l'|l) Σ_k w_k V(v_k, l')`.
#[inline]
fn continuation(
    table: &TransitionTable,
    kernel_row: &[f64],
    values: &[f64],
    num_levels: usize,
    entry: usize,
) -> f64 {
    let (lo, hi) = (table.offsets[entry] as usize, table.offsets[entry + 1] as usize);
    let mut cont = 0.0;
    for (lp, &p) in kernel_row.iter().enumerate() {
        let mut v_next = 0.0;
        for k in lo..hi {
            v_next += table.weights[k] * values[table.targets[k] as usize * num_levels + lp];
        }
        cont += p * v_next;
    }
    cont
}

impl DpSolution {
    /// Solves the discretized MDP by **value iteration**.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the action library's
    /// shape does not match it.
    pub fn solve(config: &SystemConfig, actions: ActionLibrary, dp: &DpConfig) -> Self {
        Self::check_shapes(config, &actions);
        let grid = SimplexGrid::new(config.num_states(), dp.grid_resolution);
        let num_levels = config.arrivals.num_levels();
        let s_count = grid.num_points();
        let a_count = actions.len();

        let table = Self::precompute(config, &grid, &actions, num_levels, dp.threads);

        // ---- Value-iteration sweeps (pure table arithmetic). -----------
        let gamma = config.gamma;
        let kernel: Vec<Vec<f64>> =
            (0..num_levels).map(|l| config.arrivals.kernel_row(l).to_vec()).collect();
        let mut values = vec![0.0f64; s_count * num_levels];
        let mut fresh = vec![0.0f64; s_count * num_levels];
        let mut best = vec![0u32; s_count * num_levels];
        let mut residual = f64::INFINITY;
        let mut sweeps = 0;
        while sweeps < dp.max_sweeps && residual > dp.tol {
            residual = 0.0;
            for s in 0..s_count {
                for l in 0..num_levels {
                    let sl = s * num_levels + l;
                    let mut best_q = f64::NEG_INFINITY;
                    let mut best_a = 0u32;
                    for a in 0..a_count {
                        let e = sl * a_count + a;
                        let q = table.rewards[e]
                            + gamma * continuation(&table, &kernel[l], &values, num_levels, e);
                        if q > best_q {
                            best_q = q;
                            best_a = a as u32;
                        }
                    }
                    fresh[sl] = best_q;
                    best[sl] = best_a;
                    residual = residual.max((best_q - values[sl]).abs());
                }
            }
            std::mem::swap(&mut values, &mut fresh);
            sweeps += 1;
        }

        Self { config: config.clone(), grid, actions, num_levels, values, best, sweeps, residual }
    }

    /// Solves the discretized MDP by **policy iteration** (Howard's
    /// algorithm): iterative policy evaluation to `dp.tol`, then greedy
    /// improvement, until the policy is stable. Converges in far fewer
    /// improvement rounds than value-iteration sweeps and serves as an
    /// independent cross-check of [`DpSolution::solve`] (the two must
    /// agree — tested).
    pub fn solve_policy_iteration(
        config: &SystemConfig,
        actions: ActionLibrary,
        dp: &DpConfig,
    ) -> Self {
        Self::check_shapes(config, &actions);
        let grid = SimplexGrid::new(config.num_states(), dp.grid_resolution);
        let num_levels = config.arrivals.num_levels();
        let s_count = grid.num_points();
        let a_count = actions.len();

        let table = Self::precompute(config, &grid, &actions, num_levels, dp.threads);
        let gamma = config.gamma;
        let kernel: Vec<Vec<f64>> =
            (0..num_levels).map(|l| config.arrivals.kernel_row(l).to_vec()).collect();

        let mut policy = vec![0u32; s_count * num_levels];
        let mut values = vec![0.0f64; s_count * num_levels];
        let mut fresh = vec![0.0f64; s_count * num_levels];
        let mut total_eval_sweeps = 0usize;
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            // --- Policy evaluation: V ← T_π V until stable. ---
            let mut residual = f64::INFINITY;
            while residual > dp.tol && total_eval_sweeps < dp.max_sweeps {
                residual = 0.0;
                for s in 0..s_count {
                    for l in 0..num_levels {
                        let sl = s * num_levels + l;
                        let e = sl * a_count + policy[sl] as usize;
                        let v = table.rewards[e]
                            + gamma * continuation(&table, &kernel[l], &values, num_levels, e);
                        residual = residual.max((v - values[sl]).abs());
                        fresh[sl] = v;
                    }
                }
                std::mem::swap(&mut values, &mut fresh);
                total_eval_sweeps += 1;
            }
            // --- Greedy improvement. ---
            let mut stable = true;
            for s in 0..s_count {
                for l in 0..num_levels {
                    let sl = s * num_levels + l;
                    let mut best_q = f64::NEG_INFINITY;
                    let mut best_a = policy[sl];
                    for a in 0..a_count {
                        let e = sl * a_count + a;
                        let q = table.rewards[e]
                            + gamma * continuation(&table, &kernel[l], &values, num_levels, e);
                        if q > best_q + 1e-12 {
                            best_q = q;
                            best_a = a as u32;
                        }
                    }
                    if best_a != policy[sl] {
                        policy[sl] = best_a;
                        stable = false;
                    }
                }
            }
            if stable || total_eval_sweeps >= dp.max_sweeps || rounds > 100 {
                break;
            }
        }

        Self {
            config: config.clone(),
            grid,
            actions,
            num_levels,
            values,
            best: policy,
            sweeps: rounds,
            residual: dp.tol,
        }
    }

    fn check_shapes(config: &SystemConfig, actions: &ActionLibrary) {
        config.validate().expect("invalid system configuration");
        assert_eq!(actions.rule(0).num_states(), config.num_states(), "action shape");
        assert_eq!(actions.rule(0).d(), config.d, "action d");
    }

    /// Parallel precompute of every `(lattice point, level, action)`
    /// one-epoch transition.
    fn precompute(
        config: &SystemConfig,
        grid: &SimplexGrid,
        actions: &ActionLibrary,
        num_levels: usize,
        threads: usize,
    ) -> TransitionTable {
        let mdp = MeanFieldMdp::new(config.clone());
        let s_count = grid.num_points();
        let a_count = actions.len();
        let entries = s_count * num_levels * a_count;

        // Per-lattice-point staging, merged in order afterwards so the
        // result is independent of thread scheduling.
        type Staged = Vec<(f64, Vec<(usize, f64)>)>; // per (l, a) of one s
        let staged: Mutex<Vec<Option<Staged>>> = Mutex::new(vec![None; s_count]);

        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        }
        .min(s_count.max(1));

        let counter = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let s = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if s >= s_count {
                        break;
                    }
                    let nu = grid.point(s);
                    let mut rows: Staged = Vec::with_capacity(num_levels * a_count);
                    for l in 0..num_levels {
                        let state = mflb_core::MfState { dist: nu.clone(), lambda_idx: l };
                        for a in 0..a_count {
                            // The ν-transition ignores the *next* level, so
                            // any placeholder next level is fine here.
                            let (next, reward, _) =
                                mdp.step_with_next_lambda(&state, actions.rule(a), 0);
                            rows.push((reward, grid.interpolate(&next.dist)));
                        }
                    }
                    staged.lock()[s] = Some(rows);
                });
            }
        })
        .expect("DP precompute worker panicked");

        let staged = staged.into_inner();
        let mut offsets = Vec::with_capacity(entries + 1);
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        let mut rewards = Vec::with_capacity(entries);
        offsets.push(0u32);
        for rows in staged {
            let rows = rows.expect("every lattice point processed");
            for (reward, pairs) in rows {
                rewards.push(reward);
                for (idx, w) in pairs {
                    targets.push(idx as u32);
                    weights.push(w);
                }
                offsets.push(targets.len() as u32);
            }
        }
        TransitionTable { offsets, targets, weights, rewards }
    }

    /// The lattice used.
    pub fn grid(&self) -> &SimplexGrid {
        &self.grid
    }

    /// The action library used.
    pub fn actions(&self) -> &ActionLibrary {
        &self.actions
    }

    /// The system configuration solved for.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Optimal value of an arbitrary state, interpolated over the lattice.
    pub fn value(&self, dist: &StateDist, lambda_idx: usize) -> f64 {
        assert!(lambda_idx < self.num_levels);
        self.grid
            .interpolate(dist)
            .iter()
            .map(|&(s, w)| w * self.values[s * self.num_levels + lambda_idx])
            .sum()
    }

    /// One-step-lookahead Q-values of every library action at an
    /// arbitrary state: `Q(ν, l, a) = r + γ·Σ_{l'} P(l'|l)·V(ν', l')`
    /// with the next distribution `ν'` stepped through the exact model
    /// and the continuation interpolated over the lattice.
    pub fn q_values(&self, dist: &StateDist, lambda_idx: usize) -> Vec<f64> {
        assert!(lambda_idx < self.num_levels);
        let mdp = MeanFieldMdp::new(self.config.clone());
        let state = mflb_core::MfState { dist: dist.clone(), lambda_idx };
        let kernel = self.config.arrivals.kernel_row(lambda_idx);
        (0..self.actions.len())
            .map(|a| {
                let (next, reward, _) = mdp.step_with_next_lambda(&state, self.actions.rule(a), 0);
                let mut cont = 0.0;
                for (lp, &p) in kernel.iter().enumerate() {
                    cont += p * self.value(&next.dist, lp);
                }
                reward + self.config.gamma * cont
            })
            .collect()
    }

    /// Greedy action index by one-step lookahead from an arbitrary state
    /// (evaluates every library action through the true model and the
    /// interpolated continuation value).
    pub fn greedy_action(&self, dist: &StateDist, lambda_idx: usize) -> usize {
        let q = self.q_values(dist, lambda_idx);
        let mut best_a = 0usize;
        for (a, &qa) in q.iter().enumerate() {
            if qa > q[best_a] {
                best_a = a;
            }
        }
        best_a
    }

    /// Greedy action stored at a lattice index (fast path; test hook).
    pub fn greedy_action_at(&self, s: usize, l: usize) -> usize {
        self.best[s * self.num_levels + l] as usize
    }

    /// Recomputes `|V(s,l) − max_a Q(s,l,a)|` from the model at a lattice
    /// state (test hook for Bellman consistency).
    pub fn bellman_residual_at(&self, s: usize, l: usize) -> f64 {
        let nu = self.grid.point(s);
        let q = self.q_values(&nu, l);
        let best_q = q.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        (self.values[s * self.num_levels + l] - best_q).abs()
    }

    /// Number of arrival levels in the solved MDP.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Extracts the greedy policy as a reusable [`UpperPolicy`].
    pub fn into_policy(self) -> GridPolicy {
        GridPolicy { solution: std::sync::Arc::new(self), name: "MF-DP".to_string() }
    }

    /// Serializable snapshot of this solution.
    pub fn to_checkpoint(&self) -> DpCheckpoint {
        DpCheckpoint {
            config: self.config.clone(),
            grid_resolution: self.grid.resolution(),
            action_names: (0..self.actions.len())
                .map(|a| self.actions.name(a).to_string())
                .collect(),
            action_rules: self.actions.rules().to_vec(),
            values: self.values.clone(),
            best: self.best.clone(),
            sweeps: self.sweeps,
            residual: self.residual,
        }
    }

    /// Restores a solution from a checkpoint.
    ///
    /// # Panics
    /// Panics if the checkpoint is internally inconsistent. Use
    /// [`DpSolution::try_from_checkpoint`] for a fallible variant.
    pub fn from_checkpoint(ckpt: DpCheckpoint) -> Self {
        Self::try_from_checkpoint(ckpt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Restores a solution from a checkpoint, rejecting inconsistent
    /// tables with a [`DpError::Checkpoint`] instead of panicking.
    pub fn try_from_checkpoint(ckpt: DpCheckpoint) -> Result<Self, DpError> {
        ckpt.config.validate().map_err(DpError::Checkpoint)?;
        if ckpt.grid_resolution == 0 {
            return Err(DpError::Checkpoint("grid resolution must be positive".into()));
        }
        let grid = SimplexGrid::new(ckpt.config.num_states(), ckpt.grid_resolution);
        let num_levels = ckpt.config.arrivals.num_levels();
        if ckpt.values.len() != grid.num_points() * num_levels {
            return Err(DpError::Checkpoint(format!(
                "value table shape: {} entries, expected {}",
                ckpt.values.len(),
                grid.num_points() * num_levels
            )));
        }
        if ckpt.best.len() != ckpt.values.len() {
            return Err(DpError::Checkpoint(format!(
                "policy table shape: {} entries, expected {}",
                ckpt.best.len(),
                ckpt.values.len()
            )));
        }
        if ckpt.action_names.len() != ckpt.action_rules.len() || ckpt.action_rules.is_empty() {
            return Err(DpError::Checkpoint("action names/rules mismatch".into()));
        }
        let actions =
            ActionLibrary::new(ckpt.action_names.into_iter().zip(ckpt.action_rules).collect());
        if let Some(&bad) = ckpt.best.iter().find(|&&a| (a as usize) >= actions.len()) {
            return Err(DpError::Checkpoint(format!(
                "action index {bad} out of range (library has {})",
                actions.len()
            )));
        }
        Ok(Self {
            config: ckpt.config,
            grid,
            actions,
            num_levels,
            values: ckpt.values,
            best: ckpt.best,
            sweeps: ckpt.sweeps,
            residual: ckpt.residual,
        })
    }

    /// Saves the solution as JSON.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> Result<(), DpError> {
        let path = path.as_ref();
        let json = serde_json::to_string(&self.to_checkpoint())
            .map_err(|e| DpError::Json { path: path.to_path_buf(), source: e })?;
        std::fs::write(path, json).map_err(|e| DpError::Io { path: path.to_path_buf(), source: e })
    }

    /// Loads a solution saved by [`DpSolution::save_json`].
    pub fn load_json(path: impl AsRef<std::path::Path>) -> Result<Self, DpError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| DpError::Io { path: path.to_path_buf(), source: e })?;
        let ckpt: DpCheckpoint = serde_json::from_str(&json)
            .map_err(|e| DpError::Json { path: path.to_path_buf(), source: e })?;
        Self::try_from_checkpoint(ckpt)
    }
}

/// Serializable form of a [`DpSolution`] (JSON checkpoints, so the
/// expensive lattice solve can be reused across experiment runs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpCheckpoint {
    /// System configuration solved for.
    pub config: SystemConfig,
    /// Lattice resolution `G`.
    pub grid_resolution: usize,
    /// Display names of the action library.
    pub action_names: Vec<String>,
    /// The decision rules of the library, in order.
    pub action_rules: Vec<DecisionRule>,
    /// Flat optimal-value table.
    pub values: Vec<f64>,
    /// Flat greedy-action table.
    pub best: Vec<u32>,
    /// Sweeps/rounds the solver used.
    pub sweeps: usize,
    /// Final residual.
    pub residual: f64,
}

/// The greedy DP policy: one-step lookahead through the exact model with
/// the interpolated lattice value as continuation.
#[derive(Clone)]
pub struct GridPolicy {
    solution: std::sync::Arc<DpSolution>,
    name: String,
}

impl GridPolicy {
    /// Access to the underlying solution.
    pub fn solution(&self) -> &DpSolution {
        &self.solution
    }

    /// Renames the policy (harness display).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl UpperPolicy for GridPolicy {
    fn decide(&self, dist: &StateDist, lambda_idx: usize, _lambda: f64) -> DecisionRule {
        let a = self.solution.greedy_action(dist, lambda_idx);
        self.solution.actions.rule(a).clone()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_linalg::stats::Summary;
    use mflb_policy::{jsq_rule, rnd_rule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Small system so the full DP runs in test time: B = 3, Δt = 5.
    fn small_config() -> SystemConfig {
        SystemConfig::paper().with_buffer(3).with_dt(5.0)
    }

    fn small_dp() -> DpConfig {
        DpConfig { grid_resolution: 8, tol: 1e-8, max_sweeps: 5_000, threads: 0 }
    }

    #[test]
    fn converges_and_satisfies_bellman_equation() {
        let cfg = small_config();
        let lib = ActionLibrary::softmin_default(cfg.num_states(), cfg.d);
        let sol = DpSolution::solve(&cfg, lib, &small_dp());
        assert!(sol.residual <= 1e-8, "residual {}", sol.residual);
        assert!(sol.sweeps < 5_000);
        // Spot-check Bellman consistency on scattered lattice states.
        for s in (0..sol.grid().num_points()).step_by(29) {
            for l in 0..2 {
                let r = sol.bellman_residual_at(s, l);
                assert!(r < 1e-6, "Bellman residual {r} at (s={s}, l={l})");
            }
        }
    }

    #[test]
    fn single_action_library_is_policy_evaluation() {
        // With only RND available, VI computes the RND value function; the
        // value at ν₀ must match a Monte-Carlo discounted return of MF-RND.
        let cfg = small_config();
        let lib = ActionLibrary::new(vec![("RND".into(), rnd_rule(cfg.num_states(), cfg.d))]);
        let sol = DpSolution::solve(&cfg, lib, &small_dp());
        let mdp = MeanFieldMdp::new(cfg.clone());
        let policy = FixedRulePolicy::new(rnd_rule(cfg.num_states(), cfg.d), "MF-RND");
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = Summary::new();
        // Horizon long enough for γ^T to be negligible at γ = 0.99.
        for _ in 0..64 {
            s.push(mdp.rollout(&policy, 900, &mut rng).discounted_return);
        }
        let v0 =
            0.5 * (sol.value(&StateDist::all_empty(3), 0) + sol.value(&StateDist::all_empty(3), 1));
        let tol = 4.0 * s.std_err() + 0.02 * s.mean().abs();
        assert!(
            (v0 - s.mean()).abs() < tol,
            "DP value {v0} vs MC discounted return {} (tol {tol})",
            s.mean()
        );
    }

    #[test]
    fn dp_value_dominates_every_single_action_value() {
        // The optimal value over the library is ≥ the value of each fixed
        // action, at every lattice state (monotonicity of the Bellman
        // operator in the action set).
        let cfg = small_config();
        let zs = cfg.num_states();
        let full = DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &small_dp());
        for only in [0usize, 5, 9] {
            let lib = ActionLibrary::softmin_default(zs, cfg.d);
            let single =
                ActionLibrary::new(vec![(lib.name(only).to_string(), lib.rule(only).clone())]);
            let fixed = DpSolution::solve(&cfg, single, &small_dp());
            for s in (0..full.grid().num_points()).step_by(23) {
                let nu = full.grid().point(s);
                for l in 0..2 {
                    assert!(
                        full.value(&nu, l) >= fixed.value(&nu, l) - 1e-6,
                        "action {only}: optimal {} < fixed {} at (s={s}, l={l})",
                        full.value(&nu, l),
                        fixed.value(&nu, l)
                    );
                }
            }
        }
    }

    #[test]
    fn grid_policy_beats_jsq_and_rnd_in_true_mdp() {
        // Deploy the greedy DP policy in the *continuous* MFC MDP at
        // Δt = 5 and compare against the paper's baselines on common
        // arrival sequences.
        let cfg = small_config();
        let zs = cfg.num_states();
        let sol = DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &small_dp());
        let dp_policy = sol.into_policy();
        let mdp = MeanFieldMdp::new(cfg.clone());
        let jsq = FixedRulePolicy::new(jsq_rule(zs, cfg.d), "MF-JSQ(2)");
        let rnd = FixedRulePolicy::new(rnd_rule(zs, cfg.d), "MF-RND");
        let mut rng = StdRng::seed_from_u64(3);
        let horizon = 100;
        let (mut v_dp, mut v_jsq, mut v_rnd) = (0.0, 0.0, 0.0);
        for _ in 0..10 {
            let seq: Vec<usize> = {
                let mut s = vec![cfg.arrivals.sample_initial(&mut rng)];
                for t in 1..horizon {
                    let prev = s[t - 1];
                    s.push(cfg.arrivals.step(prev, &mut rng));
                }
                s
            };
            v_dp += mdp.rollout_conditioned(&dp_policy, &seq).total_return;
            v_jsq += mdp.rollout_conditioned(&jsq, &seq).total_return;
            v_rnd += mdp.rollout_conditioned(&rnd, &seq).total_return;
        }
        assert!(v_dp >= v_jsq, "DP ({v_dp:.2}) must beat MF-JSQ(2) ({v_jsq:.2}) at dt=5");
        assert!(v_dp >= v_rnd, "DP ({v_dp:.2}) must beat MF-RND ({v_rnd:.2}) at dt=5");
    }

    #[test]
    fn interpolated_values_stabilize_across_resolutions() {
        let cfg = small_config();
        let zs = cfg.num_states();
        let v = |g: usize| {
            let dp = DpConfig { grid_resolution: g, ..small_dp() };
            let sol = DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &dp);
            sol.value(&StateDist::all_empty(3), 0)
        };
        let coarse = v(4);
        let fine = v(10);
        assert!(
            (coarse - fine).abs() < 0.05 * fine.abs().max(1.0),
            "coarse {coarse} vs fine {fine}: interpolation should stabilize values"
        );
    }

    #[test]
    fn threads_do_not_change_the_solution() {
        let cfg = small_config();
        let zs = cfg.num_states();
        let mk = |threads: usize| {
            let dp = DpConfig { threads, ..small_dp() };
            DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &dp)
        };
        let a = mk(1);
        let b = mk(4);
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            assert_eq!(x, y, "value tables must be bit-identical across thread counts");
        }
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn policy_iteration_agrees_with_value_iteration() {
        let cfg = small_config();
        let zs = cfg.num_states();
        let vi = DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &small_dp());
        let pi = DpSolution::solve_policy_iteration(
            &cfg,
            ActionLibrary::softmin_default(zs, cfg.d),
            &small_dp(),
        );
        assert!(pi.sweeps <= 30, "PI should need few improvement rounds, used {}", pi.sweeps);
        let mut max_diff = 0.0f64;
        for (a, b) in vi.values.iter().zip(pi.values.iter()) {
            max_diff = max_diff.max((a - b).abs());
        }
        // Both solvers stop at tol; values agree up to the combined
        // stopping slack amplified by 1/(1−γ).
        let slack = 2.0 * small_dp().tol / (1.0 - cfg.gamma);
        assert!(max_diff < slack.max(1e-4), "VI/PI value mismatch {max_diff}");
        // Greedy actions agree except where two actions tie in value.
        let disagreements = vi.best.iter().zip(pi.best.iter()).filter(|(a, b)| a != b).count();
        let frac = disagreements as f64 / vi.best.len() as f64;
        assert!(frac < 0.02, "VI/PI greedy policies differ on {frac:.3} of states");
    }

    #[test]
    fn checkpoint_roundtrip_preserves_solution_and_policy() {
        let cfg = small_config();
        let zs = cfg.num_states();
        let sol = DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &small_dp());
        let restored = DpSolution::from_checkpoint(sol.to_checkpoint());
        assert_eq!(sol.values, restored.values);
        assert_eq!(sol.best, restored.best);
        // The restored policy decides identically on arbitrary states.
        let probe = StateDist::new(vec![0.4, 0.3, 0.2, 0.1]);
        for l in 0..2 {
            assert_eq!(sol.greedy_action(&probe, l), restored.greedy_action(&probe, l));
            assert_eq!(sol.value(&probe, l), restored.value(&probe, l));
        }
    }

    #[test]
    fn checkpoint_json_roundtrip_on_disk() {
        let cfg = small_config();
        let zs = cfg.num_states();
        let dp = DpConfig { grid_resolution: 4, ..small_dp() };
        let sol = DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &dp);
        let dir = std::env::temp_dir().join("mflb_dp_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sol.json");
        sol.save_json(&path).unwrap();
        let loaded = DpSolution::load_json(&path).unwrap();
        assert_eq!(sol.values, loaded.values);
        assert_eq!(sol.best, loaded.best);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let cfg = small_config();
        let zs = cfg.num_states();
        let dp = DpConfig { grid_resolution: 3, ..small_dp() };
        let sol = DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &dp);
        let mut ckpt = sol.to_checkpoint();
        ckpt.values.pop();
        let result = std::panic::catch_unwind(|| DpSolution::from_checkpoint(ckpt));
        assert!(result.is_err(), "truncated value table must be rejected");
    }
}

//! Typed errors for DP checkpoint I/O.
//!
//! `DpSolution::save_json`/`load_json` used to return `Result<_, String>`;
//! the CLI and the oracle cache need to distinguish "file missing" from
//! "file corrupt" and to compose with `std::error::Error` consumers, so
//! checkpoint I/O now reports a [`DpError`].

use std::fmt;
use std::path::PathBuf;

/// Errors arising when saving or loading a [`crate::DpCheckpoint`].
#[derive(Debug)]
pub enum DpError {
    /// The file could not be read or written.
    Io {
        /// Path of the offending file.
        path: PathBuf,
        /// Underlying filesystem error.
        source: std::io::Error,
    },
    /// The file's JSON could not be parsed or serialized.
    Json {
        /// Path of the offending file.
        path: PathBuf,
        /// Underlying (de)serialization error.
        source: serde_json::Error,
    },
    /// The checkpoint parsed but is internally inconsistent (table shapes,
    /// out-of-range action indices, invalid configuration).
    Checkpoint(String),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::Io { path, source } => {
                write!(f, "DP checkpoint I/O error at {}: {source}", path.display())
            }
            DpError::Json { path, source } => {
                write!(f, "DP checkpoint JSON error at {}: {source}", path.display())
            }
            DpError::Checkpoint(msg) => write!(f, "invalid DP checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for DpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DpError::Io { source, .. } => Some(source),
            DpError::Json { source, .. } => Some(source),
            DpError::Checkpoint(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_path_and_cause() {
        let err = DpError::Io {
            path: PathBuf::from("/nope/sol.json"),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        let text = err.to_string();
        assert!(text.contains("/nope/sol.json"), "{text}");
        assert!(text.contains("gone"), "{text}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn checkpoint_variant_has_no_source() {
        let err = DpError::Checkpoint("value table shape".into());
        assert!(std::error::Error::source(&err).is_none());
        assert!(err.to_string().contains("value table shape"));
    }
}

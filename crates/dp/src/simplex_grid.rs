//! A lattice discretization of the probability simplex `P(Z)`.
//!
//! Grid points are the distributions `ν = c/G` where `c ∈ ℕ^{|Z|}` is a
//! composition of the *resolution* `G` into `|Z|` nonnegative parts. The
//! number of points is `C(G + |Z| − 1, |Z| − 1)`, i.e. polynomial in `G`
//! for fixed `B` — small enough for exact value iteration at the paper's
//! `B = 5` and the resolutions used by the DP ablation.
//!
//! Indexing uses the combinatorial number system (lexicographic ranking of
//! compositions), so lookups need no hashing and rank/unrank are exact
//! inverses. [`SimplexGrid::snap`] projects an arbitrary distribution to a
//! nearest grid point (largest-remainder rounding, which minimizes the ℓ₁
//! distance among lattice points).

use mflb_core::StateDist;

/// A fixed-resolution lattice over the simplex of distributions on
/// `{0, …, B}`.
#[derive(Debug, Clone)]
pub struct SimplexGrid {
    num_states: usize,
    resolution: usize,
    /// `binom[n][k] = C(n, k)` for ranking, up to `G + |Z|`.
    binom: Vec<Vec<u64>>,
    num_points: usize,
}

impl SimplexGrid {
    /// Creates the grid for distributions over `num_states` states at
    /// resolution `G` (probabilities are multiples of `1/G`).
    ///
    /// # Panics
    /// Panics when there are no states, the resolution is zero, or the
    /// point count would overflow `usize`.
    pub fn new(num_states: usize, resolution: usize) -> Self {
        assert!(num_states >= 1);
        assert!(resolution >= 1);
        let n = resolution + num_states;
        let mut binom = vec![vec![0u64; n + 1]; n + 1];
        for i in 0..=n {
            binom[i][0] = 1;
            for k in 1..=i {
                let upper = if k < i { binom[i - 1][k] } else { 0 };
                binom[i][k] = binom[i - 1][k - 1]
                    .checked_add(upper)
                    .expect("binomial overflow: grid too large");
            }
        }
        let num_points = binom[resolution + num_states - 1][num_states - 1];
        let num_points = usize::try_from(num_points).expect("grid too large");
        Self { num_states, resolution, binom, num_points }
    }

    /// Number of states `|Z|`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Resolution `G`.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Number of lattice points `C(G + |Z| − 1, |Z| − 1)`.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    fn choose(&self, n: usize, k: usize) -> u64 {
        if k > n {
            0
        } else {
            self.binom[n][k]
        }
    }

    /// Number of compositions of `total` into `parts` nonnegative parts.
    fn compositions(&self, total: usize, parts: usize) -> u64 {
        if parts == 0 {
            return u64::from(total == 0);
        }
        self.choose(total + parts - 1, parts - 1)
    }

    /// Lexicographic rank of a composition (counts summing to `G`).
    ///
    /// # Panics
    /// Panics if the counts have the wrong length or sum.
    pub fn rank(&self, counts: &[usize]) -> usize {
        assert_eq!(counts.len(), self.num_states, "composition length");
        debug_assert_eq!(counts.iter().sum::<usize>(), self.resolution, "composition sum");
        let mut rank = 0u64;
        let mut remaining = self.resolution;
        for (pos, &c) in counts.iter().enumerate().take(self.num_states - 1) {
            let parts_after = self.num_states - pos - 1;
            // Compositions with a smaller count at this position come first.
            for smaller in 0..c {
                rank += self.compositions(remaining - smaller, parts_after);
            }
            remaining -= c;
        }
        usize::try_from(rank).expect("rank fits usize")
    }

    /// Inverse of [`SimplexGrid::rank`].
    pub fn unrank(&self, mut index: usize) -> Vec<usize> {
        assert!(index < self.num_points, "index {index} out of range");
        let mut counts = vec![0usize; self.num_states];
        let mut remaining = self.resolution;
        for pos in 0..self.num_states - 1 {
            let parts_after = self.num_states - pos - 1;
            let mut c = 0usize;
            loop {
                let block = self.compositions(remaining - c, parts_after) as usize;
                if index < block {
                    break;
                }
                index -= block;
                c += 1;
            }
            counts[pos] = c;
            remaining -= c;
        }
        counts[self.num_states - 1] = remaining;
        counts
    }

    /// The distribution at a lattice index.
    pub fn point(&self, index: usize) -> StateDist {
        let counts = self.unrank(index);
        let g = self.resolution as f64;
        StateDist::new(counts.iter().map(|&c| c as f64 / g).collect())
    }

    /// Projects a distribution to a nearest lattice point by
    /// largest-remainder rounding and returns its index.
    ///
    /// Rounding each `ν_i·G` down and distributing the leftover units to
    /// the largest fractional parts minimizes `‖ν − c/G‖₁` over the
    /// lattice (ties broken towards lower state indices).
    pub fn snap(&self, dist: &StateDist) -> usize {
        assert_eq!(dist.num_states(), self.num_states);
        let g = self.resolution;
        let mut counts = vec![0usize; self.num_states];
        let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(self.num_states);
        let mut used = 0usize;
        for (i, &p) in dist.as_slice().iter().enumerate() {
            let scaled = p * g as f64;
            let floor = scaled.floor() as usize;
            let floor = floor.min(g); // guard against 1+ε round-off
            counts[i] = floor;
            used += floor;
            fracs.push((scaled - floor as f64, i));
        }
        debug_assert!(used <= g, "floor counts exceed resolution");
        let mut leftover = g - used;
        // Largest fractional parts first; stable tie-break on state index.
        fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for &(_, i) in &fracs {
            if leftover == 0 {
                break;
            }
            counts[i] += 1;
            leftover -= 1;
        }
        debug_assert_eq!(counts.iter().sum::<usize>(), g);
        self.rank(&counts)
    }

    /// Iterates over all lattice indices (0..num_points).
    pub fn indices(&self) -> std::ops::Range<usize> {
        0..self.num_points
    }

    /// Decomposes a distribution into a convex combination of lattice
    /// points whose weighted average is **exactly** `ν` (linear-exact
    /// interpolation): returns `(index, weight)` pairs with positive
    /// weights summing to 1, at most `|Z| + 1` of them.
    ///
    /// Construction: write `G·ν = f + φ` with integer floors `f` and
    /// fractional parts `φ` summing to an integer `r`; decompose `φ` over
    /// the 0/1 vectors with exactly `r` ones by *systematic sampling* —
    /// the selection `X(u)`, `u ∈ [0,1)`, picks coordinate `i` iff the
    /// interval `(C_{i−1}, C_i]` of cumulative `φ` contains a point of
    /// `u + ℤ`. `X(·)` is piecewise constant with `E[X] = φ`, so
    /// integrating `u` yields exact weights. Every resulting `f + X` is a
    /// valid composition of `G`.
    ///
    /// Compared to [`SimplexGrid::snap`], this removes the `O(1/G)`
    /// first-order bias of nearest-point value lookups while remaining a
    /// sup-norm non-expansion (convex weights), so value iteration with
    /// interpolated continuation values is still a `γ`-contraction.
    pub fn interpolate(&self, dist: &StateDist) -> Vec<(usize, f64)> {
        assert_eq!(dist.num_states(), self.num_states);
        let n = self.num_states;
        let g = self.resolution as f64;
        let mut floors = vec![0usize; n];
        let mut fracs = vec![0.0f64; n];
        let mut floor_sum = 0usize;
        for (i, &p) in dist.as_slice().iter().enumerate() {
            let y = p * g;
            let mut f = y.floor();
            let mut phi = y - f;
            // Treat 1−ε fractional parts as integers (fp drift guard).
            if phi >= 1.0 - 1e-9 {
                f += 1.0;
                phi = 0.0;
            }
            floors[i] = f as usize;
            fracs[i] = phi.max(0.0);
            floor_sum += floors[i];
        }
        debug_assert!(floor_sum <= self.resolution, "floors exceed resolution");
        let r = self.resolution - floor_sum;
        if r == 0 {
            return vec![(self.rank(&floors), 1.0)];
        }
        // Force the fractional mass to sum to r exactly.
        let s: f64 = fracs.iter().sum();
        debug_assert!((s - r as f64).abs() < 1e-6, "fractional mass {s} vs r={r}");
        if s > 0.0 {
            let scale = r as f64 / s;
            for phi in &mut fracs {
                *phi = (*phi * scale).min(1.0);
            }
        }
        // Cumulative sums with the last pinned to r.
        let mut cum = vec![0.0f64; n];
        let mut acc = 0.0;
        for i in 0..n {
            acc += fracs[i];
            cum[i] = acc;
        }
        cum[n - 1] = r as f64;
        // Breakpoints of u ↦ X(u): fractional parts of the cumulative sums.
        let mut breaks: Vec<f64> = cum.iter().map(|c| c - c.floor()).collect();
        breaks.push(0.0);
        breaks.push(1.0);
        breaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        breaks.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut out: Vec<(usize, f64)> = Vec::with_capacity(n + 1);
        let mut vertex = vec![0usize; n];
        for w in breaks.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let weight = hi - lo;
            if weight <= 1e-12 {
                continue;
            }
            let u = 0.5 * (lo + hi);
            // X(u)_i = #integers in (C_{i−1} − u, C_i − u] ∈ {0, 1}.
            let mut prev = 0.0f64;
            let mut selected = 0usize;
            for i in 0..n {
                let k = ((cum[i] - u).floor() - (prev - u).floor()) as isize;
                debug_assert!((0..=1).contains(&k), "selection multiplicity {k}");
                vertex[i] = floors[i] + k as usize;
                selected += k as usize;
                prev = cum[i];
            }
            debug_assert_eq!(selected, r, "systematic sample size");
            let idx = self.rank(&vertex);
            match out.iter_mut().find(|(i, _)| *i == idx) {
                Some((_, acc_w)) => *acc_w += weight,
                None => out.push((idx, weight)),
            }
        }
        // Weights sum to 1 up to fp; renormalize defensively.
        let total: f64 = out.iter().map(|(_, w)| w).sum();
        debug_assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        for (_, w) in &mut out {
            *w /= total;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_count_matches_stars_and_bars() {
        // C(G + n − 1, n − 1).
        assert_eq!(SimplexGrid::new(6, 8).num_points(), 1287); // C(13,5)
        assert_eq!(SimplexGrid::new(3, 4).num_points(), 15); // C(6,2)
        assert_eq!(SimplexGrid::new(1, 5).num_points(), 1);
        assert_eq!(SimplexGrid::new(4, 1).num_points(), 4);
    }

    #[test]
    fn rank_unrank_roundtrip_exhaustive() {
        for (n, g) in [(3usize, 5usize), (4, 4), (6, 3), (2, 10)] {
            let grid = SimplexGrid::new(n, g);
            for idx in grid.indices() {
                let counts = grid.unrank(idx);
                assert_eq!(counts.len(), n);
                assert_eq!(counts.iter().sum::<usize>(), g);
                assert_eq!(grid.rank(&counts), idx, "n={n} g={g} idx={idx}");
            }
        }
    }

    #[test]
    fn unrank_is_lexicographically_increasing() {
        let grid = SimplexGrid::new(3, 4);
        let mut prev = grid.unrank(0);
        for idx in 1..grid.num_points() {
            let cur = grid.unrank(idx);
            assert!(cur > prev, "{cur:?} must follow {prev:?}");
            prev = cur;
        }
    }

    #[test]
    fn points_are_valid_distributions() {
        let grid = SimplexGrid::new(6, 8);
        for idx in [0, 1, 100, 642, 1286] {
            let p = grid.point(idx);
            let mass: f64 = p.as_slice().iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn snap_is_identity_on_lattice_points() {
        let grid = SimplexGrid::new(6, 8);
        for idx in grid.indices().step_by(37) {
            assert_eq!(grid.snap(&grid.point(idx)), idx);
        }
    }

    #[test]
    fn snap_minimizes_l1_distance() {
        // Brute-force check on a small grid: snapped point is no farther
        // than any other lattice point.
        let grid = SimplexGrid::new(3, 5);
        let candidates = [
            StateDist::new(vec![0.5, 0.3, 0.2]),
            StateDist::new(vec![0.05, 0.05, 0.9]),
            StateDist::new(vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
            StateDist::new(vec![0.11, 0.46, 0.43]),
        ];
        for nu in &candidates {
            let snapped = grid.point(grid.snap(nu));
            let ours = nu.l1_distance(&snapped);
            for idx in grid.indices() {
                let other = nu.l1_distance(&grid.point(idx));
                assert!(
                    ours <= other + 1e-12,
                    "snap {:?} -> {:?} (d={ours}) beaten by {:?} (d={other})",
                    nu.as_slice(),
                    snapped.as_slice(),
                    grid.point(idx).as_slice()
                );
            }
        }
    }

    #[test]
    fn snap_error_shrinks_with_resolution() {
        let nu = StateDist::new(vec![0.23, 0.17, 0.31, 0.12, 0.09, 0.08]);
        let mut last = f64::INFINITY;
        for g in [2usize, 4, 8, 16, 32] {
            let grid = SimplexGrid::new(6, g);
            let err = nu.l1_distance(&grid.point(grid.snap(&nu)));
            assert!(err <= last + 1e-12, "g={g}: err {err} > previous {last}");
            last = err;
        }
        assert!(last < 0.1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_rejects_out_of_range() {
        let grid = SimplexGrid::new(3, 2);
        grid.unrank(grid.num_points());
    }

    #[test]
    fn interpolation_is_linear_exact() {
        // Σ_k w_k · point_k == ν coordinate-wise, for assorted ν and G.
        let cases = [
            (3usize, 5usize, vec![0.5, 0.3, 0.2]),
            (6, 8, vec![0.23, 0.17, 0.31, 0.12, 0.09, 0.08]),
            (4, 3, vec![0.7, 0.1, 0.1, 0.1]),
            (6, 16, vec![0.01, 0.02, 0.03, 0.04, 0.4, 0.5]),
        ];
        for (n, g, probs) in cases {
            let grid = SimplexGrid::new(n, g);
            let nu = StateDist::new(probs);
            let parts = grid.interpolate(&nu);
            let wsum: f64 = parts.iter().map(|(_, w)| w).sum();
            assert!((wsum - 1.0).abs() < 1e-12);
            assert!(parts.iter().all(|&(_, w)| w > 0.0));
            assert!(parts.len() <= n + 1);
            let mut recon = vec![0.0f64; n];
            for &(idx, w) in &parts {
                for (r, &p) in recon.iter_mut().zip(grid.point(idx).as_slice()) {
                    *r += w * p;
                }
            }
            for (a, b) in recon.iter().zip(nu.as_slice()) {
                assert!((a - b).abs() < 1e-9, "reconstruction {a} vs {b} (n={n}, g={g})");
            }
        }
    }

    #[test]
    fn interpolation_of_lattice_point_is_itself() {
        let grid = SimplexGrid::new(6, 8);
        for idx in grid.indices().step_by(101) {
            let parts = grid.interpolate(&grid.point(idx));
            assert_eq!(parts.len(), 1, "{parts:?}");
            assert_eq!(parts[0].0, idx);
            assert!((parts[0].1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn interpolation_beats_snap_on_linear_functions() {
        // For the linear functional ν ↦ ν(B), interpolation is exact while
        // the nearest snap generally is not.
        let grid = SimplexGrid::new(6, 8);
        let nu = StateDist::new(vec![0.21, 0.19, 0.18, 0.17, 0.13, 0.12]);
        let f = |d: &StateDist| d.full_fraction();
        let interp: f64 =
            grid.interpolate(&nu).iter().map(|&(idx, w)| w * f(&grid.point(idx))).sum();
        let snapped = f(&grid.point(grid.snap(&nu)));
        assert!((interp - f(&nu)).abs() < 1e-9);
        assert!((interp - f(&nu)).abs() <= (snapped - f(&nu)).abs());
    }
}

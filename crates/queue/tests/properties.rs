//! Crate-level property tests for the queueing substrate.

use mflb_queue::fluid::fluid_epoch;
use mflb_queue::mmpp::ArrivalProcess;
use mflb_queue::sampler::Sampler;
use mflb_queue::BirthDeathQueue;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binomial sampling respects support and (over repeats) the mean.
    #[test]
    fn binomial_support_and_mean(n in 1u64..200_000, p in 0.0f64..1.0, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let reps = 40;
        for _ in 0..reps {
            let k = Sampler::binomial(&mut rng, n, p);
            prop_assert!(k <= n);
            sum += k as f64;
        }
        let mean = sum / reps as f64;
        let expect = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt().max(1.0);
        prop_assert!((mean - expect).abs() < 6.0 * sd / (reps as f64).sqrt() + 1e-9);
    }

    /// Poisson sampling is deterministic per seed and nonnegative.
    #[test]
    fn poisson_seed_determinism(mean in 0.0f64..5_000.0, seed in 0u64..500) {
        let a = Sampler::poisson(&mut StdRng::seed_from_u64(seed), mean);
        let b = Sampler::poisson(&mut StdRng::seed_from_u64(seed), mean);
        prop_assert_eq!(a, b);
    }

    /// The extended generator's drop prediction is consistent with mass
    /// conservation: E[accepted] = E[departures] + E[Δ level], and drops =
    /// arrivals − accepted ≥ 0.
    #[test]
    fn extended_generator_drop_bounds(
        lam in 0.0f64..3.0,
        alpha in 0.1f64..3.0,
        z in 0usize..6,
        dt in 0.1f64..12.0,
    ) {
        let q = BirthDeathQueue::new(lam, alpha, 5);
        let (dist, drops) = q.epoch_expectation(z, dt);
        let mass: f64 = dist.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(drops >= -1e-12);
        prop_assert!(drops <= lam * dt + 1e-9);
        // Expected level change is bounded by what can arrive/depart.
        let mean_end: f64 = dist.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        prop_assert!((-1e-12..=5.0 + 1e-12).contains(&mean_end));
    }

    /// Empirical epoch simulation agrees with the expm prediction on the
    /// mean end state (loose 6σ band with few samples).
    #[test]
    fn gillespie_mean_matches_expm(
        lam in 0.0f64..2.0,
        z in 0usize..6,
        dt in 0.2f64..6.0,
        seed in 0u64..200,
    ) {
        let q = BirthDeathQueue::new(lam, 1.0, 5);
        let (dist, _) = q.epoch_expectation(z, dt);
        let expect: f64 = dist.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let reps = 300;
        let mut sum = 0.0;
        for _ in 0..reps {
            sum += q.simulate_epoch(z, dt, &mut rng).final_state as f64;
        }
        let mean = sum / reps as f64;
        // Queue length sd ≤ ~2; 6σ/√reps band plus slack.
        prop_assert!((mean - expect).abs() < 6.0 * 2.0 / (reps as f64).sqrt() + 0.05,
            "mean {mean} vs expm {expect}");
    }

    /// Fluid epochs never create mass: drops + final ≤ initial + arrivals.
    #[test]
    fn fluid_mass_balance(
        level in 0.0f64..5.0,
        lam in 0.0f64..4.0,
        alpha in 0.0f64..4.0,
        dt in 0.0f64..10.0,
    ) {
        let e = fluid_epoch(level.min(5.0), lam, alpha, 5.0, dt);
        prop_assert!(e.final_level >= -1e-12 && e.final_level <= 5.0 + 1e-12);
        prop_assert!(e.drops >= -1e-12);
        // served = level + arrivals − drops − final ≥ 0 and ≤ α·dt.
        let served = level + lam * dt - e.drops - e.final_level;
        prop_assert!(served >= -1e-9, "negative service {served}");
        prop_assert!(served <= alpha * dt + 1e-9, "overserved {served}");
        prop_assert!(e.level_integral >= -1e-12);
        prop_assert!(e.level_integral <= 5.0 * dt + 1e-9);
    }

    /// Arrival-process trajectories only visit declared levels and respect
    /// kernel support.
    #[test]
    fn mmpp_trajectories_stay_in_support(seed in 0u64..300) {
        let p = ArrivalProcess::new(
            vec![1.0, 2.0, 3.0],
            vec![
                vec![0.5, 0.5, 0.0],
                vec![0.0, 0.5, 0.5],
                vec![0.5, 0.0, 0.5],
            ],
            vec![1.0, 0.0, 0.0],
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut level = p.sample_initial(&mut rng);
        prop_assert_eq!(level, 0);
        for _ in 0..50 {
            let next = p.step(level, &mut rng);
            // Kernel forbids certain jumps, e.g. 0 -> 2.
            prop_assert!(p.kernel_row(level)[next] > 0.0, "impossible jump {level} -> {next}");
            level = next;
        }
    }
}

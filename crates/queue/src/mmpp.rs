//! Markov-modulated arrival-rate process.
//!
//! The paper models time-varying load (e.g. day/night traffic) by letting
//! the arrival-rate parameter `λ_t` follow an independent discrete-time
//! Markov chain over a finite level set `Λ` (Eq. 1); the experiments use
//! two levels `(λ_h, λ_l) = (0.9, 0.6)` with switching probabilities
//! `P(h→l) = 0.2`, `P(l→h) = 0.5` (Eq. 32–33) and a uniform initial level.

use crate::sampler::Sampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A discrete-time Markov chain over arrival-rate levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProcess {
    /// The rate value of each level.
    levels: Vec<f64>,
    /// Row-stochastic transition kernel `P_λ` between levels.
    kernel: Vec<Vec<f64>>,
    /// Initial distribution over levels.
    initial: Vec<f64>,
}

impl ArrivalProcess {
    /// Creates a process from levels, a row-stochastic kernel and an
    /// initial distribution.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent, rows do not sum to 1, or any
    /// probability is negative.
    pub fn new(levels: Vec<f64>, kernel: Vec<Vec<f64>>, initial: Vec<f64>) -> Self {
        let k = levels.len();
        assert!(k >= 1, "need at least one arrival level");
        assert_eq!(kernel.len(), k, "kernel row count mismatch");
        assert_eq!(initial.len(), k, "initial distribution length mismatch");
        for lvl in &levels {
            assert!(*lvl >= 0.0 && lvl.is_finite(), "levels must be nonnegative");
        }
        for row in &kernel {
            assert_eq!(row.len(), k, "kernel must be square");
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "kernel rows must sum to 1 (got {s})");
            assert!(row.iter().all(|&p| p >= 0.0), "kernel entries must be >= 0");
        }
        let s: f64 = initial.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "initial distribution must sum to 1");
        Self { levels, kernel, initial }
    }

    /// The paper's two-level process: `λ_h = 0.9`, `λ_l = 0.6`,
    /// `P(h→l) = 0.2`, `P(l→h) = 0.5`, `λ_0 ∼ Unif{λ_h, λ_l}`.
    pub fn paper_default() -> Self {
        Self::new(vec![0.9, 0.6], vec![vec![0.8, 0.2], vec![0.5, 0.5]], vec![0.5, 0.5])
    }

    /// A constant-rate process (useful for tests and the Theorem-1 check,
    /// which conditions on the arrival-rate sequence).
    pub fn constant(rate: f64) -> Self {
        Self::new(vec![rate], vec![vec![1.0]], vec![1.0])
    }

    /// Number of levels `|Λ|`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Rate value of level `i`.
    pub fn level_rate(&self, i: usize) -> f64 {
        self.levels[i]
    }

    /// All level rates.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// The maximum rate over levels (used by boundedness arguments and for
    /// normalizing observations fed to the neural policy).
    pub fn max_rate(&self) -> f64 {
        self.levels.iter().copied().fold(0.0, f64::max)
    }

    /// Transition kernel row for level `i`.
    pub fn kernel_row(&self, i: usize) -> &[f64] {
        &self.kernel[i]
    }

    /// Samples the initial level index.
    pub fn sample_initial<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        Sampler::categorical(rng, &self.initial)
    }

    /// Samples the next level index given the current one.
    pub fn step<R: Rng + ?Sized>(&self, current: usize, rng: &mut R) -> usize {
        Sampler::categorical(rng, &self.kernel[current])
    }

    /// Stationary distribution of the modulation chain (power iteration;
    /// the chains here are tiny and aperiodic).
    pub fn stationary(&self) -> Vec<f64> {
        let k = self.num_levels();
        let mut pi = vec![1.0 / k as f64; k];
        for _ in 0..10_000 {
            let mut next = vec![0.0; k];
            for (i, &p) in pi.iter().enumerate() {
                for (j, &kij) in self.kernel[i].iter().enumerate() {
                    next[j] += p * kij;
                }
            }
            let diff: f64 = next.iter().zip(pi.iter()).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            if diff < 1e-14 {
                break;
            }
        }
        pi
    }

    /// Long-run average arrival rate `Σ_i π_i λ_i`.
    pub fn mean_rate(&self) -> f64 {
        self.stationary().iter().zip(self.levels.iter()).map(|(p, l)| p * l).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_structure() {
        let p = ArrivalProcess::paper_default();
        assert_eq!(p.num_levels(), 2);
        assert_eq!(p.level_rate(0), 0.9);
        assert_eq!(p.level_rate(1), 0.6);
        assert_eq!(p.kernel_row(0), &[0.8, 0.2]);
        assert_eq!(p.kernel_row(1), &[0.5, 0.5]);
    }

    #[test]
    fn stationary_of_paper_chain() {
        // pi_h * 0.2 = pi_l * 0.5  =>  pi_h = 5/7, pi_l = 2/7.
        let p = ArrivalProcess::paper_default();
        let pi = p.stationary();
        assert!((pi[0] - 5.0 / 7.0).abs() < 1e-10);
        assert!((pi[1] - 2.0 / 7.0).abs() < 1e-10);
        let mean = p.mean_rate();
        assert!((mean - (0.9 * 5.0 / 7.0 + 0.6 * 2.0 / 7.0)).abs() < 1e-10);
    }

    #[test]
    fn empirical_occupancy_matches_stationary() {
        let p = ArrivalProcess::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut level = p.sample_initial(&mut rng);
        let mut high = 0usize;
        let steps = 200_000;
        for _ in 0..steps {
            level = p.step(level, &mut rng);
            if level == 0 {
                high += 1;
            }
        }
        let frac = high as f64 / steps as f64;
        assert!((frac - 5.0 / 7.0).abs() < 5e-3, "high fraction {frac}");
    }

    #[test]
    fn constant_process_never_moves() {
        let p = ArrivalProcess::constant(0.75);
        let mut rng = StdRng::seed_from_u64(8);
        let mut level = p.sample_initial(&mut rng);
        for _ in 0..100 {
            level = p.step(level, &mut rng);
            assert_eq!(level, 0);
        }
        assert_eq!(p.level_rate(0), 0.75);
        assert_eq!(p.mean_rate(), 0.75);
    }

    #[test]
    #[should_panic(expected = "kernel rows must sum to 1")]
    fn rejects_non_stochastic_kernel() {
        ArrivalProcess::new(vec![1.0, 2.0], vec![vec![0.7, 0.7], vec![0.5, 0.5]], vec![0.5, 0.5]);
    }

    #[test]
    fn serde_roundtrip() {
        let p = ArrivalProcess::paper_default();
        let json = serde_json::to_string(&p).unwrap();
        let back: ArrivalProcess = serde_json::from_str(&json).unwrap();
        assert_eq!(back.levels(), p.levels());
        assert_eq!(back.kernel_row(1), p.kernel_row(1));
    }
}

//! Job-level FIFO queue with sojourn-time tracking.
//!
//! The headline objective of the paper is the drop count, for which the
//! birth–death abstraction suffices. This module keeps *individual jobs*
//! so response times (sojourn = waiting + service) can be measured — the
//! metric motivating the introduction ("higher response times … job
//! drops") and the natural extension metric for the examples.
//!
//! Service is exponential and memoryless, so the queue-length process of
//! [`FifoQueue`] coincides in law with [`crate::birth_death`]; the tests
//! exploit that for cross-validation.

use crate::sampler::Sampler;
use rand::Rng;
use std::collections::VecDeque;

/// A finite-buffer FIFO queue tracking per-job arrival times.
#[derive(Debug, Clone)]
pub struct FifoQueue {
    /// Service rate of the single server.
    pub service_rate: f64,
    /// Buffer capacity (maximum number of jobs in the system).
    pub buffer: usize,
    /// Arrival time of each job currently in the system, oldest first.
    jobs: VecDeque<f64>,
    /// Current absolute time of the queue's local clock.
    clock: f64,
}

/// Statistics gathered while running a [`FifoQueue`] over an interval.
#[derive(Debug, Clone, Default)]
pub struct FifoStats {
    /// Completed jobs' sojourn times (arrival to departure).
    pub sojourn_times: Vec<f64>,
    /// Number of jobs dropped because the buffer was full on arrival.
    pub drops: u64,
    /// Number of jobs accepted.
    pub accepted: u64,
    /// Number of jobs completed.
    pub completed: u64,
}

impl FifoStats {
    /// Mean sojourn time of completed jobs (0 if none completed).
    pub fn mean_sojourn(&self) -> f64 {
        if self.sojourn_times.is_empty() {
            0.0
        } else {
            self.sojourn_times.iter().sum::<f64>() / self.sojourn_times.len() as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: FifoStats) {
        self.sojourn_times.extend(other.sojourn_times);
        self.drops += other.drops;
        self.accepted += other.accepted;
        self.completed += other.completed;
    }
}

impl FifoQueue {
    /// Creates an empty queue.
    pub fn new(service_rate: f64, buffer: usize) -> Self {
        assert!(service_rate >= 0.0 && service_rate.is_finite());
        assert!(buffer >= 1);
        Self { service_rate, buffer, jobs: VecDeque::new(), clock: 0.0 }
    }

    /// Current number of jobs in the system.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` iff the queue holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Current local clock.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Seeds the queue with `n` jobs that arrived "just now" (used to start
    /// epochs from a prescribed queue length).
    pub fn preload(&mut self, n: usize) {
        assert!(n <= self.buffer);
        self.jobs.clear();
        for _ in 0..n {
            self.jobs.push_back(self.clock);
        }
    }

    /// Runs the queue for `dt` time units with Poisson arrivals at `rate`,
    /// exactly (event-driven, exponential clocks).
    pub fn run_epoch<R: Rng + ?Sized>(&mut self, rate: f64, dt: f64, rng: &mut R) -> FifoStats {
        assert!(rate >= 0.0 && dt >= 0.0);
        let mut stats = FifoStats::default();
        let end = self.clock + dt;
        loop {
            let service = if self.jobs.is_empty() { 0.0 } else { self.service_rate };
            let total = rate + service;
            if total <= 0.0 {
                break;
            }
            let dt_next = Sampler::exponential(rng, total);
            if self.clock + dt_next > end {
                break;
            }
            self.clock += dt_next;
            if rng.gen::<f64>() * total < rate {
                // Arrival.
                if self.jobs.len() == self.buffer {
                    stats.drops += 1;
                } else {
                    self.jobs.push_back(self.clock);
                    stats.accepted += 1;
                }
            } else {
                // FIFO departure of the oldest job.
                let arrived = self.jobs.pop_front().expect("service fired on empty queue");
                stats.sojourn_times.push(self.clock - arrived);
                stats.completed += 1;
            }
        }
        self.clock = end;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::birth_death::BirthDeathQueue;
    use mflb_linalg::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conservation_of_jobs() {
        let mut q = FifoQueue::new(1.0, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let start = q.len();
        let stats = q.run_epoch(0.8, 50.0, &mut rng);
        assert_eq!(q.len() as i64, start as i64 + stats.accepted as i64 - stats.completed as i64);
    }

    #[test]
    fn sojourn_times_positive_and_fifo_ordered_departures() {
        let mut q = FifoQueue::new(1.5, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let stats = q.run_epoch(1.0, 200.0, &mut rng);
        assert!(stats.completed > 50);
        for &s in &stats.sojourn_times {
            assert!(s > 0.0);
        }
    }

    #[test]
    fn queue_length_law_matches_birth_death() {
        // Same (λ, α, B): the end-of-epoch length distribution must match
        // the birth-death model statistically.
        let (lam, alpha, b, dt) = (0.9, 1.0, 5usize, 4.0);
        let bd = BirthDeathQueue::new(lam, alpha, b);
        let (analytic, _) = bd.epoch_expectation(0, dt);
        let mut rng = StdRng::seed_from_u64(3);
        let n_runs = 100_000;
        let mut counts = vec![0.0; b + 1];
        for _ in 0..n_runs {
            let mut q = FifoQueue::new(alpha, b);
            q.run_epoch(lam, dt, &mut rng);
            counts[q.len()] += 1.0;
        }
        for c in &mut counts {
            *c /= n_runs as f64;
        }
        for (e, a) in counts.iter().zip(analytic.iter()) {
            assert!((e - a).abs() < 6e-3, "{e} vs {a}");
        }
    }

    #[test]
    fn mean_sojourn_matches_littles_law_in_steady_state() {
        // Little's law on the accepted stream: E[L] = λ_eff · E[W].
        let (lam, alpha, b) = (0.7, 1.0, 10usize);
        let mut q = FifoQueue::new(alpha, b);
        let mut rng = StdRng::seed_from_u64(4);
        // Warm-up to approach stationarity.
        q.run_epoch(lam, 500.0, &mut rng);
        let mut stats = FifoStats::default();
        let mut area = 0.0; // time-integral of queue length, via sampling
        let samples = 40_000;
        let step = 0.25;
        for _ in 0..samples {
            stats.merge(q.run_epoch(lam, step, &mut rng));
            area += q.len() as f64;
        }
        let mean_len = area / samples as f64;
        let horizon = samples as f64 * step;
        let lam_eff = stats.accepted as f64 / horizon;
        let lhs = mean_len;
        let rhs = lam_eff * stats.mean_sojourn();
        assert!((lhs - rhs).abs() < 0.1 * lhs.max(0.1), "L {lhs} vs λW {rhs}");
    }

    #[test]
    fn preload_sets_length() {
        let mut q = FifoQueue::new(1.0, 6);
        q.preload(4);
        assert_eq!(q.len(), 4);
        let mut rng = StdRng::seed_from_u64(5);
        let stats = q.run_epoch(0.0, 100.0, &mut rng);
        assert_eq!(stats.completed, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn heavier_load_gives_longer_sojourns() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut means = Vec::new();
        for &lam in &[0.3, 0.8] {
            let mut q = FifoQueue::new(1.0, 20);
            q.run_epoch(lam, 300.0, &mut rng); // warm-up
            let mut s = Summary::new();
            for _ in 0..200 {
                let st = q.run_epoch(lam, 10.0, &mut rng);
                for v in st.sojourn_times {
                    s.push(v);
                }
            }
            means.push(s.mean());
        }
        assert!(means[1] > means[0], "sojourn must grow with load: {means:?}");
    }
}

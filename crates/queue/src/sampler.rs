//! Exact non-uniform random variate generation.
//!
//! The `rand` crate is used **only** as a uniform bit/float source; every
//! non-uniform distribution needed by the simulators is implemented here
//! from first principles so the whole stochastic stack is auditable:
//!
//! * [`Sampler::exponential`] — inversion,
//! * [`Sampler::poisson`] — chop-down inversion for small means and
//!   Hörmann's PTRS transformed-rejection for large means,
//! * [`Sampler::binomial`] — BINV chop-down inversion for small `n·min(p,q)`
//!   and Hörmann's BTRS transformed-rejection otherwise,
//! * [`Sampler::multinomial`] — exact conditional-binomial decomposition
//!   (the key to simulating `N = 10^6` clients in O(M) per epoch),
//! * [`AliasTable`] — Walker/Vose alias method for O(1) categorical draws.
//!
//! Each sampler is validated in the test-suite with chi-square
//! goodness-of-fit tests against the exact pmf.

use mflb_linalg::stats::ln_gamma;
use rand::Rng;

/// Ergonomic façade over a [`rand::Rng`] adding the exact non-uniform
/// samplers used throughout the workspace.
///
/// The struct is a zero-cost wrapper: it borrows the RNG mutably for the
/// duration of a call.
pub struct Sampler;

impl Sampler {
    /// Exponential variate with the given `rate` (mean `1/rate`).
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "exponential rate must be positive");
        // Inversion: -ln(U)/rate with U in (0,1]; gen::<f64>() is [0,1), so
        // flip to (0,1] to avoid ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / rate
    }

    /// Poisson variate with the given `mean`.
    ///
    /// Uses chop-down inversion for `mean < 10` and the PTRS transformed
    /// rejection method (Hörmann 1993) above, with the acceptance test
    /// evaluated through the exact log-pmf.
    pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
        assert!(mean >= 0.0 && mean.is_finite(), "poisson mean must be nonnegative");
        if mean == 0.0 {
            return 0;
        }
        if mean < 10.0 {
            poisson_inversion(rng, mean)
        } else {
            poisson_ptrs(rng, mean)
        }
    }

    /// Binomial variate `Binomial(n, p)`.
    ///
    /// Uses BINV chop-down inversion when `n·min(p, 1−p)` is small and the
    /// BTRS transformed-rejection method otherwise; `p > 1/2` is handled by
    /// symmetry.
    pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "binomial p must be in [0,1]");
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        if p > 0.5 {
            return n - Self::binomial(rng, n, 1.0 - p);
        }
        // Here p <= 0.5.
        let np = n as f64 * p;
        // BINV is exact and fast while both the expected chop-down length
        // and the q^n underflow risk stay small.
        if np < 30.0 && (n as f64) * (1.0 - p).ln() > -700.0 {
            binomial_binv(rng, n, p)
        } else {
            binomial_btrs(rng, n, p)
        }
    }

    /// Exact multinomial sample: allocates `n` trials over `probs` (which
    /// must sum to ≤ 1; the residual mass is an implicit "none" category)
    /// using the conditional-binomial decomposition.
    ///
    /// Returns a count per explicit category. Cost O(len(probs)) regardless
    /// of `n`.
    pub fn multinomial<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64]) -> Vec<u64> {
        let mut counts = vec![0u64; probs.len()];
        let mut remaining_n = n;
        let mut remaining_mass = 1.0f64;
        for (i, &p) in probs.iter().enumerate() {
            if remaining_n == 0 {
                break;
            }
            debug_assert!(p >= -1e-12, "negative category probability");
            let p = p.max(0.0);
            if remaining_mass <= 0.0 {
                break;
            }
            let cond = (p / remaining_mass).clamp(0.0, 1.0);
            let c = Self::binomial(rng, remaining_n, cond);
            counts[i] = c;
            remaining_n -= c;
            remaining_mass -= p;
        }
        counts
    }

    /// Samples an index from an explicit discrete pmf by linear inversion.
    ///
    /// Suitable for short pmfs (the action spaces here have ≤ a few dozen
    /// entries); use [`AliasTable`] for repeated draws from longer ones.
    pub fn categorical<R: Rng + ?Sized>(rng: &mut R, pmf: &[f64]) -> usize {
        debug_assert!(!pmf.is_empty());
        let total: f64 = pmf.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        for (i, &p) in pmf.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return i;
            }
        }
        pmf.len() - 1 // floating-point slack lands on the last category
    }
}

/// Chop-down inversion for Poisson (small mean).
fn poisson_inversion<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    let mut k = 0u64;
    let mut prob = (-mean).exp();
    let mut cdf = prob;
    let u: f64 = rng.gen();
    while u > cdf {
        k += 1;
        prob *= mean / k as f64;
        cdf += prob;
        if k > 10_000 {
            break; // unreachable for mean < 10; defensive cap
        }
    }
    k
}

/// PTRS transformed rejection for Poisson (mean ≥ 10), exact log-pmf
/// acceptance.
fn poisson_ptrs<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    let b = 0.931 + 2.53 * mean.sqrt();
    let a = -0.059 + 0.024_83 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    let ln_mean = mean.ln();
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let v: f64 = rng.gen();
        let us = 0.5 - u.abs();
        let k_f = (2.0 * a / us + b) * u + mean + 0.43;
        if k_f < 0.0 {
            continue;
        }
        let k = k_f.floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if us < 0.013 && v > us {
            continue;
        }
        // Exact acceptance: ln of hat density vs ln pmf.
        let lhs = (v * inv_alpha / (a / (us * us) + b)).ln();
        let rhs = k * ln_mean - mean - ln_gamma(k + 1.0);
        if lhs <= rhs {
            return k as u64;
        }
    }
}

/// BINV chop-down inversion for binomial (requires p ≤ 1/2, small n·p).
fn binomial_binv<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n + 1) as f64 * s;
    let mut r = q.powf(n as f64);
    let mut u: f64 = rng.gen();
    let mut x = 0u64;
    loop {
        if u <= r {
            return x;
        }
        u -= r;
        x += 1;
        if x > n {
            // Numerical tail exhaustion: the leftover mass is < 1e-15.
            return n;
        }
        r *= a / x as f64 - s;
    }
}

/// BTRS transformed rejection for binomial (requires p ≤ 1/2, n·p ≥ 10),
/// with the acceptance test evaluated through the exact log-pmf ratio to
/// the mode.
fn binomial_btrs<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let npq = nf * p * q;
    let spq = npq.sqrt();
    let b = 1.15 + 2.53 * spq;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = nf * p + 0.5;
    let v_r = 0.92 - 4.2 / b;
    let alpha = (2.83 + 5.1 / b) * spq;
    let lpq = (p / q).ln();
    let m = ((n + 1) as f64 * p).floor(); // mode
    let h = ln_gamma(m + 1.0) + ln_gamma(nf - m + 1.0);
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let v: f64 = rng.gen();
        let us = 0.5 - u.abs();
        let k_f = ((2.0 * a / us + b) * u + c).floor();
        if k_f < 0.0 || k_f > nf {
            continue;
        }
        if us >= 0.07 && v <= v_r {
            return k_f as u64;
        }
        // Exact acceptance against the pmf ratio f(k)/f(m).
        let k = k_f;
        let lhs = (v * alpha / (a / (us * us) + b)).ln();
        let rhs = h - ln_gamma(k + 1.0) - ln_gamma(nf - k + 1.0) + (k - m) * lpq;
        if lhs <= rhs {
            return k as u64;
        }
    }
}

/// Walker/Vose alias table for O(1) sampling from a fixed categorical
/// distribution.
///
/// Construction is O(K); each draw consumes one uniform for the column and
/// one for the coin.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from (unnormalized) nonnegative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite entry,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one category");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "alias table weights must sum to a positive finite value"
        );
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "alias weights must be nonnegative");
        }
        let k = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * k as f64 / total).collect();
        let mut alias = vec![0usize; k];
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            // Donate mass from the large column to fill the small one.
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` iff the table has no categories (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let k = self.prob.len();
        let col = rng.gen_range(0..k);
        if rng.gen::<f64>() < self.prob[col] {
            col
        } else {
            self.alias[col]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_linalg::stats::{chi_square_test, ln_gamma};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn poisson_pmf(mean: f64, k: u64) -> f64 {
        (k as f64 * mean.ln() - mean - ln_gamma(k as f64 + 1.0)).exp()
    }

    fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
        let (nf, kf) = (n as f64, k as f64);
        (ln_gamma(nf + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(nf - kf + 1.0)
            + kf * p.ln()
            + (nf - kf) * (1.0 - p).ln())
        .exp()
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let rate = 2.5;
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = Sampler::exponential(&mut rng, rate);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 5e-3, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean_chi_square() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean = 3.7;
        let draws = 100_000usize;
        let maxk = 25usize;
        let mut obs = vec![0.0; maxk + 1];
        for _ in 0..draws {
            let k = Sampler::poisson(&mut rng, mean) as usize;
            obs[k.min(maxk)] += 1.0;
        }
        let mut exp: Vec<f64> =
            (0..=maxk).map(|k| poisson_pmf(mean, k as u64) * draws as f64).collect();
        // Fold the tail into the last bin.
        let tail = draws as f64 - exp.iter().sum::<f64>();
        *exp.last_mut().unwrap() += tail.max(0.0);
        let (_, _, p) = chi_square_test(&obs, &exp, 5.0);
        assert!(p > 1e-4, "poisson small-mean chi-square p = {p}");
    }

    #[test]
    fn poisson_large_mean_chi_square() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = 80.0;
        let draws = 100_000usize;
        let lo = 30usize;
        let hi = 140usize;
        let mut obs = vec![0.0; hi - lo + 1];
        for _ in 0..draws {
            let k = (Sampler::poisson(&mut rng, mean) as usize).clamp(lo, hi);
            obs[k - lo] += 1.0;
        }
        let mut exp: Vec<f64> =
            (lo..=hi).map(|k| poisson_pmf(mean, k as u64) * draws as f64).collect();
        let covered: f64 = exp.iter().sum();
        exp[0] += ((draws as f64) - covered).max(0.0) / 2.0;
        let last = exp.len() - 1;
        exp[last] += ((draws as f64) - covered).max(0.0) / 2.0;
        let (_, _, p) = chi_square_test(&obs, &exp, 5.0);
        assert!(p > 1e-4, "poisson large-mean chi-square p = {p}");
    }

    #[test]
    fn poisson_mean_variance_large() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean = 500.0;
        let n = 50_000;
        let mut s = mflb_linalg::stats::Summary::new();
        for _ in 0..n {
            s.push(Sampler::poisson(&mut rng, mean) as f64);
        }
        assert!((s.mean() - mean).abs() < 0.5, "mean {}", s.mean());
        assert!((s.variance() - mean).abs() < 15.0, "var {}", s.variance());
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(Sampler::binomial(&mut rng, 0, 0.3), 0);
        assert_eq!(Sampler::binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(Sampler::binomial(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn binomial_small_chi_square() {
        let mut rng = StdRng::seed_from_u64(6);
        let (n, p) = (20u64, 0.3);
        let draws = 100_000usize;
        let mut obs = vec![0.0; n as usize + 1];
        for _ in 0..draws {
            obs[Sampler::binomial(&mut rng, n, p) as usize] += 1.0;
        }
        let exp: Vec<f64> = (0..=n).map(|k| binomial_pmf(n, p, k) * draws as f64).collect();
        let (_, _, pv) = chi_square_test(&obs, &exp, 5.0);
        assert!(pv > 1e-4, "binomial BINV chi-square p = {pv}");
    }

    #[test]
    fn binomial_btrs_chi_square() {
        let mut rng = StdRng::seed_from_u64(7);
        let (n, p) = (10_000u64, 0.02); // np = 200 -> BTRS path
        let draws = 60_000usize;
        let lo = 120u64;
        let hi = 280u64;
        let mut obs = vec![0.0; (hi - lo + 1) as usize];
        for _ in 0..draws {
            let k = Sampler::binomial(&mut rng, n, p).clamp(lo, hi);
            obs[(k - lo) as usize] += 1.0;
        }
        let mut exp: Vec<f64> = (lo..=hi).map(|k| binomial_pmf(n, p, k) * draws as f64).collect();
        let covered: f64 = exp.iter().sum();
        exp[0] += ((draws as f64) - covered).max(0.0);
        let (_, _, pv) = chi_square_test(&obs, &exp, 5.0);
        assert!(pv > 1e-4, "binomial BTRS chi-square p = {pv}");
    }

    #[test]
    fn binomial_symmetry_large_p() {
        let mut rng = StdRng::seed_from_u64(8);
        let (n, p) = (5_000u64, 0.97);
        let mut s = mflb_linalg::stats::Summary::new();
        for _ in 0..20_000 {
            s.push(Sampler::binomial(&mut rng, n, p) as f64);
        }
        let expect_mean = n as f64 * p;
        let expect_var = n as f64 * p * (1.0 - p);
        assert!((s.mean() - expect_mean).abs() < 0.5, "mean {}", s.mean());
        assert!((s.variance() - expect_var).abs() < expect_var * 0.1);
    }

    #[test]
    fn multinomial_counts_sum_and_marginals() {
        let mut rng = StdRng::seed_from_u64(9);
        let probs = [0.1, 0.25, 0.05, 0.4, 0.2];
        let n = 1_000_000u64;
        let counts = Sampler::multinomial(&mut rng, n, &probs);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, n); // probs sum to 1 -> everything allocated
        for (c, p) in counts.iter().zip(probs.iter()) {
            let expect = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            assert!(((*c as f64) - expect).abs() < 6.0 * sd, "count {c} vs expected {expect}");
        }
    }

    #[test]
    fn multinomial_with_residual_mass() {
        let mut rng = StdRng::seed_from_u64(10);
        let probs = [0.2, 0.3]; // 0.5 implicit "none"
        let n = 100_000u64;
        let counts = Sampler::multinomial(&mut rng, n, &probs);
        let total: u64 = counts.iter().sum();
        assert!(total < n);
        let expect = 0.5 * n as f64;
        assert!(((total as f64) - expect).abs() < 6.0 * (n as f64 * 0.25).sqrt());
    }

    #[test]
    fn alias_table_matches_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let weights = [1.0, 5.0, 0.5, 3.5, 0.0, 2.0];
        let table = AliasTable::new(&weights);
        let draws = 200_000usize;
        let mut obs = vec![0.0; weights.len()];
        for _ in 0..draws {
            obs[table.sample(&mut rng)] += 1.0;
        }
        let total: f64 = weights.iter().sum();
        let exp: Vec<f64> = weights.iter().map(|w| w / total * draws as f64).collect();
        assert_eq!(obs[4], 0.0, "zero-weight category must never be drawn");
        let (_, _, p) = chi_square_test(&obs, &exp, 5.0);
        assert!(p > 1e-4, "alias chi-square p = {p}");
    }

    #[test]
    fn categorical_respects_pmf() {
        let mut rng = StdRng::seed_from_u64(12);
        let pmf = [0.5, 0.5];
        let mut ones = 0usize;
        for _ in 0..10_000 {
            ones += Sampler::categorical(&mut rng, &pmf);
        }
        assert!((ones as f64 - 5_000.0).abs() < 300.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(Sampler::poisson(&mut a, 47.0), Sampler::poisson(&mut b, 47.0));
            assert_eq!(
                Sampler::binomial(&mut a, 1_000_000, 0.001),
                Sampler::binomial(&mut b, 1_000_000, 0.001)
            );
        }
    }
}

//! Deterministic fluid (large-buffer) approximation of a queue — the
//! paper's §5 note that "real-valued approximations of the queue states as
//! B ≫ 1" would help scaling.
//!
//! For a queue with arrival rate `λ` and service rate `α`, the fluid level
//! `x(τ) ∈ [0, B]` follows
//!
//! ```text
//! ẋ = λ − α·1{x > 0}   clipped to [0, B],
//! ```
//!
//! with overflow `λ − α` accumulating as drops while `x = B` and `λ > α`.
//! Between boundary hits the dynamics are affine, so the epoch can be
//! integrated **exactly** piecewise — no ODE solver needed. The fluid
//! model is the `B → ∞`-style limit of the CTMC in the law-of-large-
//! numbers scaling; tests verify it bounds/approximates the CTMC's mean
//! behaviour for large buffers and heavy loads.

use serde::{Deserialize, Serialize};

/// Result of one fluid epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidEpoch {
    /// Fluid level at the end of the epoch.
    pub final_level: f64,
    /// Fluid volume lost to overflow during the epoch.
    pub drops: f64,
    /// Time-integral of the level over the epoch (for holding costs /
    /// Little's-law estimates).
    pub level_integral: f64,
}

/// Exactly integrates the fluid queue from `level` for `dt` time units
/// with constant rates.
///
/// # Panics
/// Panics on negative inputs or `level > buffer`.
pub fn fluid_epoch(level: f64, arrival: f64, service: f64, buffer: f64, dt: f64) -> FluidEpoch {
    assert!(level >= 0.0 && level <= buffer + 1e-12, "level out of range");
    assert!(arrival >= 0.0 && service >= 0.0 && buffer > 0.0 && dt >= 0.0);
    let mut x = level.min(buffer);
    let mut t = 0.0;
    let mut drops = 0.0;
    let mut integral = 0.0;
    let net = arrival - service;

    while t < dt {
        let remaining = dt - t;
        if x <= 0.0 && arrival <= service {
            // Stuck at empty: level stays 0 (served as it arrives).
            return FluidEpoch { final_level: 0.0, drops, level_integral: integral };
        }
        if x >= buffer && net >= 0.0 {
            // Stuck at full: overflow at rate net for the rest of the epoch.
            drops += net * remaining;
            integral += buffer * remaining;
            return FluidEpoch { final_level: buffer, drops, level_integral: integral };
        }
        // Interior affine segment: find the next boundary hit.
        let slope = if x > 0.0 || net > 0.0 { net } else { 0.0 };
        if slope == 0.0 {
            integral += x * remaining;
            return FluidEpoch { final_level: x, drops, level_integral: integral };
        }
        let hit = if slope > 0.0 { (buffer - x) / slope } else { -x / slope };
        let seg = hit.min(remaining);
        integral += x * seg + 0.5 * slope * seg * seg;
        x += slope * seg;
        x = x.clamp(0.0, buffer);
        t += seg;
    }
    FluidEpoch { final_level: x, drops, level_integral: integral }
}

/// Long-run fluid drop rate: `max(λ − α, 0)` once the buffer is saturated,
/// 0 otherwise (the classic fluid loss formula).
pub fn fluid_loss_rate(arrival: f64, service: f64) -> f64 {
    (arrival - service).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::birth_death::BirthDeathQueue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drains_exactly_when_idle() {
        // x0 = 3, λ = 0, α = 1: empties after exactly 3 time units.
        let e = fluid_epoch(3.0, 0.0, 1.0, 10.0, 5.0);
        assert_eq!(e.final_level, 0.0);
        assert_eq!(e.drops, 0.0);
        // Integral: triangle 3·3/2 = 4.5.
        assert!((e.level_integral - 4.5).abs() < 1e-12);
    }

    #[test]
    fn fills_and_overflows() {
        // x0 = 0, λ = 2, α = 1, B = 3: fills in 3 units, then overflows at
        // rate 1 for the remaining 2 units.
        let e = fluid_epoch(0.0, 2.0, 1.0, 3.0, 5.0);
        assert_eq!(e.final_level, 3.0);
        assert!((e.drops - 2.0).abs() < 1e-12);
        // Integral: ramp (0..3 over 3u) = 4.5, plateau 3·2 = 6.
        assert!((e.level_integral - 10.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_rates_hold_level() {
        let e = fluid_epoch(2.0, 1.0, 1.0, 5.0, 4.0);
        assert!((e.final_level - 2.0).abs() < 1e-12);
        assert_eq!(e.drops, 0.0);
        assert!((e.level_integral - 8.0).abs() < 1e-12);
    }

    #[test]
    fn loss_rate_formula() {
        assert_eq!(fluid_loss_rate(0.8, 1.0), 0.0);
        assert!((fluid_loss_rate(1.4, 1.0) - 0.4).abs() < 1e-15);
    }

    #[test]
    fn approximates_ctmc_mean_for_large_buffer_overload() {
        // Heavy overload, large buffer: CTMC mean drops per epoch approach
        // the fluid prediction (law of large numbers in the rates).
        let (lam, alpha, b, dt) = (30.0, 10.0, 200usize, 20.0);
        let fluid = fluid_epoch(0.0, lam, alpha, b as f64, dt);
        let q = BirthDeathQueue::new(lam, alpha, b);
        let mut rng = StdRng::seed_from_u64(1);
        let mut drops = 0.0;
        let mut level = 0.0;
        let runs = 400;
        for _ in 0..runs {
            let o = q.simulate_epoch(0, dt, &mut rng);
            drops += o.drops as f64;
            level += o.final_state as f64;
        }
        drops /= runs as f64;
        level /= runs as f64;
        // Fluid: fill 200/(30-10)=10u, then overflow 20/u · 10u = 200.
        assert!((fluid.drops - 200.0).abs() < 1e-9);
        assert!(
            (drops - fluid.drops).abs() / fluid.drops < 0.05,
            "ctmc {drops} vs fluid {}",
            fluid.drops
        );
        assert!(
            (level - fluid.final_level).abs() < 12.0,
            "ctmc level {level} vs fluid {}",
            fluid.final_level
        );
    }

    #[test]
    fn underload_fluid_never_drops_ctmc_rarely() {
        let e = fluid_epoch(0.0, 0.9, 1.0, 50.0, 100.0);
        assert_eq!(e.drops, 0.0);
        assert_eq!(e.final_level, 0.0);
    }

    #[test]
    fn epoch_is_time_additive() {
        // Integrating 2×dt/2 equals one dt pass.
        let (lam, alpha, b) = (1.7, 1.0, 4.0);
        let whole = fluid_epoch(1.0, lam, alpha, b, 6.0);
        let half1 = fluid_epoch(1.0, lam, alpha, b, 3.0);
        let half2 = fluid_epoch(half1.final_level, lam, alpha, b, 3.0);
        assert!((whole.final_level - half2.final_level).abs() < 1e-12);
        assert!((whole.drops - (half1.drops + half2.drops)).abs() < 1e-12);
        assert!(
            (whole.level_integral - (half1.level_integral + half2.level_integral)).abs() < 1e-12
        );
    }
}

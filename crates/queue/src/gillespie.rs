//! Exact stochastic simulation (Gillespie's direct method) for finite-state
//! continuous-time Markov chains.
//!
//! The paper simulates the finite `N,M` system "exactly by sampling
//! exponential waiting times for all events according to the Gillespie
//! algorithm" (§4). This module provides the generic engine; the
//! specialized per-queue birth–death fast path lives in
//! [`crate::birth_death`].

use crate::sampler::Sampler;
use rand::Rng;

/// A finite-state CTMC specification: for every state, the list of
/// `(target_state, rate)` transitions.
#[derive(Debug, Clone)]
pub struct CtmcSpec {
    transitions: Vec<Vec<(usize, f64)>>,
}

impl CtmcSpec {
    /// Creates a spec with `n` states and no transitions.
    pub fn new(n: usize) -> Self {
        Self { transitions: vec![Vec::new(); n] }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Adds a transition `from → to` with the given `rate`.
    ///
    /// # Panics
    /// Panics on out-of-range states or a negative/non-finite rate.
    pub fn add_transition(&mut self, from: usize, to: usize, rate: f64) {
        assert!(from < self.transitions.len() && to < self.transitions.len());
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be nonnegative");
        if rate > 0.0 {
            self.transitions[from].push((to, rate));
        }
    }

    /// Outgoing transitions of a state.
    pub fn transitions_from(&self, state: usize) -> &[(usize, f64)] {
        &self.transitions[state]
    }

    /// Total exit rate of a state.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.transitions[state].iter().map(|&(_, r)| r).sum()
    }

    /// Builds the row-convention generator matrix of this chain.
    pub fn generator(&self) -> mflb_linalg::Mat {
        let n = self.num_states();
        let mut q = mflb_linalg::Mat::zeros(n, n);
        for (from, outs) in self.transitions.iter().enumerate() {
            for &(to, rate) in outs {
                q[(from, to)] += rate;
                q[(from, from)] -= rate;
            }
        }
        q
    }
}

/// One recorded jump of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jump {
    /// Absolute time of the jump.
    pub time: f64,
    /// State entered by the jump.
    pub to: usize,
}

/// Simulates the chain exactly from `initial` for `horizon` time units.
///
/// Returns the final state and (optionally, if `record` is true) the jump
/// trajectory.
pub fn simulate_ctmc<R: Rng + ?Sized>(
    spec: &CtmcSpec,
    initial: usize,
    horizon: f64,
    rng: &mut R,
    record: bool,
) -> (usize, Vec<Jump>) {
    assert!(initial < spec.num_states(), "initial state out of range");
    assert!(horizon >= 0.0, "horizon must be nonnegative");
    let mut state = initial;
    let mut t = 0.0;
    let mut jumps = Vec::new();
    loop {
        let outs = spec.transitions_from(state);
        let total: f64 = outs.iter().map(|&(_, r)| r).sum();
        if total <= 0.0 {
            break; // absorbing state
        }
        t += Sampler::exponential(rng, total);
        if t > horizon {
            break;
        }
        // Pick the event proportionally to its rate.
        let mut u = rng.gen::<f64>() * total;
        let mut next = outs[outs.len() - 1].0;
        for &(to, rate) in outs {
            u -= rate;
            if u <= 0.0 {
                next = to;
                break;
            }
        }
        state = next;
        if record {
            jumps.push(Jump { time: t, to: state });
        }
    }
    (state, jumps)
}

/// Estimates the state distribution at `horizon` from `n_runs` exact
/// simulations (used by the test-suite to cross-validate the analytic
/// transient solvers).
pub fn empirical_transient<R: Rng + ?Sized>(
    spec: &CtmcSpec,
    initial: usize,
    horizon: f64,
    n_runs: usize,
    rng: &mut R,
) -> Vec<f64> {
    let mut counts = vec![0.0; spec.num_states()];
    for _ in 0..n_runs {
        let (s, _) = simulate_ctmc(spec, initial, horizon, rng, false);
        counts[s] += 1.0;
    }
    for c in &mut counts {
        *c /= n_runs as f64;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_linalg::transient_distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_state_spec(a: f64, b: f64) -> CtmcSpec {
        let mut spec = CtmcSpec::new(2);
        spec.add_transition(0, 1, a);
        spec.add_transition(1, 0, b);
        spec
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let spec = two_state_spec(1.5, 0.7);
        let q = spec.generator();
        for i in 0..2 {
            let s: f64 = q.row(i).iter().sum();
            assert!(s.abs() < 1e-14);
        }
        assert_eq!(q[(0, 1)], 1.5);
        assert_eq!(q[(1, 0)], 0.7);
    }

    #[test]
    fn absorbing_state_stops_simulation() {
        let mut spec = CtmcSpec::new(2);
        spec.add_transition(0, 1, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let (s, jumps) = simulate_ctmc(&spec, 0, 100.0, &mut rng, true);
        assert_eq!(s, 1);
        assert_eq!(jumps.len(), 1);
        assert_eq!(jumps[0].to, 1);
    }

    #[test]
    fn zero_horizon_stays_put() {
        let spec = two_state_spec(5.0, 5.0);
        let mut rng = StdRng::seed_from_u64(2);
        let (s, jumps) = simulate_ctmc(&spec, 0, 0.0, &mut rng, true);
        assert_eq!(s, 0);
        assert!(jumps.is_empty());
    }

    #[test]
    fn empirical_matches_analytic_transient() {
        // Two-state chain with known transient solution.
        let (a, b) = (1.0, 2.0);
        let spec = two_state_spec(a, b);
        let q = spec.generator();
        let t = 0.8;
        let analytic = transient_distribution(&q, &[1.0, 0.0], t, 1e-12).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let empirical = empirical_transient(&spec, 0, t, 200_000, &mut rng);
        for (e, an) in empirical.iter().zip(analytic.iter()) {
            assert!((e - an).abs() < 5e-3, "{e} vs {an}");
        }
    }

    #[test]
    fn jump_times_increase() {
        let spec = two_state_spec(3.0, 3.0);
        let mut rng = StdRng::seed_from_u64(4);
        let (_, jumps) = simulate_ctmc(&spec, 0, 50.0, &mut rng, true);
        assert!(jumps.len() > 10);
        for w in jumps.windows(2) {
            assert!(w[0].time < w[1].time);
        }
    }
}

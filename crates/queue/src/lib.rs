//! Continuous-time Markov chain queueing substrate.
//!
//! Everything the finite-system simulator (Algorithm 1 of Tahir, Cui &
//! Koeppl, ICPP '22) needs below the policy layer, built from scratch:
//!
//! * [`sampler`] — exact non-uniform random variate generation on top of a
//!   uniform source: exponential, Poisson (inversion + PTRS), binomial
//!   (inversion + BTRS transformed rejection), alias-method categoricals and
//!   multinomials via conditional binomials. These make the *aggregate*
//!   finite-system engine exact at `N = 10^6` clients.
//! * [`gillespie`] — exact stochastic simulation of finite-state CTMCs.
//! * [`birth_death`] — the paper's per-queue model: a finite-buffer
//!   birth–death chain with drop counting, exact simulation, transient and
//!   stationary analysis.
//! * [`mmpp`] — the Markov-modulated arrival-rate chain `λ_{t+1} ∼ P_λ(λ_t)`
//!   (Eq. 1, 32–33).
//! * [`fifo`] — a job-level FIFO queue with sojourn-time tracking (used by
//!   the response-time extension experiments).
//! * [`hetero`] — heterogeneous server pools (the paper's §5 extension).
//! * [`phase_type`] — phase-type service-time distributions and the
//!   `M/PH/1/B` queue (the paper's §5 non-exponential-service extension).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod birth_death;
pub mod fifo;
pub mod fluid;
pub mod gillespie;
pub mod hetero;
pub mod mmpp;
pub mod mmpp_fit;
pub mod phase_type;
pub mod sampler;

pub use birth_death::{BirthDeathQueue, EpochOutcome};
pub use fluid::{fluid_epoch, fluid_loss_rate, FluidEpoch};
pub use gillespie::{simulate_ctmc, CtmcSpec};
pub use mmpp::ArrivalProcess;
pub use mmpp_fit::{fit_mmpp, MmppFit};
pub use phase_type::{PhQueue, PhQueueState, PhaseType};
pub use sampler::{AliasTable, Sampler};

//! The paper's per-queue model: a finite-buffer birth–death CTMC with
//! packet-drop accounting.
//!
//! Within a decision epoch `[t, t+Δt)` every queue `j` evolves as an
//! independent birth–death chain with *frozen* arrival rate `λ_j` (fixed by
//! the clients' epoch-start decisions) and service rate `α` (Algorithm 1,
//! lines 15–19). Arrivals hitting a full buffer are *dropped* and counted —
//! they do not change the state. This module provides:
//!
//! * [`BirthDeathQueue::simulate_epoch`] — exact Gillespie simulation of
//!   one epoch, returning the end state and the number of drops,
//! * [`BirthDeathQueue::generator`] — the row-convention generator used by
//!   the analytic transient solvers,
//! * [`BirthDeathQueue::extended_generator_column`] — the paper's extended
//!   rate matrix `Q̄` (Eq. 27) in *column* convention, which simultaneously
//!   tracks the state distribution and the accumulated expected drops,
//! * [`BirthDeathQueue::stationary`] — the analytic M/M/1/B stationary
//!   distribution (test oracle).

use crate::sampler::Sampler;
use mflb_linalg::Mat;
use rand::Rng;

/// A finite-buffer `M/M/1/B` queue with fixed rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BirthDeathQueue {
    /// Arrival rate λ (jobs per time unit) during the epoch.
    pub arrival_rate: f64,
    /// Service rate α (jobs per time unit).
    pub service_rate: f64,
    /// Buffer capacity B: states are `{0, 1, …, B}`.
    pub buffer: usize,
}

/// Result of simulating one decision epoch on a single queue.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochOutcome {
    /// Queue length at the end of the epoch.
    pub final_state: usize,
    /// Number of packets dropped (arrivals while the buffer was full).
    pub drops: u64,
    /// Number of packets accepted into the queue.
    pub accepted: u64,
    /// Number of service completions.
    pub served: u64,
}

impl BirthDeathQueue {
    /// Creates a queue model.
    ///
    /// # Panics
    /// Panics on negative rates or a zero-capacity buffer.
    pub fn new(arrival_rate: f64, service_rate: f64, buffer: usize) -> Self {
        assert!(arrival_rate >= 0.0 && arrival_rate.is_finite());
        assert!(service_rate >= 0.0 && service_rate.is_finite());
        assert!(buffer >= 1, "buffer must hold at least one job");
        Self { arrival_rate, service_rate, buffer }
    }

    /// Number of states `B + 1`.
    pub fn num_states(&self) -> usize {
        self.buffer + 1
    }

    /// Exact Gillespie simulation of one epoch of length `dt` starting from
    /// `state`.
    ///
    /// The arrival clock always runs (arrivals at a full buffer are counted
    /// as drops); the service clock runs only while the queue is nonempty.
    pub fn simulate_epoch<R: Rng + ?Sized>(
        &self,
        state: usize,
        dt: f64,
        rng: &mut R,
    ) -> EpochOutcome {
        debug_assert!(state <= self.buffer);
        let mut z = state;
        let mut t = 0.0;
        let mut out = EpochOutcome { final_state: state, ..Default::default() };
        let lam = self.arrival_rate;
        let alpha = self.service_rate;
        loop {
            let down = if z > 0 { alpha } else { 0.0 };
            let total = lam + down;
            if total <= 0.0 {
                break;
            }
            t += Sampler::exponential(rng, total);
            if t > dt {
                break;
            }
            if rng.gen::<f64>() * total < lam {
                // Arrival event.
                if z == self.buffer {
                    out.drops += 1;
                } else {
                    z += 1;
                    out.accepted += 1;
                }
            } else {
                // Service completion.
                z -= 1;
                out.served += 1;
            }
        }
        out.final_state = z;
        out
    }

    /// Row-convention generator of the queue-length chain (drops ignored:
    /// the chain simply has no up-transition out of `B`).
    pub fn generator(&self) -> Mat {
        let n = self.num_states();
        let mut q = Mat::zeros(n, n);
        for z in 0..n {
            if z < self.buffer {
                q[(z, z + 1)] = self.arrival_rate;
                q[(z, z)] -= self.arrival_rate;
            }
            if z > 0 {
                q[(z, z - 1)] = self.service_rate;
                q[(z, z)] -= self.service_rate;
            }
        }
        q
    }

    /// The paper's extended rate matrix `Q̄` (Eq. 27) in **column**
    /// convention, size `(B+2) × (B+2)`.
    ///
    /// Column convention means the probability column-vector evolves as
    /// `Ṗ = Q̄·P`; the extra last row accumulates the expected drops
    /// `Ḋ = λ·P_B`. `exp(Q̄·Δt)·[e_z; 0]` yields the end-of-epoch state
    /// distribution in its first `B+1` entries and the expected number of
    /// drops in its last entry.
    pub fn extended_generator_column(&self) -> Mat {
        let n = self.num_states();
        let mut q = Mat::zeros(n + 1, n + 1);
        // Column convention: entry (i, j) is the rate from state j to i.
        for z in 0..n {
            if z < self.buffer {
                // Arrival z -> z+1.
                q[(z + 1, z)] += self.arrival_rate;
                q[(z, z)] -= self.arrival_rate;
            }
            if z > 0 {
                // Departure z -> z-1.
                q[(z - 1, z)] += self.service_rate;
                q[(z, z)] -= self.service_rate;
            }
        }
        // Drop accumulator: Ḋ = λ · P_B (mass is NOT removed from state B;
        // D is an additive functional, not a chain state).
        q[(n, n - 1)] = self.arrival_rate;
        q
    }

    /// Expected end-of-epoch distribution and drops from a deterministic
    /// start state, via the matrix exponential of the extended generator.
    ///
    /// Returns `(distribution over {0..B}, expected drops)`.
    pub fn epoch_expectation(&self, state: usize, dt: f64) -> (Vec<f64>, f64) {
        debug_assert!(state <= self.buffer);
        let qbar = self.extended_generator_column().scaled(dt);
        let e = mflb_linalg::expm(&qbar);
        let n = self.num_states();
        let mut v = vec![0.0; n + 1];
        v[state] = 1.0;
        let out = e.matvec(&v);
        (out[..n].to_vec(), out[n])
    }

    /// Analytic stationary distribution of the M/M/1/B queue
    /// (`π_k ∝ ρ^k`, ρ = λ/α), the classic closed form used as a test
    /// oracle.
    ///
    /// # Panics
    /// Panics if the service rate is zero (no stationary distribution).
    pub fn stationary(&self) -> Vec<f64> {
        assert!(self.service_rate > 0.0, "stationary requires positive service rate");
        let rho = self.arrival_rate / self.service_rate;
        let n = self.num_states();
        if (rho - 1.0).abs() < 1e-12 {
            return vec![1.0 / n as f64; n];
        }
        let mut pi: Vec<f64> = (0..n).map(|k| rho.powi(k as i32)).collect();
        let total: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= total;
        }
        pi
    }

    /// Stationary drop (blocking) probability `π_B` — by PASTA, the
    /// long-run fraction of arrivals that are dropped.
    pub fn stationary_blocking_probability(&self) -> f64 {
        *self.stationary().last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_linalg::stats::Summary;
    use mflb_linalg::transient_distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epoch_conservation_law() {
        // state_end = state_start + accepted - served, always.
        let q = BirthDeathQueue::new(1.3, 0.9, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for start in 0..=5usize {
            for _ in 0..200 {
                let o = q.simulate_epoch(start, 4.0, &mut rng);
                assert_eq!(
                    o.final_state as i64,
                    start as i64 + o.accepted as i64 - o.served as i64
                );
                assert!(o.final_state <= 5);
            }
        }
    }

    #[test]
    fn no_arrivals_drains_queue() {
        let q = BirthDeathQueue::new(0.0, 2.0, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let o = q.simulate_epoch(5, 100.0, &mut rng);
        assert_eq!(o.final_state, 0);
        assert_eq!(o.drops, 0);
        assert_eq!(o.served, 5);
    }

    #[test]
    fn saturated_queue_drops_at_arrival_rate() {
        // With no service, a full queue drops every arrival: E[drops] = λ·Δt.
        let q = BirthDeathQueue::new(3.0, 0.0, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Summary::new();
        for _ in 0..20_000 {
            s.push(q.simulate_epoch(4, 2.0, &mut rng).drops as f64);
        }
        assert!((s.mean() - 6.0).abs() < 0.1, "mean drops {}", s.mean());
    }

    #[test]
    fn empirical_end_state_matches_expm_prediction() {
        let q = BirthDeathQueue::new(0.9, 1.0, 5);
        let dt = 3.0;
        let start = 0usize;
        let (analytic, _) = q.epoch_expectation(start, dt);
        let mut rng = StdRng::seed_from_u64(4);
        let n_runs = 200_000;
        let mut counts = vec![0.0; q.num_states()];
        for _ in 0..n_runs {
            counts[q.simulate_epoch(start, dt, &mut rng).final_state] += 1.0;
        }
        for c in &mut counts {
            *c /= n_runs as f64;
        }
        for (e, a) in counts.iter().zip(analytic.iter()) {
            assert!((e - a).abs() < 5e-3, "{e} vs {a}");
        }
    }

    #[test]
    fn empirical_drops_match_extended_generator() {
        let q = BirthDeathQueue::new(2.0, 1.0, 3); // overloaded -> real drops
        let dt = 5.0;
        let start = 2usize;
        let (_, expected_drops) = q.epoch_expectation(start, dt);
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = Summary::new();
        for _ in 0..100_000 {
            s.push(q.simulate_epoch(start, dt, &mut rng).drops as f64);
        }
        assert!(
            (s.mean() - expected_drops).abs() < 0.05,
            "empirical {} vs analytic {expected_drops}",
            s.mean()
        );
    }

    #[test]
    fn extended_generator_preserves_distribution_block() {
        // The first B+1 entries of exp(Q̄ t)·[e_z;0] must match the plain
        // generator transient (drops accounting must not disturb the chain).
        let q = BirthDeathQueue::new(1.7, 0.8, 6);
        let dt = 2.5;
        for z in 0..=6usize {
            let (dist, _) = q.epoch_expectation(z, dt);
            let mut p0 = vec![0.0; 7];
            p0[z] = 1.0;
            let reference = transient_distribution(&q.generator(), &p0, dt, 1e-13).unwrap();
            for (a, b) in dist.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-9, "z={z}: {a} vs {b}");
            }
            let mass: f64 = dist.iter().sum();
            assert!((mass - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stationary_matches_long_transient() {
        let q = BirthDeathQueue::new(0.7, 1.0, 5);
        let pi = q.stationary();
        let mut p0 = vec![0.0; q.num_states()];
        p0[0] = 1.0;
        let p = transient_distribution(&q.generator(), &p0, 500.0, 1e-12).unwrap();
        for (a, b) in p.iter().zip(pi.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn stationary_critical_load_is_uniform() {
        let q = BirthDeathQueue::new(1.0, 1.0, 4);
        let pi = q.stationary();
        for &p in &pi {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_drops_increase_with_load() {
        let dt = 4.0;
        let mut last = -1.0;
        for &lam in &[0.2, 0.6, 1.0, 1.6, 2.4] {
            let q = BirthDeathQueue::new(lam, 1.0, 5);
            let (_, d) = q.epoch_expectation(0, dt);
            assert!(d > last, "drops must increase with load");
            last = d;
        }
    }

    #[test]
    fn drops_bounded_by_arrival_mass() {
        // E[drops] can never exceed λ·Δt (total expected arrivals).
        for &(lam, dt, z) in &[(0.9f64, 10.0f64, 0usize), (2.0, 3.0, 5), (0.1, 1.0, 3)] {
            let q = BirthDeathQueue::new(lam, 1.0, 5);
            let (_, d) = q.epoch_expectation(z, dt);
            assert!(d >= -1e-12 && d <= lam * dt + 1e-9);
        }
    }
}

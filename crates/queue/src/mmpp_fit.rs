//! Fitting a Markov-modulated arrival process from a rate trace — the
//! paper's remark that the modulation "could be … estimated from a real
//! system" (§4), made executable.
//!
//! Input: a trace of per-epoch average arrival rates (e.g. jobs per queue
//! per time unit measured over successive Δt windows of a production
//! system). Output: an [`ArrivalProcess`] with `L` levels — level rates
//! by 1-D k-means (Lloyd's algorithm on the line, deterministically
//! seeded by quantiles), the transition kernel by empirical transition
//! counting over the quantized trace, and the initial distribution by
//! occupancy.
//!
//! The estimator is consistent: traces *generated* by a known two-level
//! process recover its rates and kernel within sampling noise (tested),
//! so a practitioner can calibrate the whole pipeline — mean-field MDP,
//! DP, PPO training — against measured load data.

use crate::mmpp::ArrivalProcess;

/// Result of an MMPP fit: the process plus estimation diagnostics.
#[derive(Debug, Clone)]
pub struct MmppFit {
    /// The fitted process (levels sorted descending, matching the
    /// paper-default convention of level 0 = high).
    pub process: ArrivalProcess,
    /// Level index assigned to each trace entry.
    pub assignments: Vec<usize>,
    /// Within-level sum of squared deviations (quantization quality).
    pub distortion: f64,
    /// Lloyd iterations used.
    pub iterations: usize,
}

/// Fits an `L`-level MMPP to a rate trace.
///
/// # Panics
/// Panics if the trace is shorter than `2·levels` entries, contains
/// non-finite or negative rates, or `levels == 0`.
pub fn fit_mmpp(trace: &[f64], levels: usize) -> MmppFit {
    assert!(levels >= 1, "need at least one level");
    assert!(trace.len() >= 2 * levels, "trace too short for {levels} levels");
    assert!(
        trace.iter().all(|&r| r.is_finite() && r >= 0.0),
        "rates must be finite and nonnegative"
    );

    // --- 1-D k-means, quantile-seeded (deterministic). ---
    let mut sorted = trace.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut centers: Vec<f64> = (0..levels)
        .map(|l| {
            let pos = (l as f64 + 0.5) / levels as f64 * (sorted.len() - 1) as f64;
            sorted[pos.round() as usize]
        })
        .collect();
    let mut assignments = vec![0usize; trace.len()];
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // Assign to nearest center.
        let mut changed = false;
        for (i, &r) in trace.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, &center) in centers.iter().enumerate() {
                let d = (r - center).abs();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Recompute centers (empty clusters keep their position).
        let mut sums = vec![0.0f64; levels];
        let mut counts = vec![0usize; levels];
        for (&a, &r) in assignments.iter().zip(trace.iter()) {
            sums[a] += r;
            counts[a] += 1;
        }
        for c in 0..levels {
            if counts[c] > 0 {
                centers[c] = sums[c] / counts[c] as f64;
            }
        }
        if !changed || iterations >= 100 {
            break;
        }
    }

    // --- Order levels descending (level 0 = high, paper convention). ---
    let mut order: Vec<usize> = (0..levels).collect();
    order.sort_by(|&a, &b| centers[b].partial_cmp(&centers[a]).unwrap());
    let mut rank_of = vec![0usize; levels];
    for (rank, &old) in order.iter().enumerate() {
        rank_of[old] = rank;
    }
    let centers_sorted: Vec<f64> = order.iter().map(|&o| centers[o]).collect();
    for a in &mut assignments {
        *a = rank_of[*a];
    }

    // --- Transition counting with add-one smoothing (keeps the kernel
    //     stochastic even for levels never left in the trace). ---
    let mut kernel = vec![vec![1.0f64; levels]; levels];
    for w in assignments.windows(2) {
        kernel[w[0]][w[1]] += 1.0;
    }
    for row in &mut kernel {
        let total: f64 = row.iter().sum();
        for p in row.iter_mut() {
            *p /= total;
        }
    }

    // --- Initial distribution from occupancy. ---
    let mut initial = vec![0.0f64; levels];
    for &a in &assignments {
        initial[a] += 1.0;
    }
    let total: f64 = initial.iter().sum();
    for p in &mut initial {
        *p /= total;
    }

    let distortion = trace
        .iter()
        .zip(assignments.iter())
        .map(|(&r, &a)| (r - centers_sorted[a]) * (r - centers_sorted[a]))
        .sum();

    MmppFit {
        process: ArrivalProcess::new(centers_sorted, kernel, initial),
        assignments,
        distortion,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generates a rate trace from a known process, with optional
    /// per-epoch measurement noise.
    fn generate_trace(process: &ArrivalProcess, len: usize, noise: f64, seed: u64) -> Vec<f64> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut level = process.sample_initial(&mut rng);
        let mut trace = Vec::with_capacity(len);
        for _ in 0..len {
            let jitter = if noise > 0.0 { rng.gen_range(-noise..noise) } else { 0.0 };
            trace.push((process.level_rate(level) + jitter).max(0.0));
            level = process.step(level, &mut rng);
        }
        trace
    }

    #[test]
    fn recovers_the_paper_process_from_a_clean_trace() {
        let truth = ArrivalProcess::paper_default();
        let trace = generate_trace(&truth, 20_000, 0.0, 1);
        let fit = fit_mmpp(&trace, 2);
        // Levels exact (no noise): 0.9 and 0.6 in high-first order.
        assert!((fit.process.level_rate(0) - 0.9).abs() < 1e-12);
        assert!((fit.process.level_rate(1) - 0.6).abs() < 1e-12);
        assert!(fit.distortion < 1e-20);
        // Kernel within counting noise of (0.2, 0.5).
        assert!(
            (fit.process.kernel_row(0)[1] - 0.2).abs() < 0.02,
            "P(h->l) {:?}",
            fit.process.kernel_row(0)
        );
        assert!(
            (fit.process.kernel_row(1)[0] - 0.5).abs() < 0.02,
            "P(l->h) {:?}",
            fit.process.kernel_row(1)
        );
    }

    #[test]
    fn tolerates_measurement_noise() {
        let truth = ArrivalProcess::paper_default();
        let trace = generate_trace(&truth, 20_000, 0.05, 2);
        let fit = fit_mmpp(&trace, 2);
        assert!((fit.process.level_rate(0) - 0.9).abs() < 0.02);
        assert!((fit.process.level_rate(1) - 0.6).abs() < 0.02);
        assert!((fit.process.kernel_row(0)[1] - 0.2).abs() < 0.03);
        assert!((fit.process.kernel_row(1)[0] - 0.5).abs() < 0.03);
    }

    #[test]
    fn recovers_three_levels() {
        let truth = ArrivalProcess::new(
            vec![0.95, 0.7, 0.3],
            vec![vec![0.7, 0.3, 0.0], vec![0.2, 0.6, 0.2], vec![0.0, 0.4, 0.6]],
            vec![0.3, 0.4, 0.3],
        );
        let trace = generate_trace(&truth, 30_000, 0.03, 3);
        let fit = fit_mmpp(&trace, 3);
        for (l, &want) in [0.95, 0.7, 0.3].iter().enumerate() {
            assert!(
                (fit.process.level_rate(l) - want).abs() < 0.02,
                "level {l}: {} vs {want}",
                fit.process.level_rate(l)
            );
        }
        // A forbidden transition (high -> low directly) stays near zero
        // (only the smoothing pseudo-count).
        assert!(fit.process.kernel_row(0)[2] < 0.01);
    }

    #[test]
    fn stationary_of_fit_matches_trace_occupancy() {
        let truth = ArrivalProcess::paper_default();
        let trace = generate_trace(&truth, 40_000, 0.0, 4);
        let fit = fit_mmpp(&trace, 2);
        let occupancy_high =
            fit.assignments.iter().filter(|&&a| a == 0).count() as f64 / trace.len() as f64;
        let stat = fit.process.stationary();
        assert!(
            (stat[0] - occupancy_high).abs() < 0.02,
            "stationary {} vs occupancy {occupancy_high}",
            stat[0]
        );
        // Truth stationary: P(h) = 0.5/(0.2+0.5) = 5/7.
        assert!((stat[0] - 5.0 / 7.0).abs() < 0.03);
    }

    #[test]
    fn single_level_degenerates_to_constant_process() {
        let trace = vec![0.8; 100];
        let fit = fit_mmpp(&trace, 1);
        assert_eq!(fit.process.num_levels(), 1);
        assert!((fit.process.level_rate(0) - 0.8).abs() < 1e-12);
        assert!((fit.process.kernel_row(0)[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_rows_are_stochastic_even_for_rare_levels() {
        // A trace that visits the high level exactly once at the end: the
        // smoothed kernel must still be a proper distribution.
        let mut trace = vec![0.3; 50];
        trace.push(0.9);
        let fit = fit_mmpp(&trace, 2);
        for l in 0..2 {
            let row = fit.process.kernel_row(l);
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_tiny_traces() {
        fit_mmpp(&[0.5, 0.6], 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_rates() {
        fit_mmpp(&[0.5, f64::NAN, 0.6, 0.7], 2);
    }
}

//! Phase-type (PH) service-time distributions and the `M/PH/1/B` queue —
//! the paper's §5 "non-exponential … service times" extension.
//!
//! A phase-type distribution `PH(α, S)` is the absorption time of a CTMC
//! with `k` transient phases, initial phase distribution `α` and
//! sub-generator `S` (absorption rates `s⁰ = −S·1`). The family is dense in
//! the distributions on `[0, ∞)` and closes the queueing model under
//! Markovian analysis: a queue with Poisson arrivals and PH service is
//! still a finite CTMC over `(queue length, service phase)`, so the paper's
//! *exact discretization* (Eq. 27–28) carries over verbatim — only the
//! generator grows from `B+2` to `B·k+2` states.
//!
//! Provided here:
//!
//! * [`PhaseType`] with the classic named members — exponential,
//!   Erlang-`k` (SCV `1/k < 1`), hyperexponential `H₂` (SCV `> 1`) and
//!   Coxian chains — plus [`PhaseType::fit_mean_scv`], the standard
//!   two-moment fit (Tijms' mixed-Erlang below SCV 1, balanced-means `H₂`
//!   above) used by the service-variability ablation,
//! * [`PhQueue`] — the `M/PH/1/B` queue: joint `(z, phase)` generator,
//!   extended drop-accounting generator in column convention, exact epoch
//!   expectation via the matrix exponential, and exact Gillespie
//!   simulation for the finite-system engine.

use crate::birth_death::EpochOutcome;
use crate::sampler::Sampler;
use mflb_linalg::{expm, Lu, Mat};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A phase-type distribution `PH(α, S)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseType {
    /// Initial phase distribution `α` (length `k`).
    init: Vec<f64>,
    /// Sub-generator `S` in row convention (`k × k`): `S[i][j]`, `j ≠ i`,
    /// is the rate of moving from phase `i` to phase `j`; `−S[i][i]` is the
    /// total exit rate of phase `i`.
    subgen: Mat,
    /// Absorption (service-completion) rates `s⁰ = −S·1` per phase.
    exit: Vec<f64>,
}

impl PhaseType {
    /// Creates a PH distribution from an initial distribution and a
    /// sub-generator.
    ///
    /// # Panics
    /// Panics if `α` is not a probability vector, `S` is not square of
    /// matching size, off-diagonal entries are negative, or any row sum is
    /// positive (absorption rates must be nonnegative).
    pub fn new(init: Vec<f64>, subgen: Mat) -> Self {
        let k = init.len();
        assert!(k >= 1, "need at least one phase");
        assert!(subgen.rows() == k && subgen.cols() == k, "sub-generator shape");
        let mass: f64 = init.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "initial phases must sum to 1 (got {mass})");
        assert!(init.iter().all(|&p| p >= -1e-12), "negative initial phase mass");
        let mut exit = vec![0.0f64; k];
        for i in 0..k {
            let mut row_sum = 0.0;
            for j in 0..k {
                let s = subgen[(i, j)];
                assert!(s.is_finite(), "non-finite rate");
                if i != j {
                    assert!(s >= 0.0, "negative off-diagonal rate at ({i},{j})");
                }
                row_sum += s;
            }
            assert!(
                row_sum <= 1e-9,
                "row {i} of S sums to {row_sum} > 0: absorption rate would be negative"
            );
            exit[i] = (-row_sum).max(0.0);
        }
        Self { init, subgen, exit }
    }

    /// The exponential distribution as a 1-phase PH (`SCV = 1`).
    pub fn exponential(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite());
        let mut s = Mat::zeros(1, 1);
        s[(0, 0)] = -rate;
        Self::new(vec![1.0], s)
    }

    /// Erlang-`k` with per-phase rate `rate`: mean `k/rate`, `SCV = 1/k`.
    pub fn erlang(k: usize, rate: f64) -> Self {
        assert!(k >= 1);
        assert!(rate > 0.0 && rate.is_finite());
        let mut s = Mat::zeros(k, k);
        for i in 0..k {
            s[(i, i)] = -rate;
            if i + 1 < k {
                s[(i, i + 1)] = rate;
            }
        }
        let mut init = vec![0.0; k];
        init[0] = 1.0;
        Self::new(init, s)
    }

    /// Erlang-`k` with a prescribed mean (per-phase rate `k/mean`).
    pub fn erlang_with_mean(k: usize, mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite());
        Self::erlang(k, k as f64 / mean)
    }

    /// Hyperexponential: with probability `probs[i]` the service is
    /// exponential with `rates[i]` (`SCV ≥ 1`).
    pub fn hyperexponential(probs: &[f64], rates: &[f64]) -> Self {
        assert_eq!(probs.len(), rates.len());
        assert!(!probs.is_empty());
        assert!(rates.iter().all(|&r| r > 0.0 && r.is_finite()));
        let k = probs.len();
        let mut s = Mat::zeros(k, k);
        for i in 0..k {
            s[(i, i)] = -rates[i];
        }
        Self::new(probs.to_vec(), s)
    }

    /// Coxian chain: phase `i` has total rate `rates[i]` and continues to
    /// phase `i+1` with probability `continue_probs[i]` (else absorbs);
    /// `continue_probs.len() == rates.len() − 1`.
    pub fn coxian(rates: &[f64], continue_probs: &[f64]) -> Self {
        let k = rates.len();
        assert!(k >= 1);
        assert_eq!(continue_probs.len(), k - 1, "need k−1 continuation probabilities");
        assert!(rates.iter().all(|&r| r > 0.0 && r.is_finite()));
        assert!(continue_probs.iter().all(|&q| (0.0..=1.0).contains(&q)));
        let mut s = Mat::zeros(k, k);
        for i in 0..k {
            s[(i, i)] = -rates[i];
            if i + 1 < k {
                s[(i, i + 1)] = rates[i] * continue_probs[i];
            }
        }
        let mut init = vec![0.0; k];
        init[0] = 1.0;
        Self::new(init, s)
    }

    /// Standard two-moment fit: returns a PH distribution with the given
    /// mean and squared coefficient of variation (`SCV = Var/mean²`).
    ///
    /// * `scv == 1` → exponential;
    /// * `scv < 1` → Tijms' mixture of Erlang-`(k−1)` and Erlang-`k` with a
    ///   common phase rate, where `k = ⌈1/scv⌉` (matches both moments
    ///   exactly for `scv ≥ 1/k`);
    /// * `scv > 1` → balanced-means two-phase hyperexponential `H₂`
    ///   (matches both moments exactly).
    ///
    /// # Panics
    /// Panics on non-positive mean or SCV.
    pub fn fit_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite());
        assert!(scv > 0.0 && scv.is_finite());
        if (scv - 1.0).abs() < 1e-12 {
            return Self::exponential(1.0 / mean);
        }
        if scv > 1.0 {
            // Balanced-means H₂: p₁/μ₁ = p₂/μ₂ = mean/2.
            let p1 = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
            let p2 = 1.0 - p1;
            let mu1 = 2.0 * p1 / mean;
            let mu2 = 2.0 * p2 / mean;
            return Self::hyperexponential(&[p1, p2], &[mu1, mu2]);
        }
        // Mixed Erlang(k−1, k): k such that 1/k ≤ scv ≤ 1/(k−1).
        let k = (1.0 / scv).ceil() as usize;
        let kf = k as f64;
        if k == 1 {
            return Self::exponential(1.0 / mean);
        }
        let p = (kf * scv - (kf * (1.0 + scv) - kf * kf * scv).sqrt()) / (1.0 + scv);
        let mu = (kf - p) / mean;
        // Series of k phases at rate μ; with probability p skip the first
        // phase (leaving k−1 stages), else traverse all k.
        let mut s = Mat::zeros(k, k);
        for i in 0..k {
            s[(i, i)] = -mu;
            if i + 1 < k {
                s[(i, i + 1)] = mu;
            }
        }
        let mut init = vec![0.0; k];
        init[0] = 1.0 - p;
        init[1] = p;
        Self::new(init, s)
    }

    /// Number of phases `k`.
    pub fn num_phases(&self) -> usize {
        self.init.len()
    }

    /// Initial phase distribution `α`.
    pub fn init(&self) -> &[f64] {
        &self.init
    }

    /// Sub-generator `S` (row convention).
    pub fn subgen(&self) -> &Mat {
        &self.subgen
    }

    /// Absorption rates `s⁰` per phase.
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// Raw moments via `(−S)⁻¹`: `E[T] = α·(−S)⁻¹·1`,
    /// `E[T²] = 2·α·(−S)⁻²·1`.
    fn first_two_moments(&self) -> (f64, f64) {
        let k = self.num_phases();
        let neg_s = self.subgen.scaled(-1.0);
        let lu = Lu::new(&neg_s);
        let x = lu
            .solve_vec(&vec![1.0; k])
            .expect("sub-generator of a proper PH distribution is nonsingular");
        let y = lu.solve_vec(&x).expect("nonsingular");
        let m1: f64 = self.init.iter().zip(&x).map(|(a, b)| a * b).sum();
        let m2: f64 = 2.0 * self.init.iter().zip(&y).map(|(a, b)| a * b).sum::<f64>();
        (m1, m2)
    }

    /// Mean service time `E[T]`.
    pub fn mean(&self) -> f64 {
        self.first_two_moments().0
    }

    /// Variance `Var[T]`.
    pub fn variance(&self) -> f64 {
        let (m1, m2) = self.first_two_moments();
        m2 - m1 * m1
    }

    /// Squared coefficient of variation `Var[T]/E[T]²`.
    pub fn scv(&self) -> f64 {
        let (m1, m2) = self.first_two_moments();
        m2 / (m1 * m1) - 1.0
    }

    /// Distribution function `F(t) = 1 − α·exp(S·t)·1`.
    pub fn cdf(&self, t: f64) -> f64 {
        assert!(t >= 0.0);
        if t == 0.0 {
            return 0.0;
        }
        let e = expm(&self.subgen.scaled(t));
        let survival: f64 = (0..self.num_phases())
            .map(|i| {
                let row_sum: f64 = e.row(i).iter().sum();
                self.init[i] * row_sum
            })
            .sum();
        (1.0 - survival).clamp(0.0, 1.0)
    }

    /// Samples a starting phase `∼ α`.
    pub fn sample_phase<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen();
        for (i, &p) in self.init.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return i;
            }
        }
        self.num_phases() - 1
    }

    /// Samples one service time by exact simulation of the phase process.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut phase = self.sample_phase(rng);
        let mut t = 0.0;
        loop {
            let total = -self.subgen[(phase, phase)];
            debug_assert!(total > 0.0, "trapped in a zero-exit phase");
            t += Sampler::exponential(rng, total);
            // Absorb with probability exit/total, else jump to a phase.
            let mut u = rng.gen::<f64>() * total;
            u -= self.exit[phase];
            if u <= 0.0 {
                return t;
            }
            let mut next = phase;
            for j in 0..self.num_phases() {
                if j == phase {
                    continue;
                }
                u -= self.subgen[(phase, j)];
                if u <= 0.0 {
                    next = j;
                    break;
                }
            }
            phase = next;
        }
    }
}

/// Joint state of an `M/PH/1/B` queue: the queue length and, when busy,
/// the service phase of the job in service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhQueueState {
    /// Queue length `z ∈ {0, …, B}`.
    pub len: usize,
    /// Service phase of the in-service job; meaningful only when `len ≥ 1`
    /// (kept `0` when idle).
    pub phase: usize,
}

impl PhQueueState {
    /// The empty-queue state.
    pub fn empty() -> Self {
        Self { len: 0, phase: 0 }
    }
}

/// A finite-buffer queue with Poisson arrivals (rate frozen per epoch) and
/// phase-type service, over joint states `{0} ∪ {1..B}×{phases}`.
#[derive(Debug, Clone)]
pub struct PhQueue {
    /// Arrival rate λ during the epoch.
    pub arrival_rate: f64,
    /// Service-time distribution.
    pub service: PhaseType,
    /// Buffer capacity B.
    pub buffer: usize,
}

impl PhQueue {
    /// Creates the queue model.
    ///
    /// # Panics
    /// Panics on a negative arrival rate or zero-capacity buffer.
    pub fn new(arrival_rate: f64, service: PhaseType, buffer: usize) -> Self {
        assert!(arrival_rate >= 0.0 && arrival_rate.is_finite());
        assert!(buffer >= 1);
        Self { arrival_rate, service, buffer }
    }

    /// Number of joint CTMC states `1 + B·k`.
    pub fn num_states(&self) -> usize {
        1 + self.buffer * self.service.num_phases()
    }

    /// Flat index of a joint state (`0` = empty).
    #[inline]
    pub fn state_index(&self, state: PhQueueState) -> usize {
        if state.len == 0 {
            0
        } else {
            debug_assert!(state.len <= self.buffer);
            debug_assert!(state.phase < self.service.num_phases());
            1 + (state.len - 1) * self.service.num_phases() + state.phase
        }
    }

    /// Decodes a flat index back into a joint state.
    pub fn decode_index(&self, idx: usize) -> PhQueueState {
        if idx == 0 {
            return PhQueueState::empty();
        }
        let k = self.service.num_phases();
        let rem = idx - 1;
        PhQueueState { len: 1 + rem / k, phase: rem % k }
    }

    /// Row-convention generator over the joint states (arrivals at a full
    /// buffer are lost without a state change).
    pub fn generator(&self) -> Mat {
        let n = self.num_states();
        let k = self.service.num_phases();
        let lam = self.arrival_rate;
        let alpha = self.service.init();
        let s = self.service.subgen();
        let exit = self.service.exit_rates();
        let mut q = Mat::zeros(n, n);
        // From empty: an arrival starts service in phase j ~ α.
        for j in 0..k {
            let rate = lam * alpha[j];
            if rate > 0.0 {
                let to = self.state_index(PhQueueState { len: 1, phase: j });
                q[(0, to)] += rate;
                q[(0, 0)] -= rate;
            }
        }
        for z in 1..=self.buffer {
            for i in 0..k {
                let from = self.state_index(PhQueueState { len: z, phase: i });
                // Arrival: queue grows, in-service phase unchanged.
                if z < self.buffer && lam > 0.0 {
                    let to = self.state_index(PhQueueState { len: z + 1, phase: i });
                    q[(from, to)] += lam;
                    q[(from, from)] -= lam;
                }
                // Internal phase changes.
                for j in 0..k {
                    if j == i {
                        continue;
                    }
                    let rate = s[(i, j)];
                    if rate > 0.0 {
                        let to = self.state_index(PhQueueState { len: z, phase: j });
                        q[(from, to)] += rate;
                        q[(from, from)] -= rate;
                    }
                }
                // Service completion: next job (if any) starts in phase ~ α.
                if exit[i] > 0.0 {
                    if z == 1 {
                        q[(from, 0)] += exit[i];
                        q[(from, from)] -= exit[i];
                    } else {
                        for j in 0..k {
                            let rate = exit[i] * alpha[j];
                            if rate > 0.0 {
                                let to = self.state_index(PhQueueState { len: z - 1, phase: j });
                                q[(from, to)] += rate;
                                q[(from, from)] -= rate;
                            }
                        }
                    }
                }
            }
        }
        q
    }

    /// The extended rate matrix (Eq. 27 generalized to PH service) in
    /// **column** convention, size `(1 + B·k + 1)²`: the last row
    /// accumulates expected drops `Ḋ = λ·Σ_i P_{(B,i)}`.
    pub fn extended_generator_column(&self) -> Mat {
        let n = self.num_states();
        let mut q = self.generator().transpose();
        let mut ext = Mat::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..n {
                ext[(i, j)] = q[(i, j)];
            }
        }
        q = ext;
        for i in 0..self.service.num_phases() {
            let full = self.state_index(PhQueueState { len: self.buffer, phase: i });
            q[(n, full)] = self.arrival_rate;
        }
        q
    }

    /// Exact end-of-epoch expectation from a *joint* start distribution
    /// over the `1 + B·k` states: returns `(joint end distribution,
    /// expected drops)`.
    ///
    /// # Panics
    /// Panics if the start vector has the wrong length.
    pub fn epoch_expectation(&self, joint_start: &[f64], dt: f64) -> (Vec<f64>, f64) {
        let n = self.num_states();
        assert_eq!(joint_start.len(), n, "joint start distribution length");
        let qbar = self.extended_generator_column().scaled(dt);
        let e = expm(&qbar);
        let mut v = vec![0.0; n + 1];
        v[..n].copy_from_slice(joint_start);
        let out = e.matvec(&v);
        (out[..n].to_vec(), out[n])
    }

    /// Stationary distribution of the joint `(length, phase)` chain
    /// (fixed arrival rate), via the CTMC stationary solver.
    ///
    /// # Panics
    /// Panics if the chain has no unique stationary distribution (e.g.
    /// zero service rates).
    pub fn stationary(&self) -> Vec<f64> {
        mflb_linalg::ctmc_stationary(&self.generator())
            .expect("M/PH/1/B chain is irreducible for positive rates")
    }

    /// Stationary queue-**length** marginal (sums the phase dimension).
    pub fn stationary_lengths(&self) -> Vec<f64> {
        let joint = self.stationary();
        let k = self.service.num_phases();
        let mut lengths = vec![0.0; self.buffer + 1];
        lengths[0] = joint[0];
        for z in 1..=self.buffer {
            for i in 0..k {
                lengths[z] += joint[1 + (z - 1) * k + i];
            }
        }
        lengths
    }

    /// Stationary blocking probability: the long-run fraction of arrivals
    /// dropped. By PASTA (arrivals are Poisson) this is the stationary
    /// probability of a full buffer.
    pub fn stationary_blocking_probability(&self) -> f64 {
        *self.stationary_lengths().last().unwrap()
    }

    /// Exact Gillespie simulation of one epoch of length `dt` from a joint
    /// state, counting drops.
    pub fn simulate_epoch<R: Rng + ?Sized>(
        &self,
        state: PhQueueState,
        dt: f64,
        rng: &mut R,
    ) -> (PhQueueState, EpochOutcome) {
        debug_assert!(state.len <= self.buffer);
        let k = self.service.num_phases();
        let s = self.service.subgen();
        let exit = self.service.exit_rates();
        let lam = self.arrival_rate;
        let mut z = state.len;
        let mut phase = if z > 0 { state.phase } else { 0 };
        let mut t = 0.0;
        let mut out = EpochOutcome::default();
        loop {
            let service_total = if z > 0 { -s[(phase, phase)] } else { 0.0 };
            let total = lam + service_total;
            if total <= 0.0 {
                break;
            }
            t += Sampler::exponential(rng, total);
            if t > dt {
                break;
            }
            let mut u = rng.gen::<f64>() * total;
            if u < lam {
                // Arrival.
                if z == self.buffer {
                    out.drops += 1;
                } else {
                    if z == 0 {
                        phase = self.service.sample_phase(rng);
                    }
                    z += 1;
                    out.accepted += 1;
                }
                continue;
            }
            u -= lam;
            // Service-phase event: absorption or internal jump.
            if u < exit[phase] {
                z -= 1;
                out.served += 1;
                phase = if z > 0 { self.service.sample_phase(rng) } else { 0 };
                continue;
            }
            u -= exit[phase];
            for j in 0..k {
                if j == phase {
                    continue;
                }
                u -= s[(phase, j)];
                if u <= 0.0 {
                    phase = j;
                    break;
                }
            }
        }
        out.final_state = z;
        (PhQueueState { len: z, phase: if z > 0 { phase } else { 0 } }, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::birth_death::BirthDeathQueue;
    use mflb_linalg::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erlang_moments() {
        let ph = PhaseType::erlang(4, 2.0);
        assert!((ph.mean() - 2.0).abs() < 1e-12);
        assert!((ph.scv() - 0.25).abs() < 1e-12);
        assert!((ph.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_is_one_phase_scv_one() {
        let ph = PhaseType::exponential(3.0);
        assert_eq!(ph.num_phases(), 1);
        assert!((ph.mean() - 1.0 / 3.0).abs() < 1e-12);
        assert!((ph.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hyperexponential_moments_match_mixture_formulas() {
        let (p, r) = ([0.3, 0.7], [0.5, 2.0]);
        let ph = PhaseType::hyperexponential(&p, &r);
        let m1 = p[0] / r[0] + p[1] / r[1];
        let m2 = 2.0 * (p[0] / (r[0] * r[0]) + p[1] / (r[1] * r[1]));
        assert!((ph.mean() - m1).abs() < 1e-12);
        assert!((ph.variance() - (m2 - m1 * m1)).abs() < 1e-12);
        assert!(ph.scv() > 1.0);
    }

    #[test]
    fn coxian_two_phase_moments() {
        // Coxian(r=[2,1], q=[0.5]): absorb after phase 1 w.p. 0.5.
        let ph = PhaseType::coxian(&[2.0, 1.0], &[0.5]);
        // E[T] = 1/2 + 0.5·(1/1) = 1.
        assert!((ph.mean() - 1.0).abs() < 1e-12);
        assert_eq!(ph.num_phases(), 2);
    }

    #[test]
    fn fit_matches_both_moments_across_scv_range() {
        for &scv in &[0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0] {
            for &mean in &[0.5, 1.0, 3.0] {
                let ph = PhaseType::fit_mean_scv(mean, scv);
                assert!((ph.mean() - mean).abs() < 1e-9, "scv={scv} mean: {} vs {mean}", ph.mean());
                assert!((ph.scv() - scv).abs() < 1e-9, "scv fit: {} vs {scv}", ph.scv());
            }
        }
    }

    #[test]
    fn fit_scv_below_half_uses_erlang_mixture() {
        let ph = PhaseType::fit_mean_scv(1.0, 1.0 / 3.0);
        assert_eq!(ph.num_phases(), 3);
        // 1/k ≤ scv exactly at k=3: pure Erlang-3, p ≈ 0.
        assert!((ph.init()[0] - 1.0).abs() < 1e-9, "init {:?}", ph.init());
    }

    #[test]
    fn cdf_is_monotone_and_proper() {
        let ph = PhaseType::fit_mean_scv(1.0, 2.5);
        assert_eq!(ph.cdf(0.0), 0.0);
        let mut last = 0.0;
        for i in 1..=30 {
            let f = ph.cdf(i as f64 * 0.4);
            assert!(f >= last - 1e-12, "CDF must be nondecreasing");
            last = f;
        }
        assert!(ph.cdf(60.0) > 0.999);
    }

    #[test]
    fn exponential_cdf_closed_form() {
        let ph = PhaseType::exponential(1.5);
        for &t in &[0.1, 0.5, 1.0, 2.0] {
            let expect = 1.0 - (-1.5f64 * t).exp();
            assert!((ph.cdf(t) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_analytic_mean_and_variance() {
        let ph = PhaseType::fit_mean_scv(2.0, 3.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = Summary::new();
        for _ in 0..200_000 {
            s.push(ph.sample(&mut rng));
        }
        assert!((s.mean() - 2.0).abs() < 0.05, "mean {}", s.mean());
        assert!((s.variance() - 12.0).abs() < 0.8, "var {}", s.variance());
    }

    #[test]
    fn erlang_sampling_matches_moments() {
        let ph = PhaseType::erlang(3, 3.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = Summary::new();
        for _ in 0..100_000 {
            s.push(ph.sample(&mut rng));
        }
        assert!((s.mean() - 1.0).abs() < 0.01);
        assert!((s.variance() - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn ph_queue_state_index_roundtrip() {
        let q = PhQueue::new(0.9, PhaseType::erlang(3, 3.0), 5);
        assert_eq!(q.num_states(), 16);
        for idx in 0..q.num_states() {
            let st = q.decode_index(idx);
            assert_eq!(q.state_index(st), idx);
        }
    }

    #[test]
    fn exponential_ph_queue_reduces_to_birth_death() {
        // With k=1 the joint chain *is* the birth–death chain; the epoch
        // expectation must agree with the M/M/1/B implementation exactly.
        let (lam, alpha, b, dt) = (1.1, 0.8, 5, 3.0);
        let phq = PhQueue::new(lam, PhaseType::exponential(alpha), b);
        let bd = BirthDeathQueue::new(lam, alpha, b);
        assert_eq!(phq.num_states(), b + 1);
        for z in 0..=b {
            let mut start = vec![0.0; b + 1];
            start[z] = 1.0;
            let (ph_dist, ph_drops) = phq.epoch_expectation(&start, dt);
            let (bd_dist, bd_drops) = bd.epoch_expectation(z, dt);
            for (a, e) in ph_dist.iter().zip(bd_dist.iter()) {
                assert!((a - e).abs() < 1e-10, "z={z}: {a} vs {e}");
            }
            assert!((ph_drops - bd_drops).abs() < 1e-10);
        }
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let q = PhQueue::new(0.7, PhaseType::fit_mean_scv(1.0, 2.0), 4);
        let g = q.generator();
        for i in 0..g.rows() {
            let s: f64 = g.row(i).iter().sum();
            assert!(s.abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn epoch_expectation_preserves_mass_and_bounds_drops() {
        let q = PhQueue::new(1.3, PhaseType::erlang(2, 2.0), 5);
        let n = q.num_states();
        let start = vec![1.0 / n as f64; n];
        for &dt in &[0.5, 2.0, 8.0] {
            let (dist, drops) = q.epoch_expectation(&start, dt);
            let mass: f64 = dist.iter().sum();
            assert!((mass - 1.0).abs() < 1e-9);
            assert!(dist.iter().all(|&p| p >= -1e-12));
            assert!(drops >= 0.0 && drops <= 1.3 * dt + 1e-9);
        }
    }

    #[test]
    fn gillespie_end_state_matches_expm() {
        let q = PhQueue::new(0.9, PhaseType::fit_mean_scv(1.0, 0.5), 4);
        let dt = 2.5;
        let start = PhQueueState { len: 2, phase: 0 };
        let mut start_dist = vec![0.0; q.num_states()];
        start_dist[q.state_index(start)] = 1.0;
        let (analytic, analytic_drops) = q.epoch_expectation(&start_dist, dt);
        let mut rng = StdRng::seed_from_u64(3);
        let runs = 150_000;
        let mut counts = vec![0.0; q.num_states()];
        let mut drops = Summary::new();
        for _ in 0..runs {
            let (end, out) = q.simulate_epoch(start, dt, &mut rng);
            counts[q.state_index(end)] += 1.0;
            drops.push(out.drops as f64);
        }
        for c in &mut counts {
            *c /= runs as f64;
        }
        for (e, a) in counts.iter().zip(analytic.iter()) {
            assert!((e - a).abs() < 6e-3, "{e} vs {a}");
        }
        assert!(
            (drops.mean() - analytic_drops).abs() < 4.0 * drops.std_err() + 1e-3,
            "drops {} vs {analytic_drops}",
            drops.mean()
        );
    }

    #[test]
    fn gillespie_conservation_law() {
        let q = PhQueue::new(1.5, PhaseType::fit_mean_scv(1.0, 3.0), 4);
        let mut rng = StdRng::seed_from_u64(4);
        for len in 0..=4usize {
            let start = PhQueueState { len, phase: 0 };
            for _ in 0..300 {
                let (end, o) = q.simulate_epoch(start, 3.0, &mut rng);
                assert_eq!(end.len as i64, len as i64 + o.accepted as i64 - o.served as i64);
                assert!(end.len <= 4);
                if end.len > 0 {
                    assert!(end.phase < q.service.num_phases());
                }
            }
        }
    }

    #[test]
    fn no_arrivals_drains_and_never_drops() {
        let q = PhQueue::new(0.0, PhaseType::erlang(2, 4.0), 5);
        let mut rng = StdRng::seed_from_u64(5);
        let (end, o) = q.simulate_epoch(PhQueueState { len: 5, phase: 1 }, 100.0, &mut rng);
        assert_eq!(end.len, 0);
        assert_eq!(o.drops, 0);
        assert_eq!(o.served, 5);
    }

    #[test]
    fn low_variability_service_drops_less_under_load() {
        // Classic queueing fact: at equal mean service time and load, lower
        // service variability yields less blocking. Compare Erlang-4
        // (SCV .25) against H2 (SCV 4) in steady operation.
        let dt = 200.0;
        let mut drops_by_scv = Vec::new();
        for &scv in &[0.25, 4.0] {
            let q = PhQueue::new(0.95, PhaseType::fit_mean_scv(1.0, scv), 5);
            let n = q.num_states();
            let mut start = vec![0.0; n];
            start[0] = 1.0;
            let (_, d) = q.epoch_expectation(&start, dt);
            drops_by_scv.push(d);
        }
        assert!(
            drops_by_scv[0] < drops_by_scv[1],
            "Erlang drops {} must be below H2 drops {}",
            drops_by_scv[0],
            drops_by_scv[1]
        );
    }

    #[test]
    fn stationary_reduces_to_mm1b_for_one_phase() {
        let (lam, alpha, b) = (0.8, 1.0, 5);
        let phq = PhQueue::new(lam, PhaseType::exponential(alpha), b);
        let bd = BirthDeathQueue::new(lam, alpha, b);
        let ph_pi = phq.stationary_lengths();
        for (a, e) in ph_pi.iter().zip(bd.stationary().iter()) {
            assert!((a - e).abs() < 1e-10, "{a} vs {e}");
        }
        assert!(
            (phq.stationary_blocking_probability() - bd.stationary_blocking_probability()).abs()
                < 1e-10
        );
    }

    #[test]
    fn stationary_blocking_grows_with_service_variability() {
        // Equal load, equal mean service time: SCV 4 blocks more than
        // SCV 0.25 in steady state (the PH analogue of the classic
        // variability penalty).
        let p = |scv: f64| {
            PhQueue::new(0.9, PhaseType::fit_mean_scv(1.0, scv), 5)
                .stationary_blocking_probability()
        };
        assert!(p(0.25) < p(1.0), "{} vs {}", p(0.25), p(1.0));
        assert!(p(1.0) < p(4.0), "{} vs {}", p(1.0), p(4.0));
    }

    #[test]
    fn stationary_matches_long_epoch_expectation() {
        let q = PhQueue::new(0.7, PhaseType::fit_mean_scv(1.0, 2.0), 4);
        let n = q.num_states();
        let mut start = vec![0.0; n];
        start[0] = 1.0;
        let (transient, _) = q.epoch_expectation(&start, 400.0);
        for (a, e) in transient.iter().zip(q.stationary().iter()) {
            assert!((a - e).abs() < 1e-7, "{a} vs {e}");
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_initial_distribution() {
        let mut s = Mat::zeros(2, 2);
        s[(0, 0)] = -1.0;
        s[(1, 1)] = -1.0;
        PhaseType::new(vec![0.7, 0.7], s);
    }

    #[test]
    #[should_panic(expected = "absorption rate")]
    fn rejects_positive_row_sum() {
        let mut s = Mat::zeros(1, 1);
        s[(0, 0)] = 1.0; // not a sub-generator
        PhaseType::new(vec![1.0], s);
    }
}

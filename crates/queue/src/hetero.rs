//! Heterogeneous server pools — the paper's §5 extension.
//!
//! The main model assumes homogeneous service rate `α`; the discussion
//! section names heterogeneous rates as a straightforward extension. This
//! module provides the server-pool description consumed by the SED(d)
//! policy (`mflb-policy`) and by the heterogeneous mode of the finite
//! simulator: each server keeps its own rate, and the "expected delay" of
//! assigning to server `j` in state `z_j` is `(z_j + 1) / α_j`.

use serde::{Deserialize, Serialize};

/// A pool of servers with per-server service rates and a shared buffer
/// capacity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerPool {
    rates: Vec<f64>,
    buffer: usize,
}

impl ServerPool {
    /// Creates a homogeneous pool of `m` servers with rate `alpha`.
    pub fn homogeneous(m: usize, alpha: f64, buffer: usize) -> Self {
        assert!(m >= 1 && buffer >= 1);
        assert!(alpha > 0.0 && alpha.is_finite());
        Self { rates: vec![alpha; m], buffer }
    }

    /// Creates a pool from explicit per-server rates.
    pub fn heterogeneous(rates: Vec<f64>, buffer: usize) -> Self {
        assert!(!rates.is_empty() && buffer >= 1);
        assert!(rates.iter().all(|&r| r > 0.0 && r.is_finite()));
        Self { rates, buffer }
    }

    /// A two-speed pool: `m_fast` servers at `fast` and `m_slow` at `slow`
    /// (the classic edge-computing setup used in `examples/edge_datacenter`).
    pub fn two_speed(m_fast: usize, fast: f64, m_slow: usize, slow: f64, buffer: usize) -> Self {
        let mut rates = vec![fast; m_fast];
        rates.extend(std::iter::repeat_n(slow, m_slow));
        Self::heterogeneous(rates, buffer)
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` iff the pool has no servers (never: constructors forbid it).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Service rate of server `j`.
    pub fn rate(&self, j: usize) -> f64 {
        self.rates[j]
    }

    /// All rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Shared buffer capacity.
    pub fn buffer(&self) -> usize {
        self.buffer
    }

    /// `true` iff every server has the same rate (within `1e-12`).
    pub fn is_homogeneous(&self) -> bool {
        let first = self.rates[0];
        self.rates.iter().all(|&r| (r - first).abs() < 1e-12)
    }

    /// Expected delay of a new job at server `j` currently holding `z`
    /// jobs: `(z + 1) / α_j` (the SED criterion).
    pub fn expected_delay(&self, j: usize, z: usize) -> f64 {
        (z as f64 + 1.0) / self.rates[j]
    }

    /// Aggregate service capacity `Σ_j α_j`.
    pub fn total_capacity(&self) -> f64 {
        self.rates.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_pool_properties() {
        let p = ServerPool::homogeneous(10, 1.0, 5);
        assert_eq!(p.len(), 10);
        assert!(p.is_homogeneous());
        assert_eq!(p.total_capacity(), 10.0);
        assert_eq!(p.buffer(), 5);
    }

    #[test]
    fn two_speed_pool() {
        let p = ServerPool::two_speed(3, 2.0, 7, 0.5, 5);
        assert_eq!(p.len(), 10);
        assert!(!p.is_homogeneous());
        assert_eq!(p.rate(0), 2.0);
        assert_eq!(p.rate(9), 0.5);
        assert!((p.total_capacity() - (6.0 + 3.5)).abs() < 1e-12);
    }

    #[test]
    fn expected_delay_orders_servers_correctly() {
        let p = ServerPool::two_speed(1, 2.0, 1, 0.5, 5);
        // A fast server with 2 jobs beats a slow empty server:
        // (2+1)/2 = 1.5 < (0+1)/0.5 = 2.
        assert!(p.expected_delay(0, 2) < p.expected_delay(1, 0));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_rate() {
        ServerPool::heterogeneous(vec![1.0, 0.0], 5);
    }
}

//! Criterion micro-benchmarks of the computational kernels.
//!
//! These quantify the cost of the pieces that dominate experiment runtime:
//! the matrix exponential behind the exact discretization, a full MFC-MDP
//! step, one finite-system epoch under both engines, neural policy
//! inference and a PPO network update.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mflb_core::mdp::FixedRulePolicy;
use mflb_core::{mean_field_step, DecisionRule, MeanFieldMdp, StateDist, SystemConfig};
use mflb_linalg::{expm, Mat};
use mflb_nn::{Activation, Mlp, Tensor, Workspace};
use mflb_policy::{jsq_rule, softmin_rule};
use mflb_queue::sampler::Sampler;
use mflb_sim::aggregate::AggregateState;
use mflb_sim::client::PerClientState;
use mflb_sim::{AggregateEngine, Engine, PerClientEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_expm(c: &mut Criterion) {
    // The 7x7 extended generator of the paper's B = 5 queues at Δt = 5.
    let q = mflb_core::meanfield::extended_generator(0.9, 1.0, 5).scaled(5.0);
    c.bench_function("expm_7x7_extended_generator", |b| b.iter(|| expm(black_box(&q))));
    let big = {
        let mut m = Mat::zeros(22, 22);
        for i in 0..21 {
            m[(i + 1, i)] = 0.9;
            m[(i, i + 1)] = 1.0;
            m[(i, i)] = -1.9;
        }
        m.scaled(5.0)
    };
    c.bench_function("expm_22x22_B20_generator", |b| b.iter(|| expm(black_box(&big))));
}

fn bench_mean_field_step(c: &mut Criterion) {
    let nu = StateDist::new(vec![0.3, 0.25, 0.2, 0.15, 0.07, 0.03]);
    let rule = jsq_rule(6, 2);
    c.bench_function("mean_field_step_dt5", |b| {
        b.iter(|| mean_field_step(black_box(&nu), black_box(&rule), 0.9, 1.0, 5.0))
    });
    let soft = softmin_rule(6, 2, 2.0);
    c.bench_function("mean_field_step_softmin", |b| {
        b.iter(|| mean_field_step(black_box(&nu), black_box(&soft), 0.9, 1.0, 5.0))
    });
}

fn bench_mfc_rollout(c: &mut Criterion) {
    let mdp = MeanFieldMdp::new(SystemConfig::paper().with_dt(5.0));
    let policy = FixedRulePolicy::new(jsq_rule(6, 2), "JSQ");
    c.bench_function("mfc_mdp_rollout_100_epochs", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            mdp.rollout(black_box(&policy), 100, &mut rng)
        })
    });
}

fn bench_engines(c: &mut Criterion) {
    // Aggregate engine at the paper's largest size: M = 1000, N = 10^6.
    // The state is created once and evolves across iterations (each epoch
    // starts from the previous epoch's queues, converging to steady
    // state), so the bench measures the allocation-free recurring epoch
    // cost rather than cold epochs from a fixed profile.
    let cfg = SystemConfig::paper().with_m_squared(1000).with_dt(5.0);
    let agg = AggregateEngine::new(cfg.clone());
    let rule = jsq_rule(6, 2);
    c.bench_function("aggregate_epoch_M1000_N1e6", |b| {
        let mut state = AggregateState::from_queues(vec![1usize; 1000]);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            agg.step(black_box(&mut state), &rule, 0.9, &mut rng)
        })
    });

    // Per-client engine at a moderate size for comparison: M = 100, N = 10^4.
    let cfg_small = SystemConfig::paper().with_m_squared(100).with_dt(5.0);
    let per = PerClientEngine::new(cfg_small.clone());
    c.bench_function("per_client_epoch_M100_N1e4", |b| {
        let mut state = PerClientState::from_queues(vec![1usize; 100], cfg_small.d);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            per.step(black_box(&mut state), &rule, 0.9, &mut rng)
        })
    });

    // Staggered engine (per-client with persistent snapshots) at the same
    // size — newly reachable through the unified Engine trait.
    let stag = mflb_sim::StaggeredEngine::new(cfg_small, 4);
    c.bench_function("staggered_epoch_M100_N1e4_c4", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut state = stag.init_state(&mut rng);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            stag.step(black_box(&mut state), &rule, 0.9, &mut rng)
        })
    });
}

fn bench_samplers(c: &mut Criterion) {
    c.bench_function("binomial_btrs_n1e6_p1e-3", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| Sampler::binomial(&mut rng, 1_000_000, black_box(0.001)))
    });
    c.bench_function("poisson_ptrs_mean4500", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| Sampler::poisson(&mut rng, black_box(4500.0)))
    });
    c.bench_function("multinomial_6cat_n1e6", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let probs = [0.3, 0.25, 0.2, 0.15, 0.07, 0.03];
        b.iter(|| Sampler::multinomial(&mut rng, 1_000_000, black_box(&probs)))
    });
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mlp = Mlp::new(&[8, 256, 256, 72], Activation::Tanh, &mut rng);
    let obs = vec![0.25; 8];
    c.bench_function("policy_forward_one_2x256", |b| b.iter(|| mlp.forward_one(black_box(&obs))));
    let mut ws = Workspace::new();
    c.bench_function("policy_forward_one_into_2x256", |b| {
        b.iter(|| {
            let out = mlp.forward_one_into(black_box(&obs), &mut ws);
            black_box(out[0])
        })
    });
    let batch = Tensor::from_vec(128, 8, vec![0.25; 128 * 8]);
    c.bench_function("policy_forward_batch128_2x256", |b| {
        b.iter(|| mlp.forward(black_box(&batch)))
    });
    c.bench_function("policy_forward_backward_batch128", |b| {
        b.iter(|| {
            let cache = mlp.forward_cached(black_box(&batch));
            let grad = cache.output().clone();
            mlp.backward(&cache, &grad)
        })
    });
    let mut bws = Workspace::new();
    let mut grad = Tensor::zeros(128, 72);
    c.bench_function("policy_forward_backward_into_batch128", |b| {
        b.iter(|| {
            mlp.forward_into(black_box(&batch), &mut bws);
            grad.reset(128, 72);
            grad.as_mut_slice().copy_from_slice(bws.output().as_slice());
            let flat = mlp.backward_into(&mut bws, &grad);
            black_box(flat[0])
        })
    });
}

/// Blocked `*_into` kernels vs the naive allocating matmuls at the
/// paper's 256×256 policy shape, plus the batch-1 `gemv_into` fast path —
/// local guardrails against kernel regressions (the tracked numbers live
/// in `mflb bench`'s BENCH_kernels.json).
fn bench_gemm_kernels(c: &mut Criterion) {
    let salted = |rows: usize, cols: usize, salt: u64| {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| ((i as f64 + salt as f64) * 0.789).sin()).collect(),
        )
    };
    let a = salted(128, 256, 1);
    let w = salted(256, 256, 2);
    c.bench_function("gemm_nn_128x256x256_naive", |b| b.iter(|| black_box(&a).matmul(&w)));
    let mut out = Tensor::zeros(128, 256);
    c.bench_function("gemm_nn_128x256x256_blocked", |b| {
        b.iter(|| {
            black_box(&a).matmul_into(&w, &mut out);
            black_box(out.get(0, 0))
        })
    });
    let g = salted(128, 256, 3);
    c.bench_function("gemm_tn_128x256x256_naive", |b| b.iter(|| black_box(&a).matmul_tn(&g)));
    let mut tn_out = Tensor::zeros(256, 256);
    c.bench_function("gemm_tn_128x256x256_blocked", |b| {
        b.iter(|| {
            black_box(&a).matmul_tn_into(&g, &mut tn_out);
            black_box(tn_out.get(0, 0))
        })
    });
    let x = salted(1, 256, 4);
    let mut row = vec![0.0; 256];
    c.bench_function("gemv_into_256x256", |b| {
        b.iter(|| {
            Tensor::gemv_into(black_box(x.as_slice()), &w, &mut row);
            black_box(row[0])
        })
    });
}

/// One full PPO minibatch-SGD phase (`PpoTrainer::update` over a single
/// 128-sample minibatch, one epoch) — the training hot loop end to end.
fn bench_ppo_minibatch(c: &mut Criterion) {
    use mflb_rl::{Env, PpoConfig, PpoTrainer, ToyControlEnv};
    let env = ToyControlEnv::new(16);
    let cfg = PpoConfig {
        train_batch_size: 128,
        minibatch_size: 128,
        num_epochs: 1,
        hidden: vec![64, 64],
        ..PpoConfig::paper()
    };
    let mut trainer = PpoTrainer::new(&env as &dyn Env, cfg, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let (buffer, _) = trainer.collect_batch();
    trainer.update(&buffer, &mut rng); // warm the workspaces
    c.bench_function("ppo_update_minibatch128_1epoch", |b| {
        b.iter(|| black_box(trainer.update(&buffer, &mut rng)))
    });
}

fn bench_rule_decoding(c: &mut Criterion) {
    let logits: Vec<f64> = (0..72).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("decision_rule_from_logits_36x2", |b| {
        b.iter(|| DecisionRule::from_logits(6, 2, black_box(&logits)))
    });
}

fn bench_phase_type(c: &mut Criterion) {
    use mflb_core::{ph_mean_field_step, PhDist};
    use mflb_queue::PhaseType;
    // One PH mean-field epoch: B = 5 with a 2-phase H2 service
    // (13 joint states -> 14x14 matrix exponentials per length group).
    let service = PhaseType::fit_mean_scv(1.0, 2.0);
    let nu = StateDist::new(vec![0.3, 0.25, 0.2, 0.15, 0.07, 0.03]);
    let joint = PhDist::from_lengths(&nu, &service);
    let rule = jsq_rule(6, 2);
    c.bench_function("ph_mean_field_step_2phase_dt5", |b| {
        b.iter(|| ph_mean_field_step(black_box(&joint), black_box(&rule), 0.9, &service, 5.0))
    });
    // Gillespie on one PH queue for an epoch (the finite engine's inner
    // loop).
    let q = mflb_queue::PhQueue::new(0.9, service, 5);
    c.bench_function("ph_queue_gillespie_epoch_dt5", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| {
            q.simulate_epoch(
                black_box(mflb_queue::PhQueueState { len: 2, phase: 0 }),
                5.0,
                &mut rng,
            )
        })
    });
}

fn bench_dp(c: &mut Criterion) {
    use mflb_dp::{ActionLibrary, DpConfig, DpSolution, SimplexGrid};
    // Simplex-lattice interpolation: the inner kernel of every Bellman
    // backup.
    let grid = SimplexGrid::new(6, 12);
    let nu = StateDist::new(vec![0.23, 0.17, 0.31, 0.12, 0.09, 0.08]);
    c.bench_function("simplex_interpolate_B5_G12", |b| b.iter(|| grid.interpolate(black_box(&nu))));
    c.bench_function("simplex_snap_B5_G12", |b| b.iter(|| grid.snap(black_box(&nu))));
    // A full (small) DP solve: B = 3 lattice, softmin library — the
    // certified-optimum pipeline of the ablation experiments.
    let cfg = SystemConfig::paper().with_buffer(3).with_dt(5.0);
    let mut group = c.benchmark_group("dp_solve");
    group.sample_size(10);
    group.bench_function("value_iteration_B3_G8", |b| {
        b.iter(|| {
            let dp_cfg = DpConfig { grid_resolution: 8, tol: 1e-6, max_sweeps: 4000, threads: 1 };
            DpSolution::solve(black_box(&cfg), ActionLibrary::softmin_default(4, 2), &dp_cfg)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_expm,
    bench_mean_field_step,
    bench_mfc_rollout,
    bench_engines,
    bench_samplers,
    bench_nn,
    bench_gemm_kernels,
    bench_ppo_minibatch,
    bench_rule_decoding,
    bench_phase_type,
    bench_dp
);
criterion_main!(benches);

//! Regenerates Table 2 (PPO hyper-parameter configuration).

use mflb_bench::harness::{print_table, write_csv};
use mflb_rl::PpoConfig;

fn main() {
    let c = PpoConfig::paper();
    let rows: Vec<Vec<String>> = vec![
        vec!["γ".into(), "Discount factor".into(), format!("{}", c.gamma)],
        vec!["λRL".into(), "GAE lambda".into(), format!("{}", c.gae_lambda)],
        vec!["β".into(), "KL coefficient".into(), format!("{}", c.kl_coeff)],
        vec!["ε".into(), "Clip parameter".into(), format!("{}", c.clip)],
        vec!["lr".into(), "Learning rate".into(), format!("{}", c.lr)],
        vec!["Bb".into(), "Training batch size".into(), format!("{}", c.train_batch_size)],
        vec!["Bm".into(), "SGD mini batch size".into(), format!("{}", c.minibatch_size)],
        vec!["Tb".into(), "Number of epochs".into(), format!("{}", c.num_epochs)],
        vec!["net".into(), "Policy/value networks".into(), format!("{:?} tanh (Fig. 2)", c.hidden)],
    ];
    print_table(
        "Table 2: Hyperparameter configuration for PPO",
        &["Symbol", "Name", "Value"],
        &rows,
    );
    write_csv("table2_hyperparams.csv", &["symbol", "name", "value"], &rows);
}

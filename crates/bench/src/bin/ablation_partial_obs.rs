//! Extension experiment (ours): the value of information — partial
//! observability of the mean-field state (paper §2.1 remark / §5 future
//! work).
//!
//! ```text
//! cargo run -p mflb-bench --release --bin ablation_partial_obs -- [--scale quick|paper]
//! ```
//!
//! Takes the strongest ν-feedback policy available (the exact-DP greedy
//! policy over the softmin family) and degrades its observations:
//!
//! * `sampled(k)` — the policy sees an empirical estimate of `ν_t` from
//!   `k` polled queues, `k ∈ {3, 10, 30, 100, 1000}`,
//! * `stale(e)` — the observation is `e` extra epochs old,
//! * `no-lambda` — the arrival level is hidden,
//! * `exact` — the fully observed reference.
//!
//! Expected shape: returns improve monotonically in `k` and approach the
//! exact value (≈ `k ≳ 100` suffices — queue polling is cheap);
//! staleness costs roughly one Δt of the Fig. 5 degradation per epoch;
//! hiding λ costs little at Δt = 5 (ν already encodes the load level).

use mflb_bench::harness::{arg_value, print_table, write_csv, Scale};
use mflb_core::partial::{ObservationModel, PartialObservationPolicy};
use mflb_core::{MeanFieldMdp, SystemConfig, UpperPolicy};
use mflb_dp::{ActionLibrary, DpConfig, DpSolution, GridPolicy};
use mflb_linalg::stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluate_model(
    mdp: &MeanFieldMdp,
    base: &GridPolicy,
    model: ObservationModel,
    seqs: &[Vec<usize>],
    seed: u64,
) -> Summary {
    let mut s = Summary::new();
    for (run, seq) in seqs.iter().enumerate() {
        // Fresh wrapper state per episode: staleness buffers and estimator
        // noise must not leak across runs.
        let wrapped = PartialObservationPolicy::new(base.clone(), model, seed + run as u64);
        s.push(mdp.rollout_conditioned(&wrapped, seq).total_return);
    }
    s
}

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(17);
    let (grid_resolution, episodes) = match scale {
        Scale::Quick => (8usize, 12usize),
        Scale::Paper => (14, 40),
    };
    let dt = 5.0;
    let cfg = SystemConfig::paper().with_dt(dt);
    let zs = cfg.num_states();
    let horizon = cfg.eval_episode_len();
    let mdp = MeanFieldMdp::new(cfg.clone());

    println!("solving the lattice DP (G = {grid_resolution}) for the ν-feedback policy …");
    let dp_cfg = DpConfig { grid_resolution, tol: 1e-6, max_sweeps: 4000, threads: 0 };
    let sol = DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &dp_cfg);
    let base = sol.into_policy();

    let mut rng = StdRng::seed_from_u64(seed);
    let seqs: Vec<Vec<usize>> = (0..episodes)
        .map(|_| mflb_core::theory::sample_lambda_sequence(&cfg, horizon, &mut rng))
        .collect();

    let models = vec![
        ObservationModel::Exact,
        ObservationModel::SampledQueues { k: 3 },
        ObservationModel::SampledQueues { k: 10 },
        ObservationModel::SampledQueues { k: 30 },
        ObservationModel::SampledQueues { k: 100 },
        ObservationModel::SampledQueues { k: 1000 },
        ObservationModel::Stale { epochs: 1 },
        ObservationModel::Stale { epochs: 2 },
        ObservationModel::NoArrivalInfo,
    ];

    let exact_value = evaluate_model(&mdp, &base, ObservationModel::Exact, &seqs, seed).mean();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for model in models {
        let s = evaluate_model(&mdp, &base, model, &seqs, seed);
        rows.push(vec![
            model.label(),
            format!("{:.2} ± {:.2}", s.mean(), s.ci95_half_width()),
            format!("{:+.2}", s.mean() - exact_value),
        ]);
        csv_rows.push(vec![
            model.label(),
            format!("{:.4}", s.mean()),
            format!("{:.4}", s.ci95_half_width()),
            format!("{:.4}", s.mean() - exact_value),
        ]);
    }
    print_table(
        &format!("Partial-observability ablation (Δt = {dt}, DP policy, B = 5): episode return"),
        &["observation", "return", "vs exact"],
        &rows,
    );
    write_csv(
        &format!("ablation_partial_obs_{}.csv", scale.label()),
        &["observation", "return", "ci95", "gap_vs_exact"],
        &csv_rows,
    );

    println!("\n[shape] sampled(k) should climb towards exact as k grows;");
    println!("        staleness should cost more than estimation noise;");
    println!("        hiding λ should cost the least (ν encodes the load).");
    let _ = base.name();
}

//! Million-queue scaling demo (ours, after arXiv:2312.12973): sharded
//! sparse-graph epochs from 10^4 to 10^6 queues on a single process.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin fig_sparse_scale -- [--scale quick|paper]
//! ```
//!
//! For each system size the harness builds a torus and a random 4-regular
//! topology (streaming CSR generators), runs a seeded finite-system
//! episode under the β-optimized softmin rule on the sharded
//! [`mflb_sim::GraphEngine`], and reports build plus epoch-stepping
//! throughput (`epochs/s` and `queues·epochs/s`) next to the measured
//! drop rate. The `queues·epochs/s` column is the headline: it stays
//! roughly flat from 10^4 to 10^6 queues because a sharded epoch is
//! `O(M·(k + |support|^d·d))` — nothing in the hot loop looks at `N` or
//! at the dense `|Z|^d` tuple space. The tracked-gate twin of this demo
//! lives in `mflb bench --suite graph` (`BENCH_graph_quick.json`).

use mflb_bench::harness::{arg_value, print_table, write_csv, Scale};
use mflb_core::mdp::FixedRulePolicy;
use mflb_core::{SystemConfig, Topology};
use mflb_policy::{optimize_beta, softmin_rule};
use mflb_sim::{run_episode, run_rng, GraphEngine, StepMode};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(7);
    let workers: usize = arg_value("--workers").map(|v| v.parse().expect("--workers")).unwrap_or(0);
    // (queues, torus side, epochs): torus sizes are the nearest squares.
    let cases: Vec<(usize, usize, usize)> = match scale {
        Scale::Quick => vec![(10_000, 100, 50), (100_000, 316, 10), (1_000_000, 1_000, 5)],
        Scale::Paper => vec![(10_000, 100, 200), (100_000, 316, 60), (1_000_000, 1_000, 20)],
    };

    // β from the (size-independent) mean-field sweep at the Table-1 point.
    let base_cfg = SystemConfig::paper().with_dt(5.0);
    let zs = base_cfg.num_states();
    let d = base_cfg.d;
    let beta = optimize_beta(&base_cfg, 60, 8, seed).beta;
    let policy = FixedRulePolicy::new(softmin_rule(zs, d, beta), "SOFT");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &(m, side, epochs) in &cases {
        for (topology, label, m_eff) in [
            (Topology::Torus { radius: 1 }, "torus r=1", side * side),
            (Topology::RandomRegular { degree: 4, seed: 11 }, "random 4-reg", m),
        ] {
            let cfg = base_cfg.clone().with_size(4 * m_eff as u64, m_eff);
            let t0 = Instant::now();
            let engine =
                GraphEngine::new(cfg, topology).with_mode(StepMode::Sharded).with_workers(workers);
            let build_s = t0.elapsed().as_secs_f64();
            let k = engine.neighborhood_size();

            let t1 = Instant::now();
            let out = run_episode(&engine, &policy, epochs, &mut run_rng(seed, 1));
            let wall_s = t1.elapsed().as_secs_f64();
            let eps = epochs as f64 / wall_s;
            let qeps = m_eff as f64 * eps;

            rows.push(vec![
                label.to_string(),
                format!("{m_eff}"),
                format!("{k}"),
                format!("{epochs}"),
                format!("{build_s:.2}"),
                format!("{wall_s:.2}"),
                format!("{eps:.1}"),
                format!("{:.2}", qeps / 1e6),
                format!("{:.3}", out.total_drops),
            ]);
            csv.push(vec![
                label.replace(' ', "_"),
                format!("{m_eff}"),
                format!("{k}"),
                format!("{epochs}"),
                format!("{build_s:.4}"),
                format!("{wall_s:.4}"),
                format!("{eps:.2}"),
                format!("{qeps:.0}"),
                format!("{:.4}", out.total_drops),
            ]);
        }
    }

    print_table(
        &format!(
            "Sparse-graph scaling (N = 4M, Δt = 5, β* = {beta:.2}, sharded engine, \
             workers = {})",
            if workers == 0 { "auto".to_string() } else { workers.to_string() }
        ),
        &[
            "topology",
            "M",
            "k",
            "epochs",
            "build s",
            "episode s",
            "epochs/s",
            "Mq·epochs/s",
            "drops",
        ],
        &rows,
    );
    write_csv(
        &format!("fig_sparse_scale_{}.csv", scale.label()),
        &[
            "topology",
            "m",
            "k",
            "epochs",
            "build_s",
            "wall_s",
            "epochs_per_s",
            "q_epochs_per_s",
            "drops",
        ],
        &csv,
    );

    println!("\n[shape] q·epochs/s should stay ~flat across three decades of M:");
    let trend: Vec<String> = csv.iter().map(|r| format!("{} M={}: {}", r[0], r[1], r[7])).collect();
    println!("  {}", trend.join("  "));
}

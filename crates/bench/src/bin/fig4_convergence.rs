//! Regenerates Figure 4: convergence of the finite-system performance of
//! the MF policy to the mean-field (MFC MDP) value as the system grows
//! (`N = M²`, M ∈ {100, …, 1000}), for Δt ∈ {1, 3, 5, 7, 10}.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin fig4_convergence -- [--scale quick|paper]
//! ```
//!
//! For each Δt the binary prints the mean-field value ("MF-MFC", the red
//! dotted line) and one row per M with the finite-system estimate
//! ("MF-NM") ± 95% CI, plus the absolute gap — the empirical Theorem 1.

use mflb_bench::harness::{arg_value, mf_policy_for, print_table, write_csv, Scale};
use mflb_core::{MeanFieldMdp, SystemConfig};
use mflb_sim::{monte_carlo, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(4);
    let n_runs = scale.n_runs();
    let m_grid = scale.m_grid_fig4();
    let dt_grid = scale.dt_grid_fig4();

    let mut all_rows: Vec<Vec<String>> = Vec::new();
    for &dt in &dt_grid {
        let base = SystemConfig::paper().with_dt(dt);
        let horizon = base.eval_episode_len();
        let resolved = mf_policy_for(&base, horizon.min(120), seed);
        println!(
            "\nΔt = {dt}: MF policy = {} [{}], Te = {horizon} epochs, n = {n_runs}",
            resolved.policy.name(),
            resolved.provenance
        );

        // Mean-field value (limiting system): Monte-Carlo over arrival
        // sequences only (the ν-dynamics are deterministic).
        let mdp = MeanFieldMdp::new(base.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF164);
        let mf_eval = mdp.evaluate(resolved.policy.as_ref(), horizon, 200, &mut rng);
        let mf_drops = -mf_eval.mean();

        let mut rows = Vec::new();
        for &m in &m_grid {
            let cfg = base.clone().with_m_squared(m);
            let engine = AggregateEngine::new(cfg.clone());
            let mc = monte_carlo(&engine, resolved.policy.as_ref(), horizon, n_runs, seed, 0);
            let gap = (mc.mean() - mf_drops).abs();
            rows.push(vec![
                format!("{dt}"),
                format!("{m}"),
                format!("{}", cfg.num_clients),
                format!("{:.3}", mc.mean()),
                format!("{:.3}", mc.ci95()),
                format!("{:.3}", mf_drops),
                format!("{:.3}", gap),
                resolved.provenance.clone(),
            ]);
        }
        print_table(
            &format!("Figure 4 (Δt = {dt}): average packet drops, MF-NM vs MF-MFC"),
            &["dt", "M", "N", "MF-NM drops", "ci95", "MF-MFC drops", "|gap|", "policy"],
            &rows,
        );
        // Theorem-1 shape note: compare first vs last gap.
        if rows.len() >= 2 {
            let first_gap: f64 = rows.first().unwrap()[6].parse().unwrap();
            let last_gap: f64 = rows.last().unwrap()[6].parse().unwrap();
            println!(
                "[shape] gap M={} -> M={}: {:.3} -> {:.3} ({})",
                m_grid.first().unwrap(),
                m_grid.last().unwrap(),
                first_gap,
                last_gap,
                if last_gap <= first_gap + 0.15 { "OK: shrinking/stable" } else { "WARNING: grew" }
            );
        }
        all_rows.extend(rows);
    }
    write_csv(
        &format!("fig4_convergence_{}.csv", scale.label()),
        &["dt", "M", "N", "mf_nm_drops", "ci95", "mf_mfc_drops", "abs_gap", "policy"],
        &all_rows,
    );
}

//! Ablation: how much of the learned policy's gain over JSQ(2)/RND is
//! mere RND↔JSQ interpolation, and how much is state feedback?
//!
//! For every Δt we (a) optimize the 1-parameter softmin(β) family in the
//! mean-field MDP (no state feedback: one fixed rule), and (b) evaluate
//! the trained PPO checkpoint if one exists. The difference MF − SOFT(β*)
//! isolates the value of conditioning on `(ν_t, λ_t)`.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin ablation_softmin -- [--scale quick|paper]
//! ```
//!
//! A second sanity shape from the paper: β* must fall as Δt grows
//! (the staler the information, the softer the optimal routing).

use mflb_bench::harness::{
    arg_value, checkpoint_path, jsq_policy, print_table, rnd_policy, write_csv, Scale,
};
use mflb_core::{MeanFieldMdp, SystemConfig};
use mflb_policy::{optimize_beta, NeuralUpperPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(8);
    let dt_grid = scale.dt_grid_fig5();
    let episodes = match scale {
        Scale::Quick => 40,
        Scale::Paper => 200,
    };

    let mut rows = Vec::new();
    let mut betas = Vec::new();
    for &dt in &dt_grid {
        let cfg = SystemConfig::paper().with_dt(dt);
        let horizon = cfg.eval_episode_len();
        let mdp = MeanFieldMdp::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(seed);

        let search = optimize_beta(&cfg, horizon.min(150), 10, seed);
        betas.push((dt, search.beta));
        let soft = mflb_policy::SoftminPolicy::new(cfg.num_states(), cfg.d, search.beta);
        let soft_eval = mdp.evaluate(&soft, horizon, episodes, &mut rng);
        let jsq_eval = mdp.evaluate(&jsq_policy(&cfg), horizon, episodes, &mut rng);
        let rnd_eval = mdp.evaluate(&rnd_policy(&cfg), horizon, episodes, &mut rng);

        let (ppo_drops, feedback_gain) = match NeuralUpperPolicy::load(checkpoint_path(dt)) {
            Ok(p) => {
                let e = mdp.evaluate(&p, horizon, episodes, &mut rng);
                (format!("{:.2}", -e.mean()), format!("{:+.2}", -e.mean() - -soft_eval.mean()))
            }
            Err(_) => ("-".into(), "-".into()),
        };

        rows.push(vec![
            format!("{dt}"),
            format!("{:.3}", search.beta),
            format!("{:.2}", -soft_eval.mean()),
            format!("{:.2}", -jsq_eval.mean()),
            format!("{:.2}", -rnd_eval.mean()),
            ppo_drops,
            feedback_gain,
        ]);
    }
    print_table(
        "Ablation: softmin(β*) vs JSQ(2) vs RND vs learned MF (mean-field drops, lower is better)",
        &["dt", "beta*", "SOFT(b*)", "JSQ(2)", "RND", "MF (PPO)", "PPO-SOFT"],
        &rows,
    );
    write_csv(
        &format!("ablation_softmin_{}.csv", scale.label()),
        &[
            "dt",
            "beta_star",
            "softmin_drops",
            "jsq_drops",
            "rnd_drops",
            "ppo_drops",
            "feedback_gain",
        ],
        &rows,
    );

    // Shape check: β* decreasing in Δt (allowing plateau noise).
    let monotone_violations = betas.windows(2).filter(|w| w[1].1 > w[0].1 + 0.35).count();
    println!(
        "\n[shape] beta* sequence {:?} — {}",
        betas.iter().map(|(_, b)| (*b * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
        if monotone_violations == 0 {
            "OK: decreasing with delay (staler info -> softer routing)"
        } else {
            "WARNING: non-monotone"
        }
    );
}

//! Regenerates Figure 3: the PPO training curve in the MFC MDP at Δt = 5,
//! compared against the MF-JSQ(2) and MF-RND fixed-rule baselines and the
//! final deterministic MF return.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin fig3_training -- \
//!     [--scale quick|paper] [--dt 5] [--threads 8] [--seed 1]
//! ```
//!
//! Prints `(timesteps, episode return)` pairs (the paper's axes), the two
//! horizontal baselines and the red-dotted "MF final performance" line;
//! writes `target/experiments/fig3_training_curve.csv`. At quick scale the
//! learning curve is shorter than the paper's 2.5·10⁷ steps, but the
//! qualitative shape — starting near MF-RND, climbing past it towards and
//! beyond MF-JSQ(2) — is preserved.

use mflb_bench::harness::{
    arg_value, checkpoint_path, jsq_policy, print_table, rnd_policy, write_csv, Scale,
};
use mflb_bench::training::{iterations_for, ppo_config_for};
use mflb_core::{MeanFieldMdp, SystemConfig};
use mflb_rl::train_scenario;
use mflb_sim::{EngineSpec, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let dt: f64 = arg_value("--dt").map(|v| v.parse().expect("--dt")).unwrap_or(5.0);
    let threads: usize = arg_value("--threads").map(|v| v.parse().expect("--threads")).unwrap_or(8);
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(1);
    let iters: usize = arg_value("--iters")
        .map(|v| v.parse().expect("--iters"))
        .unwrap_or_else(|| iterations_for(scale));

    let config = SystemConfig::paper().with_dt(dt);
    let horizon = config.train_episode_len; // T = 500 epochs, as in Fig. 3
    let mdp = MeanFieldMdp::new(config.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF163);

    // Baselines (horizontal lines in the figure).
    let eval_episodes = match scale {
        Scale::Quick => 20,
        Scale::Paper => 100,
    };
    let jsq = mdp.evaluate(&jsq_policy(&config), horizon, eval_episodes, &mut rng);
    let rnd = mdp.evaluate(&rnd_policy(&config), horizon, eval_episodes, &mut rng);
    println!("MF-JSQ(2) expected episode return: {:.2} ± {:.2}", jsq.mean(), jsq.ci95_half_width());
    println!("MF-RND    expected episode return: {:.2} ± {:.2}", rnd.mean(), rnd.ci95_half_width());

    // Training, through the scenario subsystem (same path as `mflb train`).
    println!("\ntraining (scale={}, {iters} iterations) ...", scale.label());
    let ppo = ppo_config_for(scale, threads);
    let scenario = Scenario::new(config.clone(), EngineSpec::Aggregate);
    let result = train_scenario(&scenario, ppo, iters, seed, true).expect("training failed");
    let (policy, curve) = (result.policy, result.checkpoint.curve.clone());

    // Final deterministic performance (red dotted line).
    let final_eval = mdp.evaluate(&policy, horizon, eval_episodes, &mut rng);
    println!(
        "\nMF final deterministic return: {:.2} ± {:.2}",
        final_eval.mean(),
        final_eval.ci95_half_width()
    );

    // Save the checkpoint so fig4-6 pick it up — but never clobber a
    // better previously trained one (e.g. a longer train_policy run).
    let ckpt = checkpoint_path(dt);
    if let Some(parent) = ckpt.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    let existing = mflb_rl::TrainingCheckpoint::load(&ckpt)
        .ok()
        .and_then(|c| c.into_policy().ok())
        .or_else(|| mflb_policy::NeuralUpperPolicy::load(&ckpt).ok());
    let existing_better = match existing {
        Some(old) => {
            let old_eval = mdp.evaluate(&old, horizon, eval_episodes, &mut rng);
            old_eval.mean() >= final_eval.mean()
        }
        None => false,
    };
    if existing_better {
        println!(
            "existing checkpoint at {} evaluates at least as well; keeping it",
            ckpt.display()
        );
    } else {
        result.checkpoint.save(&ckpt).expect("save checkpoint");
        println!("versioned checkpoint saved to {}", ckpt.display());
    }

    // Emit the curve (sub-sampled for the console, full in the CSV).
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.steps),
                format!("{:.3}", p.mean_return),
                format!("{:.5}", p.kl),
                format!("{:.2}", p.entropy),
            ]
        })
        .collect();
    let console_rows: Vec<Vec<String>> =
        rows.iter().step_by((rows.len() / 20).max(1)).cloned().collect();
    print_table(
        &format!("Figure 3: MF training curve (Δt = {dt}, T = {horizon})"),
        &["timesteps", "episode return", "KL", "entropy"],
        &console_rows,
    );
    // Terminal rendering of the figure: training curve against the two
    // horizontal baselines.
    let returns: Vec<f64> = curve.iter().map(|p| p.mean_return).collect();
    if returns.len() >= 2 {
        let jsq_line = vec![jsq.mean(); returns.len()];
        let rnd_line = vec![rnd.mean(); returns.len()];
        println!(
            "\n{}",
            mflb_bench::chart::line_chart(
                &format!("episode return vs training steps (Δt = {dt})"),
                &[("MF training", &returns), ("MF-JSQ(2)", &jsq_line), ("MF-RND", &rnd_line)],
                72,
                16,
            )
        );
    }

    let mut csv_rows = rows.clone();
    // Append baseline markers so the CSV is self-contained for plotting.
    csv_rows.push(vec![
        "baseline:MF-JSQ(2)".into(),
        format!("{:.3}", jsq.mean()),
        String::new(),
        String::new(),
    ]);
    csv_rows.push(vec![
        "baseline:MF-RND".into(),
        format!("{:.3}", rnd.mean()),
        String::new(),
        String::new(),
    ]);
    csv_rows.push(vec![
        "final:MF".into(),
        format!("{:.3}", final_eval.mean()),
        String::new(),
        String::new(),
    ]);
    write_csv(
        "fig3_training_curve.csv",
        &["timesteps", "episode_return", "kl", "entropy"],
        &csv_rows,
    );

    // Qualitative check mirrored from the figure: learning must end above
    // the MF-RND baseline.
    if final_eval.mean() > rnd.mean() {
        println!(
            "[shape] OK: learned MF beats MF-RND ({:.2} > {:.2})",
            final_eval.mean(),
            rnd.mean()
        );
    } else {
        println!(
            "[shape] WARNING: learned MF did not beat MF-RND at this scale ({:.2} <= {:.2})",
            final_eval.mean(),
            rnd.mean()
        );
    }
}

//! Regenerates Figure 5: total packets dropped (per queue, accumulated
//! over ≈500 time units) of the MF policy vs JSQ(2) vs RND as the
//! synchronization delay Δt grows, for M ∈ {400, 600, 800, 1000} and
//! N = M².
//!
//! ```text
//! cargo run -p mflb-bench --release --bin fig5_delay_sweep -- [--scale quick|paper]
//! ```
//!
//! The paper's qualitative findings checked here: (i) all policies degrade
//! as Δt rises; (ii) MF ≥ JSQ(2) from intermediate delays (Δt ≳ 3) while
//! JSQ(2) wins for tiny delays; (iii) MF beats RND everywhere.

use mflb_bench::harness::{
    arg_value, jsq_policy, mf_policy_for, print_table, rnd_policy, write_csv, Scale,
};
use mflb_core::SystemConfig;
use mflb_sim::{monte_carlo, AggregateEngine};

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(5);
    let n_runs = scale.n_runs();
    let dt_grid = scale.dt_grid_fig5();
    let m_grid = scale.m_grid_fig5();

    let mut all_rows = Vec::new();
    for &m in &m_grid {
        let mut rows = Vec::new();
        for &dt in &dt_grid {
            let cfg = SystemConfig::paper().with_dt(dt).with_m_squared(m);
            let horizon = cfg.eval_episode_len();
            let engine = AggregateEngine::new(cfg.clone());

            let resolved = mf_policy_for(&cfg, horizon.min(120), seed);
            let mf = monte_carlo(&engine, resolved.policy.as_ref(), horizon, n_runs, seed, 0);
            let jsq = monte_carlo(&engine, &jsq_policy(&cfg), horizon, n_runs, seed + 1, 0);
            let rnd = monte_carlo(&engine, &rnd_policy(&cfg), horizon, n_runs, seed + 2, 0);

            rows.push(vec![
                format!("{m}"),
                format!("{dt}"),
                format!("{:.2} ± {:.2}", mf.mean(), mf.ci95()),
                format!("{:.2} ± {:.2}", jsq.mean(), jsq.ci95()),
                format!("{:.2} ± {:.2}", rnd.mean(), rnd.ci95()),
                resolved.provenance.clone(),
            ]);
            all_rows.push(vec![
                format!("{m}"),
                format!("{dt}"),
                format!("{:.4}", mf.mean()),
                format!("{:.4}", mf.ci95()),
                format!("{:.4}", jsq.mean()),
                format!("{:.4}", jsq.ci95()),
                format!("{:.4}", rnd.mean()),
                format!("{:.4}", rnd.ci95()),
                resolved.provenance.clone(),
            ]);
        }
        print_table(
            &format!("Figure 5 (M = {m}, N = M²): total packets dropped vs Δt"),
            &["M", "dt", "MF-NM", "JSQ(2)", "RND", "mf-policy"],
            &rows,
        );
        // Terminal rendering of this panel.
        let col = |i: usize| -> Vec<f64> {
            all_rows
                .iter()
                .filter(|r| r[0] == format!("{m}"))
                .map(|r| r[i].parse::<f64>().unwrap())
                .collect()
        };
        let (mf, jsq, rnd) = (col(2), col(4), col(6));
        println!(
            "\n{}",
            mflb_bench::chart::line_chart(
                &format!("drops vs Δt (M = {m}): lower is better"),
                &[("MF", &mf), ("JSQ(2)", &jsq), ("RND", &rnd)],
                64,
                14,
            )
        );
    }
    write_csv(
        &format!("fig5_delay_sweep_{}.csv", scale.label()),
        &["M", "dt", "mf", "mf_ci", "jsq", "jsq_ci", "rnd", "rnd_ci", "mf_policy"],
        &all_rows,
    );

    // Qualitative crossover summary per M.
    println!("\n[shape] crossover check (first Δt where MF < JSQ(2)):");
    for &m in &m_grid {
        let cross = all_rows
            .iter()
            .filter(|r| r[0] == format!("{m}"))
            .find(|r| r[2].parse::<f64>().unwrap() < r[4].parse::<f64>().unwrap())
            .map(|r| r[1].clone());
        println!("  M={m}: {}", cross.unwrap_or_else(|| "none in grid".into()));
    }
}

//! Extension experiment (ours): the effect of the power-of-`d` sample
//! size under synchronization delay.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin fig7_d_sweep -- [--scale quick|paper]
//! ```
//!
//! The paper fixes `d = 2` citing Mitzenmacher's classic result (d = 1 →
//! 2 is an exponential improvement, 2 → 3 adds little) — but that result
//! assumes *fresh* information. This sweep re-examines the choice under
//! delay: for each `d ∈ {1, 2, 3, 4}` it runs JSQ(d), RND and the
//! β-optimized softmin(d) on the finite system at small and intermediate
//! Δt. Expected shape: at Δt = 1, JSQ(2) ≫ JSQ(1) and JSQ(3) adds little
//! (the classic picture); at larger Δt, *bigger d makes JSQ worse* — more
//! samples concentrate the herd onto the same stale-shortest queues —
//! while the tuned softmin degrades gracefully.

use mflb_bench::harness::{arg_value, print_table, write_csv, Scale};
use mflb_core::mdp::FixedRulePolicy;
use mflb_core::SystemConfig;
use mflb_policy::{jsq_rule, optimize_beta, rnd_rule, softmin_rule};
use mflb_sim::{monte_carlo, AggregateEngine};

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(7);
    let n_runs = scale.n_runs();
    let m = scale.m_grid_fig5()[0];
    let dt_grid: Vec<f64> = match scale {
        Scale::Quick => vec![1.0, 5.0],
        Scale::Paper => vec![1.0, 3.0, 5.0, 10.0],
    };
    let d_grid = [1usize, 2, 3, 4];

    let mut all_rows = Vec::new();
    for &dt in &dt_grid {
        let mut rows = Vec::new();
        for &d in &d_grid {
            let cfg = SystemConfig::paper().with_dt(dt).with_m_squared(m).with_d(d);
            let zs = cfg.num_states();
            let horizon = cfg.eval_episode_len();
            let engine = AggregateEngine::new(cfg.clone());

            let beta = optimize_beta(&cfg, horizon.min(120), 8, seed).beta;
            let soft = FixedRulePolicy::new(softmin_rule(zs, d, beta), format!("SOFT(d={d})"));
            let jsq = FixedRulePolicy::new(jsq_rule(zs, d), format!("JSQ({d})"));
            let rnd = FixedRulePolicy::new(rnd_rule(zs, d), "RND");

            let r_jsq = monte_carlo(&engine, &jsq, horizon, n_runs, seed, 0);
            let r_rnd = monte_carlo(&engine, &rnd, horizon, n_runs, seed + 1, 0);
            let r_soft = monte_carlo(&engine, &soft, horizon, n_runs, seed + 2, 0);

            rows.push(vec![
                format!("{dt}"),
                format!("{d}"),
                format!("{:.2} ± {:.2}", r_jsq.mean(), r_jsq.ci95()),
                format!("{:.2} ± {:.2}", r_rnd.mean(), r_rnd.ci95()),
                format!("{:.2} ± {:.2}", r_soft.mean(), r_soft.ci95()),
                format!("{beta:.3}"),
            ]);
            all_rows.push(vec![
                format!("{dt}"),
                format!("{d}"),
                format!("{:.4}", r_jsq.mean()),
                format!("{:.4}", r_jsq.ci95()),
                format!("{:.4}", r_rnd.mean()),
                format!("{:.4}", r_rnd.ci95()),
                format!("{:.4}", r_soft.mean()),
                format!("{:.4}", r_soft.ci95()),
                format!("{beta:.4}"),
            ]);
        }
        print_table(
            &format!("Fig. 7 (ours, M = {m}, N = M²): drops vs d at Δt = {dt}"),
            &["dt", "d", "JSQ(d)", "RND", "SOFT(d, beta*)", "beta*"],
            &rows,
        );
    }
    write_csv(
        &format!("fig7_d_sweep_{}.csv", scale.label()),
        &["dt", "d", "jsq", "jsq_ci", "rnd", "rnd_ci", "soft", "soft_ci", "beta_star"],
        &all_rows,
    );

    // Qualitative shape summary.
    println!("\n[shape] JSQ(d) drops by d per Δt (does larger d help or herd?):");
    for &dt in &dt_grid {
        let per_d: Vec<(usize, f64)> = all_rows
            .iter()
            .filter(|r| r[0] == format!("{dt}"))
            .map(|r| (r[1].parse().unwrap(), r[2].parse().unwrap()))
            .collect();
        let trend: Vec<String> = per_d.iter().map(|(d, v)| format!("d={d}: {v:.1}")).collect();
        println!("  Δt={dt}: {}", trend.join("  "));
    }
}

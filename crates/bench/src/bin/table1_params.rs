//! Regenerates Table 1 (system parameters used in the experiments).

use mflb_bench::harness::{print_table, write_csv};
use mflb_core::SystemConfig;

fn main() {
    let c = SystemConfig::paper();
    let rows: Vec<Vec<String>> = vec![
        vec!["Δt".into(), "Time step size".into(), "1 - 10".into()],
        vec!["α".into(), "Service rate".into(), format!("{}", c.service_rate)],
        vec![
            "(λh, λl)".into(),
            "Arrival rates".into(),
            format!("({}, {})", c.arrivals.level_rate(0), c.arrivals.level_rate(1)),
        ],
        vec!["N".into(), "Number of clients".into(), "1000 - 1000000".into()],
        vec!["M".into(), "Number of queues".into(), "100 - 1000".into()],
        vec!["d".into(), "Number of accessible queues".into(), format!("{}", c.d)],
        vec!["n".into(), "Monte Carlo simulations".into(), "100".into()],
        vec!["B".into(), "Queue buffer size".into(), format!("{}", c.buffer)],
        vec!["ν0".into(), "Queue starting state distribution".into(), "[1, 0, 0, ...]".into()],
        vec!["D".into(), "Drop penalty per job".into(), "1".into()],
        vec!["T".into(), "Training episode length".into(), format!("{}", c.train_episode_len)],
        vec![
            "Te".into(),
            "Evaluation episode length".into(),
            format!(
                "{} - {} (≈ {}/Δt)",
                c.clone().with_dt(10.0).eval_episode_len(),
                c.clone().with_dt(1.0).eval_episode_len(),
                c.eval_time
            ),
        ],
    ];
    print_table(
        "Table 1: System parameters used in the experiments",
        &["Symbol", "Name", "Value"],
        &rows,
    );
    write_csv("table1_params.csv", &["symbol", "name", "value"], &rows);

    // Also show the modulation kernel (Eq. 32-33) for completeness.
    println!("\nArrival modulation kernel (Eq. 32-33):");
    println!("  P(λ(t+1)=λl | λ(t)=λh) = {}", c.arrivals.kernel_row(0)[1]);
    println!("  P(λ(t+1)=λh | λ(t)=λl) = {}", c.arrivals.kernel_row(1)[0]);
}

//! Extension experiment (ours): job-level response times under delay.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin fig8_sojourn -- [--scale quick|paper]
//! ```
//!
//! The paper's objective is packet drops, but its introduction motivates
//! the problem through "higher response times" under herd behaviour.
//! This experiment runs the finite system at the *job level* — every
//! queue is a FIFO queue with per-job arrival/departure timestamps
//! ([`mflb_sim::FifoEngine`], built from a [`mflb_sim::Scenario`]) — and
//! reports the mean and p95 sojourn time of completed jobs, next to the
//! drop fraction, for JSQ(2)/RND/tuned softmin across Δt. Sojourn
//! samples flow through the generic `EpisodeOutcome` and are pooled over
//! the thread-parallel `monte_carlo` fan-out.
//!
//! Expected shape: sojourn times mirror the drop story — RND keeps them
//! flat-but-high, JSQ(2) is best at small Δt and degrades past the
//! crossover, the tuned softmin tracks the lower envelope. p95 amplifies
//! the effect (herding creates long-queue episodes that tail jobs eat).

use mflb_bench::harness::{arg_value, print_table, write_csv, Scale};
use mflb_core::mdp::FixedRulePolicy;
use mflb_core::SystemConfig;
use mflb_policy::{jsq_rule, optimize_beta, rnd_rule, softmin_rule};
use mflb_sim::{monte_carlo, EngineSpec, Scenario};

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[pos.min(sorted.len() - 1)]
}

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(31);
    let (n_runs, m) = match scale {
        Scale::Quick => (10usize, 50usize),
        Scale::Paper => (40, 200),
    };
    let dt_grid: Vec<f64> = match scale {
        Scale::Quick => vec![1.0, 3.0, 5.0, 10.0],
        Scale::Paper => (1..=10).map(|d| d as f64).collect(),
    };

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &dt in &dt_grid {
        let cfg = SystemConfig::paper().with_dt(dt).with_m_squared(m);
        let zs = cfg.num_states();
        let horizon = cfg.eval_episode_len();
        let beta = optimize_beta(&cfg, horizon.min(100), 6, seed).beta;
        let engine =
            Scenario::new(cfg, EngineSpec::JobLevel).build().expect("valid job-level scenario");
        let policies: Vec<(&str, FixedRulePolicy)> = vec![
            ("JSQ(2)", FixedRulePolicy::new(jsq_rule(zs, 2), "JSQ(2)")),
            ("RND", FixedRulePolicy::new(rnd_rule(zs, 2), "RND")),
            ("SOFT", FixedRulePolicy::new(softmin_rule(zs, 2, beta), "SOFT")),
        ];
        let mut cells = vec![format!("{dt}")];
        let mut csv = vec![format!("{dt}"), format!("{beta:.4}")];
        for (i, (_, policy)) in policies.iter().enumerate() {
            let mc = monte_carlo(&engine, policy, horizon, n_runs, seed + i as u64, 0);
            let drop_frac = mc.drop_fraction();
            let mut all = mc.sojourns;
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mean = all.iter().sum::<f64>() / all.len().max(1) as f64;
            let p95 = percentile(&all, 0.95);
            cells.push(format!("{mean:.2}/{p95:.2}/{:.1}%", drop_frac * 100.0));
            csv.push(format!("{mean:.4}"));
            csv.push(format!("{p95:.4}"));
            csv.push(format!("{drop_frac:.5}"));
        }
        rows.push(cells);
        csv_rows.push(csv);
    }
    print_table(
        &format!(
            "Fig. 8 (ours, M = {m}, N = M²): job sojourn mean/p95/drop% vs Δt (job-level FIFO)"
        ),
        &["dt", "JSQ(2)", "RND", "SOFT(beta*)"],
        &rows,
    );
    write_csv(
        &format!("fig8_sojourn_{}.csv", scale.label()),
        &[
            "dt",
            "beta_star",
            "jsq_mean",
            "jsq_p95",
            "jsq_dropfrac",
            "rnd_mean",
            "rnd_p95",
            "rnd_dropfrac",
            "soft_mean",
            "soft_p95",
            "soft_dropfrac",
        ],
        &csv_rows,
    );

    println!("\n[shape] sojourn times mirror the drop story: JSQ best at small Δt,");
    println!("        degrading past the crossover; SOFT tracks the lower envelope;");
    println!("        p95 amplifies herding (long-queue episodes hit tail jobs).");
}

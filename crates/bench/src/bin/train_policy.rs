//! Trains an MF policy with PPO — for a given synchronization delay or for
//! an arbitrary scenario file — and saves a **versioned** training
//! checkpoint (`mflb_rl::TrainingCheckpoint`).
//!
//! ```text
//! cargo run -p mflb-bench --release --bin train_policy -- \
//!     --dt 5 --iters 150 --threads 8 --seed 1 [--scale paper] [--out path] \
//!     [--scenario examples/scenarios/aggregate.json] \
//!     [--init assets/policies/mf_dt5.json]   # warm-start from a checkpoint
//! ```
//!
//! The driver is `mflb_rl::train_scenario` — the same code path as
//! `mflb train` — so checkpoints produced here and by the CLI are
//! interchangeable.

use mflb_bench::harness::{arg_value, checkpoint_path, Scale};
use mflb_bench::training::{iterations_for, ppo_config_for};
use mflb_core::{MeanFieldMdp, SystemConfig};
use mflb_rl::{train_scenario_from, TrainingCheckpoint};
use mflb_sim::{EngineSpec, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let dt: f64 = arg_value("--dt").map(|v| v.parse().expect("--dt")).unwrap_or(5.0);
    let threads: usize = arg_value("--threads").map(|v| v.parse().expect("--threads")).unwrap_or(8);
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(1);
    let iters: usize = arg_value("--iters")
        .map(|v| v.parse().expect("--iters"))
        .unwrap_or_else(|| iterations_for(scale));
    let out =
        arg_value("--out").map(std::path::PathBuf::from).unwrap_or_else(|| checkpoint_path(dt));

    let scenario = match arg_value("--scenario") {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("read scenario file");
            Scenario::from_json(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
        }
        None => Scenario::new(SystemConfig::paper().with_dt(dt), EngineSpec::Aggregate),
    };
    println!(
        "training MF policy: scenario={:?} dt={} scale={} iters={iters} threads={threads} seed={seed}",
        scenario.engine,
        scenario.config.dt,
        scale.label()
    );

    // Warm start: the versioned format, with the legacy PolicyCheckpoint as
    // a fallback for old artifacts.
    let init_net = arg_value("--init").map(|p| match TrainingCheckpoint::load(&p) {
        Ok(c) => c.policy_net,
        Err(_) => mflb_policy::NeuralUpperPolicy::load(&p)
            .unwrap_or_else(|e| panic!("load --init {p}: {e}"))
            .net()
            .clone(),
    });

    let ppo = ppo_config_for(scale, threads);
    let result = train_scenario_from(&scenario, ppo, iters, seed, true, init_net.as_ref())
        .expect("training failed");

    // Final deterministic evaluation in the limiting model (homogeneous
    // scenarios only; richer dynamics are evaluated by `mflb eval`).
    if matches!(scenario.engine, EngineSpec::Aggregate | EngineSpec::PerClient) {
        let mdp = MeanFieldMdp::new(scenario.config.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xEAE);
        let eval = mdp.evaluate(&result.policy, scenario.config.train_episode_len, 20, &mut rng);
        println!(
            "deterministic MF return over T={} epochs: {:.2} ± {:.2}",
            scenario.config.train_episode_len,
            eval.mean(),
            eval.ci95_half_width()
        );
    }

    result.checkpoint.save(&out).expect("save checkpoint");
    println!(
        "versioned checkpoint (format v{}, {} steps) written to {}",
        result.checkpoint.format_version,
        result.checkpoint.total_steps,
        out.display()
    );
}

//! Trains an MF policy with PPO for a given synchronization delay and
//! saves a checkpoint under `assets/policies/mf_dt<Δt>.json`.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin train_policy -- \
//!     --dt 5 --iters 150 --threads 8 --seed 1 [--scale paper] [--out path] \
//!     [--init assets/policies/mf_dt5.json]   # warm-start from a checkpoint
//! ```

use mflb_bench::harness::{arg_value, checkpoint_path, Scale};
use mflb_bench::training::{iterations_for, ppo_config_for, train_mf_policy_from};
use mflb_core::mdp::UpperPolicy;
use mflb_core::{MeanFieldMdp, SystemConfig};
use mflb_policy::NeuralUpperPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let dt: f64 = arg_value("--dt").map(|v| v.parse().expect("--dt")).unwrap_or(5.0);
    let threads: usize = arg_value("--threads").map(|v| v.parse().expect("--threads")).unwrap_or(8);
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(1);
    let iters: usize = arg_value("--iters")
        .map(|v| v.parse().expect("--iters"))
        .unwrap_or_else(|| iterations_for(scale));
    let out =
        arg_value("--out").map(std::path::PathBuf::from).unwrap_or_else(|| checkpoint_path(dt));

    let config = SystemConfig::paper().with_dt(dt);
    println!(
        "training MF policy: dt={dt} scale={} iters={iters} threads={threads} seed={seed}",
        scale.label()
    );
    let init_policy = arg_value("--init")
        .map(|p| NeuralUpperPolicy::load(&p).unwrap_or_else(|e| panic!("load --init {p}: {e}")));
    let ppo = ppo_config_for(scale, threads);
    let (policy, curve) = train_mf_policy_from(
        &config,
        ppo,
        iters,
        seed,
        true,
        init_policy.as_ref().map(|p| p.net()),
    );

    // Final deterministic evaluation in the MFC MDP.
    let mdp = MeanFieldMdp::new(config.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xEAE);
    let eval = mdp.evaluate(&policy, config.train_episode_len, 20, &mut rng);
    println!(
        "deterministic MF return over T={} epochs: {:.2} ± {:.2}",
        config.train_episode_len,
        eval.mean(),
        eval.ci95_half_width()
    );

    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create checkpoint dir");
    }
    let meta = format!(
        "trained-by=train_policy scale={} iters={iters} seed={seed} steps={} final_return={:.3}",
        scale.label(),
        curve.last().map(|c| c.steps).unwrap_or(0),
        eval.mean()
    );
    policy.save(&out, dt, meta).expect("save checkpoint");
    println!("checkpoint written to {}", out.display());
    let _ = policy.name();
}

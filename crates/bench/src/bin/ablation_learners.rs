//! Extension experiment (ours): learner comparison on the MFC MDP —
//! PPO (the paper's choice) vs REINFORCE vs the cross-entropy method,
//! at an equal environment-step budget.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin ablation_learners -- [--scale quick|paper]
//! ```
//!
//! All three learners optimize the same parameterization (tanh MLP →
//! decision-rule logits → row softmax) on the same Δt = 5 environment.
//! After training, each learner's *deterministic* policy is scored in
//! the mean-field MDP against the MF-JSQ(2)/MF-RND anchors on common
//! arrival sequences.
//!
//! Expected shape: every learner clears MF-RND. At the *quick* budget
//! (3·10⁵ steps) the derivative-free CEM is the most sample-efficient —
//! the MDP is small and a 32×32 net has few parameters — with REINFORCE
//! close behind, while PPO is still early on its curve (its conservative
//! minibatch/KL machinery pays off at the paper's 10⁷-step scale, where
//! it matches or beats both; see `--scale paper` and the shipped
//! `assets/policies` checkpoints).

use mflb_bench::harness::{arg_value, jsq_policy, print_table, rnd_policy, write_csv, Scale};
use mflb_bench::training::ppo_config_for;
use mflb_core::mdp::{FixedRulePolicy, UpperPolicy};
use mflb_core::{MeanFieldMdp, SystemConfig};
use mflb_linalg::stats::Summary;
use mflb_policy::NeuralUpperPolicy;
use mflb_rl::{CemConfig, CemTrainer, MfcEnv, PpoTrainer, ReinforceConfig, ReinforceTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One learner's training curve: `(env steps, mean episode return)`.
type Curve = Vec<(u64, f64)>;

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(19);
    let step_budget: u64 = match scale {
        Scale::Quick => 300_000,
        Scale::Paper => 5_000_000,
    };
    let dt = 5.0;
    // Short training episodes keep iteration feedback dense at quick
    // scale; evaluation below uses the standard horizon.
    let train_horizon = match scale {
        Scale::Quick => 100,
        Scale::Paper => 500,
    };
    let cfg = SystemConfig::paper().with_dt(dt);
    let env = MfcEnv::with_horizon(cfg.clone(), train_horizon);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // --- PPO (quick-scale config from the shared trainer module). ---
    println!("training PPO (budget {step_budget} steps) …");
    let mut ppo = PpoTrainer::new(&env, ppo_config_for(scale, threads), seed);
    let mut ppo_curve: Curve = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    while ppo.total_steps() < step_budget {
        let s = ppo.train_iteration(&mut rng);
        if !s.mean_episode_return.is_nan() {
            ppo_curve.push((s.total_steps, s.mean_episode_return));
        }
    }

    // --- REINFORCE (same γ/net shape as the quick PPO config). ---
    println!("training REINFORCE …");
    let rf_cfg = ReinforceConfig {
        gamma: 0.9,
        lr: 1e-3,
        value_lr: 1e-3,
        episodes_per_iter: (4000 / train_horizon).max(2),
        hidden: vec![64, 64],
        initial_log_std: -0.5,
        ..ReinforceConfig::default()
    };
    let mut rf = ReinforceTrainer::new(&env, rf_cfg, seed);
    let mut rf_curve: Curve = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 2);
    while rf.total_steps() < step_budget {
        let s = rf.train_iteration(&mut rng);
        rf_curve.push((s.total_steps, s.mean_episode_return));
    }

    // --- CEM (derivative-free; smaller net keeps the search tractable). ---
    println!("training CEM …");
    let cem_cfg = CemConfig {
        population: 24,
        episodes_per_eval: 1,
        hidden: vec![32, 32],
        threads,
        ..CemConfig::default()
    };
    let mut cem = CemTrainer::new(&env, cem_cfg, seed);
    let mut cem_curve: Curve = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 3);
    while cem.total_steps() < step_budget {
        let s = cem.train_iteration(&mut rng);
        cem_curve.push((s.total_steps, s.mean_candidate_return));
    }

    // --- Deterministic evaluation on common arrival sequences. ---
    let eval_horizon = cfg.eval_episode_len();
    let mdp = MeanFieldMdp::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ 4);
    let seqs: Vec<Vec<usize>> = (0..16)
        .map(|_| mflb_core::theory::sample_lambda_sequence(&cfg, eval_horizon, &mut rng))
        .collect();
    let eval = |policy: &dyn UpperPolicy| -> Summary {
        let mut s = Summary::new();
        for seq in &seqs {
            s.push(mdp.rollout_conditioned(policy, seq).total_return);
        }
        s
    };
    let num_levels = cfg.arrivals.num_levels();
    let as_policy = |net: mflb_nn::Mlp, name: &str| {
        NeuralUpperPolicy::new(net, cfg.num_states(), cfg.d, num_levels).with_name(name)
    };
    let v_ppo = eval(&as_policy(ppo.policy_net().clone(), "PPO"));
    let v_rf = eval(&as_policy(rf.policy_net().clone(), "REINFORCE"));
    let v_cem = eval(&as_policy(cem.policy_net(), "CEM"));
    let v_jsq = eval(&jsq_policy(&cfg));
    let v_rnd = eval(&rnd_policy(&cfg));

    let fmt = |s: &Summary| format!("{:.2} ± {:.2}", s.mean(), s.ci95_half_width());
    let final_curve = |c: &Curve| c.last().map(|&(_, r)| r).unwrap_or(f64::NAN);
    let rows = vec![
        vec!["PPO".into(), fmt(&v_ppo), format!("{:.2}", final_curve(&ppo_curve))],
        vec!["REINFORCE".into(), fmt(&v_rf), format!("{:.2}", final_curve(&rf_curve))],
        vec!["CEM".into(), fmt(&v_cem), format!("{:.2}", final_curve(&cem_curve))],
        vec!["MF-JSQ(2)".into(), fmt(&v_jsq), "-".into()],
        vec!["MF-RND".into(), fmt(&v_rnd), "-".into()],
    ];
    print_table(
        &format!(
            "Learner ablation (Δt = {dt}, {step_budget} env steps each): deterministic returns, T_e = {eval_horizon}"
        ),
        &["learner", "eval return", "final train return"],
        &rows,
    );

    // Curves to CSV (downsampled implicitly by iteration granularity).
    let mut csv_rows = Vec::new();
    for (name, curve) in [("ppo", &ppo_curve), ("reinforce", &rf_curve), ("cem", &cem_curve)] {
        for &(steps, ret) in curve {
            csv_rows.push(vec![name.to_string(), steps.to_string(), format!("{ret:.4}")]);
        }
    }
    write_csv(
        &format!("ablation_learners_{}.csv", scale.label()),
        &["learner", "steps", "train_return"],
        &csv_rows,
    );

    let _ = FixedRulePolicy::new(mflb_policy::rnd_rule(cfg.num_states(), cfg.d), "anchor");
    println!("\n[shape] every learner should end above MF-RND. At quick budgets the");
    println!("        derivative-free CEM leads (small MDP, few parameters) and");
    println!("        REINFORCE follows; PPO's advantage appears at paper scale.");
}

//! Regenerates Figure 6: the `N ⋡ M` ablation. The mean-field derivation
//! assumes N ≫ M; here the paper deliberately violates it with
//! (a) N = 1000, M = 1000 (N = M) and (b) N = 1000, M = 500 (N = 2M),
//! showing the MF policy still wins for intermediate-to-large delays.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin fig6_ablation -- [--scale quick|paper]
//! ```

use mflb_bench::harness::{
    arg_value, jsq_policy, mf_policy_for, print_table, rnd_policy, write_csv, Scale,
};
use mflb_core::SystemConfig;
use mflb_sim::{monte_carlo, AggregateEngine};

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(6);
    let n_runs = scale.n_runs();
    let dt_grid = scale.dt_grid_fig5();
    // (a) N = M = 1000; (b) N = 1000, M = 500.
    let size_grid: &[(u64, usize)] = &[(1000, 1000), (1000, 500)];

    let mut all_rows = Vec::new();
    for &(n, m) in size_grid {
        let mut rows = Vec::new();
        for &dt in &dt_grid {
            let cfg = SystemConfig::paper().with_dt(dt).with_size(n, m);
            let horizon = cfg.eval_episode_len();
            let engine = AggregateEngine::new(cfg.clone());

            let resolved = mf_policy_for(&cfg, horizon.min(120), seed);
            let mf = monte_carlo(&engine, resolved.policy.as_ref(), horizon, n_runs, seed, 0);
            let jsq = monte_carlo(&engine, &jsq_policy(&cfg), horizon, n_runs, seed + 1, 0);
            let rnd = monte_carlo(&engine, &rnd_policy(&cfg), horizon, n_runs, seed + 2, 0);

            rows.push(vec![
                format!("{n}"),
                format!("{m}"),
                format!("{dt}"),
                format!("{:.2} ± {:.2}", mf.mean(), mf.ci95()),
                format!("{:.2} ± {:.2}", jsq.mean(), jsq.ci95()),
                format!("{:.2} ± {:.2}", rnd.mean(), rnd.ci95()),
            ]);
            all_rows.push(vec![
                format!("{n}"),
                format!("{m}"),
                format!("{dt}"),
                format!("{:.4}", mf.mean()),
                format!("{:.4}", mf.ci95()),
                format!("{:.4}", jsq.mean()),
                format!("{:.4}", jsq.ci95()),
                format!("{:.4}", rnd.mean()),
                format!("{:.4}", rnd.ci95()),
                resolved.provenance.clone(),
            ]);
        }
        print_table(
            &format!("Figure 6 (N = {n}, M = {m}; N ⋡ M): total packets dropped vs Δt"),
            &["N", "M", "dt", "MF-NM", "JSQ(2)", "RND"],
            &rows,
        );
    }
    write_csv(
        &format!("fig6_ablation_{}.csv", scale.label()),
        &["N", "M", "dt", "mf", "mf_ci", "jsq", "jsq_ci", "rnd", "rnd_ci", "mf_policy"],
        &all_rows,
    );

    // The paper's observation: with N ⋡ M, RND is no longer flat in Δt
    // (queues get sampled unequally often); MF still dominates for larger
    // delays.
    println!("\n[shape] at the largest Δt, MF must beat both baselines:");
    for &(n, m) in size_grid {
        let last: Vec<&Vec<String>> =
            all_rows.iter().filter(|r| r[0] == format!("{n}") && r[1] == format!("{m}")).collect();
        if let Some(r) = last.last() {
            let (mf, jsq, rnd): (f64, f64, f64) =
                (r[3].parse().unwrap(), r[5].parse().unwrap(), r[7].parse().unwrap());
            println!(
                "  N={n} M={m} Δt={}: MF {:.2} vs JSQ {:.2} vs RND {:.2} -> {}",
                r[2],
                mf,
                jsq,
                rnd,
                if mf <= jsq && mf <= rnd { "OK" } else { "WARNING" }
            );
        }
    }
}

//! Extension experiment (ours): synchronous broadcast vs staggered
//! (asynchronous) information refreshes at equal per-client refresh
//! period — the information-architecture comparison between the paper's
//! model and the Zhou/Shroff/Wierman \[43\] setting.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin ablation_staggered -- [--scale quick|paper]
//! ```
//!
//! For each refresh period `P` (time units) the same finite system runs
//! under two architectures:
//!
//! * **synchronized**: the paper's model with Δt = P — everyone's
//!   information refreshes simultaneously every P time units;
//! * **staggered**: epochs of length 1 with `c = P` cohorts — each
//!   client still refreshes every P time units, but refresh times are
//!   spread out, and routing decisions are re-drawn every time unit.
//!
//! Expected shape: under JSQ(2) staggering wins increasingly with P —
//! synchronized refreshes make all clients chase the same stale-shortest
//! queues (herding), staggering de-correlates them. The softened policy
//! is less architecture-sensitive (it never fully trusts observations).
//! Arrivals are held at the constant high level so both architectures
//! see identical offered load regardless of epoch length.

use mflb_bench::harness::{arg_value, print_table, write_csv, Scale};
use mflb_core::mdp::FixedRulePolicy;
use mflb_core::SystemConfig;
use mflb_linalg::stats::welch_t_test;
use mflb_policy::{jsq_rule, optimize_beta, softmin_rule};
use mflb_queue::ArrivalProcess;
use mflb_sim::{monte_carlo, EngineSpec, Scenario};

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(23);
    let (n_runs, m, total_time) = match scale {
        Scale::Quick => (24usize, 20usize, 40.0f64),
        Scale::Paper => (100, 100, 100.0),
    };
    let periods = [2usize, 4, 8];

    let mut base = SystemConfig::paper().with_size((m * m) as u64, m);
    base.arrivals = ArrivalProcess::constant(0.9);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &p in &periods {
        // β tuned for the synchronized architecture at this period (the
        // softmin both architectures deploy).
        let sync_cfg = base.clone().with_dt(p as f64);
        let beta = optimize_beta(&sync_cfg, 30, 6, seed).beta;
        let zs = sync_cfg.num_states();
        let jsq = FixedRulePolicy::new(jsq_rule(zs, 2), "JSQ(2)");
        let soft = FixedRulePolicy::new(softmin_rule(zs, 2, beta), "SOFT");

        // Synchronized: Δt = P, horizon = total_time / P epochs.
        let sync_engine = Scenario::new(sync_cfg.clone(), EngineSpec::PerClient)
            .build()
            .expect("valid synchronized scenario");
        let sync_horizon = (total_time / p as f64).round() as usize;
        // Staggered: Δt = 1, c = P cohorts, horizon = total_time epochs.
        let stag_engine =
            Scenario::new(base.clone().with_dt(1.0), EngineSpec::Staggered { cohorts: p })
                .build()
                .expect("valid staggered scenario");
        let stag_horizon = total_time.round() as usize;

        let mut cells = vec![format!("{p}")];
        let mut csv = vec![format!("{p}"), format!("{beta:.4}")];
        for (pi, policy) in [&jsq, &soft].into_iter().enumerate() {
            // Both architectures fan runs out over threads; per-run RNG
            // derivation is unchanged, so results match the serial loops.
            let s_sync =
                monte_carlo(&sync_engine, policy, sync_horizon, n_runs, seed + pi as u64, 0).drops;
            let s_stag =
                monte_carlo(&stag_engine, policy, stag_horizon, n_runs, seed + 50 + pi as u64, 0)
                    .drops;
            let (_, _, p_value) = welch_t_test(&s_sync, &s_stag);
            cells.push(format!("{:.2} ± {:.2}", s_sync.mean(), s_sync.ci95_half_width()));
            cells.push(format!("{:.2} ± {:.2}", s_stag.mean(), s_stag.ci95_half_width()));
            cells.push(format!("{p_value:.1e}"));
            csv.push(format!("{:.4}", s_sync.mean()));
            csv.push(format!("{:.4}", s_stag.mean()));
            csv.push(format!("{p_value:.3e}"));
        }
        rows.push(cells);
        csv_rows.push(csv);
    }
    print_table(
        &format!(
            "Staggered-information ablation (M = {m}, N = M², constant λ = 0.9, ≈{total_time} time units)"
        ),
        &[
            "period P",
            "JSQ sync",
            "JSQ staggered",
            "p (Welch)",
            "SOFT sync",
            "SOFT staggered",
            "p (Welch)",
        ],
        &rows,
    );
    write_csv(
        &format!("ablation_staggered_{}.csv", scale.label()),
        &[
            "period",
            "beta_star",
            "jsq_sync",
            "jsq_staggered",
            "jsq_p",
            "soft_sync",
            "soft_staggered",
            "soft_p",
        ],
        &csv_rows,
    );

    println!("\n[shape] staggered < synchronized for JSQ, with the gap growing in P");
    println!("        (de-synchronized refreshes break the herd); SOFT is less");
    println!("        architecture-sensitive. Welch p-values quantify significance.");
}

//! Extension experiment (ours): sensitivity to service-time variability —
//! the paper's §5 "non-exponential service times" future work, executed.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin ablation_service_scv -- [--scale quick|paper]
//! ```
//!
//! Sweeps the squared coefficient of variation of the service law,
//! `SCV ∈ {0.25, 0.5, 1, 2, 4}` at fixed mean 1 (two-moment phase-type
//! fits: Erlang mixtures below 1, balanced-means H₂ above; SCV 1 is the
//! paper's exponential). For each SCV:
//!
//! * JSQ(2), RND and a softmin(β) tuned *in the PH mean-field model* run
//!   on the finite PH system (a [`mflb_sim::Scenario`]-built PH engine,
//!   evaluated with the thread-parallel `monte_carlo` fan-out),
//! * the PH mean-field value is reported next to the finite-system value
//!   (the Theorem-1 story carried to the extension).
//!
//! Expected shape: drops increase with SCV for every policy (more
//! variable service ⇒ burstier queues at equal load), the MF/softmin
//! advantage over JSQ(2) persists across SCV, and the finite system
//! tracks the PH mean field.

use mflb_bench::harness::{arg_value, print_table, write_csv, Scale};
use mflb_core::mdp::{FixedRulePolicy, UpperPolicy};
use mflb_core::{JobSizeLaw, PhMeanFieldMdp, SystemConfig};
use mflb_linalg::stats::Summary;
use mflb_policy::{jsq_rule, rnd_rule, softmin_rule};
use mflb_queue::PhaseType;
use mflb_sim::{monte_carlo, EngineSpec, Scenario, ServiceLaw};

/// Tunes softmin(β) in the PH mean-field model on common arrival
/// sequences (coarse log grid; the deterministic model makes this exact
/// up to the grid).
fn tune_beta_ph(cfg: &SystemConfig, service: &PhaseType, horizon: usize, seed: u64) -> f64 {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mdp = PhMeanFieldMdp::new(cfg.clone(), service.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let seqs: Vec<Vec<usize>> =
        (0..6).map(|_| mflb_core::theory::sample_lambda_sequence(cfg, horizon, &mut rng)).collect();
    let zs = cfg.num_states();
    let mut best = (0.0, f64::NEG_INFINITY);
    for beta in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let policy = FixedRulePolicy::new(softmin_rule(zs, cfg.d, beta), "soft");
        let v: f64 =
            seqs.iter().map(|s| mdp.rollout_conditioned(&policy, s).total_return).sum::<f64>()
                / seqs.len() as f64;
        if v > best.1 {
            best = (beta, v);
        }
    }
    best.0
}

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(11);
    let (n_runs, m) = match scale {
        Scale::Quick => (20, 50),
        Scale::Paper => (100, 200),
    };
    let dt = 5.0;
    let scv_grid = [0.25, 0.5, 1.0, 2.0, 4.0];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &scv in &scv_grid {
        let cfg = SystemConfig::paper().with_dt(dt).with_m_squared(m);
        let zs = cfg.num_states();
        let horizon = cfg.eval_episode_len();
        let service = PhaseType::fit_mean_scv(1.0, scv);

        let beta = tune_beta_ph(&cfg, &service, horizon.min(60), seed);
        let policies: Vec<(&str, Box<dyn UpperPolicy + Send + Sync>)> = vec![
            ("JSQ(2)", Box::new(FixedRulePolicy::new(jsq_rule(zs, 2), "JSQ(2)"))),
            ("RND", Box::new(FixedRulePolicy::new(rnd_rule(zs, 2), "RND"))),
            ("SOFT(beta*)", Box::new(FixedRulePolicy::new(softmin_rule(zs, 2, beta), "SOFT"))),
        ];

        // Finite PH system (aggregate multinomial + Gillespie PH queues),
        // built from a data-level scenario and fanned out over threads.
        let scenario = Scenario::new(
            cfg.clone(),
            EngineSpec::Ph { service: ServiceLaw::MeanScv { mean: 1.0, scv } },
        );
        let engine = scenario.build().expect("valid SCV scenario");
        let mut finite = Vec::new();
        for (i, (_, policy)) in policies.iter().enumerate() {
            finite.push(
                monte_carlo(&engine, policy.as_ref(), horizon, n_runs, seed + i as u64, 0).drops,
            );
        }

        // PH mean-field reference (stochastic only through λ).
        let mdp = PhMeanFieldMdp::new(cfg.clone(), service.clone());
        let mut mf = Vec::new();
        for (i, (_, policy)) in policies.iter().enumerate() {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed ^ (100 + i as u64));
            let mut s = Summary::new();
            for _ in 0..24 {
                s.push(-mdp.rollout(policy.as_ref(), horizon, &mut rng).total_return);
            }
            mf.push(s);
        }

        rows.push(vec![
            format!("{scv}"),
            format!("{}", service.num_phases()),
            format!("{beta:.2}"),
            format!("{:.2} ± {:.2}", finite[0].mean(), finite[0].ci95_half_width()),
            format!("{:.2} ± {:.2}", finite[1].mean(), finite[1].ci95_half_width()),
            format!("{:.2} ± {:.2}", finite[2].mean(), finite[2].ci95_half_width()),
            format!("{:.2}", mf[2].mean()),
        ]);
        csv_rows.push(vec![
            format!("{scv}"),
            format!("{beta:.4}"),
            format!("{:.4}", finite[0].mean()),
            format!("{:.4}", finite[1].mean()),
            format!("{:.4}", finite[2].mean()),
            format!("{:.4}", mf[0].mean()),
            format!("{:.4}", mf[1].mean()),
            format!("{:.4}", mf[2].mean()),
        ]);
    }
    print_table(
        &format!("Service-variability ablation (M = {m}, N = M², Δt = {dt}): drops vs SCV"),
        &[
            "SCV",
            "phases",
            "beta*",
            "JSQ(2) finite",
            "RND finite",
            "SOFT finite",
            "SOFT mean-field",
        ],
        &rows,
    );
    write_csv(
        &format!("ablation_service_scv_{}.csv", scale.label()),
        &[
            "scv",
            "beta_star",
            "jsq_finite",
            "rnd_finite",
            "soft_finite",
            "jsq_mf",
            "rnd_mf",
            "soft_mf",
        ],
        &csv_rows,
    );

    // --- Heavy-tailed job sizes on the continuous-time event engine: the
    // variability axis carried past what two-moment phase-type fits can
    // express. All three laws do mean-1 work per job; Pareto(2.5) has
    // finite variance, and the bounded Pareto keeps a shape-1.5 tail
    // integrable by truncation — the classic heavy-tail serving regime.
    // ---
    let job_laws: [(&str, JobSizeLaw); 3] = [
        ("Exp(1)", JobSizeLaw::Exponential { rate: 1.0 }),
        ("Pareto(2.5,0.6)", JobSizeLaw::Pareto { shape: 2.5, scale: 0.6 }),
        ("BPareto(1.5,.2,20)", JobSizeLaw::BoundedPareto { shape: 1.5, lo: 0.2, hi: 20.0 }),
    ];
    let cfg = SystemConfig::paper().with_dt(dt).with_m_squared(m);
    let zs = cfg.num_states();
    let horizon = cfg.eval_episode_len();
    // The exponential-law tuning carries across laws: the softmin rule only
    // reads queue lengths, and mean work per job is matched.
    let beta = tune_beta_ph(&cfg, &PhaseType::exponential(1.0), horizon.min(60), seed);
    let jruns = (n_runs / 2).max(8);
    let mut jrows = Vec::new();
    let mut jcsv = Vec::new();
    for (label, law) in &job_laws {
        let policies: Vec<(&str, Box<dyn UpperPolicy + Send + Sync>)> = vec![
            ("JSQ(2)", Box::new(FixedRulePolicy::new(jsq_rule(zs, 2), "JSQ(2)"))),
            ("RND", Box::new(FixedRulePolicy::new(rnd_rule(zs, 2), "RND"))),
            ("SOFT(beta*)", Box::new(FixedRulePolicy::new(softmin_rule(zs, 2, beta), "SOFT"))),
        ];
        let scenario = Scenario::new(cfg.clone(), EngineSpec::Event { job_size: law.clone() });
        let engine = scenario.build().expect("valid job-size scenario");
        let mut finite = Vec::new();
        for (i, (_, policy)) in policies.iter().enumerate() {
            finite.push(
                monte_carlo(&engine, policy.as_ref(), horizon, jruns, seed + i as u64, 0).drops,
            );
        }
        jrows.push(vec![
            label.to_string(),
            format!("{:.2}", law.mean()),
            format!("{:.2} ± {:.2}", finite[0].mean(), finite[0].ci95_half_width()),
            format!("{:.2} ± {:.2}", finite[1].mean(), finite[1].ci95_half_width()),
            format!("{:.2} ± {:.2}", finite[2].mean(), finite[2].ci95_half_width()),
        ]);
        jcsv.push(vec![
            label.to_string(),
            format!("{:.4}", law.mean()),
            format!("{:.4}", finite[0].mean()),
            format!("{:.4}", finite[1].mean()),
            format!("{:.4}", finite[2].mean()),
        ]);
    }
    print_table(
        &format!("Job-size-law ablation (event engine, M = {m}, N = M², Δt = {dt}): drops vs tail"),
        &["law", "mean size", "JSQ(2)", "RND", "SOFT(beta*)"],
        &jrows,
    );
    write_csv(
        &format!("ablation_job_size_{}.csv", scale.label()),
        &["law", "mean_size", "jsq", "rnd", "soft"],
        &jcsv,
    );

    println!("\n[shape] drops should increase with SCV for every policy;");
    println!("        SOFT(beta*) should stay at or below JSQ(2) throughout;");
    println!("        heavier job-size tails should not reorder the policies.");
}

//! Extension experiment (ours): how close do the learned policies get to
//! a certified optimum?
//!
//! ```text
//! cargo run -p mflb-bench --release --bin ablation_dp -- [--scale quick|paper]
//! ```
//!
//! For each synchronization delay Δt, solves the discretized MFC MDP
//! *exactly* (value iteration on a simplex lattice with linear-exact
//! interpolation, softmin action library — `mflb-dp`) and evaluates the
//! greedy DP policy in the **continuous** mean-field MDP against:
//!
//! * the resolved MF policy (PPO checkpoint or softmin-β*, whichever the
//!   harness deploys),
//! * MF-JSQ(2) and MF-RND (the paper's baselines).
//!
//! All policies share common arrival sequences, so differences are exact
//! up to lattice resolution. Expected shape: DP ≥ MF ≥ max(JSQ, RND)
//! everywhere, with DP ≈ MF at small and large Δt (constant rules
//! suffice) and the DP/constant-rule gap widening at intermediate Δt —
//! quantifying the value of ν-feedback that the paper attributes to the
//! learned policy.

use mflb_bench::harness::{
    arg_value, jsq_policy, mf_policy_for, print_table, rnd_policy, write_csv, Scale,
};
use mflb_core::{MeanFieldMdp, SystemConfig};
use mflb_dp::{ActionLibrary, DpConfig, DpSolution};
use mflb_linalg::stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(13);
    let (grid_resolution, dt_grid, episodes): (usize, Vec<f64>, usize) = match scale {
        Scale::Quick => (8, vec![1.0, 5.0, 10.0], 12),
        Scale::Paper => (14, vec![1.0, 3.0, 5.0, 7.0, 10.0], 40),
    };

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &dt in &dt_grid {
        let cfg = SystemConfig::paper().with_dt(dt);
        let zs = cfg.num_states();
        let horizon = cfg.eval_episode_len();
        let mdp = MeanFieldMdp::new(cfg.clone());

        // Exact DP over the softmin family.
        let t0 = std::time::Instant::now();
        let dp_cfg = DpConfig { grid_resolution, tol: 1e-6, max_sweeps: 4000, threads: 0 };
        let sol = DpSolution::solve(&cfg, ActionLibrary::softmin_default(zs, cfg.d), &dp_cfg);
        let solve_secs = t0.elapsed().as_secs_f64();
        let sweeps = sol.sweeps;
        let dp_policy = sol.into_policy();

        let resolved = mf_policy_for(&cfg, horizon.min(120), seed);
        let jsq = jsq_policy(&cfg);
        let rnd = rnd_policy(&cfg);

        // Common arrival sequences for all four policies.
        let mut rng = StdRng::seed_from_u64(seed ^ (dt as u64));
        let seqs: Vec<Vec<usize>> = (0..episodes)
            .map(|_| mflb_core::theory::sample_lambda_sequence(&cfg, horizon, &mut rng))
            .collect();
        let eval = |policy: &dyn mflb_core::UpperPolicy| -> Summary {
            let mut s = Summary::new();
            for seq in &seqs {
                s.push(mdp.rollout_conditioned(policy, seq).total_return);
            }
            s
        };
        let v_dp = eval(&dp_policy);
        let v_mf = eval(resolved.policy.as_ref());
        let v_jsq = eval(&jsq);
        let v_rnd = eval(&rnd);

        rows.push(vec![
            format!("{dt}"),
            format!("{:.2}", v_dp.mean()),
            format!("{:.2}", v_mf.mean()),
            format!("{:.2}", v_jsq.mean()),
            format!("{:.2}", v_rnd.mean()),
            format!("{:.2}", v_dp.mean() - v_mf.mean()),
            format!("{sweeps} it / {solve_secs:.1}s"),
            resolved.provenance.clone(),
        ]);
        csv_rows.push(vec![
            format!("{dt}"),
            format!("{:.4}", v_dp.mean()),
            format!("{:.4}", v_mf.mean()),
            format!("{:.4}", v_jsq.mean()),
            format!("{:.4}", v_rnd.mean()),
            format!("{grid_resolution}"),
            resolved.provenance.clone(),
        ]);
    }
    print_table(
        &format!(
            "DP ablation (B = 5, lattice G = {grid_resolution}): mean episode return (higher is better)"
        ),
        &["dt", "DP", "MF", "JSQ(2)", "RND", "DP-MF gap", "dp solve", "mf-policy"],
        &rows,
    );
    write_csv(
        &format!("ablation_dp_{}.csv", scale.label()),
        &["dt", "dp", "mf", "jsq", "rnd", "grid_resolution", "mf_policy"],
        &csv_rows,
    );

    println!("\n[shape] DP should dominate every column; the DP−MF gap is the");
    println!("        value of exact ν-feedback the deployed policy leaves behind.");
}

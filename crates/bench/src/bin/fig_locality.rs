//! Locality experiment (ours, after arXiv:2312.12973): the effect of the
//! dispatcher neighborhood size under synchronization delay.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin fig_locality -- [--scale quick|paper]
//! ```
//!
//! For each ring reach `r` (accessible-set size `k = 2r + 1`) up to the
//! full mesh, JSQ(d), RND and the β-optimized softmin run Monte-Carlo
//! episodes of the locality-constrained finite system
//! ([`mflb_sim::GraphEngine`]), next to the degree-indexed mean-field
//! prediction for JSQ ([`mflb_core::graph_mean_field_step`]).
//!
//! Expected shape: RND is locality-blind (a state-blind rule lands on a
//! uniformly random queue either way — tested in `mflb-core`), while
//! JSQ's dependence on `k` balances two opposing forces: a small
//! catchment caps how much of the stale-information herd can pile onto
//! one queue (the locality analogue of the paper's delay-herding effect)
//! but also shrinks the choice set. At the Table-1 operating point the
//! two roughly cancel; the herding cap dominates at small Δt. The
//! mean-field column tracks the finite system to leading order (it is an
//! annealed closure, so expect a several-percent bias on lattices).

use mflb_bench::harness::{arg_value, print_table, write_csv, Scale};
use mflb_core::mdp::FixedRulePolicy;
use mflb_core::{graph_mean_field_step, StateDist, SystemConfig, Topology};
use mflb_policy::{jsq_rule, optimize_beta, rnd_rule, softmin_rule};
use mflb_sim::{monte_carlo, GraphEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Expected cumulative per-queue drops of the degree-indexed mean field
/// under a fixed rule, averaged over sampled arrival-level paths.
fn mean_field_drops(
    config: &SystemConfig,
    rule: &mflb_core::DecisionRule,
    k: usize,
    horizon: usize,
    episodes: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..episodes {
        let mut nu = StateDist::new(config.initial_dist.clone());
        let mut level = config.arrivals.sample_initial(&mut rng);
        for _ in 0..horizon {
            let lambda = config.arrivals.level_rate(level);
            let step = graph_mean_field_step(&nu, rule, lambda, config.service_rate, config.dt, k);
            total += step.expected_drops;
            nu = step.next_dist;
            level = config.arrivals.step(level, &mut rng);
        }
    }
    total / episodes as f64
}

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(7);
    let dt: f64 = arg_value("--dt").map(|v| v.parse().expect("--dt")).unwrap_or(5.0);
    let (m, n_runs, mf_episodes) = match scale {
        Scale::Quick => (50usize, 10usize, 6usize),
        Scale::Paper => (100, 60, 24),
    };
    let radii: Vec<Option<usize>> = match scale {
        Scale::Quick => vec![Some(1), Some(2), Some(4), None], // None = full mesh
        Scale::Paper => vec![Some(1), Some(2), Some(4), Some(8), Some(16), None],
    };

    let cfg = SystemConfig::paper().with_dt(dt).with_m_squared(m);
    let zs = cfg.num_states();
    let d = cfg.d;
    let horizon = cfg.eval_episode_len();
    let beta = optimize_beta(&cfg, horizon.min(120), 8, seed).beta;

    let jsq = FixedRulePolicy::new(jsq_rule(zs, d), "JSQ");
    let rnd = FixedRulePolicy::new(rnd_rule(zs, d), "RND");
    let soft = FixedRulePolicy::new(softmin_rule(zs, d, beta), "SOFT");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &radius in &radii {
        let (topology, label) = match radius {
            Some(r) => (Topology::Ring { radius: r }, format!("ring r={r}")),
            None => (Topology::FullMesh, "full mesh".to_string()),
        };
        let k = topology.neighborhood_size(m);
        let engine = GraphEngine::new(cfg.clone(), topology);

        let r_jsq = monte_carlo(&engine, &jsq, horizon, n_runs, seed, 0);
        let r_rnd = monte_carlo(&engine, &rnd, horizon, n_runs, seed + 1, 0);
        let r_soft = monte_carlo(&engine, &soft, horizon, n_runs, seed + 2, 0);
        // Mean-field prediction for the JSQ column (full mesh: k -> a size
        // large enough to be numerically at the limit).
        let mf_k = if radius.is_some() { k } else { 100_000 };
        let mf_jsq = mean_field_drops(&cfg, &jsq_rule(zs, d), mf_k, horizon, mf_episodes, seed);

        rows.push(vec![
            label.clone(),
            format!("{k}"),
            format!("{:.2} ± {:.2}", r_jsq.mean(), r_jsq.ci95()),
            format!("{mf_jsq:.2}"),
            format!("{:.2} ± {:.2}", r_rnd.mean(), r_rnd.ci95()),
            format!("{:.2} ± {:.2}", r_soft.mean(), r_soft.ci95()),
        ]);
        csv.push(vec![
            format!("{}", radius.map_or(0, |r| r)),
            format!("{k}"),
            format!("{:.4}", r_jsq.mean()),
            format!("{:.4}", r_jsq.ci95()),
            format!("{mf_jsq:.4}"),
            format!("{:.4}", r_rnd.mean()),
            format!("{:.4}", r_rnd.ci95()),
            format!("{:.4}", r_soft.mean()),
            format!("{:.4}", r_soft.ci95()),
        ]);
    }

    print_table(
        &format!(
            "Locality sweep (ours, M = {m}, N = M², Δt = {dt}, β* = {beta:.2}): \
             drops vs neighborhood size k"
        ),
        &["topology", "k", "JSQ(d) finite", "JSQ(d) mean-field", "RND", "SOFT(β*)"],
        &rows,
    );
    write_csv(
        &format!("fig_locality_{}.csv", scale.label()),
        &["radius", "k", "jsq", "jsq_ci", "jsq_mf", "rnd", "rnd_ci", "soft", "soft_ci"],
        &csv,
    );

    println!("\n[shape] JSQ(d) drops by neighborhood size (does locality cap the herd?):");
    let trend: Vec<String> = csv.iter().map(|r| format!("k={}: {}", r[1], r[2])).collect();
    println!("  Δt={dt}: {}", trend.join("  "));
}

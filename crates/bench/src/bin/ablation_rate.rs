//! Extension experiment (ours): the Theorem-1 convergence **rate** —
//! "Quantifying the error convergence rate more precisely is left to
//! future work" (paper §3), measured here.
//!
//! ```text
//! cargo run -p mflb-bench --release --bin ablation_rate -- [--scale quick|paper]
//! ```
//!
//! Two sweeps, both conditioned on one fixed arrival-level sequence so
//! the mean-field value `J(π̂)` is a deterministic reference:
//!
//! 1. **Joint limit** (the paper's Fig. 4 path): `N = M²`, `M` doubling;
//!    measures `gap(M) = |J − E[J^{N,M}]|` and fits
//!    `log₂ gap ~ slope · log₂ M`. Mean-field theory suggests the
//!    empirical measure fluctuates at `O(M^{−1/2})`, while the *mean*
//!    value often converges faster (O(1/M), first-order fluctuation
//!    terms averaging out) — the fitted slope settles the question for
//!    this model.
//! 2. **Client limit at fixed M**: the conditional-LLN direction
//!    (`N → ∞`, M fixed) with `gap(N)` against a large-`N` surrogate of
//!    `J^{∞,M}`.
//!
//! Gaps are reported with the Monte-Carlo standard error of the finite
//! estimate; fitted points whose gap is inside 2·SE are flagged (the
//! bias is below measurement resolution there).

use mflb_bench::harness::{arg_value, print_table, write_csv, Scale};
use mflb_core::mdp::FixedRulePolicy;
use mflb_core::theory::conditioned_return;
use mflb_core::SystemConfig;
use mflb_linalg::stats::{linear_fit, Summary};
use mflb_policy::softmin_rule;
use mflb_sim::{monte_carlo_conditioned, AggregateEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let seed: u64 = arg_value("--seed").map(|v| v.parse().expect("--seed")).unwrap_or(29);
    let (m_grid, n_runs, horizon): (Vec<usize>, usize, usize) = match scale {
        Scale::Quick => (vec![8, 16, 32, 64, 128], 400, 20),
        Scale::Paper => (vec![8, 16, 32, 64, 128, 256, 512], 1000, 50),
    };
    let dt = 5.0;
    let base = SystemConfig::paper().with_dt(dt);
    let zs = base.num_states();
    let policy = FixedRulePolicy::new(softmin_rule(zs, base.d, 1.0), "SOFT(1)");

    // One fixed arrival path shared by the limit and every finite system.
    let mut rng = StdRng::seed_from_u64(seed);
    let seq = mflb_core::theory::sample_lambda_sequence(&base, horizon, &mut rng);
    let reference = conditioned_return(&base, &policy, &seq);
    println!("mean-field reference J = {reference:.4} over {horizon} epochs (Δt = {dt})");

    // ---- Sweep 1: joint limit N = M². ----
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut log_m = Vec::new();
    let mut log_gap = Vec::new();
    for &m in &m_grid {
        let cfg = base.clone().with_m_squared(m);
        let engine = AggregateEngine::new(cfg);
        let mc = monte_carlo_conditioned(&engine, &policy, &seq, n_runs, seed + m as u64, 0);
        let finite = Summary::from_slice(&mc.per_run.iter().map(|d| -d).collect::<Vec<_>>());
        let gap = (reference - finite.mean()).abs();
        let resolvable = gap > 2.0 * finite.std_err();
        if resolvable {
            log_m.push((m as f64).log2());
            log_gap.push(gap.log2());
        }
        rows.push(vec![
            format!("{m}"),
            format!("{}", m * m),
            format!("{:.4}", finite.mean()),
            format!("{gap:.4}"),
            format!("{:.4}", finite.std_err()),
            if resolvable { "yes" } else { "below noise" }.into(),
        ]);
        csv_rows.push(vec![
            format!("{m}"),
            format!("{}", m * m),
            format!("{:.6}", finite.mean()),
            format!("{gap:.6}"),
            format!("{:.6}", finite.std_err()),
        ]);
    }
    print_table(
        &format!("Theorem-1 rate, joint limit N = M² (J = {reference:.3}, n = {n_runs} runs)"),
        &["M", "N", "E[J^{N,M}]", "gap", "SE", "gap resolvable"],
        &rows,
    );
    if log_m.len() >= 3 {
        let (slope, _, r2) = linear_fit(&log_m, &log_gap);
        println!(
            "\n[rate] fitted gap ∝ M^({slope:.2}) over {} resolvable points (r² = {r2:.3})",
            log_m.len()
        );
        println!("       (−0.5 = CLT fluctuation order; −1 = first-order bias cancellation)");
    } else {
        println!("\n[rate] too few noise-resolvable points for a joint-limit fit");
    }
    write_csv(
        &format!("ablation_rate_joint_{}.csv", scale.label()),
        &["M", "N", "finite", "gap", "se"],
        &csv_rows,
    );

    // ---- Sweep 2: N → ∞ at fixed M. ----
    let m_fixed = 20usize;
    let n_grid: Vec<u64> = vec![40, 160, 640, 2_560, 10_240];
    let n_surrogate: u64 = 163_840; // stands in for N = ∞ at this M
    let cfg_inf = base.clone().with_size(n_surrogate, m_fixed);
    let engine_inf = AggregateEngine::new(cfg_inf);
    let mc_inf = monte_carlo_conditioned(&engine_inf, &policy, &seq, n_runs, seed ^ 0xA5A5, 0);
    let j_inf = -mc_inf.mean();

    let mut rows2 = Vec::new();
    let mut csv2 = Vec::new();
    for &n in &n_grid {
        let cfg = base.clone().with_size(n, m_fixed);
        let engine = AggregateEngine::new(cfg);
        let mc = monte_carlo_conditioned(&engine, &policy, &seq, n_runs, seed + n, 0);
        let finite = -mc.mean();
        let gap = (j_inf - finite).abs();
        rows2.push(vec![
            format!("{n}"),
            format!("{finite:.4}"),
            format!("{gap:.4}"),
            format!("{:.4}", mc.drops.std_err()),
        ]);
        csv2.push(vec![
            format!("{n}"),
            format!("{finite:.6}"),
            format!("{gap:.6}"),
            format!("{:.6}", mc.drops.std_err()),
        ]);
    }
    print_table(
        &format!(
            "Theorem-1 rate, client limit at M = {m_fixed} (surrogate J^{{∞,M}} = {j_inf:.3} at N = {n_surrogate})"
        ),
        &["N", "E[J^{N,M}]", "gap vs surrogate", "SE"],
        &rows2,
    );
    write_csv(
        &format!("ablation_rate_clients_{}.csv", scale.label()),
        &["N", "finite", "gap", "se"],
        &csv2,
    );

    println!("\n[shape] both gap columns should decay towards measurement noise;");
    println!("        the joint-limit slope quantifies the rate Theorem 1 leaves open.");
}

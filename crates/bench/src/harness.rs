//! Shared experiment-harness utilities for the per-figure binaries.
//!
//! * [`Scale`] — every binary accepts `--scale quick|paper`; `quick`
//!   shrinks Monte-Carlo counts and system-size grids so the suite runs in
//!   minutes while preserving the qualitative shape, `paper` reproduces
//!   Table 1 exactly.
//! * [`mf_policy_for`] — resolves the "MF" policy for a given Δt: a trained
//!   PPO checkpoint from `assets/policies/mf_dt<Δt>.json` when present,
//!   otherwise the β-optimized softmin stand-in (clearly labelled).
//! * table printing and CSV output under `target/experiments/`.

use mflb_core::mdp::{FixedRulePolicy, UpperPolicy};
use mflb_core::SystemConfig;
use mflb_policy::{jsq_rule, optimize_beta, rnd_rule, NeuralUpperPolicy, SoftminPolicy};
use std::io::Write;
use std::path::PathBuf;

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale run preserving the qualitative shape.
    Quick,
    /// The paper's full grid (Table 1 sizes, n = 100 Monte-Carlo runs).
    Paper,
}

impl Scale {
    /// Parses a `--scale` value; unknown values are an error (no silent
    /// fallback).
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "quick" => Ok(Scale::Quick),
            "paper" | "full" => Ok(Scale::Paper),
            other => Err(format!("unknown --scale value `{other}` (expected quick|paper)")),
        }
    }

    /// Parses `--scale quick|paper` from the process arguments (default
    /// quick). An unrecognized value prints an error and exits with
    /// status 2 instead of silently falling back to `quick`.
    pub fn from_args() -> Self {
        match arg_value("--scale") {
            None => Scale::Quick,
            Some(v) => Scale::parse(&v).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            }),
        }
    }

    /// Monte-Carlo run count (Table 1: n = 100).
    pub fn n_runs(self) -> usize {
        match self {
            Scale::Quick => 20,
            Scale::Paper => 100,
        }
    }

    /// Queue-count grid for Fig. 4.
    pub fn m_grid_fig4(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![100, 200, 400],
            Scale::Paper => vec![100, 200, 400, 600, 800, 1000],
        }
    }

    /// Queue-count grid for Fig. 5.
    pub fn m_grid_fig5(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![400],
            Scale::Paper => vec![400, 600, 800, 1000],
        }
    }

    /// Synchronization-delay grid for Fig. 4.
    pub fn dt_grid_fig4(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![1.0, 5.0, 10.0],
            Scale::Paper => vec![1.0, 3.0, 5.0, 7.0, 10.0],
        }
    }

    /// Synchronization-delay grid for Fig. 5–6.
    pub fn dt_grid_fig5(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![1.0, 2.0, 3.0, 5.0, 7.0, 10.0],
            Scale::Paper => (1..=10).map(|d| d as f64).collect(),
        }
    }

    /// Label used in output files.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// Returns an optional `--flag value` string argument.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

/// The directory where experiment CSVs are written.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// The directory holding trained policy checkpoints.
pub fn policies_dir() -> PathBuf {
    PathBuf::from("assets/policies")
}

/// Checkpoint path convention for a given synchronization delay.
pub fn checkpoint_path(dt: f64) -> PathBuf {
    policies_dir().join(format!("mf_dt{}.json", dt as i64))
}

/// The resolved "MF" policy plus a provenance label.
pub struct ResolvedPolicy {
    /// The policy object.
    pub policy: Box<dyn UpperPolicy + Sync + Send>,
    /// `"ppo-checkpoint"` or `"softmin-beta*"`.
    pub provenance: String,
}

/// Resolves the learned MF policy for a configuration.
///
/// Candidates are (a) the PPO checkpoint trained for this Δt (if present
/// under `assets/policies/`) and (b) the deterministic β-optimized softmin
/// family. Both are scored in the *limiting mean-field model* (the
/// training objective, cheap and deterministic up to arrival noise) and
/// the better one is deployed — exactly the model-selection step a
/// practitioner performs before going to production. The provenance label
/// records which artifact won.
pub fn mf_policy_for(config: &SystemConfig, search_horizon: usize, seed: u64) -> ResolvedPolicy {
    use mflb_core::MeanFieldMdp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let res = optimize_beta(config, search_horizon, 8, seed);
    let softmin = SoftminPolicy::new(config.num_states(), config.d, res.beta);

    let path = checkpoint_path(config.dt);
    if path.exists() {
        // Versioned training checkpoints first, legacy PolicyCheckpoint as
        // fallback for pre-subsystem artifacts. Either way the network must
        // fit *this* homogeneous configuration — the dt-keyed path may hold
        // a checkpoint trained for a different engine kind or buffer, which
        // would otherwise blow up inside `MeanFieldMdp::evaluate`.
        use mflb_rl::PolicyShape;
        use mflb_sim::{EngineSpec, Scenario};
        let homog = Scenario::new(config.clone(), EngineSpec::Aggregate);
        let shape = PolicyShape::for_scenario(&homog);
        let loaded = mflb_rl::TrainingCheckpoint::load(&path)
            .and_then(|c| c.validate_for(&homog).map(|()| c))
            .and_then(|c| c.into_policy())
            .or_else(|_| NeuralUpperPolicy::load(&path))
            .and_then(|p| {
                if p.net().input_dim() == shape.obs_dim() && p.net().output_dim() == shape.act_dim()
                {
                    Ok(p)
                } else {
                    Err(format!(
                        "checkpoint network is {} -> {}, configuration needs {} -> {}",
                        p.net().input_dim(),
                        p.net().output_dim(),
                        shape.obs_dim(),
                        shape.act_dim()
                    ))
                }
            });
        match loaded {
            Ok(p) => {
                let mdp = MeanFieldMdp::new(config.clone());
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1E);
                let horizon = search_horizon.max(20);
                let ppo_score = mdp.evaluate(&p, horizon, 40, &mut rng).mean();
                let soft_score = mdp.evaluate(&softmin, horizon, 40, &mut rng).mean();
                if ppo_score >= soft_score {
                    return ResolvedPolicy {
                        policy: Box::new(p.with_name("MF (PPO)")),
                        provenance: "ppo-checkpoint".into(),
                    };
                }
                return ResolvedPolicy {
                    policy: Box::new(softmin),
                    provenance: format!(
                        "softmin-beta*={:.3} (beat checkpoint {:.1} vs {:.1})",
                        res.beta, soft_score, ppo_score
                    ),
                };
            }
            Err(e) => eprintln!("warning: failed to load {}: {e}", path.display()),
        }
    }
    ResolvedPolicy {
        policy: Box::new(softmin),
        provenance: format!("softmin-beta*={:.3}", res.beta),
    }
}

/// The MF-JSQ(2) baseline as an upper-level policy.
pub fn jsq_policy(config: &SystemConfig) -> FixedRulePolicy {
    FixedRulePolicy::new(jsq_rule(config.num_states(), config.d), "JSQ(2)")
}

/// The MF-RND baseline as an upper-level policy.
pub fn rnd_policy(config: &SystemConfig) -> FixedRulePolicy {
    FixedRulePolicy::new(rnd_rule(config.num_states(), config.d), "RND")
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        s
    };
    println!("{}", line(headers.iter().map(|h| h.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Writes a CSV next to the printed table.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = experiments_dir().join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(f, "{}", headers.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
    f.flush().unwrap();
    println!("[csv] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_grids_are_subsets_of_paper() {
        let q = Scale::Quick;
        let p = Scale::Paper;
        for m in q.m_grid_fig4() {
            assert!(p.m_grid_fig4().contains(&m));
        }
        for dt in q.dt_grid_fig4() {
            assert!(p.dt_grid_fig4().contains(&dt));
        }
        assert!(q.n_runs() <= p.n_runs());
    }

    #[test]
    fn scale_parse_rejects_unknown_values() {
        assert_eq!(Scale::parse("quick").unwrap(), Scale::Quick);
        assert_eq!(Scale::parse("paper").unwrap(), Scale::Paper);
        assert_eq!(Scale::parse("full").unwrap(), Scale::Paper);
        let err = Scale::parse("qick").unwrap_err();
        assert!(err.contains("qick"), "message should name the bad value: {err}");
    }

    #[test]
    fn checkpoint_path_convention() {
        assert_eq!(checkpoint_path(5.0), PathBuf::from("assets/policies/mf_dt5.json"));
    }

    #[test]
    fn mf_policy_falls_back_to_softmin_without_checkpoint() {
        // dt = 9 has no shipped checkpoint; short search must resolve.
        let cfg = SystemConfig::paper().with_dt(9.0);
        let resolved = mf_policy_for(&cfg, 10, 1);
        assert!(resolved.provenance.starts_with("softmin"));
    }
}

//! Terminal line charts for the experiment binaries.
//!
//! The paper's figures are line plots; a dependency-free ASCII renderer
//! lets every binary show the *shape* (training curves, delay sweeps)
//! directly in the terminal next to the exact CSV values.

/// Renders one or more named series into an ASCII chart of the given
/// width × height. X positions are taken from the first series' x values
/// (all series must share them); y is auto-scaled over all series.
pub fn line_chart(title: &str, series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 3, "chart too small");
    assert!(!series.is_empty());
    let n = series[0].1.len();
    if n == 0 {
        return format!("{title}\n(empty)\n");
    }
    for (_, s) in series {
        assert_eq!(s.len(), n, "all series must share their length");
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, s) in series {
        for &v in *s {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return format!("{title}\n(no finite data)\n");
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }

    const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for (i, &v) in s.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let col = if n == 1 { 0 } else { i * (width - 1) / (n - 1) };
            let row_f = (v - lo) / (hi - lo) * (height - 1) as f64;
            let row = height - 1 - (row_f.round() as usize).min(height - 1);
            grid[row][col] = mark;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        let y = hi - (hi - lo) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:>10.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}  {}\n", "", "-".repeat(width)));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", MARKS[i % MARKS.len()], name))
        .collect();
    out.push_str(&format!("{:>12}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_monotone_series() {
        let ys: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let s = line_chart("ramp", &[("y", &ys)], 40, 8);
        assert!(s.contains("ramp"));
        assert!(s.contains('*'));
        // Highest label equals max, lowest equals min.
        assert!(s.contains("19.00"));
        assert!(s.contains("0.00"));
    }

    #[test]
    fn handles_constant_series() {
        let ys = vec![5.0; 10];
        let s = line_chart("flat", &[("y", &ys)], 30, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn multiple_series_get_distinct_marks() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..10).map(|i| (9 - i) as f64).collect();
        let s = line_chart("cross", &[("up", &a), ("down", &b)], 30, 7);
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("* up") && s.contains("o down"));
    }

    #[test]
    fn skips_nan_values() {
        let ys = vec![1.0, f64::NAN, 3.0];
        let s = line_chart("nan", &[("y", &ys)], 20, 4);
        assert!(s.contains('*'));
    }

    #[test]
    #[should_panic(expected = "share their length")]
    fn rejects_ragged_series() {
        let a = [1.0, 2.0];
        let b = [1.0];
        line_chart("bad", &[("a", &a), ("b", &b)], 20, 4);
    }
}

//! The tracked performance suite behind `mflb bench`.
//!
//! A pinned-seed wall-clock/throughput suite over the four hot paths the
//! training and deployment pipelines funnel through:
//!
//! 1. **kernels** — the register-blocked `*_into` GEMMs vs the naive
//!    allocating matmuls at the paper's 2×256 policy shape,
//! 2. **inference tiers** — the `gemv`/workspace `forward_one_into`
//!    batch-1 fast path vs the allocating `forward_one` it replaced, the
//!    batched `forward_rows_into` gemm vs K sequential gemvs (the
//!    `decide_batch` cutover), the f32 serving tier vs the f64 batched
//!    path, and the distilled tabular tier's snap-and-lookup `decide()`,
//! 3. **PPO** — rollout collection and minibatch-update throughput of
//!    [`mflb_rl::PpoTrainer`] on the mean-field control environment,
//! 4. **deployment** — Monte-Carlo finite-system epochs driven by a
//!    [`mflb_policy::NeuralUpperPolicy`] decision per epoch, plus one
//!    end-to-end pinned-seed quick-scale `train_scenario` run.
//!
//! `mflb bench` serializes the [`BenchReport`] to `BENCH_kernels.json`,
//! establishing the repo's perf trajectory: every PR's CI uploads the
//! quick-suite JSON as an artifact **and gates on it** — `mflb bench-diff`
//! runs [`compare_reports`] against the committed quick-scale baseline
//! (`BENCH_kernels_quick.json`; quick vs quick, because measured margins
//! shift with iteration count) and fails the job when any tracked kernel
//! lost more than 1.3x of its same-machine speedup over its naive twin.
//! All workloads are seeded, so two runs on the same machine measure the
//! same computation.

use mflb_core::SystemConfig;
use mflb_nn::{Activation, DiagGaussian, F32Workspace, Mlp, Tensor, Workspace};
use mflb_policy::{action_dim, observation_dim, NeuralUpperPolicy};
use mflb_rl::{train_scenario, MfcEnv, PpoConfig, PpoTrainer};
use mflb_sim::{monte_carlo, AggregateEngine, EngineSpec, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// One benchmarked operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable identifier (compare across commits).
    pub name: String,
    /// Timed repetitions.
    pub iters: usize,
    /// Total wall-clock of the timed loop, milliseconds.
    pub wall_ms: f64,
    /// Wall-clock per repetition, microseconds.
    pub per_op_us: f64,
    /// Work rate in `unit`.
    pub throughput: f64,
    /// Unit of `throughput` (`ops/s`, `steps/s`, `epochs/s`).
    pub unit: String,
    /// Per-repetition cost of the naive/allocating baseline path, when
    /// the suite times one (microseconds; `null` otherwise).
    pub baseline_per_op_us: Option<f64>,
    /// `baseline_per_op_us / per_op_us` (≥ 1 means the fast path wins;
    /// `null` when no baseline was timed).
    pub speedup: Option<f64>,
}

/// The full suite result (`mflb bench` writes this as JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Seconds since the Unix epoch at suite start.
    pub unix_time: u64,
    /// Whether the reduced CI-scale suite ran.
    pub quick: bool,
    /// Worker threads used for rollout/Monte-Carlo fan-outs.
    pub workers: usize,
    /// The measurements, in execution order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Pretty-JSON serialization (the `BENCH_kernels.json` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("parse perf report: {e}"))
    }
}

/// One kernel's baseline-vs-fresh comparison (see [`compare_reports`]).
#[derive(Debug, Clone)]
pub struct PerfDiffRow {
    /// Kernel identifier.
    pub name: String,
    /// `speedup` recorded in the committed baseline report.
    pub baseline_speedup: Option<f64>,
    /// `speedup` measured by the fresh run.
    pub fresh_speedup: Option<f64>,
    /// `baseline_speedup / fresh_speedup` — how much of the kernel's
    /// same-machine margin over its naive twin was lost (`> 1` = lost).
    pub ratio: Option<f64>,
    /// Whether `ratio` exceeds the gate threshold.
    pub regressed: bool,
}

/// Result of diffing a fresh perf report against the committed baseline.
///
/// Wall-clock numbers are machine-dependent (the committed baseline and a
/// CI runner are different machines), so the gate compares each kernel's
/// **speedup over its own in-run naive twin** — a same-machine ratio by
/// construction. Entries without an in-run baseline (rollout/update/MC
/// throughputs) are listed for visibility but never gate.
#[derive(Debug, Clone)]
pub struct PerfDiff {
    /// Per-kernel comparison, in baseline-report order.
    pub rows: Vec<PerfDiffRow>,
    /// The gating threshold on `ratio` (e.g. `1.3`).
    pub max_ratio: f64,
}

impl PerfDiff {
    /// The kernels whose same-machine margin regressed past the threshold.
    pub fn regressions(&self) -> Vec<&PerfDiffRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// Renders the comparison as a GitHub-flavored markdown table (the
    /// `$GITHUB_STEP_SUMMARY` payload of the CI perf gate).
    pub fn to_markdown(&self) -> String {
        let mut out =
            String::from("### Perf gate: kernel speedup ratios vs committed baseline\n\n");
        out.push_str(&format!(
            "Gate: a tracked kernel fails if `baseline speedup / fresh speedup` exceeds \
             **{:.2}x** (speedups are same-machine: each run times the kernel against its \
             own naive twin).\n\n",
            self.max_ratio
        ));
        out.push_str("| kernel | baseline speedup | fresh speedup | ratio | verdict |\n");
        out.push_str("|---|---|---|---|---|\n");
        let fmt = |v: Option<f64>| v.map_or("–".to_string(), |s| format!("{s:.2}x"));
        for r in &self.rows {
            let verdict = match (r.ratio, r.regressed) {
                (None, _) => "untracked",
                (Some(_), true) => "**REGRESSED**",
                (Some(_), false) => "ok",
            };
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} |\n",
                r.name,
                fmt(r.baseline_speedup),
                fmt(r.fresh_speedup),
                r.ratio.map_or("–".to_string(), |x| format!("{x:.2}")),
                verdict
            ));
        }
        let n = self.regressions().len();
        if n == 0 {
            out.push_str("\nAll tracked kernels within the gate.\n");
        } else {
            out.push_str(&format!(
                "\n**{n} kernel(s) regressed past the {:.2}x gate.**\n",
                self.max_ratio
            ));
        }
        out
    }
}

/// Diffs a fresh perf report against the committed baseline (see
/// [`PerfDiff`] for the gating semantics). Kernels present in only one
/// report are skipped silently — renaming a kernel therefore *removes* it
/// from the gate, so rename together with the committed baseline.
pub fn compare_reports(baseline: &BenchReport, fresh: &BenchReport, max_ratio: f64) -> PerfDiff {
    assert!(max_ratio > 0.0 && max_ratio.is_finite());
    let mut rows = Vec::new();
    for b in &baseline.entries {
        let Some(f) = fresh.entries.iter().find(|f| f.name == b.name) else {
            continue;
        };
        let ratio = match (b.speedup, f.speedup) {
            (Some(bs), Some(fs)) if fs > 0.0 => Some(bs / fs),
            _ => None,
        };
        rows.push(PerfDiffRow {
            name: b.name.clone(),
            baseline_speedup: b.speedup,
            fresh_speedup: f.speedup,
            ratio,
            regressed: ratio.is_some_and(|r| r > max_ratio),
        });
    }
    PerfDiff { rows, max_ratio }
}

/// Times `iters` repetitions of `f`; returns total seconds.
fn time_loop<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64()
}

/// Builds an entry from a timed loop: `ops_per_iter` units of work per
/// repetition, reported in `unit`.
fn entry(name: &str, iters: usize, secs: f64, ops_per_iter: f64, unit: &str) -> BenchEntry {
    BenchEntry {
        name: name.to_string(),
        iters,
        wall_ms: secs * 1e3,
        per_op_us: secs / iters as f64 * 1e6,
        throughput: iters as f64 * ops_per_iter / secs,
        unit: unit.to_string(),
        baseline_per_op_us: None,
        speedup: None,
    }
}

/// Attaches a naive-path baseline (seconds for the same `iters`).
fn with_baseline(mut e: BenchEntry, baseline_secs: f64) -> BenchEntry {
    let base_us = baseline_secs / e.iters as f64 * 1e6;
    e.speedup = Some(base_us / e.per_op_us);
    e.baseline_per_op_us = Some(base_us);
    e
}

/// Deterministic test matrix (same generator as the nn property tests).
fn bench_tensor(rows: usize, cols: usize, salt: u64) -> Tensor {
    let data = (0..rows * cols).map(|i| ((i as f64 + salt as f64) * 0.789).sin()).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Runs the suite. `quick` shrinks every workload to CI scale (a few
/// seconds total); `workers` pins the rollout/Monte-Carlo thread fan-out
/// so runs on fixed-core CI machines are comparable.
pub fn run_suite(quick: bool, workers: usize) -> BenchReport {
    let unix_time =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs();
    let mut entries = Vec::new();

    // --- 1. Kernels: blocked vs naive GEMM at the 2×256 policy shape. ---
    let scale = if quick { 1 } else { 10 };
    {
        let a = bench_tensor(128, 256, 1);
        let w = bench_tensor(256, 256, 2);
        let iters = 40 * scale;
        let naive = time_loop(iters, || {
            black_box(black_box(&a).matmul(&w));
        });
        let mut out = Tensor::zeros(128, 256);
        let blocked = time_loop(iters, || {
            black_box(&a).matmul_into(&w, &mut out);
            black_box(&out);
        });
        let flops = 2.0 * 128.0 * 256.0 * 256.0;
        entries.push(with_baseline(
            entry("gemm_nn_128x256x256_blocked", iters, blocked, flops, "flop/s"),
            naive,
        ));

        // Weight-gradient shape: activationsᵀ·∂y, both batch-major.
        let g = bench_tensor(128, 256, 5);
        let gnaive = time_loop(iters, || {
            black_box(black_box(&a).matmul_tn(&g));
        });
        let mut gout = Tensor::zeros(256, 256);
        let gblocked = time_loop(iters, || {
            black_box(&a).matmul_tn_into(&g, &mut gout);
            black_box(&gout);
        });
        entries.push(with_baseline(
            entry("gemm_tn_128x256x256_blocked", iters, gblocked, flops, "flop/s"),
            gnaive,
        ));
    }

    // --- 2. Batch-1 inference: gemv fast path vs allocating forward_one
    //     on the paper's 2×256 policy network (the Monte-Carlo decide and
    //     rollout hot path). ---
    {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&[8, 256, 256, 72], Activation::Tanh, &mut rng);
        let obs = [0.25; 8];
        let iters = 2_000 * scale;
        let naive = time_loop(iters, || {
            black_box(mlp.forward_one(black_box(&obs)));
        });
        let mut ws = Workspace::new();
        let fast = time_loop(iters, || {
            black_box(mlp.forward_one_into(black_box(&obs), &mut ws));
        });
        entries.push(with_baseline(
            entry("policy_forward_one_batch1_gemv", iters, fast, 1.0, "ops/s"),
            naive,
        ));

        // The quick-scale deployment net (`mflb train --scale quick`
        // checkpoints deploy 2×32 policies): small enough to live in L1,
        // so the allocating path's overhead dominates and the gemv fast
        // path shows its full margin. The 2×256 paper net above is bounded
        // by streaming 512 KB of weights per call, which caps any batch-1
        // kernel on this shape.
        let quick_net = Mlp::new(&[8, 32, 32, 72], Activation::Tanh, &mut rng);
        let qiters = 20_000 * scale;
        let qnaive = time_loop(qiters, || {
            black_box(quick_net.forward_one(black_box(&obs)));
        });
        let mut qws = Workspace::new();
        let qfast = time_loop(qiters, || {
            black_box(quick_net.forward_one_into(black_box(&obs), &mut qws));
        });
        entries.push(with_baseline(
            entry("policy_forward_one_batch1_gemv_2x32", qiters, qfast, 1.0, "ops/s"),
            qnaive,
        ));

        // The batch-1 gemv kernel against the allocating matmul layer path
        // it replaced, isolated on the quick-scale policy head (32 → 72
        // logits, linear). Whole-net forward_one ratios above are bounded
        // by work both paths share — `tanh` (≈10 ns/element through libm)
        // on the 2×32 net, and streaming 512 KB of weights per call on the
        // 2×256 net — whereas the layer itself shows the full
        // allocation+register-blocking margin.
        let head = mflb_nn::Linear::xavier(32, 72, &mut rng);
        let hx: Vec<f64> = (0..32).map(|i| (i as f64 * 0.17).sin()).collect();
        let hiters = 50_000 * scale;
        let hnaive = time_loop(hiters, || {
            black_box(head.forward(&Tensor::from_row(black_box(&hx))));
        });
        let mut hout = Tensor::zeros(1, 72);
        let hxt = Tensor::from_row(&hx);
        let hfast = time_loop(hiters, || {
            head.forward_into(black_box(&hxt), &mut hout);
            black_box(&hout);
        });
        entries.push(with_baseline(
            entry("gemv_policy_head_32x72_batch1", hiters, hfast, 1.0, "ops/s"),
            hnaive,
        ));
    }

    // --- 2b. Batched decision-epoch inference on the paper net: one
    //     K-row gemm through `forward_rows_into` vs K sequential
    //     `forward_one_into` gemvs — the `decide_batch` vs `decide`
    //     cutover the lockstep Monte-Carlo driver rides (bit-identical
    //     outputs, so the margin is purely from amortizing the 512 KB
    //     weight stream over the batch). The f32 serving tier then runs
    //     the same batch with converted weights as its own tracked entry,
    //     baselined against the f64 batched path. ---
    {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&[8, 256, 256, 72], Activation::Tanh, &mut rng);
        let k = 32usize;
        let rows: Vec<f64> = (0..k * 8).map(|i| ((i as f64) * 0.13).sin() * 0.5 + 0.5).collect();
        let iters = 200 * scale;
        let mut ws_seq = Workspace::new();
        let gemv = time_loop(iters, || {
            for r in 0..k {
                black_box(mlp.forward_one_into(black_box(&rows[r * 8..(r + 1) * 8]), &mut ws_seq));
            }
        });
        let mut ws = Workspace::new();
        let batched = time_loop(iters, || {
            black_box(mlp.forward_rows_into(k, black_box(&rows), &mut ws));
        });
        entries.push(with_baseline(
            entry("batched_vs_gemv", iters, batched, k as f64, "rows/s"),
            gemv,
        ));

        let f32_net = mlp.to_f32();
        let mut ws32 = F32Workspace::new();
        let f32_secs = time_loop(iters, || {
            black_box(f32_net.forward_rows_into(k, black_box(&rows), &mut ws32));
        });
        entries
            .push(with_baseline(entry("f32_vs_f64", iters, f32_secs, k as f64, "rows/s"), batched));
    }

    // --- 2c. Distilled tabular tier: snap-and-lookup `decide()`, timed at
    //     the same decision granularity as the neural tiers so the three
    //     serving tiers read off one table. Untracked (no naive twin to
    //     ratio against) — the absolute per-op cost is the datum. ---
    {
        use mflb_core::mdp::UpperPolicy;
        use mflb_core::StateDist;
        use mflb_dp::SimplexGrid;
        use mflb_policy::{jsq_rule, softmin_rule};
        use mflb_rl::{DistilledCheckpoint, DISTILLED_FORMAT_VERSION};

        let config = SystemConfig::paper().with_m_squared(100).with_dt(5.0);
        let zs = config.num_states();
        let d = config.d;
        let levels = config.arrivals.num_levels();
        let grid_resolution = 8;
        let points = SimplexGrid::new(zs, grid_resolution).num_points();
        let ckpt = DistilledCheckpoint {
            format_version: DISTILLED_FORMAT_VERSION,
            scenario: Scenario::new(config.clone(), EngineSpec::Aggregate),
            grid_resolution,
            action_names: vec!["JSQ".into(), "SOFT(1)".into(), "SOFT(4)".into()],
            action_rules: vec![jsq_rule(zs, d), softmin_rule(zs, d, 1.0), softmin_rule(zs, d, 4.0)],
            table: (0..points * levels).map(|i| (i % 3) as u32).collect(),
            nn_fraction: 1.0,
            polish_slack: 0.005,
            source_steps: 0,
            source_seed: 0,
        };
        let tabular = ckpt.into_policy().expect("bench table is consistent");
        let dists: Vec<StateDist> = (0..8usize)
            .map(|s| {
                let lengths: Vec<usize> = (0..100).map(|j| (j * (s + 3)) % zs).collect();
                StateDist::empirical(&lengths, config.buffer)
            })
            .collect();
        let iters = 20_000 * scale;
        let mut k = 0usize;
        let secs = time_loop(iters, || {
            black_box(tabular.decide(black_box(&dists[k % dists.len()]), k % levels, 1.0));
            k += 1;
        });
        entries.push(entry("tabular_policy_decide", iters, secs, 1.0, "ops/s"));
    }

    // --- 3. Backward pass: workspace vs allocating, batch 128. ---
    {
        let mut rng = StdRng::seed_from_u64(8);
        let mlp = Mlp::new(&[8, 256, 256, 72], Activation::Tanh, &mut rng);
        let batch = bench_tensor(128, 8, 3);
        let iters = 20 * scale;
        let naive = time_loop(iters, || {
            let cache = mlp.forward_cached(black_box(&batch));
            let grad = cache.output().clone();
            black_box(mlp.backward(&cache, &grad));
        });
        let mut ws = Workspace::new();
        let mut grad = Tensor::zeros(0, 0);
        let fast = time_loop(iters, || {
            mlp.forward_into(black_box(&batch), &mut ws);
            grad.reset(128, 72);
            grad.as_mut_slice().copy_from_slice(ws.output().as_slice());
            black_box(mlp.backward_into(&mut ws, &grad));
        });
        entries.push(with_baseline(
            entry("mlp_forward_backward_batch128_ws", iters, fast, 1.0, "ops/s"),
            naive,
        ));
    }

    // --- 4. PPO rollout collection + minibatch update throughput. ---
    {
        let mut config = SystemConfig::paper().with_dt(5.0);
        config.train_episode_len = 50;
        let env = MfcEnv::new(config);
        let ppo = PpoConfig {
            train_batch_size: if quick { 500 } else { 2000 },
            minibatch_size: 125,
            num_epochs: if quick { 2 } else { 8 },
            hidden: vec![64, 64],
            rollout_threads: workers.max(1),
            ..PpoConfig::paper()
        };
        let steps = ppo.train_batch_size as f64;
        let epochs = ppo.num_epochs as f64;
        let mut trainer = PpoTrainer::new(&env, ppo, 42);
        let mut rng = StdRng::seed_from_u64(43);
        // Warm up workspaces and caches out of the timed region.
        let (warm_buffer, _) = trainer.collect_batch();
        trainer.update(&warm_buffer, &mut rng);

        let iters = if quick { 2 } else { 5 };
        let mut buffers = Vec::new();
        let collect = time_loop(iters, || {
            buffers.push(trainer.collect_batch().0);
        });
        entries.push(entry("ppo_collect_batch_mfc", iters, collect, steps, "steps/s"));
        let mut it = buffers.iter();
        let update = time_loop(iters, || {
            let buf = it.next().expect("one buffer per iter");
            black_box(trainer.update(buf, &mut rng));
        });
        entries.push(entry("ppo_update_minibatch_sgd", iters, update, steps * epochs, "steps/s"));

        // Gaussian head micro-op riding along: per-sample log-prob (the
        // dominant scalar loop inside the update).
        let mean = trainer.deterministic_action(&vec![0.1; env_obs_dim(&env)]);
        let dist = DiagGaussian::new(&mean, trainer.log_std());
        let action = vec![0.05; mean.len()];
        let liters = 20_000 * scale;
        let lp = time_loop(liters, || {
            black_box(dist.log_prob(black_box(&action)));
        });
        entries.push(entry("gaussian_log_prob_72d", liters, lp, 1.0, "ops/s"));
    }

    // --- 5. Deployment-side Monte Carlo: neural decide per epoch. ---
    {
        let config = SystemConfig::paper().with_m_squared(100).with_dt(5.0);
        let zs = config.num_states();
        let levels = config.arrivals.num_levels();
        let mut rng = StdRng::seed_from_u64(11);
        let net = Mlp::new(
            &[observation_dim(zs, levels), 256, 256, action_dim(zs, config.d)],
            Activation::Tanh,
            &mut rng,
        );
        let policy = NeuralUpperPolicy::new(net, zs, config.d, levels);
        let engine = AggregateEngine::new(config);
        let horizon = 50;
        let runs = if quick { 4 } else { 16 };
        let iters = if quick { 2 } else { 5 };
        let secs = time_loop(iters, || {
            black_box(monte_carlo(&engine, &policy, horizon, runs, 17, workers));
        });
        entries.push(entry(
            "monte_carlo_neural_decide_M100",
            iters,
            secs,
            (horizon * runs) as f64,
            "epochs/s",
        ));
    }

    // --- 6. End-to-end pinned-seed quick-scale training run. ---
    {
        let config = SystemConfig::paper().with_m_squared(20).with_dt(5.0);
        let scenario = Scenario::new(config, EngineSpec::Aggregate);
        let ppo = PpoConfig {
            gamma: 0.9,
            gae_lambda: 0.9,
            lr: 1e-3,
            train_batch_size: 2000,
            minibatch_size: 250,
            num_epochs: 10,
            kl_target: 0.02,
            hidden: vec![32, 32],
            initial_log_std: -0.5,
            rollout_threads: workers.max(1),
            ..PpoConfig::paper()
        };
        let iters = if quick { 2 } else { 8 };
        let secs = time_loop(1, || {
            black_box(
                train_scenario(&scenario, ppo.clone(), iters, 1, false)
                    .expect("bench training run"),
            );
        });
        entries.push(entry(
            "train_scenario_aggregate_quick",
            1,
            secs,
            (iters * ppo.train_batch_size) as f64,
            "steps/s",
        ));
    }

    BenchReport { unix_time, quick, workers, entries }
}

/// Observation dimension of an env without dragging the trait into scope.
fn env_obs_dim(env: &MfcEnv) -> usize {
    use mflb_rl::Env;
    env.obs_dim()
}

/// Runs the sparse-graph suite behind `mflb bench --suite graph`
/// (`BENCH_graph_quick.json` is its committed CI baseline).
///
/// Two gated kernels time the sparse-support Eq. 22 sweep against the
/// dense `|Z|^d·d` sweep it replaced — same machine, same inputs,
/// bit-identical outputs (tested in `mflb-core`), so the speedup is
/// purely algorithmic: first as a single-histogram micro-op, then as the
/// full per-dispatcher rate sweep of a 10^4-node ring (exactly the inner
/// loop a graph epoch runs). The untracked throughput entries record the
/// scaling trajectory: sharded epoch rates at 10^4/10^5/10^6 queues
/// (unit `q·epochs/s`; `per_op_us` is the epoch time, so epoch-steps/s
/// is its reciprocal) and the streaming CSR build of a 10^6-node random
/// 4-regular topology.
pub fn run_graph_suite(quick: bool, workers: usize) -> BenchReport {
    use mflb_core::{per_state_arrival_rates_into, per_state_arrival_rates_sparse_into, Topology};
    use mflb_policy::jsq_rule;
    use mflb_sim::{Engine, GraphEngine, GraphState, StepMode};

    let unix_time =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs();
    let scale = if quick { 1 } else { 10 };
    let mut entries = Vec::new();

    // --- 1. Sparse vs dense Eq. 22 rates, single histogram. B = 10 and a
    //     5-state support is the regime a degree-4 neighborhood lives in:
    //     the dense sweep enumerates 11² = 121 length-d tuples, the
    //     sparse one at most 5² = 25. ---
    {
        let zs = 11;
        let rule = jsq_rule(zs, 2);
        let mut hist = vec![0.0f64; zs];
        for (z, w) in [(0usize, 0.2f64), (2, 0.2), (5, 0.2), (7, 0.2), (10, 0.2)] {
            hist[z] = w;
        }
        let support = vec![0usize, 2, 5, 7, 10];
        let mut rates = vec![0.0f64; zs];
        // Sub-µs kernel: enough iterations that the timed region is tens of
        // milliseconds even at quick scale, or the margin ratio is noise.
        let iters = 200_000 * scale;
        let dense = time_loop(iters, || {
            per_state_arrival_rates_into(black_box(&hist), &rule, 1.0, &mut rates);
            black_box(&rates);
        });
        let sparse = time_loop(iters, || {
            per_state_arrival_rates_sparse_into(
                black_box(&hist),
                black_box(&support),
                &rule,
                1.0,
                &mut rates,
            );
            black_box(&rates);
        });
        entries.push(with_baseline(
            entry("graph_rates_sparse_B10_d2", iters, sparse, 1.0, "ops/s"),
            dense,
        ));
    }

    // --- 2. The same cutover at engine granularity: the per-dispatcher
    //     rate sweep over every node of a 10^4-queue ring (k = 5),
    //     replaying exactly what one epoch's assignment phase computes.
    //     ---
    {
        let m = 10_000usize;
        let zs = 11;
        let rule = jsq_rule(zs, 2);
        let csr = Topology::Ring { radius: 2 }.csr(m).expect("ring CSR");
        let k = csr.neighborhood_size();
        let queues: Vec<usize> = (0..m).map(|j| (j * 7) % zs).collect();
        let inv_k = 1.0 / k as f64;
        let mut hist = vec![0.0f64; zs];
        let mut rates = vec![0.0f64; zs];
        let mut support: Vec<usize> = Vec::with_capacity(zs);
        let fill_hist = |node: usize, hist: &mut [f64], support: &mut Vec<usize>| {
            hist.iter_mut().for_each(|h| *h = 0.0);
            support.clear();
            for &j in csr.row(node) {
                let z = queues[j as usize];
                if hist[z] == 0.0 {
                    support.push(z);
                }
                hist[z] += 1.0;
            }
            hist.iter_mut().for_each(|h| *h *= inv_k);
            support.sort_unstable();
        };
        let iters = 10 * scale;
        let dense = time_loop(iters, || {
            for node in 0..m {
                fill_hist(node, &mut hist, &mut support);
                per_state_arrival_rates_into(black_box(&hist), &rule, 1.0, &mut rates);
                black_box(&rates);
            }
        });
        let sparse = time_loop(iters, || {
            for node in 0..m {
                fill_hist(node, &mut hist, &mut support);
                per_state_arrival_rates_sparse_into(
                    black_box(&hist),
                    black_box(&support),
                    &rule,
                    1.0,
                    &mut rates,
                );
                black_box(&rates);
            }
        });
        entries.push(with_baseline(
            entry("graph_rates_sweep_ring_M10k", iters, sparse, m as f64, "nodes/s"),
            dense,
        ));
    }

    // --- 3. Sharded epoch throughput at 10^4 / 10^5 / 10^6 queues
    //     (N = 4M clients, JSQ(2), pinned seeds). ---
    let epoch_cases: [(usize, Topology, usize, &str); 3] = [
        (10_000, Topology::Ring { radius: 2 }, 4 * scale, "graph_epoch_ring_M10k"),
        (100_000, Topology::Ring { radius: 2 }, 2 * scale, "graph_epoch_ring_M100k"),
        (1_000_000, Topology::RandomRegular { degree: 4, seed: 7 }, scale, "graph_epoch_rr4_M1m"),
    ];
    for (m, topology, iters, name) in epoch_cases {
        let cfg = SystemConfig::paper().with_size(4 * m as u64, m);
        let zs = cfg.num_states();
        let rule = jsq_rule(zs, cfg.d);
        let engine =
            GraphEngine::new(cfg, topology).with_mode(StepMode::Sharded).with_workers(workers);
        let queues: Vec<usize> = (0..m).map(|j| (j * 5) % zs).collect();
        let mut state = GraphState::from_queues(queues, zs, engine.neighborhood_size());
        let mut rng = StdRng::seed_from_u64(29);
        // One warm-up epoch touches every page out of the timed region.
        black_box(engine.step(&mut state, &rule, 0.9, &mut rng));
        let secs = time_loop(iters, || {
            black_box(engine.step(&mut state, &rule, 0.9, &mut rng));
        });
        entries.push(entry(name, iters, secs, m as f64, "q·epochs/s"));
    }

    // --- 4. Streaming CSR build of a million-node random 4-regular
    //     topology (the O(M·d) configuration-model draw). ---
    {
        let m = 1_000_000usize;
        let iters = scale;
        let secs = time_loop(iters, || {
            black_box(
                Topology::RandomRegular { degree: 4, seed: 7 }.csr(m).expect("build must succeed"),
            );
        });
        entries.push(entry("topology_build_rr4_M1m", iters, secs, m as f64, "nodes/s"));
    }

    BenchReport { unix_time, quick, workers, entries }
}

/// Runs the serving suite behind `mflb bench --suite serve`
/// (`BENCH_serve_quick.json` is its committed CI baseline).
///
/// Two gated kernels time the event engine's algorithmic choices against
/// their naive twins on the same machine and inputs: the binary-heap
/// [`mflb_sim::Timeline`] against a linear-scan min-extraction over the
/// same event batch, and the once-per-`Δt` sampled-and-delayed
/// observation refresh against recomputing the empirical histogram for
/// every dispatched job. The untracked throughput entries record the
/// ROADMAP bar — jobs dispatched per wall-clock second through the full
/// [`mflb_sim::serve()`] loop — for a synthetic Poisson/MMPP stream at
/// M = 100 and M = 1000 queues and for a replayed 50k-job trace.
pub fn run_serve_suite(quick: bool, workers: usize) -> BenchReport {
    use mflb_core::mdp::FixedRulePolicy;
    use mflb_core::{JobSizeLaw, StateDist};
    use mflb_policy::jsq_rule;
    use mflb_sim::{serve, EventEngine, Job, JobSource, ServeOptions, Timeline};

    let unix_time =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs();
    let scale = if quick { 1 } else { 10 };
    let mut entries = Vec::new();

    // --- 1. Timeline heap vs linear-scan min-extraction over the same
    //     4096-event batch (the naive O(n²) "next event" loop the heap
    //     replaces). Low-discrepancy times, so the batch is deterministic
    //     without an RNG. ---
    {
        let n = 4096usize;
        let events: Vec<f64> =
            (0..n).map(|i| (i as f64 * 0.618_033_988_75).fract() * 1e3).collect();
        let iters = 20 * scale;
        let heap = time_loop(iters, || {
            let mut tl: Timeline<usize> = Timeline::new();
            for (i, &t) in events.iter().enumerate() {
                tl.schedule(t, i);
            }
            let mut checksum = 0.0f64;
            while let Some((t, _, _)) = tl.pop() {
                checksum += t;
            }
            black_box(checksum);
        });
        let scan = time_loop(iters, || {
            let mut pending = black_box(&events).clone();
            let mut checksum = 0.0f64;
            while !pending.is_empty() {
                let mut min = 0usize;
                for (i, &t) in pending.iter().enumerate() {
                    if t < pending[min] {
                        min = i;
                    }
                }
                checksum += pending.swap_remove(min);
            }
            black_box(checksum);
        });
        entries.push(with_baseline(
            entry("serve_timeline_heap_n4k", iters, heap, n as f64, "events/s"),
            scan,
        ));
    }

    // --- 2. The sampled-and-delayed observation design as a kernel: one
    //     empirical-histogram refresh per sync interval vs recomputing it
    //     for each of the interval's 256 jobs (M = 1000 queues). ---
    {
        let m = 1000usize;
        let buffer = 5usize;
        let lengths: Vec<usize> = (0..m).map(|j| (j * 3) % (buffer + 1)).collect();
        let jobs_per_interval = 256usize;
        let iters = 200 * scale;
        let once = time_loop(iters, || {
            black_box(StateDist::empirical(black_box(&lengths), buffer));
        });
        let per_job = time_loop(iters, || {
            for _ in 0..jobs_per_interval {
                black_box(StateDist::empirical(black_box(&lengths), buffer));
            }
        });
        entries.push(with_baseline(
            entry("serve_observe_refresh_M1k", iters, once, jobs_per_interval as f64, "jobs/s"),
            per_job,
        ));
    }

    // --- 3. End-to-end dispatch throughput of the serve loop on a
    //     synthetic Poisson/MMPP stream (the ROADMAP jobs/sec bar). ---
    let synth_cases: [(usize, u64, f64, &str); 2] = [
        (100, 10_000, 200.0, "serve_dispatch_synthetic_M100"),
        (1000, 1_000_000, 100.0, "serve_dispatch_synthetic_M1k"),
    ];
    for (m, n, duration, name) in synth_cases {
        let cfg = SystemConfig::paper().with_size(n, m);
        let policy = FixedRulePolicy::new(jsq_rule(cfg.num_states(), cfg.d), "JSQ(d)");
        let engine = EventEngine::new(cfg, JobSizeLaw::Exponential { rate: 1.0 });
        let opts = ServeOptions {
            duration: Some(duration * scale as f64),
            seed: 17,
            ..Default::default()
        };
        let t0 = Instant::now();
        let report = serve(&engine, &policy, "JSQ(d)", &JobSource::Synthetic, &opts, |_| {})
            .expect("synthetic serve run");
        let secs = t0.elapsed().as_secs_f64();
        entries.push(entry(name, 1, secs, report.jobs_arrived as f64, "jobs/s"));
    }

    // --- 4. Trace replay throughput: a deterministic 50k-job trace at
    //     ~0.85 per-queue load, drained to completion. ---
    {
        let m = 100usize;
        let cfg = SystemConfig::paper().with_size(10_000, m);
        let policy = FixedRulePolicy::new(jsq_rule(cfg.num_states(), cfg.d), "JSQ(d)");
        let engine = EventEngine::new(cfg, JobSizeLaw::Exponential { rate: 1.0 });
        let num_jobs = 50_000 * scale;
        let mean_gap = 1.0 / (0.85 * m as f64);
        let jobs: Vec<Job> = (0..num_jobs)
            .map(|i| Job { t: i as f64 * mean_gap, size: 0.25 + (i as f64 * 0.377).fract() * 1.5 })
            .collect();
        let source = JobSource::Trace(jobs);
        let opts = ServeOptions { seed: 23, ..Default::default() };
        let t0 = Instant::now();
        let report =
            serve(&engine, &policy, "JSQ(d)", &source, &opts, |_| {}).expect("trace serve run");
        let secs = t0.elapsed().as_secs_f64();
        entries.push(entry(
            "serve_dispatch_trace_M100",
            1,
            secs,
            report.jobs_arrived as f64,
            "jobs/s",
        ));
    }

    // --- 5. Fault-injection overhead: the M = 100 synthetic stream
    //     dispatched through (a) a fully faulted engine — crashes,
    //     stragglers, dropped observation refreshes, overload bursts —
    //     and (b) an engine handed an *empty* plan. Empty plans must
    //     normalize onto the pristine fast path, so the empty-plan entry
    //     carries the pristine run as its same-machine baseline: its
    //     "speedup" is pinned ≈ 1.0 and bench-diff gates the
    //     no-plan-no-overhead contract. The faulted entry tracks
    //     absolute faulted-dispatch throughput. ---
    {
        use mflb_core::{
            CrashFaults, FaultPlan, ObservationFaults, OverloadWindow, StragglerWindow,
        };
        let m = 100usize;
        let cfg = SystemConfig::paper().with_size(10_000, m);
        let policy = FixedRulePolicy::new(jsq_rule(cfg.num_states(), cfg.d), "JSQ(d)");
        let opts =
            ServeOptions { duration: Some(100.0 * scale as f64), seed: 17, ..Default::default() };
        let run = |engine: &EventEngine| {
            let t0 = Instant::now();
            let report = serve(engine, &policy, "JSQ(d)", &JobSource::Synthetic, &opts, |_| {})
                .expect("faulted serve run");
            (t0.elapsed().as_secs_f64(), report.jobs_arrived as f64)
        };
        let pristine = EventEngine::new(cfg, JobSizeLaw::Exponential { rate: 1.0 });
        let (pristine_secs, _) = run(&pristine);

        let plan = FaultPlan {
            crashes: Some(CrashFaults { mttf: 50.0, mttr: 10.0 }),
            stragglers: vec![StragglerWindow { start: 20.0, end: 60.0, factor: 0.5, queues: None }],
            observation: Some(ObservationFaults { drop_prob: 0.2 }),
            overloads: vec![OverloadWindow { start: 70.0, end: 90.0, factor: 1.3 }],
        };
        let (faulted_secs, faulted_jobs) = run(&pristine.clone().with_faults(plan));
        entries.push(entry("serve_dispatch_faulted_M100", 1, faulted_secs, faulted_jobs, "jobs/s"));

        let (empty_secs, empty_jobs) = run(&pristine.clone().with_faults(FaultPlan::empty()));
        entries.push(with_baseline(
            entry("serve_dispatch_empty_plan_M100", 1, empty_secs, empty_jobs, "jobs/s"),
            pristine_secs,
        ));
    }

    BenchReport { unix_time, quick, workers, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_optional_fields() {
        let report = BenchReport {
            unix_time: 0,
            quick: true,
            workers: 1,
            entries: vec![
                entry("a", 2, 0.5, 1.0, "ops/s"),
                with_baseline(entry("b", 2, 0.5, 1.0, "ops/s"), 1.0),
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"speedup\": 2.0"), "{json}");
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries.len(), 2);
        assert!(back.entries[0].speedup.is_none());
    }

    fn report_with(speedups: &[(&str, Option<f64>)]) -> BenchReport {
        BenchReport {
            unix_time: 0,
            quick: true,
            workers: 1,
            entries: speedups
                .iter()
                .map(|(name, s)| {
                    let mut e = entry(name, 2, 0.5, 1.0, "ops/s");
                    if let Some(s) = s {
                        // entry() timed 0.5 s for the fast path; a baseline
                        // of 0.5·s seconds makes the speedup exactly `s`.
                        e = with_baseline(e, 0.5 * s);
                    }
                    e
                })
                .collect(),
        }
    }

    #[test]
    fn compare_reports_gates_on_same_machine_speedup_ratios() {
        let baseline = report_with(&[("gemv", Some(2.6)), ("gemm", Some(1.8)), ("rollout", None)]);
        // gemv kept its margin, gemm lost half of it (1.8 / 0.9 = 2.0 > 1.3).
        let fresh = report_with(&[
            ("gemv", Some(2.5)),
            ("gemm", Some(0.9)),
            ("rollout", None),
            ("brand_new", Some(3.0)),
        ]);
        let diff = compare_reports(&baseline, &fresh, 1.3);
        assert_eq!(diff.rows.len(), 3, "only shared entries are compared");
        let regressed: Vec<&str> = diff.regressions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(regressed, vec!["gemm"]);
        let md = diff.to_markdown();
        assert!(md.contains("| `gemm` |"), "{md}");
        assert!(md.contains("REGRESSED"), "{md}");
        assert!(md.contains("untracked"), "throughput-only entries never gate: {md}");
        assert!(md.contains("1 kernel(s) regressed"), "{md}");
    }

    #[test]
    fn compare_reports_passes_when_margins_hold() {
        let baseline = report_with(&[("gemv", Some(2.0))]);
        let fresh = report_with(&[("gemv", Some(1.7))]); // ratio 1.18 < 1.3
        let diff = compare_reports(&baseline, &fresh, 1.3);
        assert!(diff.regressions().is_empty());
        assert!(diff.to_markdown().contains("All tracked kernels within the gate"));
    }

    #[test]
    fn committed_baseline_files_parse_and_self_compare_clean() {
        // BENCH_kernels_quick.json and BENCH_graph_quick.json are the CI
        // gates' references (quick compares against quick — margins shift
        // with iteration count); BENCH_kernels.json is the full-suite perf
        // trajectory. All must stay parseable and trivially pass against
        // themselves.
        for file in [
            "BENCH_kernels_quick.json",
            "BENCH_kernels.json",
            "BENCH_graph_quick.json",
            "BENCH_serve_quick.json",
        ] {
            let path =
                std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(file);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("committed baseline {file} must exist: {e}"));
            let report = BenchReport::from_json(&text)
                .unwrap_or_else(|e| panic!("committed baseline {file} must parse: {e}"));
            assert!(!report.entries.is_empty());
            let diff = compare_reports(&report, &report, 1.3);
            assert!(diff.regressions().is_empty(), "{file}: self-comparison cannot regress");
            assert!(
                diff.rows.iter().any(|r| r.ratio.is_some()),
                "{file}: at least one kernel must carry a same-machine speedup to gate on"
            );
        }
    }
}

//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index).
//!
//! Binaries (all accept `--scale quick|paper`):
//!
//! * `table1_params`, `table2_hyperparams` — the configuration tables,
//! * `fig3_training` — PPO training curve vs MF-JSQ(2)/MF-RND baselines,
//! * `fig4_convergence` — finite-system → mean-field convergence over M,
//! * `fig5_delay_sweep` — MF vs JSQ(2) vs RND over Δt (N = M²),
//! * `fig6_ablation` — the N ⋡ M ablation,
//! * `train_policy` — trains and checkpoints an MF policy for a given Δt,
//! * `fig_locality` — drops vs dispatcher neighborhood size (ours),
//! * `fig_sparse_scale` — sharded sparse-graph epoch throughput from
//!   10^4 to 10^6 queues (ours).
//!
//! `cargo bench -p mflb-bench` runs the criterion micro-benchmarks of the
//! computational kernels.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod chart;
pub mod harness;
pub mod perf;
pub mod training;

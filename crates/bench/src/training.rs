//! Shared PPO-training driver used by `fig3_training` and `train_policy`.

use crate::harness;
use mflb_core::mdp::{action_dim, observation_dim};
use mflb_core::SystemConfig;
use mflb_policy::NeuralUpperPolicy;
use mflb_rl::{MfcEnv, PpoConfig, PpoTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One logged point of the training curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Cumulative environment steps (the paper's x-axis).
    pub steps: u64,
    /// Mean return of episodes completed this iteration.
    pub mean_return: f64,
    /// Mean KL of the iteration's update.
    pub kl: f64,
    /// Entropy of the Gaussian head.
    pub entropy: f64,
}

/// Trains an MF policy with PPO on the MFC MDP.
///
/// Returns the deployable deterministic policy and the training curve.
pub fn train_mf_policy(
    config: &SystemConfig,
    ppo: PpoConfig,
    iterations: usize,
    seed: u64,
    verbose: bool,
) -> (NeuralUpperPolicy, Vec<CurvePoint>) {
    train_mf_policy_from(config, ppo, iterations, seed, verbose, None)
}

/// Like [`train_mf_policy`], optionally warm-starting the policy network
/// from an existing checkpoint's network.
pub fn train_mf_policy_from(
    config: &SystemConfig,
    ppo: PpoConfig,
    iterations: usize,
    seed: u64,
    verbose: bool,
    init: Option<&mflb_nn::Mlp>,
) -> (NeuralUpperPolicy, Vec<CurvePoint>) {
    let env = MfcEnv::new(config.clone());
    let mut trainer = PpoTrainer::new(&env, ppo, seed);
    if let Some(net) = init {
        trainer.load_policy_net(net);
        if verbose {
            println!("warm-started policy network from checkpoint");
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut curve = Vec::with_capacity(iterations);
    for it in 0..iterations {
        let stats = trainer.train_iteration(&mut rng);
        if !stats.mean_episode_return.is_nan() {
            curve.push(CurvePoint {
                steps: stats.total_steps,
                mean_return: stats.mean_episode_return,
                kl: stats.mean_kl,
                entropy: stats.entropy,
            });
        }
        if verbose && (it < 5 || it % 10 == 0 || it + 1 == iterations) {
            println!(
                "iter {:>4}  steps {:>9}  return {:>9.2}  kl {:.4}  entropy {:>7.2}  kl_coeff {:.3}",
                stats.iteration,
                stats.total_steps,
                stats.mean_episode_return,
                stats.mean_kl,
                stats.entropy,
                stats.kl_coeff
            );
        }
    }
    let num_levels = config.arrivals.num_levels();
    let net = trainer.policy_net().clone();
    debug_assert_eq!(net.input_dim(), observation_dim(config.num_states(), num_levels));
    debug_assert_eq!(net.output_dim(), action_dim(config.num_states(), config.d));
    let policy = NeuralUpperPolicy::new(net, config.num_states(), config.d, num_levels);
    (policy, curve)
}

/// The PPO configuration used at each harness scale. `paper` is Table 2
/// verbatim; `quick` shrinks networks/batches so training fits in minutes.
pub fn ppo_config_for(scale: harness::Scale, threads: usize) -> PpoConfig {
    let mut cfg = match scale {
        harness::Scale::Paper => PpoConfig::paper(),
        harness::Scale::Quick => PpoConfig {
            // Quick mode deviates from Table 2 where it buys variance
            // reduction: the decision rule h_t determines the epoch's drop
            // count D_t *immediately*, so a shorter credit horizon
            // (γ = 0.9, GAE λ = 0.9) preserves the optimal policy while
            // cutting advantage noise by an order of magnitude — essential
            // when training for minutes instead of the paper's 35 hours.
            gamma: 0.9,
            gae_lambda: 0.9,
            lr: 1e-3,
            train_batch_size: 4000,
            minibatch_size: 500,
            num_epochs: 12,
            kl_target: 0.02,
            hidden: vec![64, 64],
            initial_log_std: -0.5,
            ..PpoConfig::paper()
        },
    };
    cfg.rollout_threads = threads.max(1);
    cfg
}

/// Default iteration counts per scale (paper: ≈2.5·10⁷ steps as in Fig. 3).
pub fn iterations_for(scale: harness::Scale) -> usize {
    match scale {
        harness::Scale::Quick => 120,
        harness::Scale::Paper => 6250,
    }
}

//! Scale-dependent PPO configuration for the bench binaries.
//!
//! The training driver itself lives in `mflb_rl` ([`mflb_rl::train_scenario`]
//! — the same code path as `mflb train`); this module only maps the
//! harness [`harness::Scale`] to hyper-parameters and iteration counts.

use crate::harness;
use mflb_rl::PpoConfig;

pub use mflb_rl::CurvePoint;

/// The PPO configuration used at each harness scale. `paper` is Table 2
/// verbatim; `quick` shrinks networks/batches so training fits in minutes.
pub fn ppo_config_for(scale: harness::Scale, threads: usize) -> PpoConfig {
    let mut cfg = match scale {
        harness::Scale::Paper => PpoConfig::paper(),
        harness::Scale::Quick => PpoConfig {
            // Quick mode deviates from Table 2 where it buys variance
            // reduction: the decision rule h_t determines the epoch's drop
            // count D_t *immediately*, so a shorter credit horizon
            // (γ = 0.9, GAE λ = 0.9) preserves the optimal policy while
            // cutting advantage noise by an order of magnitude — essential
            // when training for minutes instead of the paper's 35 hours.
            gamma: 0.9,
            gae_lambda: 0.9,
            lr: 1e-3,
            train_batch_size: 4000,
            minibatch_size: 500,
            num_epochs: 12,
            kl_target: 0.02,
            hidden: vec![64, 64],
            initial_log_std: -0.5,
            ..PpoConfig::paper()
        },
    };
    cfg.rollout_threads = threads.max(1);
    cfg
}

/// Default iteration counts per scale (paper: ≈2.5·10⁷ steps as in Fig. 3).
pub fn iterations_for(scale: harness::Scale) -> usize {
    match scale {
        harness::Scale::Quick => 120,
        harness::Scale::Paper => 6250,
    }
}

//! The learned upper-level policy: a neural network mapping the mean-field
//! state `(ν_t, λ_t)` to decision-rule logits (Fig. 2).
//!
//! Observation encoding: the `B+1` probabilities of `ν_t` concatenated with
//! a one-hot encoding of the arrival level. Action decoding: the network's
//! `|Z|^d·d` outputs are treated as logits and row-softmax-normalized into
//! a [`DecisionRule`] ("manual normalization", §4 — the Dirichlet head the
//! authors tried performed worse).
//!
//! At evaluation time the policy is deterministic (the Gaussian
//! exploration noise used during PPO training is dropped and the mean
//! logits are used directly), matching how the paper deploys the trained
//! MF policy in finite systems (Algorithm 1).

use mflb_core::mdp::{encode_observation_into, UpperPolicy};
use mflb_core::{DecisionRule, StateDist};
use mflb_nn::{Mlp, Workspace};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Mutex;

// Canonical encoders live in `mflb_core::mdp` so the RL environment and the
// deployed policy can never drift apart; re-exported here for convenience.
pub use mflb_core::mdp::{action_dim, encode_observation, observation_dim};

/// Reusable per-decision scratch: the encoded observation vector plus the
/// network workspace driving the batch-1 `gemv` inference path.
#[derive(Debug, Default)]
struct DecideScratch {
    obs: Vec<f64>,
    ws: Workspace,
}

/// A trained policy checkpoint: network weights plus the shape metadata
/// needed to rebuild the decision-rule decoding, and provenance fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyCheckpoint {
    /// The policy network.
    pub net: Mlp,
    /// Number of queue states `|Z| = B+1`.
    pub num_states: usize,
    /// Number of sampled queues d.
    pub d: usize,
    /// Number of arrival levels `|Λ|`.
    pub num_levels: usize,
    /// Synchronization delay the policy was trained for.
    pub dt: f64,
    /// Free-form provenance (training steps, date, config hash …).
    pub meta: String,
}

/// The neural upper-level policy π̃.
#[derive(Debug)]
pub struct NeuralUpperPolicy {
    net: Mlp,
    /// States of the *observed* distribution (queue lengths: `B + 1`).
    obs_states: usize,
    /// States of the emitted decision rule. Equal to `obs_states` for
    /// homogeneous systems; `C·(B+1)` composite states for heterogeneous
    /// pools, whose engines observe lengths but route on `(length, class)`.
    rule_states: usize,
    d: usize,
    num_levels: usize,
    name: String,
    /// Pool of warmed-up [`DecideScratch`]es. `decide` takes `&self` and
    /// runs concurrently from parallel Monte-Carlo threads, so each call
    /// checks a scratch out of the pool (creating one on first use per
    /// concurrent caller) and returns it afterwards — steady-state
    /// decision epochs are allocation-free and the lock is held only for
    /// the pop/push, never across the network forward.
    scratch: Mutex<Vec<DecideScratch>>,
}

impl Clone for NeuralUpperPolicy {
    fn clone(&self) -> Self {
        Self {
            net: self.net.clone(),
            obs_states: self.obs_states,
            rule_states: self.rule_states,
            d: self.d,
            num_levels: self.num_levels,
            name: self.name.clone(),
            scratch: Mutex::new(Vec::new()),
        }
    }
}

impl NeuralUpperPolicy {
    /// Wraps a network; the network's input/output dims must match the
    /// encoding implied by `(num_states, d, num_levels)`.
    pub fn new(net: Mlp, num_states: usize, d: usize, num_levels: usize) -> Self {
        Self::with_rule_space(net, num_states, num_states, d, num_levels)
    }

    /// Wraps a network whose decision rule lives on a *different* state
    /// space than the observation — the heterogeneous-pool case, where the
    /// policy observes the length distribution (`obs_states = B + 1`) but
    /// must emit a rule over composite `(length, class)` states
    /// (`rule_states = C·(B+1)`, see [`crate::composite_index`]).
    pub fn with_rule_space(
        net: Mlp,
        obs_states: usize,
        rule_states: usize,
        d: usize,
        num_levels: usize,
    ) -> Self {
        assert_eq!(
            net.input_dim(),
            observation_dim(obs_states, num_levels),
            "network input dim mismatch"
        );
        assert_eq!(net.output_dim(), action_dim(rule_states, d), "network output dim mismatch");
        Self {
            net,
            obs_states,
            rule_states,
            d,
            num_levels,
            name: "MF (learned)".into(),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Builds from a checkpoint.
    pub fn from_checkpoint(ckpt: PolicyCheckpoint) -> Self {
        Self::new(ckpt.net, ckpt.num_states, ckpt.d, ckpt.num_levels)
    }

    /// Loads a checkpoint from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        let ckpt: PolicyCheckpoint =
            serde_json::from_str(&text).map_err(|e| format!("parse checkpoint: {e}"))?;
        Ok(Self::from_checkpoint(ckpt))
    }

    /// Saves the policy as a checkpoint JSON file.
    ///
    /// This legacy format cannot represent composite-rule policies; those
    /// travel in `mflb_rl`'s versioned `TrainingCheckpoint` instead.
    pub fn save(
        &self,
        path: impl AsRef<Path>,
        dt: f64,
        meta: impl Into<String>,
    ) -> Result<(), String> {
        if self.rule_states != self.obs_states {
            return Err("legacy PolicyCheckpoint cannot hold a composite-rule policy; \
                 save the versioned training checkpoint instead"
                .into());
        }
        let ckpt = PolicyCheckpoint {
            net: self.net.clone(),
            num_states: self.obs_states,
            d: self.d,
            num_levels: self.num_levels,
            dt,
            meta: meta.into(),
        };
        let text = serde_json::to_string(&ckpt).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path.as_ref(), text)
            .map_err(|e| format!("write {}: {e}", path.as_ref().display()))
    }

    /// Access to the wrapped network (e.g. for continued training).
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Renames the policy (harness labels).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl UpperPolicy for NeuralUpperPolicy {
    fn decide(&self, dist: &StateDist, lambda_idx: usize, _lambda: f64) -> DecisionRule {
        debug_assert_eq!(dist.num_states(), self.obs_states, "observed distribution shape");
        // Check a scratch out of the pool: the observation encode and the
        // network forward then run allocation-free on warmed buffers
        // (bit-identical to the allocating encode + `forward_one` path).
        let mut scratch =
            self.scratch.lock().expect("scratch pool poisoned").pop().unwrap_or_default();
        encode_observation_into(dist, lambda_idx, self.num_levels, &mut scratch.obs);
        let rule = {
            let logits = self.net.forward_one_into(&scratch.obs, &mut scratch.ws);
            DecisionRule::from_logits(self.rule_states, self.d, logits)
        };
        self.scratch.lock().expect("scratch pool poisoned").push(scratch);
        rule
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mflb_nn::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_policy() -> NeuralUpperPolicy {
        let mut rng = StdRng::seed_from_u64(1);
        let obs = observation_dim(6, 2);
        let act = action_dim(6, 2);
        let net = Mlp::new(&[obs, 16, act], Activation::Tanh, &mut rng);
        NeuralUpperPolicy::new(net, 6, 2, 2)
    }

    #[test]
    fn observation_encoding_layout() {
        let dist = StateDist::new(vec![0.5, 0.2, 0.1, 0.1, 0.05, 0.05]);
        let obs = encode_observation(&dist, 1, 2);
        assert_eq!(obs.len(), 8);
        assert_eq!(&obs[..6], dist.as_slice());
        assert_eq!(&obs[6..], &[0.0, 1.0]);
    }

    #[test]
    fn decide_returns_valid_rule_and_is_deterministic() {
        let p = tiny_policy();
        let dist = StateDist::all_empty(5);
        let a = p.decide(&dist, 0, 0.9);
        let b = p.decide(&dist, 0, 0.9);
        assert!(a.max_abs_diff(&b) < 1e-15);
        for row in 0..a.num_rows() {
            let mass: f64 = a.row(row).iter().sum();
            assert!((mass - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn different_lambda_levels_can_change_the_rule() {
        let p = tiny_policy();
        let dist = StateDist::uniform(5);
        let a = p.decide(&dist, 0, 0.9);
        let b = p.decide(&dist, 1, 0.6);
        // A random net almost surely produces different logits for
        // different one-hot inputs.
        assert!(a.max_abs_diff(&b) > 1e-9);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_decisions() {
        let p = tiny_policy();
        let dir = std::env::temp_dir().join("mflb_test_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        p.save(&path, 5.0, "unit-test").unwrap();
        let q = NeuralUpperPolicy::load(&path).unwrap();
        let dist = StateDist::new(vec![0.3, 0.3, 0.2, 0.1, 0.05, 0.05]);
        let a = p.decide(&dist, 1, 0.6);
        let b = q.decide(&dist, 1, 0.6);
        assert!(a.max_abs_diff(&b) < 1e-15);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "output dim mismatch")]
    fn rejects_wrong_network_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Mlp::new(&[8, 4, 10], Activation::Tanh, &mut rng);
        NeuralUpperPolicy::new(net, 6, 2, 2);
    }
}
